//! The batching extensions in action: `multi_get`, `scan_n`, `scan_iter`.
//!
//! The paper's doorbell-batching idiom generalizes beyond single
//! operations: N independent lookups share the same three pipeline round
//! trips, and ordered scans page with cost proportional to the result.
//! This example measures each against its naive equivalent.
//!
//! ```text
//! cargo run --release -p sphinx-examples --bin batching
//! ```

use dm_sim::{ClusterConfig, DmCluster};
use sphinx::{SphinxConfig, SphinxIndex};
use ycsb::{value_for, KeySpace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 30_000u64;
    let cluster = DmCluster::new(ClusterConfig {
        mn_capacity: 1 << 30,
        ..ClusterConfig::default()
    });
    let index = SphinxIndex::create(&cluster, SphinxConfig::default())?;
    let mut client = index.client(0)?;
    println!("loading {n} u64 keys…");
    for i in 0..n {
        client.insert(&KeySpace::U64.key(i), &value_for(i, 0))?;
    }
    // Warm the filter, then measure from a clean network state.
    for i in (0..n).step_by(2) {
        client.get(&KeySpace::U64.key(i))?;
    }

    // ---- multi_get vs a loop of gets --------------------------------
    let batch = 256usize;
    let keys: Vec<Vec<u8>> = (0..batch as u64)
        .map(|i| KeySpace::U64.key(i * 97 % n))
        .collect();
    let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();

    cluster.reset_network();
    client.set_clock_ns(0);
    let before = client.net_stats();
    for k in &refs {
        client.get(k)?;
    }
    let loop_rts = client.net_stats().since(&before).round_trips;
    let loop_ns = client.clock_ns();

    cluster.reset_network();
    client.set_clock_ns(0);
    let before = client.net_stats();
    let results = client.multi_get(&refs)?;
    let batch_rts = client.net_stats().since(&before).round_trips;
    let batch_ns = client.clock_ns();
    assert!(results.iter().all(Option::is_some));

    println!("\n{batch} point lookups (warm):");
    println!(
        "  get() loop   {loop_rts:>5} round trips   {:>8.1} us",
        loop_ns as f64 / 1e3
    );
    println!(
        "  multi_get    {batch_rts:>5} round trips   {:>8.1} us   ({:.0}x fewer trips)",
        batch_ns as f64 / 1e3,
        loop_rts as f64 / batch_rts.max(1) as f64
    );

    // ---- scan_n: "next 50 rows" with result-proportional cost -------
    cluster.reset_network();
    client.set_clock_ns(0);
    let before = client.net_stats();
    let window = client.scan_n(&KeySpace::U64.key(1234), 50)?;
    let rts = client.net_stats().since(&before).round_trips;
    println!(
        "\nscan_n(start, 50) over {n} keys: {} rows in {rts} round trips",
        window.len()
    );

    // ---- scan_iter: stream a big range without materializing --------
    cluster.reset_network();
    client.set_clock_ns(0);
    let mut checksum = 0u64;
    let mut rows = 0u64;
    for item in client
        .scan_iter(&KeySpace::U64.key(0))
        .with_page_size(128)
        .take(5_000)
    {
        let (k, _) = item?;
        checksum ^= u64::from_be_bytes(k[..8].try_into()?);
        rows += 1;
    }
    println!(
        "scan_iter streamed {rows} rows (xor fingerprint {checksum:#018x}) in {:.1} us virtual",
        client.clock_ns() as f64 / 1e3
    );
    Ok(())
}
