//! A command-line YCSB driver over any of the four systems.
//!
//! ```text
//! cargo run --release -p sphinx-examples --bin ycsb_driver -- \
//!     --system sphinx --workload A --dataset email \
//!     [--keys 60000] [--ops 2000] [--workers 24] [--uniform]
//! ```
//!
//! Prints the virtual-time throughput/latency plus the network-cost
//! counters for the chosen cell of the paper's Fig. 4 grid.

use bench_harness::report::arg_u64;
use bench_harness::runner::{load_phase, run_phase, RunConfig};
use bench_harness::systems::System;
use ycsb::{KeySpace, Workload};

fn arg_str<'a>(args: &'a [String], flag: &str, default: &'a str) -> &'a str {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map_or(default, |v| v.as_str())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let system = match arg_str(&args, "--system", "sphinx")
        .to_ascii_lowercase()
        .as_str()
    {
        "sphinx" => System::Sphinx,
        "sphinx-inht" => System::SphinxInhtOnly,
        "smart" => System::Smart,
        "smartc" | "smart+c" => System::SmartC,
        "art" => System::Art,
        "bptree" | "btree" => System::BpTree,
        other => {
            eprintln!("unknown system {other}; use sphinx|sphinx-inht|smart|smartc|art|bptree");
            std::process::exit(2);
        }
    };
    let mut workload = match Workload::by_name(arg_str(&args, "--workload", "A")) {
        Some(w) => w,
        None => {
            eprintln!("unknown workload; use A|B|C|D|E|F|LOAD");
            std::process::exit(2);
        }
    };
    if args.iter().any(|a| a == "--uniform") {
        workload = workload.with_uniform();
    }
    let keyspace = match arg_str(&args, "--dataset", "u64")
        .to_ascii_lowercase()
        .as_str()
    {
        "u64" => KeySpace::U64,
        "email" => KeySpace::Email,
        other => {
            eprintln!("unknown dataset {other}; use u64|email");
            std::process::exit(2);
        }
    };
    if system == System::BpTree && arg_str(&args, "--dataset", "u64") != "u64" {
        eprintln!("the B+tree supports fixed 8-byte keys only: use --dataset u64");
        std::process::exit(2);
    }
    let keys = arg_u64(&args, "--keys", 60_000);
    let ops = arg_u64(&args, "--ops", 2_000);
    let workers = arg_u64(&args, "--workers", 24) as usize;

    println!(
        "{} | YCSB-{} | {} | {} keys | {} workers x {} ops",
        system.label(),
        workload.name,
        keyspace.name(),
        keys,
        workers,
        ops
    );

    let handle = system.build_scaled(1 << 30, keys);
    let preloaded = if workload.name == "LOAD" { 1 } else { keys };
    load_phase(&handle, keyspace, preloaded, 8);
    let result = run_phase(
        &handle,
        &RunConfig {
            keyspace,
            num_keys: preloaded,
            workload,
            workers,
            ops_per_worker: ops,
            warmup_per_worker: (ops / 5).max(50),
            seed: 0xD21E_0001,
            pipeline_depth: RunConfig::depth_from_env(1),
            trace_head_every: 0,
            trace_tail_k: obs::DEFAULT_TAIL_K,
            sample_interval_ns: 0,
            sample_capacity: 0,
        },
    );

    println!(
        "\nthroughput       {:.3} Mops/s (virtual time)",
        result.mops
    );
    println!("avg latency      {:.2} us", result.avg_latency_us);
    println!("p99 latency      {:.2} us", result.p99_latency_us);
    println!("round trips/op   {:.2}", result.round_trips_per_op);
    println!("wire bytes/op    {:.0}", result.bytes_per_op);
}
