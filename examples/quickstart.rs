//! Quickstart: a Sphinx index on a simulated DM cluster in ~40 lines.
//!
//! ```text
//! cargo run -p sphinx-examples --bin quickstart
//! ```

use dm_sim::{ClusterConfig, DmCluster};
use sphinx::{SphinxConfig, SphinxIndex};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A cluster shaped like the paper's testbed: 3 machines, each hosting
    // one compute node (CN) and one memory node (MN).
    let cluster = DmCluster::new(ClusterConfig::default());

    // Create the index (builds the root ART node and one Inner Node Hash
    // Table per MN), then attach a worker client on CN 0.
    let index = SphinxIndex::create(&cluster, SphinxConfig::default())?;
    let mut client = index.client(0)?;

    // Point operations.
    client.insert(b"lyrics", b"la-la-la")?;
    client.insert(b"lyre", b"a small harp")?;
    client.insert(b"lyceum", b"a hall")?;
    println!("lyrics   -> {}", pretty(client.get(b"lyrics")?));
    println!("lyrebird -> {}", pretty(client.get(b"lyrebird")?));

    client.update(b"lyre", b"an ancient string instrument")?;
    println!("lyre     -> {}", pretty(client.get(b"lyre")?));

    // Range scan (inclusive bounds, ordered results).
    println!("\nscan [lyc, lyz]:");
    for (k, v) in client.scan(b"lyc", b"lyz")? {
        println!(
            "  {} = {}",
            String::from_utf8_lossy(&k),
            String::from_utf8_lossy(&v)
        );
    }

    client.remove(b"lyceum")?;
    println!(
        "\nafter delete, lyceum -> {}",
        pretty(client.get(b"lyceum")?)
    );

    // The whole point of Sphinx: few round trips per operation.
    let net = client.net_stats();
    let ops = client.op_stats().ops();
    println!(
        "\n{} ops used {} network round trips ({:.1} per op)",
        ops,
        net.round_trips,
        net.round_trips as f64 / ops as f64
    );
    Ok(())
}

fn pretty(v: Option<Vec<u8>>) -> String {
    v.map_or("<absent>".to_string(), |v| {
        String::from_utf8_lossy(&v).into_owned()
    })
}
