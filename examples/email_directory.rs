//! Email directory: variable-length keys — the workload class Sphinx is
//! built for.
//!
//! Loads a synthetic email corpus (the paper's `email` dataset stand-in),
//! then contrasts Sphinx against the naive ART-on-DM port on the same
//! lookups, reporting round trips and bytes per operation. Deep,
//! variable-length keys are exactly where tree traversal on DM hurts and
//! where the Inner Node Hash Table + Succinct Filter Cache pay off.
//!
//! ```text
//! cargo run --release -p sphinx-examples --bin email_directory [-- 50000]
//! ```

use baselines::{BaselineConfig, BaselineIndex};
use dm_sim::{ClusterConfig, DmCluster};
use sphinx::{SphinxConfig, SphinxIndex};
use ycsb::{value_for, KeySpace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    let emails = KeySpace::Email;
    println!("loading {n} synthetic email addresses…");

    // --- Sphinx ---------------------------------------------------------
    let cluster = DmCluster::new(ClusterConfig {
        mn_capacity: 1 << 30,
        ..ClusterConfig::default()
    });
    let sphinx = SphinxIndex::create(&cluster, SphinxConfig::default())?;
    let mut s_client = sphinx.client(0)?;
    for i in 0..n {
        s_client.insert(&emails.key(i), &value_for(i, 0))?;
    }

    // --- naive ART on DM --------------------------------------------------
    let cluster2 = DmCluster::new(ClusterConfig {
        mn_capacity: 1 << 30,
        ..ClusterConfig::default()
    });
    let art = BaselineIndex::create(&cluster2, BaselineConfig::art())?;
    let mut a_client = art.client(0)?;
    for i in 0..n {
        a_client.insert(&emails.key(i), &value_for(i, 0))?;
    }

    // Warm Sphinx's filter cache with a first pass.
    for i in (0..n).step_by(3) {
        s_client.get(&emails.key(i))?;
    }

    // Measured lookups.
    let lookups = 5_000.min(n);
    let (s0, a0) = (s_client.net_stats(), a_client.net_stats());
    let (st0, at0) = (s_client.clock_ns(), a_client.clock_ns());
    for i in 0..lookups {
        let key = emails.key((i * 7919) % n);
        assert!(s_client.get(&key)?.is_some());
        assert!(a_client.get(&key)?.is_some());
    }
    let s = s_client.net_stats().since(&s0);
    let a = a_client.net_stats().since(&a0);

    println!(
        "\nsample address: {}",
        String::from_utf8_lossy(&emails.key(42))
    );
    println!("\n{lookups} point lookups over {n} emails:");
    println!("                     Sphinx      ART-on-DM");
    println!(
        "round trips / op     {:<11.2} {:.2}",
        s.round_trips as f64 / lookups as f64,
        a.round_trips as f64 / lookups as f64
    );
    println!(
        "wire bytes / op      {:<11.0} {:.0}",
        s.bytes_total() as f64 / lookups as f64,
        a.bytes_total() as f64 / lookups as f64
    );
    println!(
        "avg latency (us)     {:<11.2} {:.2}",
        (s_client.clock_ns() - st0) as f64 / lookups as f64 / 1e3,
        (a_client.clock_ns() - at0) as f64 / lookups as f64 / 1e3
    );

    // A directory-style range listing: everyone at one domain rendered by
    // a prefix-bounded scan.
    let (low, high) = (b"zoe".to_vec(), b"zof".to_vec());
    let hits = s_client.scan(&low, &high)?;
    println!("\n{} addresses in [zoe, zof); first few:", hits.len());
    for (k, _) in hits.iter().take(5) {
        println!("  {}", String::from_utf8_lossy(k));
    }
    Ok(())
}
