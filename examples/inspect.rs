//! Operator tooling: audit a live Sphinx index.
//!
//! Loads a dataset, then walks every structure the way an on-call engineer
//! would: full tree integrity audit (`verify()`), per-MN Inner Node Hash
//! Table statistics, Succinct Filter Cache accuracy, and the MN-side space
//! breakdown behind the paper's Fig. 6.
//!
//! ```text
//! cargo run --release -p sphinx-examples --bin inspect [-- 30000]
//! ```

use dm_sim::{ClusterConfig, DmCluster};
use race_hash::RaceTable;
use sphinx::{SphinxConfig, SphinxIndex};
use ycsb::{value_for, KeySpace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(30_000);
    let cluster = DmCluster::new(ClusterConfig {
        mn_capacity: 1 << 30,
        ..ClusterConfig::default()
    });
    let index = SphinxIndex::create(&cluster, SphinxConfig::default())?;
    let mut client = index.client(0)?;

    println!("loading {n} email keys…");
    for i in 0..n {
        client.insert(&KeySpace::Email.key(i), &value_for(i, 0))?;
    }
    // Exercise the read path so the filter cache has steady-state content.
    for i in (0..n).step_by(3) {
        client.get(&KeySpace::Email.key(i))?;
    }

    println!("\n=== tree integrity audit ===");
    let report = index.verify()?;
    println!("inner nodes        {}", report.inner_nodes);
    println!("live leaves        {}", report.leaves);
    println!("deepest prefix     {} bytes", report.max_prefix_len);
    println!("hash entries ok    {}", report.inht_entries_checked);
    match report.problems.len() {
        0 => println!("violations         none — index is clean"),
        k => {
            println!("violations         {k} (!)");
            for p in report.problems.iter().take(10) {
                println!("  - {p}");
            }
        }
    }

    println!("\n=== inner node hash tables (per MN) ===");
    let mut dm = cluster.client(0);
    for (mn, &meta) in index.inht_metas().iter().enumerate() {
        let mut table = RaceTable::open(&mut dm, meta)?;
        let stats = table.stats(&mut dm)?;
        let bytes = table.memory_bytes(&mut dm)?;
        println!(
            "MN{mn}: {} entries in {} segments (depth {}, load {:.0}%), {} KiB",
            stats.entries,
            stats.segments,
            stats.global_depth,
            stats.load_factor * 100.0,
            bytes / 1024,
        );
    }

    println!("\n=== succinct filter cache (this CN) ===");
    {
        let filter = client.filter_handle();
        let s = filter.stats();
        println!(
            "resident prefixes  {} / {} slots (frozen gen {}: {} keys; delta: {})",
            filter.len(),
            filter.capacity(),
            s.generation,
            s.frozen_len,
            s.delta_len,
        );
        println!("memory             {} KiB", filter.memory_bytes() / 1024);
        // Each lookup probes every prefix length longest-first, so most
        // probes miss by design; the interesting number is hits per get.
        println!(
            "probe hit rate     {:.1}% (one hit per lookup is the ideal)",
            s.hits as f64 / s.lookups.max(1) as f64 * 100.0
        );
        println!("evictions          {}", s.evictions);
    }

    println!("\n=== MN-side space (Fig. 6 accounting) ===");
    let space = index.space_breakdown()?;
    println!(
        "ART nodes + leaves {:.1} MiB",
        space.art_bytes as f64 / (1 << 20) as f64
    );
    println!(
        "hash tables        {:.2} MiB ({:.1}% of ART)",
        space.inht_bytes as f64 / (1 << 20) as f64,
        space.inht_overhead() * 100.0
    );

    println!("\n=== per-op cost sample (warm reads) ===");
    // The audits above ran with their own unsynchronized virtual clocks;
    // start the timing sample from a clean network state.
    cluster.reset_network();
    client.set_clock_ns(0);
    let before = client.net_stats();
    let t0 = client.clock_ns();
    let samples = 2_000.min(n);
    for i in 0..samples {
        client.get(&KeySpace::Email.key((i * 13) % n))?;
    }
    let net = client.net_stats().since(&before);
    println!(
        "round trips / op   {:.2}",
        net.round_trips as f64 / samples as f64
    );
    println!(
        "wire bytes / op    {:.0}",
        net.bytes_total() as f64 / samples as f64
    );
    println!(
        "avg latency        {:.2} us",
        (client.clock_ns() - t0) as f64 / samples as f64 / 1e3
    );
    Ok(())
}
