//! Cache-budget study: how small can the Succinct Filter Cache be?
//!
//! The paper's central memory claim (§III-B): tracking prefix *existence*
//! in ~13 bits per entry beats caching nodes at 40–2056 bytes each, and
//! the second-chance (hotness-bit) policy keeps hot tenants resident when
//! the filter is smaller than the prefix population.
//!
//! This example runs the same skewed multi-tenant lookup mix under
//! shrinking filter budgets and reports round trips per op and filter
//! effectiveness — demonstrating graceful degradation instead of a cliff.
//!
//! ```text
//! cargo run --release -p sphinx-examples --bin multi_tenant_cache
//! ```

use dm_sim::{ClusterConfig, DmCluster};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sphinx::{SphinxConfig, SphinxIndex};

/// tenants × records each: keys look like "tenant-0042/record-000137".
const TENANTS: u64 = 50;
const RECORDS: u64 = 400;

fn key(tenant: u64, record: u64) -> Vec<u8> {
    format!("tenant-{tenant:04}/record-{record:06}").into_bytes()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{} tenants x {} records; zipf-ish access: 90% of lookups hit 5 hot tenants\n",
        TENANTS, RECORDS
    );
    println!("filter budget   rts/op   filter hit-rate   evictions");
    println!("------------------------------------------------------");

    for budget in [1 << 20, 64 << 10, 8 << 10, 1 << 10] {
        let cluster = DmCluster::new(ClusterConfig {
            mn_capacity: 1 << 30,
            ..ClusterConfig::default()
        });
        let config = SphinxConfig {
            cache_bytes: budget,
            ..SphinxConfig::default()
        };
        let index = SphinxIndex::create(&cluster, config)?;
        let mut client = index.client(0)?;
        for t in 0..TENANTS {
            for r in 0..RECORDS {
                client.insert(&key(t, r), format!("payload-{t}-{r}").as_bytes())?;
            }
        }

        let mut rng = SmallRng::seed_from_u64(7);
        let lookups = 20_000;
        // Warm-up pass so the filter reaches steady state under this
        // budget.
        for _ in 0..lookups / 4 {
            let t = if rng.gen_bool(0.9) {
                rng.gen_range(0..5)
            } else {
                rng.gen_range(0..TENANTS)
            };
            client.get(&key(t, rng.gen_range(0..RECORDS)))?;
        }
        let base = client.net_stats();
        let (h0, l0) = {
            let s = client.filter_handle().stats();
            (s.hits, s.lookups)
        };
        for _ in 0..lookups {
            let t = if rng.gen_bool(0.9) {
                rng.gen_range(0..5)
            } else {
                rng.gen_range(0..TENANTS)
            };
            client.get(&key(t, rng.gen_range(0..RECORDS)))?;
        }
        let net = client.net_stats().since(&base);
        let (hit_rate, evictions) = {
            let s = client.filter_handle().stats();
            (
                (s.hits - h0) as f64 / (s.lookups - l0).max(1) as f64,
                s.evictions,
            )
        };
        println!(
            "{:>10} B   {:>6.2}   {:>14.1}%   {:>9}",
            budget,
            net.round_trips as f64 / lookups as f64,
            hit_rate * 100.0,
            evictions
        );
    }
    println!(
        "\nEven a 1 KiB filter keeps the hot tenants' prefixes resident (second-chance\n\
         eviction) — lookups degrade by extra hash-bucket probes, never by full\n\
         root-to-leaf traversals."
    );
    Ok(())
}
