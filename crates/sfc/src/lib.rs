//! SFC 2.0 — the generational Succinct Filter Cache.
//!
//! The paper's SFC tracks which key prefixes name live inner nodes so a
//! compute node can jump straight to the deepest INHT entry instead of
//! walking Θ(L) hash levels. The first-generation implementation was a
//! single mutable cuckoo filter (`crates/cuckoo`); this crate layers a
//! *generational* design on top of the same substrate:
//!
//! * a **frozen generation** — an immutable [`BinaryFuse8`] over the
//!   stable prefix set at ≈9 bits/entry with exactly three array probes
//!   per query and zero false negatives;
//! * a **mutable delta** — a small cuckoo filter absorbing the inserts
//!   (and deletes, via a tombstone set) that arrive between rebuilds;
//! * a **rebuild** ([`FilterCache::maintain`]) that merges delta and
//!   tombstones into the next frozen generation. Construction runs
//!   *outside* the cache lock; the finished generation is installed by
//!   swapping an `Arc` pointer, so concurrent probes always observe
//!   either the old or the new generation in full — never a torn one;
//! * **snapshots** ([`FilterCache::snapshot`]) with magic/version/CRC32
//!   framing so a restarting CN warm-starts instead of re-learning the
//!   filter through the cold-miss ramp. Corrupt or stale snapshots are
//!   rejected with a counted telemetry event and fall back to cold
//!   start — never a panic.
//!
//! With [`SfcConfig::generational`] disabled the cache degrades to a
//! transparent wrapper over the original cuckoo filter (keys stored
//! verbatim, identical probe behaviour) — that mode is the baseline leg
//! of the `sfc_stats` cuckoo-vs-generational comparison.

mod fuse;
mod snapshot;

pub use fuse::{BinaryFuse8, FuseBuildError};
pub use snapshot::{crc32, SnapshotError, MAGIC, VERSION};

use std::collections::BTreeSet;
use std::sync::Arc;

use cuckoo::{fnv1a64, mix64, CuckooFilter, FilterStats};
use parking_lot::Mutex;

/// Canonical 64-bit hash of a prefix — shared by the delta cuckoo keys,
/// the frozen fuse, and the exact hash log, so all three layers agree on
/// key identity.
#[inline]
pub fn key_hash(key: &[u8]) -> u64 {
    mix64(fnv1a64(key))
}

/// Tuning for the generational subsystem. Lives in `SphinxConfig` so
/// every per-CN filter of an index shares one policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SfcConfig {
    /// `true` = frozen fuse + delta + rebuilds (SFC 2.0). `false` =
    /// plain cuckoo filter, byte-for-byte the pre-generational SFC.
    pub generational: bool,
    /// Pending delta+tombstone entries that arm a rebuild. `0` = auto
    /// (half the delta filter's slot capacity). The
    /// `SPHINX_SFC_REBUILD_EVERY` environment variable overrides this at
    /// startup — the lincheck sweep uses it to force rebuilds inside
    /// adversarial schedules.
    pub rebuild_delta_threshold: usize,
    /// Seeds tried before a fuse construction attempt is abandoned (the
    /// old generation then stays live and the rebuild re-arms).
    pub max_fuse_build_attempts: u32,
}

impl Default for SfcConfig {
    fn default() -> Self {
        let rebuild_delta_threshold = std::env::var("SPHINX_SFC_REBUILD_EVERY")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        SfcConfig {
            generational: true,
            rebuild_delta_threshold,
            max_fuse_build_attempts: 64,
        }
    }
}

/// Merged statistics over all layers of one (or several, via
/// [`SfcStats::merge`]) filter caches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SfcStats {
    /// Insert calls accepted (either into the delta or already frozen).
    pub inserts: u64,
    /// Delta-cuckoo evictions (information loss inside the delta).
    pub evictions: u64,
    /// Delta evictions where the hotness bit spared a hot entry.
    pub second_chance: u64,
    /// Delta cuckoo relocations.
    pub relocations: u64,
    /// Membership probes answered (per prefix length tried).
    pub lookups: u64,
    /// Probes that answered `true`.
    pub hits: u64,
    /// Hits later disproven by the index (observed false positives).
    pub false_positives: u64,
    /// Hits answered by the frozen fuse generation.
    pub frozen_hits: u64,
    /// Hits answered by the delta cuckoo.
    pub delta_hits: u64,
    /// Live frozen generation number (0 = cold, nothing frozen yet).
    pub generation: u64,
    /// Keys in the frozen generation.
    pub frozen_len: u64,
    /// Keys in the delta log awaiting the next rebuild.
    pub delta_len: u64,
    /// Frozen keys deleted but not yet rebuilt away.
    pub tombstones: u64,
    /// Completed generation rebuilds.
    pub rebuilds: u64,
    /// Extra fuse construction attempts beyond the first (unlucky
    /// seeds), plus full abandons.
    pub fuse_build_retries: u64,
    /// Snapshots accepted and installed.
    pub snapshot_loads: u64,
    /// Snapshots rejected (corrupt, stale, or wrong mode).
    pub snapshot_rejects: u64,
    /// Resident bytes of the frozen fuse fingerprint array.
    pub frozen_bytes: u64,
    /// Resident bytes of the delta cuckoo slot array.
    pub delta_bytes: u64,
}

impl SfcStats {
    /// Adds another cache's counters into this one (summing per-CN
    /// filters; `generation` takes the max since it is a level, not a
    /// count).
    pub fn merge(&mut self, o: &SfcStats) {
        self.inserts += o.inserts;
        self.evictions += o.evictions;
        self.second_chance += o.second_chance;
        self.relocations += o.relocations;
        self.lookups += o.lookups;
        self.hits += o.hits;
        self.false_positives += o.false_positives;
        self.frozen_hits += o.frozen_hits;
        self.delta_hits += o.delta_hits;
        self.generation = self.generation.max(o.generation);
        self.frozen_len += o.frozen_len;
        self.delta_len += o.delta_len;
        self.tombstones += o.tombstones;
        self.rebuilds += o.rebuilds;
        self.fuse_build_retries += o.fuse_build_retries;
        self.snapshot_loads += o.snapshot_loads;
        self.snapshot_rejects += o.snapshot_rejects;
        self.frozen_bytes += o.frozen_bytes;
        self.delta_bytes += o.delta_bytes;
    }

    /// Frozen-generation bits per stored key (the ≤10 bits/entry
    /// acceptance metric); `0.0` when nothing is frozen.
    pub fn frozen_bits_per_entry(&self) -> f64 {
        if self.frozen_len == 0 {
            0.0
        } else {
            self.frozen_bytes as f64 * 8.0 / self.frozen_len as f64
        }
    }
}

/// One immutable generation: the fuse (probe structure) plus the exact
/// sorted hash log it was built from. The log is what makes rebuilds
/// and insert dedup possible (fuse filters are not enumerable); it is
/// rebuild/snapshot state, not on the probe path, and on a real CN it
/// could live in cold storage.
struct FrozenGen {
    generation: u64,
    fuse: BinaryFuse8,
    hashes: Box<[u64]>,
}

impl FrozenGen {
    fn cold(seed: u64) -> Self {
        let (fuse, _) = BinaryFuse8::build(&[], seed, 1).expect("empty fuse always builds");
        FrozenGen {
            generation: 0,
            fuse,
            hashes: Box::default(),
        }
    }

    fn contains_exact(&self, h: u64) -> bool {
        self.hashes.binary_search(&h).is_ok()
    }
}

#[derive(Default, Clone, Copy)]
struct Counters {
    inserts: u64,
    lookups: u64,
    hits: u64,
    frozen_hits: u64,
    delta_hits: u64,
    false_positives: u64,
    rebuilds: u64,
    fuse_build_retries: u64,
    snapshot_loads: u64,
    snapshot_rejects: u64,
}

struct Inner {
    frozen: Arc<FrozenGen>,
    delta: CuckooFilter,
    /// Exact contents of the delta cuckoo (the cuckoo itself can evict
    /// under pressure; the log cannot, so rebuilds lose nothing).
    delta_log: BTreeSet<u64>,
    /// Frozen keys deleted since the last rebuild.
    tombstones: BTreeSet<u64>,
    /// Stats of delta cuckoos retired by past rebuilds/snapshot loads.
    retired: FilterStats,
    c: Counters,
    /// True while a rebuild holds cloned inputs outside the lock.
    rebuilding: bool,
}

/// The generational Succinct Filter Cache. Internally synchronized:
/// every probe/update method takes `&self`, so one `Arc<FilterCache>`
/// is shared by all workers of a CN.
pub struct FilterCache {
    inner: Mutex<Inner>,
    cfg: SfcConfig,
    seed: u64,
    delta_budget: usize,
    rebuild_threshold: usize,
}

impl std::fmt::Debug for FilterCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Deliberately lock-free: Debug-formatting a client must not
        // contend with (or deadlock against) probes on the shared cache.
        f.debug_struct("FilterCache")
            .field("cfg", &self.cfg)
            .field("seed", &self.seed)
            .field("delta_budget", &self.delta_budget)
            .field("rebuild_threshold", &self.rebuild_threshold)
            .finish_non_exhaustive()
    }
}

impl FilterCache {
    /// A cache sized to `byte_budget` bytes of probe structures, like
    /// `CuckooFilter::with_byte_budget`. In generational mode the delta
    /// cuckoo gets ~1/8 of the budget (the frozen fuse, at ≈9
    /// bits/entry, covers far more keys with the rest); in cuckoo-only
    /// mode the whole budget goes to the one filter.
    pub fn new(byte_budget: usize, cfg: SfcConfig, seed: u64) -> FilterCache {
        let byte_budget = byte_budget.max(64);
        let delta_budget = if cfg.generational {
            (byte_budget / 8).clamp(64, byte_budget)
        } else {
            byte_budget
        };
        let delta = CuckooFilter::with_byte_budget_and_seed(delta_budget, seed);
        let rebuild_threshold = if cfg.rebuild_delta_threshold > 0 {
            cfg.rebuild_delta_threshold
        } else {
            (delta.capacity() / 2).max(64)
        };
        FilterCache {
            inner: Mutex::new(Inner {
                frozen: Arc::new(FrozenGen::cold(seed)),
                delta,
                delta_log: BTreeSet::new(),
                tombstones: BTreeSet::new(),
                retired: FilterStats::default(),
                c: Counters::default(),
                rebuilding: false,
            }),
            cfg,
            seed,
            delta_budget,
            rebuild_threshold,
        }
    }

    fn new_delta(&self) -> CuckooFilter {
        CuckooFilter::with_byte_budget_and_seed(self.delta_budget, self.seed)
    }

    /// Probe one prefix, updating hotness and hit counters.
    pub fn contains(&self, key: &[u8]) -> bool {
        let mut st = self.inner.lock();
        self.probe_locked(&mut st, key)
    }

    fn probe_locked(&self, st: &mut Inner, key: &[u8]) -> bool {
        if !self.cfg.generational {
            return st.delta.contains(key);
        }
        st.c.lookups += 1;
        let h = key_hash(key);
        if st.tombstones.contains(&h) {
            return false;
        }
        if st.delta.contains(&h.to_le_bytes()) {
            st.c.hits += 1;
            st.c.delta_hits += 1;
            return true;
        }
        if st.frozen.fuse.contains_hash(h) {
            st.c.hits += 1;
            st.c.frozen_hits += 1;
            return true;
        }
        false
    }

    /// Probe without touching hotness bits or statistics (accuracy
    /// measurements).
    pub fn contains_quiet(&self, key: &[u8]) -> bool {
        let st = self.inner.lock();
        if !self.cfg.generational {
            return st.delta.contains_quiet(key);
        }
        let h = key_hash(key);
        !st.tombstones.contains(&h)
            && (st.delta.contains_quiet(&h.to_le_bytes()) || st.frozen.fuse.contains_hash(h))
    }

    /// Longest prefix of `key[..max_len]` the filter believes is
    /// resident, probing longest-first under one lock acquisition.
    /// Returns `0` when every length misses — the probe ladder every
    /// lookup path (blocking get, pipelined get, multi-get) runs.
    pub fn deepest_hit(&self, key: &[u8], max_len: usize) -> usize {
        let mut st = self.inner.lock();
        let l = max_len.min(key.len());
        for x in (1..=l).rev() {
            if self.probe_locked(&mut st, &key[..x]) {
                return x;
            }
        }
        0
    }

    /// Teach the filter a prefix.
    pub fn insert(&self, key: &[u8]) {
        let mut st = self.inner.lock();
        if !self.cfg.generational {
            st.delta.insert(key);
            return;
        }
        st.c.inserts += 1;
        self.insert_locked(&mut st, key_hash(key));
    }

    fn insert_locked(&self, st: &mut Inner, h: u64) {
        st.tombstones.remove(&h);
        if st.frozen.contains_exact(h) {
            return; // already baked into the frozen generation
        }
        if st.delta_log.insert(h) {
            st.delta.insert(&h.to_le_bytes());
        }
    }

    /// `contains` + `insert`-if-absent in one critical section — the
    /// "freshness" refresh the descent path performs when it discovers a
    /// deeper live node than the filter predicted. Returns `true` when
    /// the prefix was newly taught.
    pub fn refresh(&self, key: &[u8]) -> bool {
        let mut st = self.inner.lock();
        if self.probe_locked(&mut st, key) {
            return false;
        }
        if !self.cfg.generational {
            st.delta.insert(key);
        } else {
            st.c.inserts += 1;
            self.insert_locked(&mut st, key_hash(key));
        }
        true
    }

    /// Forget a prefix. Delta entries are removed outright; frozen
    /// entries get a tombstone until the next rebuild bakes the deletion
    /// in. Returns whether the prefix was tracked.
    pub fn remove(&self, key: &[u8]) -> bool {
        let mut st = self.inner.lock();
        if !self.cfg.generational {
            return st.delta.remove(key);
        }
        let h = key_hash(key);
        if st.delta_log.remove(&h) {
            st.delta.remove(&h.to_le_bytes());
            true
        } else if st.frozen.contains_exact(h) {
            // `insert` is false when the key was already tombstoned — a
            // second remove of the same key must report "not tracked".
            st.tombstones.insert(h)
        } else {
            false
        }
    }

    /// Cheap armed-check for the op-boundary maintenance hook: is there
    /// enough pending delta to justify a rebuild?
    pub fn rebuild_due(&self) -> bool {
        if !self.cfg.generational {
            return false;
        }
        let st = self.inner.lock();
        !st.rebuilding && st.delta_log.len() + st.tombstones.len() >= self.rebuild_threshold
    }

    /// Merge the delta and tombstones into the next frozen generation.
    ///
    /// Runs in three steps: (1) under the lock, clone the inputs and
    /// mark the rebuild in flight; (2) **outside** the lock, merge the
    /// hash logs and build the fuse — concurrent probes keep using the
    /// live generation + delta; (3) under the lock again, swap the
    /// frozen `Arc` and prune exactly the entries that were merged, so
    /// inserts that raced the build survive in the delta. Returns `true`
    /// when a new generation was installed.
    pub fn maintain(&self) -> bool {
        self.maintain_with_threshold(self.rebuild_threshold)
    }

    /// [`FilterCache::maintain`] with the threshold ignored — freeze
    /// whatever is pending now (tests, measurement setups).
    pub fn force_rebuild(&self) -> bool {
        self.maintain_with_threshold(1)
    }

    fn maintain_with_threshold(&self, threshold: usize) -> bool {
        if !self.cfg.generational {
            return false;
        }
        let (frozen, delta_log, tombstones) = {
            let mut st = self.inner.lock();
            if st.rebuilding || st.delta_log.len() + st.tombstones.len() < threshold {
                return false;
            }
            st.rebuilding = true;
            (
                st.frozen.clone(),
                st.delta_log.clone(),
                st.tombstones.clone(),
            )
        };
        self.finish_rebuild(frozen, delta_log, tombstones)
    }

    /// Serializes the full generational state with CRC framing.
    pub fn snapshot(&self) -> Vec<u8> {
        let st = self.inner.lock();
        snapshot::encode(
            st.frozen.generation,
            &st.frozen.fuse,
            &st.frozen.hashes,
            &st.delta_log,
            &st.tombstones,
        )
    }

    /// Installs a snapshot, replacing the current state — the warm-start
    /// path for a restarting/joining CN. Rejections (corrupt framing,
    /// stale generation, non-generational mode) leave the current state
    /// untouched, count one `snapshot_rejects`, and return the reason;
    /// they never panic.
    pub fn load_snapshot(&self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let decoded = snapshot::decode(bytes);
        let mut st = self.inner.lock();
        let d = match decoded {
            Ok(d) if !self.cfg.generational => {
                let _ = d;
                st.c.snapshot_rejects += 1;
                return Err(SnapshotError::Malformed(
                    "generational mode disabled on this cache",
                ));
            }
            Ok(d) => d,
            Err(e) => {
                st.c.snapshot_rejects += 1;
                return Err(e);
            }
        };
        if d.generation < st.frozen.generation {
            let err = SnapshotError::Stale {
                snapshot: d.generation,
                current: st.frozen.generation,
            };
            st.c.snapshot_rejects += 1;
            return Err(err);
        }
        st.frozen = Arc::new(FrozenGen {
            generation: d.generation,
            fuse: d.fuse,
            hashes: d.hashes.into_boxed_slice(),
        });
        st.delta_log = d.delta_log;
        st.tombstones = d.tombstones;
        let retired = st.delta.stats();
        st.retired.merge(&retired);
        st.delta = self.new_delta();
        let entries: Vec<u64> = st.delta_log.iter().copied().collect();
        for h in entries {
            st.delta.insert(&h.to_le_bytes());
        }
        st.c.snapshot_loads += 1;
        Ok(())
    }

    /// Merged statistics across all layers.
    pub fn stats(&self) -> SfcStats {
        let st = self.inner.lock();
        let mut d = st.retired;
        d.merge(&st.delta.stats());
        if !self.cfg.generational {
            return SfcStats {
                inserts: d.inserts,
                evictions: d.evictions,
                second_chance: d.second_chance,
                relocations: d.relocations,
                lookups: d.lookups,
                hits: d.hits,
                false_positives: d.false_positives,
                delta_len: st.delta.len() as u64,
                delta_bytes: st.delta.memory_bytes() as u64,
                snapshot_loads: st.c.snapshot_loads,
                snapshot_rejects: st.c.snapshot_rejects,
                ..SfcStats::default()
            };
        }
        SfcStats {
            inserts: st.c.inserts,
            evictions: d.evictions,
            second_chance: d.second_chance,
            relocations: d.relocations,
            lookups: st.c.lookups,
            hits: st.c.hits,
            false_positives: st.c.false_positives,
            frozen_hits: st.c.frozen_hits,
            delta_hits: st.c.delta_hits,
            generation: st.frozen.generation,
            frozen_len: st.frozen.hashes.len() as u64,
            delta_len: st.delta_log.len() as u64,
            tombstones: st.tombstones.len() as u64,
            rebuilds: st.c.rebuilds,
            fuse_build_retries: st.c.fuse_build_retries,
            snapshot_loads: st.c.snapshot_loads,
            snapshot_rejects: st.c.snapshot_rejects,
            frozen_bytes: st.frozen.fuse.memory_bytes() as u64,
            delta_bytes: st.delta.memory_bytes() as u64,
        }
    }

    /// Records that a filter-suggested prefix turned out not to exist —
    /// the index-observed false positive (fuse collision, delta cuckoo
    /// fingerprint collision, or staleness).
    pub fn record_false_positive(&self) {
        let mut st = self.inner.lock();
        if !self.cfg.generational {
            st.delta.note_false_positive();
        } else {
            st.c.false_positives += 1;
        }
    }

    /// Prefixes currently believed resident (exact across frozen log,
    /// tombstones, and delta log).
    pub fn len(&self) -> usize {
        let st = self.inner.lock();
        if !self.cfg.generational {
            return st.delta.len();
        }
        // Tombstones normally cover frozen keys only, but a loaded
        // snapshot is free to claim otherwise — saturate, don't trust.
        st.frozen.hashes.len().saturating_sub(st.tombstones.len()) + st.delta_log.len()
    }

    /// True when nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum resident entries before delta pressure: frozen keys are
    /// effectively free (the fuse regrows each rebuild), so this is the
    /// frozen cardinality plus the delta slot capacity.
    pub fn capacity(&self) -> usize {
        let st = self.inner.lock();
        if !self.cfg.generational {
            return st.delta.capacity();
        }
        st.frozen.hashes.len() + st.delta.capacity()
    }

    /// Bytes of the resident probe structures (fuse fingerprint array +
    /// delta slots). The hash/tombstone logs are rebuild state, not
    /// probe state — see `docs/SFC.md` for the accounting argument.
    pub fn memory_bytes(&self) -> usize {
        let st = self.inner.lock();
        if !self.cfg.generational {
            return st.delta.memory_bytes();
        }
        st.frozen.fuse.memory_bytes() + st.delta.memory_bytes()
    }

    /// Live frozen generation number (0 = nothing frozen yet).
    pub fn generation(&self) -> u64 {
        self.inner.lock().frozen.generation
    }

    /// Whether this cache runs the generational design.
    pub fn is_generational(&self) -> bool {
        self.cfg.generational
    }

    fn finish_rebuild(
        &self,
        frozen: Arc<FrozenGen>,
        delta_log: BTreeSet<u64>,
        tombstones: BTreeSet<u64>,
    ) -> bool {
        let mut merged: Vec<u64> = Vec::with_capacity(frozen.hashes.len() + delta_log.len());
        let mut delta_iter = delta_log.iter().copied().peekable();
        for &h in frozen.hashes.iter() {
            while let Some(&d) = delta_iter.peek() {
                if d < h {
                    merged.push(d);
                    delta_iter.next();
                } else {
                    break;
                }
            }
            if delta_iter.peek() == Some(&h) {
                delta_iter.next();
            }
            if !tombstones.contains(&h) {
                merged.push(h);
            }
        }
        merged.extend(delta_iter);

        let next_gen = frozen.generation + 1;
        let fuse_seed = self.seed ^ mix64(next_gen);
        let built = BinaryFuse8::build(&merged, fuse_seed, self.cfg.max_fuse_build_attempts);

        let mut st = self.inner.lock();
        st.rebuilding = false;
        let (fuse, attempts) = match built {
            Ok(v) => v,
            Err(e) => {
                st.c.fuse_build_retries += e.attempts as u64;
                return false;
            }
        };
        st.c.rebuilds += 1;
        st.c.fuse_build_retries += (attempts - 1) as u64;
        st.frozen = Arc::new(FrozenGen {
            generation: next_gen,
            fuse,
            hashes: merged.into_boxed_slice(),
        });
        for h in &delta_log {
            st.delta_log.remove(h);
        }
        for h in &tombstones {
            st.tombstones.remove(h);
        }
        let retired = st.delta.stats();
        st.retired.merge(&retired);
        st.delta = self.new_delta();
        let survivors: Vec<u64> = st.delta_log.iter().copied().collect();
        for h in survivors {
            st.delta.insert(&h.to_le_bytes());
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn gen_cache() -> FilterCache {
        FilterCache::new(
            1 << 16,
            SfcConfig {
                generational: true,
                rebuild_delta_threshold: 0,
                max_fuse_build_attempts: 64,
            },
            0x5F13_C5EE,
        )
    }

    fn key(i: u64) -> Vec<u8> {
        format!("prefix-{i:06}").into_bytes()
    }

    #[test]
    fn insert_then_contains_across_rebuilds() {
        let f = gen_cache();
        for i in 0..5_000u64 {
            f.insert(&key(i));
        }
        while f.maintain() {}
        let s = f.stats();
        assert!(s.rebuilds >= 1, "auto threshold should have fired");
        assert!(s.generation >= 1);
        // Zero false negatives: everything taught is still believed in.
        for i in 0..5_000u64 {
            assert!(f.contains(&key(i)), "lost key {i}");
        }
        assert!(s.frozen_len > 0);
    }

    #[test]
    fn force_rebuild_freezes_everything_pending() {
        let f = gen_cache();
        for i in 0..100u64 {
            f.insert(&key(i));
        }
        assert!(f.force_rebuild());
        let s = f.stats();
        assert_eq!(s.frozen_len, 100);
        assert_eq!(s.delta_len, 0);
        assert_eq!(s.generation, 1);
        assert!(s.frozen_bits_per_entry() <= 10.0 + 12.0); // tiny sets have slack
        for i in 0..100u64 {
            assert!(f.contains(&key(i)));
        }
    }

    #[test]
    fn remove_is_effective_in_both_layers() {
        let f = gen_cache();
        f.insert(b"delta-resident");
        assert!(f.remove(b"delta-resident"));
        assert!(!f.contains(b"delta-resident"));

        f.insert(b"frozen-resident");
        assert!(f.force_rebuild());
        assert!(f.contains(b"frozen-resident"));
        assert!(f.remove(b"frozen-resident")); // tombstoned
        assert!(!f.contains(b"frozen-resident"));
        assert!(!f.remove(b"never-inserted"));
        // The tombstone is baked out by the next rebuild.
        f.insert(b"other");
        assert!(f.force_rebuild());
        assert!(!f.contains(b"frozen-resident"));
        assert_eq!(f.stats().tombstones, 0);
    }

    #[test]
    fn reinsert_after_remove_revives() {
        let f = gen_cache();
        f.insert(b"k");
        f.force_rebuild();
        f.remove(b"k");
        f.insert(b"k"); // clears the tombstone; frozen copy is exact
        assert!(f.contains(b"k"));
        assert_eq!(f.stats().delta_len, 0, "frozen-exact insert must dedup");
    }

    #[test]
    fn snapshot_round_trip_is_byte_identical() {
        let f = gen_cache();
        for i in 0..2_000u64 {
            f.insert(&key(i));
        }
        f.force_rebuild();
        for i in 2_000..2_100u64 {
            f.insert(&key(i)); // leave a live delta too
        }
        f.remove(&key(7));
        let snap = f.snapshot();

        let g = gen_cache();
        g.load_snapshot(&snap).unwrap();
        assert_eq!(g.snapshot(), snap, "load→re-snapshot must be identity");
        assert_eq!(g.generation(), f.generation());
        assert_eq!(g.len(), f.len());
        for i in 0..2_100u64 {
            assert_eq!(g.contains(&key(i)), i != 7, "key {i}");
        }
        assert_eq!(g.stats().snapshot_loads, 1);
    }

    #[test]
    fn corrupt_snapshots_are_counted_not_fatal() {
        let f = gen_cache();
        for i in 0..500u64 {
            f.insert(&key(i));
        }
        f.force_rebuild();
        let snap = f.snapshot();

        let g = gen_cache();
        assert!(g.load_snapshot(&snap[..snap.len() / 2]).is_err());
        let mut flipped = snap.clone();
        flipped[snap.len() / 3] ^= 0x10;
        assert!(g.load_snapshot(&flipped).is_err());
        assert!(g.load_snapshot(b"not a snapshot at all").is_err());
        assert_eq!(g.stats().snapshot_rejects, 3);
        assert_eq!(g.generation(), 0, "rejects must leave the cache cold");
        // The cache still works cold.
        g.insert(b"fresh");
        assert!(g.contains(b"fresh"));
        // And a good snapshot still loads afterwards.
        g.load_snapshot(&snap).unwrap();
        assert!(g.contains(&key(123)));
    }

    #[test]
    fn stale_snapshot_rejected() {
        let f = gen_cache();
        f.insert(b"a");
        f.force_rebuild();
        let old = f.snapshot(); // generation 1
        f.insert(b"b");
        f.force_rebuild(); // generation 2
        assert!(matches!(
            f.load_snapshot(&old),
            Err(SnapshotError::Stale {
                snapshot: 1,
                current: 2
            })
        ));
        assert!(f.contains(b"b"), "reject must not roll the filter back");
    }

    #[test]
    fn cuckoo_only_mode_matches_legacy_semantics() {
        let cfg = SfcConfig {
            generational: false,
            ..SfcConfig::default()
        };
        let f = FilterCache::new(1 << 16, cfg, 42);
        f.insert(b"abc");
        assert!(f.contains(b"abc"));
        assert!(!f.contains(b"abd"));
        assert!(f.remove(b"abc"));
        assert!(!f.contains(b"abc"));
        assert!(!f.rebuild_due());
        assert!(!f.maintain());
        assert!(!f.force_rebuild());
        let s = f.stats();
        assert_eq!(s.generation, 0);
        assert_eq!(s.lookups, 3);
        f.record_false_positive();
        assert_eq!(f.stats().false_positives, 1);
        // Snapshots are a generational feature.
        let g = gen_cache();
        g.insert(b"x");
        assert!(f.load_snapshot(&g.snapshot()).is_err());
        assert_eq!(f.stats().snapshot_rejects, 1);
    }

    #[test]
    fn deepest_hit_prefers_longest_prefix() {
        let f = gen_cache();
        f.insert(b"ab");
        f.insert(b"abcd");
        f.force_rebuild();
        assert_eq!(f.deepest_hit(b"abcdef", 6), 4);
        assert_eq!(f.deepest_hit(b"abx", 3), 2);
        assert_eq!(f.deepest_hit(b"zz", 2), 0);
    }

    proptest! {
        /// Model check: an interleaving of inserts/removes/rebuilds vs a
        /// BTreeSet model never shows a false negative, and removes are
        /// always honoured (no false positives for removed keys).
        #[test]
        fn matches_set_model_with_rebuilds(ops in proptest::collection::vec((any::<u8>(), 0u64..300), 1..400)) {
            let f = gen_cache();
            let mut model = std::collections::BTreeSet::new();
            for (kind, i) in ops {
                match kind % 4 {
                    0 | 1 => {
                        f.insert(&key(i));
                        model.insert(i);
                    }
                    2 => {
                        let expect = model.remove(&i);
                        prop_assert_eq!(f.remove(&key(i)), expect);
                    }
                    _ => {
                        f.force_rebuild();
                    }
                }
            }
            // The cache is exact about cardinality (frozen log −
            // tombstones + delta log) and must never show a false
            // negative; false positives for absent keys are allowed by
            // design, so they are not asserted on.
            prop_assert_eq!(f.len(), model.len());
            for &i in &model {
                prop_assert!(f.contains(&key(i)), "false negative for {}", i);
            }
        }
    }
}
