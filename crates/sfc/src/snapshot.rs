//! CRC-framed SFC snapshots for warm-starting a compute node.
//!
//! A restarting or newly joined CN would otherwise rebuild its filter
//! through Θ(L) remote hash-entry reads per key — the cold-miss ramp the
//! paper's design exists to avoid. A snapshot captures the full
//! generational state (frozen fuse + hash log + delta log + tombstones)
//! so the new CN starts probing at steady-state accuracy immediately.
//!
//! Framing follows the cache-file pattern surveyed in SNIPPETS.md
//! (hdt's `CACHE_GUIDE.md`): a fixed magic, an explicit format version,
//! a length-checked payload, and a trailing CRC32 over everything that
//! precedes it:
//!
//! ```text
//! [ magic "SPHXSFC\x01" : 8 B ][ version : u32 LE ]
//! [ generation : u64 ]
//! [ fuse: seed u64, segment_length u32, segment_count_length u32,
//!         len u32, fp_len u64, fingerprint bytes ]
//! [ frozen hash log : count u64, sorted u64s ]
//! [ delta log       : count u64, sorted u64s ]
//! [ tombstones      : count u64, sorted u64s ]
//! [ crc32 (IEEE, over all preceding bytes) : u32 ]
//! ```
//!
//! Every decode failure is a typed [`SnapshotError`] — loaders count a
//! `sfc.gen.snapshot_rejects` telemetry event and fall back to cold
//! start; corruption is **never** a panic. All integers little-endian.

use std::collections::BTreeSet;

use crate::fuse::BinaryFuse8;

/// Leading magic — last byte doubles as a framing-format revision.
pub const MAGIC: [u8; 8] = *b"SPHXSFC\x01";
/// Payload-format version; bumped on any layout change.
pub const VERSION: u32 = 1;

/// Why a snapshot was rejected. Every variant maps to a cold start plus
/// one `sfc.gen.snapshot_rejects` telemetry count at the loader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Shorter than the fixed framing (magic + version + CRC).
    Truncated,
    /// Leading bytes are not [`MAGIC`] — not an SFC snapshot at all.
    BadMagic,
    /// Framing understood but the payload layout is from another era.
    BadVersion {
        /// Version found in the frame.
        found: u32,
    },
    /// Checksum mismatch — bit rot or a torn write.
    BadCrc {
        /// CRC stored in the frame.
        stored: u32,
        /// CRC recomputed over the payload.
        computed: u32,
    },
    /// CRC-valid but semantically inconsistent payload.
    Malformed(&'static str),
    /// The snapshot's generation is older than the target filter's —
    /// loading it would roll the filter back in time.
    Stale {
        /// Generation recorded in the snapshot.
        snapshot: u64,
        /// Generation already live in the target filter.
        current: u64,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "snapshot magic mismatch"),
            SnapshotError::BadVersion { found } => {
                write!(f, "snapshot version {found} unsupported (want {VERSION})")
            }
            SnapshotError::BadCrc { stored, computed } => {
                write!(
                    f,
                    "snapshot crc mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
            SnapshotError::Malformed(why) => write!(f, "snapshot malformed: {why}"),
            SnapshotError::Stale { snapshot, current } => {
                write!(f, "snapshot stale: generation {snapshot} < live {current}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE 802.3, reflected, poly `0xEDB88320`) — the same
/// polynomial zlib/PNG use, computed table-per-byte.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// A decoded snapshot, ready to install into a `FilterCache`.
pub(crate) struct Decoded {
    pub generation: u64,
    pub fuse: BinaryFuse8,
    pub hashes: Vec<u64>,
    pub delta_log: BTreeSet<u64>,
    pub tombstones: BTreeSet<u64>,
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_set(out: &mut Vec<u8>, set: &BTreeSet<u64>) {
    put_u64(out, set.len() as u64);
    for &h in set {
        put_u64(out, h);
    }
}

pub(crate) fn encode(
    generation: u64,
    fuse: &BinaryFuse8,
    hashes: &[u64],
    delta_log: &BTreeSet<u64>,
    tombstones: &BTreeSet<u64>,
) -> Vec<u8> {
    let (seed, segment_length, segment_count_length, len, fp) = fuse.parts();
    let mut out = Vec::with_capacity(64 + fp.len() + 8 * hashes.len());
    out.extend_from_slice(&MAGIC);
    put_u32(&mut out, VERSION);
    put_u64(&mut out, generation);
    put_u64(&mut out, seed);
    put_u32(&mut out, segment_length);
    put_u32(&mut out, segment_count_length);
    put_u32(&mut out, len);
    put_u64(&mut out, fp.len() as u64);
    out.extend_from_slice(fp);
    put_u64(&mut out, hashes.len() as u64);
    for &h in hashes {
        put_u64(&mut out, h);
    }
    put_set(&mut out, delta_log);
    put_set(&mut out, tombstones);
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    out
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.bytes.len() - self.pos < n {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A `count`-prefixed u64 list, bounded by the bytes actually
    /// remaining so a corrupt count can never drive a huge allocation.
    fn u64_list(&mut self) -> Result<Vec<u64>, SnapshotError> {
        let count = self.u64()?;
        if count > ((self.bytes.len() - self.pos) / 8) as u64 {
            return Err(SnapshotError::Truncated);
        }
        (0..count).map(|_| self.u64()).collect()
    }
}

pub(crate) fn decode(bytes: &[u8]) -> Result<Decoded, SnapshotError> {
    // Fixed framing first: magic, version, then CRC over the whole body.
    if bytes.len() < MAGIC.len() + 4 + 4 {
        return Err(SnapshotError::Truncated);
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let body = &bytes[..bytes.len() - 4];
    let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
    let computed = crc32(body);
    if stored != computed {
        return Err(SnapshotError::BadCrc { stored, computed });
    }
    let mut r = Reader {
        bytes: body,
        pos: MAGIC.len(),
    };
    let version = r.u32()?;
    if version != VERSION {
        return Err(SnapshotError::BadVersion { found: version });
    }
    let generation = r.u64()?;
    let seed = r.u64()?;
    let segment_length = r.u32()?;
    let segment_count_length = r.u32()?;
    let len = r.u32()?;
    let fp_len = r.u64()?;
    if fp_len > (body.len() - r.pos) as u64 {
        return Err(SnapshotError::Truncated);
    }
    let fp: Box<[u8]> = r.take(fp_len as usize)?.to_vec().into();
    let fuse = BinaryFuse8::from_parts(seed, segment_length, segment_count_length, len, fp)
        .map_err(SnapshotError::Malformed)?;
    let hashes = r.u64_list()?;
    if !hashes.windows(2).all(|w| w[0] < w[1]) {
        return Err(SnapshotError::Malformed("frozen hash log not sorted"));
    }
    let delta_log: Vec<u64> = r.u64_list()?;
    let tombstones: Vec<u64> = r.u64_list()?;
    if r.pos != body.len() {
        return Err(SnapshotError::Malformed("trailing bytes after payload"));
    }
    // Semantic cross-check: the fuse must cover every logged hash, or
    // warm-started probes would show false negatives the design forbids.
    if fuse.len() != hashes.len() {
        return Err(SnapshotError::Malformed(
            "fuse/hash-log cardinality mismatch",
        ));
    }
    if hashes.iter().any(|&h| !fuse.contains_hash(h)) {
        return Err(SnapshotError::Malformed("fuse does not cover hash log"));
    }
    Ok(Decoded {
        generation,
        fuse,
        hashes,
        delta_log: delta_log.into_iter().collect(),
        tombstones: tombstones.into_iter().collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn sample() -> Vec<u8> {
        let hashes: Vec<u64> = (0..100u64).map(|i| cuckoo::mix64(i + 1)).collect();
        let mut sorted = hashes.clone();
        sorted.sort_unstable();
        let (fuse, _) = BinaryFuse8::build(&sorted, 42, 64).unwrap();
        let delta: BTreeSet<u64> = [1u64, 2, 3].into_iter().collect();
        let tombs: BTreeSet<u64> = [9u64].into_iter().collect();
        encode(7, &fuse, &sorted, &delta, &tombs)
    }

    #[test]
    fn round_trip() {
        let bytes = sample();
        let d = decode(&bytes).unwrap();
        assert_eq!(d.generation, 7);
        assert_eq!(d.hashes.len(), 100);
        assert_eq!(d.delta_log.len(), 3);
        assert_eq!(d.tombstones.len(), 1);
        // Re-encoding the decoded state is byte-identical.
        let again = encode(
            d.generation,
            &d.fuse,
            &d.hashes,
            &d.delta_log,
            &d.tombstones,
        );
        assert_eq!(bytes, again);
    }

    #[test]
    fn rejects_corruption_without_panicking() {
        let bytes = sample();
        // Truncations at every prefix length decode to an error, not a
        // panic — including mid-framing cuts.
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} accepted");
        }
        // Any single bit flip is caught (by magic, CRC, or both).
        for byte in [0, 9, 20, bytes.len() / 2, bytes.len() - 1] {
            let mut b = bytes.clone();
            b[byte] ^= 0x40;
            assert!(decode(&b).is_err(), "bit flip at {byte} accepted");
        }
        // Wrong version (with a recomputed, valid CRC) is still refused.
        let mut b = sample();
        let n = b.len();
        b[8..12].copy_from_slice(&99u32.to_le_bytes());
        let crc = crc32(&b[..n - 4]);
        b[n - 4..].copy_from_slice(&crc.to_le_bytes());
        match decode(&b) {
            Err(SnapshotError::BadVersion { found: 99 }) => {}
            other => panic!(
                "wrong-version snapshot not rejected as BadVersion: {:?}",
                other.err()
            ),
        }
    }

    #[test]
    fn rejects_huge_forged_counts() {
        // A forged count larger than the remaining bytes must fail fast
        // instead of attempting a multi-gigabyte allocation.
        let bytes = sample();
        // magic 8 + version 4 + generation 8 + seed 8 + three u32s.
        let d_start = 8 + 4 + 8 + 8 + 4 + 4 + 4; // offset of fp_len
        let mut b = bytes.clone();
        b[d_start..d_start + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let n = b.len();
        let crc = crc32(&b[..n - 4]);
        b[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(decode(&b), Err(SnapshotError::Truncated)));
    }
}
