//! BinaryFuse8-style static filter — the frozen generation substrate.
//!
//! A binary fuse filter (Graf & Lemire, "Binary Fuse Filters: Fast and
//! Smaller Than Xor Filters") is an immutable approximate-membership
//! structure: construction peels a random 3-uniform hypergraph over
//! three consecutive segments of a fingerprint array, and a query XORs
//! the three 8-bit fingerprints addressed by a key's hash. The result is
//! ≈9 bits per entry (8-bit fingerprints × ~1.125 array slack) with a
//! ~0.4 % false-positive rate, **zero false negatives**, and exactly
//! three independent array probes per query — the "3 parallel probes"
//! the SFC design counts on.
//!
//! Construction can fail for an unlucky seed (the peeling can stall on a
//! hyperedge cycle); [`BinaryFuse8::build`] retries with rotated seeds
//! and reports how many attempts were needed so telemetry can expose
//! `sfc.gen.fuse_build_retries`. All arithmetic is deterministic: the
//! same key set and base seed always produce byte-identical filters,
//! which is what makes snapshot round-trips byte-comparable in CI.

use cuckoo::mix64;

/// Upper bound on the per-segment length (2^18, as in the reference
/// implementation) so segments stay cache-resident during construction.
const MAX_SEGMENT_LENGTH: u32 = 1 << 18;

/// Hash a pre-hashed 64-bit key into the filter's hash domain for a
/// given seed. Keys are decorrelated from the seed by addition before
/// the murmur finalizer, as in the reference implementation.
#[inline]
fn mix_key(key: u64, seed: u64) -> u64 {
    mix64(key.wrapping_add(seed))
}

/// 8-bit fingerprint of a (already seed-mixed) hash.
#[inline]
fn fingerprint(hash: u64) -> u8 {
    (hash ^ (hash >> 32)) as u8
}

/// Construction failed for every attempted seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuseBuildError {
    /// Seeds tried before giving up.
    pub attempts: u32,
}

impl std::fmt::Display for FuseBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "binary fuse construction failed after {} attempts",
            self.attempts
        )
    }
}

impl std::error::Error for FuseBuildError {}

/// An immutable binary fuse filter over pre-hashed `u64` keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryFuse8 {
    seed: u64,
    segment_length: u32,
    segment_length_mask: u32,
    segment_count_length: u32,
    len: u32,
    fingerprints: Box<[u8]>,
}

impl BinaryFuse8 {
    /// The reference slack factor for `size` keys:
    /// `max(1.125, 0.875 + 0.25·ln(10^6)/ln size)` — generous for small
    /// sets, asymptoting to 1.125.
    fn standard_factor(size: u32) -> f64 {
        if size <= 1 {
            0.0
        } else {
            (0.875 + 0.25 * 1_000_000f64.ln() / (size as f64).ln()).max(1.125)
        }
    }

    /// Array geometry for `size` keys at a given slack `factor`:
    /// `(segment_length, array_length, segment_count_length)`.
    ///
    /// Follows the reference sizing: segment length grows as
    /// `size^(1/ln 3.33)` (capped at [`MAX_SEGMENT_LENGTH`]), halved
    /// until the array holds at least six segments so small sets don't
    /// pay a whole-segment rounding tax. The slack/segment pairing sits
    /// essentially at the peeling threshold: ≈9.3 bits/entry at 10^5
    /// keys, ≈10.2 at 10^4, more below (small sets need
    /// proportionally more slack for the peeling to succeed).
    fn geometry(size: u32, factor: f64) -> (u32, u32, u32) {
        let capacity = if size <= 1 {
            0
        } else {
            (size as f64 * factor).round() as u32
        };
        let mut segment_length = if size == 0 {
            4
        } else {
            let exp = ((size as f64).ln() / 3.33f64.ln() + 2.25).floor();
            (1u32 << (exp as u32)).min(MAX_SEGMENT_LENGTH)
        };
        while segment_length > 4 && segment_length as u64 * 6 > capacity.max(12) as u64 {
            segment_length >>= 1;
        }
        // Signed arithmetic: for tiny inputs the intermediate segment
        // count would underflow an unsigned subtraction.
        let init_segments =
            ((capacity as i64 + segment_length as i64 - 1) / segment_length as i64 - 2).max(0);
        let array_length = ((init_segments + 2) * segment_length as i64) as u32;
        let mut segment_count = array_length.div_ceil(segment_length);
        segment_count = if segment_count <= 2 {
            1
        } else {
            segment_count - 2
        };
        let array_length = (segment_count + 2) * segment_length;
        (segment_length, array_length, segment_count * segment_length)
    }

    /// The three array positions probed for a seed-mixed hash: a start
    /// slot in `[0, segment_count_length)` plus one slot in each of the
    /// two following segments, jittered by independent hash bits.
    #[inline]
    fn positions(&self, hash: u64) -> [u32; 3] {
        let h0 = (((hash as u128) * (self.segment_count_length as u128)) >> 64) as u32;
        let mut h1 = h0 + self.segment_length;
        let mut h2 = h1 + self.segment_length;
        h1 ^= ((hash >> 18) as u32) & self.segment_length_mask;
        h2 ^= (hash as u32) & self.segment_length_mask;
        [h0, h1, h2]
    }

    /// One construction attempt with a fixed seed. Returns `None` when
    /// the peeling stalls (unlucky seed **or** duplicate keys — callers
    /// wanting duplicate tolerance must dedup first, as
    /// [`BinaryFuse8::build`] does).
    pub fn try_build_once(keys: &[u64], seed: u64) -> Option<BinaryFuse8> {
        Self::try_build_with(keys, seed, Self::standard_factor(keys.len() as u32))
    }

    /// One construction attempt at an explicit slack factor.
    fn try_build_with(keys: &[u64], seed: u64, factor: f64) -> Option<BinaryFuse8> {
        let size = keys.len();
        let (segment_length, array_length, segment_count_length) =
            Self::geometry(size as u32, factor);
        let mut filter = BinaryFuse8 {
            seed,
            segment_length,
            segment_length_mask: segment_length - 1,
            segment_count_length,
            len: size as u32,
            fingerprints: Box::default(),
        };
        let alen = array_length as usize;

        // t2count packs `occupancy << 2 | xor-of-slot-indices` per array
        // position; t2hash XORs the hashes mapped there. Peeling pops
        // positions with occupancy 1 — the surviving xor fields then name
        // exactly the remaining key and which of its three slots we hold.
        let mut t2count = vec![0u32; alen];
        let mut t2hash = vec![0u64; alen];
        for &k in keys {
            let h = mix_key(k, seed);
            for (slot, &p) in filter.positions(h).iter().enumerate() {
                t2count[p as usize] += 4;
                t2count[p as usize] ^= slot as u32;
                t2hash[p as usize] ^= h;
            }
        }

        let mut alone: Vec<u32> = (0..alen as u32)
            .filter(|&i| t2count[i as usize] >> 2 == 1)
            .collect();
        let mut peel_order: Vec<(u64, u32)> = Vec::with_capacity(size);
        while let Some(i) = alone.pop() {
            let i = i as usize;
            if t2count[i] >> 2 != 1 {
                continue;
            }
            let h = t2hash[i];
            let found = t2count[i] & 3;
            peel_order.push((h, found));
            for (slot, &p) in filter.positions(h).iter().enumerate() {
                let p = p as usize;
                t2count[p] -= 4;
                t2count[p] ^= slot as u32;
                t2hash[p] ^= h;
                if t2count[p] >> 2 == 1 {
                    alone.push(p as u32);
                }
            }
        }
        if peel_order.len() < size {
            return None; // hyperedge cycle: retry with another seed
        }

        // Assign fingerprints in reverse peel order: each key's "found"
        // slot is still free when we reach it, so we can force the
        // three-way XOR to equal the key's fingerprint.
        let mut fp = vec![0u8; alen];
        for &(h, found) in peel_order.iter().rev() {
            let pos = filter.positions(h);
            let other = fp[pos[(found as usize + 1) % 3] as usize]
                ^ fp[pos[(found as usize + 2) % 3] as usize];
            fp[pos[found as usize] as usize] = fingerprint(h) ^ other;
        }
        filter.fingerprints = fp.into_boxed_slice();
        Some(filter)
    }

    /// Builds a filter over `keys` (deduplicated internally), retrying
    /// with rotated seeds up to `max_attempts` times. Returns the filter
    /// and the number of attempts used (1 = first seed worked).
    pub fn build(
        keys: &[u64],
        base_seed: u64,
        max_attempts: u32,
    ) -> Result<(BinaryFuse8, u32), FuseBuildError> {
        let mut deduped = keys.to_vec();
        deduped.sort_unstable();
        deduped.dedup();
        let max_attempts = max_attempts.max(1);
        let standard = Self::standard_factor(deduped.len() as u32);
        // Space/reliability ladder: a few seeds each at tight slacks
        // (≈9–9.5 bits/entry), then the reference slack for the rest of
        // the budget. Deterministic: fixed rungs, fixed seed rotation.
        // The reference slack always keeps at least half the budget.
        // The reference slack sits essentially at the peeling threshold:
        // tighter factors fail almost surely (measured, not just theory),
        // so every attempt uses the standard factor with a rotated seed.
        for attempt in 0..max_attempts {
            let seed = mix64(base_seed ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            if let Some(f) = Self::try_build_with(&deduped, seed, standard) {
                return Ok((f, attempt + 1));
            }
        }
        Err(FuseBuildError {
            attempts: max_attempts,
        })
    }

    /// Approximate membership of a pre-hashed key: three array probes
    /// XORed against the key's fingerprint. Never a false negative for a
    /// key the filter was built over.
    #[inline]
    pub fn contains_hash(&self, key: u64) -> bool {
        if self.len == 0 {
            return false;
        }
        let h = mix_key(key, self.seed);
        let pos = self.positions(h);
        let x = self.fingerprints[pos[0] as usize]
            ^ self.fingerprints[pos[1] as usize]
            ^ self.fingerprints[pos[2] as usize];
        x == fingerprint(h)
    }

    /// Number of keys the filter was built over (after dedup).
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when built over an empty key set.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes of the fingerprint array — the resident probe structure.
    pub fn memory_bytes(&self) -> usize {
        self.fingerprints.len()
    }

    /// Fingerprint-array bits per stored key (the ≤10 bits/entry
    /// acceptance metric). `0.0` for an empty filter.
    pub fn bits_per_entry(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.fingerprints.len() as f64 * 8.0 / self.len as f64
        }
    }

    /// Serialization accessors (see `snapshot` for the framing).
    pub(crate) fn parts(&self) -> (u64, u32, u32, u32, &[u8]) {
        (
            self.seed,
            self.segment_length,
            self.segment_count_length,
            self.len,
            &self.fingerprints,
        )
    }

    /// Reassembles a filter from serialized parts, validating the
    /// geometry so a corrupted-but-CRC-valid payload can never cause an
    /// out-of-bounds probe.
    pub(crate) fn from_parts(
        seed: u64,
        segment_length: u32,
        segment_count_length: u32,
        len: u32,
        fingerprints: Box<[u8]>,
    ) -> Result<BinaryFuse8, &'static str> {
        if !segment_length.is_power_of_two() || segment_length > MAX_SEGMENT_LENGTH {
            return Err("fuse segment length not a valid power of two");
        }
        if segment_count_length == 0 || !segment_count_length.is_multiple_of(segment_length) {
            return Err("fuse segment count length not a segment multiple");
        }
        // Probes address [0, segment_count_length) + two more segments.
        let expect = segment_count_length as u64 + 2 * segment_length as u64;
        if fingerprints.len() as u64 != expect {
            return Err("fuse fingerprint array length mismatch");
        }
        Ok(BinaryFuse8 {
            seed,
            segment_length,
            segment_length_mask: segment_length - 1,
            segment_count_length,
            len,
            fingerprints,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u64) -> Vec<u64> {
        (0..n).map(|i| mix64(i + 1)).collect()
    }

    #[test]
    fn zero_false_negatives_across_sizes() {
        for n in [0u64, 1, 2, 3, 10, 100, 1_000, 10_000] {
            let ks = keys(n);
            let (f, attempts) = BinaryFuse8::build(&ks, 0xABCD, 64).unwrap();
            assert!(attempts >= 1);
            for k in &ks {
                assert!(f.contains_hash(*k), "false negative at n={n}");
            }
        }
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let (f, _) = BinaryFuse8::build(&[], 7, 64).unwrap();
        assert!(f.is_empty());
        for k in keys(100) {
            assert!(!f.contains_hash(k));
        }
    }

    #[test]
    fn false_positive_rate_is_sub_percent() {
        let ks = keys(50_000);
        let (f, _) = BinaryFuse8::build(&ks, 0x5EED, 64).unwrap();
        let probes = 100_000u64;
        let fps = (0..probes)
            .map(|i| mix64(0xDEAD_0000_0000 + i))
            .filter(|k| f.contains_hash(*k))
            .count();
        // 8-bit fingerprints give ~0.39 % expected; allow generous slack.
        assert!(fps as f64 / probes as f64 <= 0.02, "fp rate {fps}/{probes}");
    }

    #[test]
    fn bits_per_entry_within_budget() {
        // The slack factor asymptotes to 1.125 with scale: the ≤10
        // bits/entry acceptance bound holds at measurement sizes (≥50k
        // entries); smaller sets pay proportionally more slack because
        // the peeling threshold demands it (the reference sizing has
        // the same profile: ~10.2 bits at 10^4, ~12.3 at 500).
        for n in [50_000u64, 100_000, 250_000] {
            let (f, _) = BinaryFuse8::build(&keys(n), 1, 64).unwrap();
            let bpe = f.bits_per_entry();
            assert!(bpe <= 10.0, "{bpe} bits/entry at n={n}");
        }
        // Small sets stay bounded even so.
        for n in [500u64, 10_000] {
            let (f, _) = BinaryFuse8::build(&keys(n), 1, 64).unwrap();
            assert!(f.bits_per_entry() <= 13.0);
        }
    }

    #[test]
    fn duplicate_keys_are_deduplicated_by_build() {
        let mut ks = keys(500);
        ks.extend(keys(500)); // every key twice
        let (f, _) = BinaryFuse8::build(&ks, 3, 64).unwrap();
        assert_eq!(f.len(), 500);
        for k in keys(500) {
            assert!(f.contains_hash(k));
        }
    }

    #[test]
    fn duplicate_keys_stall_a_single_attempt() {
        // try_build_once does not dedup: a duplicated key XOR-cancels in
        // every slot it touches, so the peeling can never complete. This
        // exercises the failure path deterministically.
        let mut ks = keys(64);
        ks.push(ks[0]);
        assert!(BinaryFuse8::try_build_once(&ks, 0x1234).is_none());
    }

    #[test]
    fn build_gives_up_after_max_attempts() {
        // Feed build() a key set where every attempt must fail: build()
        // dedups, so craft failure via a 64-bit hash *collision pair* —
        // impossible with distinct u64 keys. Instead go through the
        // non-dedup path contract: try_build_once fails for dup input,
        // and build() on non-dedupable pathological input can't exist.
        // What we can assert deterministically: max_attempts is honoured
        // as a lower bound of 1 and the error reports the attempt count.
        let mut ks = keys(64);
        ks.push(ks[0]);
        // Bypass dedup by calling the single-attempt path in a loop the
        // way build() would, confirming every seed fails.
        for attempt in 0..8u32 {
            let seed = mix64(9u64 ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            assert!(BinaryFuse8::try_build_once(&ks, seed).is_none());
        }
    }

    #[test]
    fn construction_is_deterministic() {
        let ks = keys(5_000);
        let (a, _) = BinaryFuse8::build(&ks, 0xFEED, 64).unwrap();
        let (b, _) = BinaryFuse8::build(&ks, 0xFEED, 64).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn from_parts_rejects_bad_geometry() {
        let (f, _) = BinaryFuse8::build(&keys(100), 2, 64).unwrap();
        let (seed, sl, scl, len, fp) = f.parts();
        assert!(BinaryFuse8::from_parts(seed, sl, scl, len, fp.to_vec().into()).is_ok());
        assert!(BinaryFuse8::from_parts(seed, sl + 1, scl, len, fp.to_vec().into()).is_err());
        assert!(BinaryFuse8::from_parts(seed, sl, scl + 1, len, fp.to_vec().into()).is_err());
        let short = fp[..fp.len() - 1].to_vec().into();
        assert!(BinaryFuse8::from_parts(seed, sl, scl, len, short).is_err());
    }
}
