//! # node-engine — validated remote node I/O
//!
//! The layer between the index structures and the [`Transport`]: every
//! protocol building block that reads or publishes `art-core::layout`
//! nodes over the network lives here, generic over any [`Transport`]
//! implementation.
//!
//! ```text
//!   sphinx / baselines / bptree / race-hash     (index logic)
//!                  │
//!             node-engine                        (validated reads,
//!                  │                              guarded installs,
//!                  │                              shared RetryPolicy,
//!                  │                              op pipeline driver)
//!              Transport                          (submit/poll/wait
//!                  │                              completion queue;
//!                  │                              execute = submit+wait)
//!               dm-sim                            (verbs, doorbell
//!                                                  batching + cross-op
//!                                                  fusion, counters,
//!                                                  fault hook)
//! ```
//!
//! The [`pipeline`] module adds the other half of the seam: operations
//! restructured as resumable state machines ([`OpState`]) driven by
//! [`run_pipelined`], which keeps N ops in flight per worker over the
//! transport's completion queue.
//!
//! Before this crate existed, `sphinx`, `baselines`, `bptree` and
//! `race-hash` each carried a private copy of this scaffolding (torn-read
//! retry loops, CAS+read doorbell batches, ad-hoc retry constants). The
//! single shared [`RetryPolicy`] and the primitives below replace all of
//! them, so the per-op round-trip/byte accounting of every system flows
//! through the same [`Transport::execute`] choke point.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, Ordering};

use art_core::hash::prefix_hash64;
use art_core::layout::{InnerNode, LayoutError, LeafNode, NodeStatus};
use art_core::NodeKind;
use dm_sim::{DmError, RemotePtr, Transport};

pub use dm_sim::RetryPolicy;

pub mod pipeline;

pub use pipeline::{run_pipelined, OpState, PipelineStats, StepOutcome, TagAgg, DEFAULT_DEPTH};

/// Process-wide switch for leaf checksum validation (default on).
///
/// Exists **only** as a deliberately-broken-protocol mode for the
/// linearizability harness: with validation off,
/// [`read_validated_leaf`] serves torn leaves as-is instead of retrying,
/// and the checker must flag the resulting anomalies. Production code
/// paths never touch this.
static LEAF_VALIDATION: AtomicBool = AtomicBool::new(true);

/// Enables or disables leaf checksum validation process-wide. Returns the
/// previous setting. Tests that disable it must restore it (and must not
/// share a process with tests that assume it is on).
pub fn set_leaf_validation(enabled: bool) -> bool {
    LEAF_VALIDATION.swap(enabled, Ordering::SeqCst)
}

/// Whether leaf checksum validation is currently enabled.
pub fn leaf_validation() -> bool {
    LEAF_VALIDATION.load(Ordering::SeqCst)
}

/// Errors surfaced by the engine primitives. Index crates wrap this into
/// their own error types (`From` impls on their side).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// Substrate (network/memory) error.
    Dm(DmError),
    /// Node bytes failed structural validation.
    Layout(LayoutError),
    /// A bounded retry loop hit its [`RetryPolicy`] limit.
    RetriesExhausted {
        /// Which protocol step gave up.
        op: &'static str,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Dm(e) => write!(f, "substrate error: {e}"),
            EngineError::Layout(e) => write!(f, "layout error: {e}"),
            EngineError::RetriesExhausted { op } => {
                write!(f, "retries exhausted during {op}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<DmError> for EngineError {
    fn from(e: DmError) -> Self {
        EngineError::Dm(e)
    }
}

impl From<LayoutError> for EngineError {
    fn from(e: LayoutError) -> Self {
        EngineError::Layout(e)
    }
}

/// Outcome of a guarded single-word install into an inner node.
///
/// The distinction matters for memory safety: buffers referenced by the
/// installed word may be freed immediately only on [`Install::Raced`] (the
/// CAS never landed). After [`Install::Done`], a region the installed word
/// *replaced* must go through [`retire_leaf`]/[`retire_inner`] — lagging
/// readers can still hold its address until an epoch grace period elapses.
/// After [`Install::Ambiguous`] the word may live on in a type-switched
/// copy of the node, so even retiring must wait for a deferred ownership
/// re-probe (a fresh lookup deciding whether the tree adopted the word).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Install {
    /// The word is installed in a live (Idle) node.
    Done,
    /// The CAS lost: nothing was installed; referenced buffers are safe to
    /// free.
    Raced,
    /// The CAS landed while the node was mid-type-switch: the install may
    /// or may not survive in the replacement. Retry via a fresh lookup and
    /// do not free; re-probe ownership before retiring.
    Ambiguous,
}

/// Reads and decodes an inner node of known kind (one round trip).
///
/// If the node's kind no longer matches (a type switch raced with the read
/// of a stale pointer), the decoded node is still returned: the caller sees
/// its `Invalid`/mismatched header and retries through the hash table.
///
/// # Errors
///
/// [`EngineError::Dm`] on substrate failure, [`EngineError::Layout`] if the
/// bytes do not decode as an inner node at all.
pub fn read_inner_consistent<T: Transport>(
    t: &mut T,
    ptr: RemotePtr,
    kind: NodeKind,
) -> Result<InnerNode, EngineError> {
    let bytes = t.read(ptr, InnerNode::byte_size(kind))?;
    Ok(InnerNode::decode(&bytes)?)
}

/// Counters describing the I/O behaviour of validated leaf reads: how often
/// reads tore under concurrent writers and how often the size hint was too
/// small (each extension costs one extra round trip). Plain `u64`s so a
/// caller can keep one per client and feed both into its telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeafReadStats {
    /// Torn reads detected by checksum/truncation and retried.
    pub checksum_retries: u64,
    /// Re-reads issued because the leaf was larger than the hint.
    pub extended_reads: u64,
}

impl LeafReadStats {
    /// Merges another snapshot into this one.
    pub fn merge(&mut self, other: &LeafReadStats) {
        self.checksum_retries += other.checksum_retries;
        self.extended_reads += other.extended_reads;
    }
}

/// Reads and decodes a leaf, retrying torn reads (checksum mismatches from
/// concurrent in-place updates) and extending the read if the leaf is
/// larger than `hint` bytes. Each torn read bumps
/// [`LeafReadStats::checksum_retries`] and charges one
/// [`Transport::backoff`]; each hint shortfall bumps
/// [`LeafReadStats::extended_reads`]. After [`RetryPolicy::io_retries`]
/// attempts the read gives up.
///
/// # Errors
///
/// [`EngineError::RetriesExhausted`] when a writer livelocks the leaf past
/// the policy bound, [`EngineError::Layout`] for structural (non-checksum)
/// decode failures, [`EngineError::Dm`] on substrate failure.
pub fn read_validated_leaf<T: Transport>(
    t: &mut T,
    ptr: RemotePtr,
    hint: usize,
    policy: &RetryPolicy,
    io: &mut LeafReadStats,
) -> Result<LeafNode, EngineError> {
    let mut read_len = hint.max(64);
    for _ in 0..policy.io_retries {
        let bytes = t.read(ptr, read_len)?;
        // The first word tells us the true size; extend if needed.
        let word0 = u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes"));
        let units = ((word0 >> 8) & 0xFF) as usize;
        let true_len = units.max(1) * 64;
        if true_len > read_len {
            read_len = true_len;
            io.extended_reads += 1;
            continue;
        }
        match LeafNode::decode(&bytes) {
            Ok(leaf) => return Ok(leaf),
            Err(LayoutError::ChecksumMismatch { .. }) => {
                if !leaf_validation() {
                    // Broken-protocol mode for the lincheck harness: serve
                    // the torn leaf instead of recovering.
                    return Ok(LeafNode::decode_unverified(&bytes)?);
                }
                // Torn read under a concurrent writer: retry.
                io.checksum_retries += 1;
                t.backoff(policy);
            }
            Err(LayoutError::TruncatedNode { .. }) => {
                // Torn length fields can claim more payload than the
                // buffer holds; structurally unreadable either way: retry.
                io.checksum_retries += 1;
                t.backoff(policy);
            }
            Err(e) => return Err(e.into()),
        }
    }
    Err(EngineError::RetriesExhausted { op: "leaf read" })
}

/// Allocates and writes a fresh leaf on the MN chosen by consistent
/// hashing of the key; returns its address.
///
/// # Errors
///
/// [`EngineError::Dm`] on allocation or write failure.
pub fn write_new_leaf<T: Transport>(
    t: &mut T,
    key: &[u8],
    value: &[u8],
) -> Result<RemotePtr, EngineError> {
    let leaf = LeafNode::new(key.to_vec(), value.to_vec());
    let bytes = leaf.encode();
    let ptr = t.alloc_placed(prefix_hash64(key), bytes.len())?;
    t.write(ptr, &bytes)?;
    Ok(ptr)
}

/// Allocates and writes a fresh inner node on the MN chosen by consistent
/// hashing of its full prefix; returns its address.
///
/// Hot insert paths batch this write with a companion leaf write via
/// [`Transport::write_many`] instead; kept for cold paths and tests.
///
/// # Errors
///
/// [`EngineError::Dm`] on allocation or write failure.
pub fn write_new_inner<T: Transport>(
    t: &mut T,
    node: &InnerNode,
    prefix: &[u8],
) -> Result<RemotePtr, EngineError> {
    let bytes = node.encode();
    let ptr = t.alloc_placed(prefix_hash64(prefix), bytes.len())?;
    t.write(ptr, &bytes)?;
    Ok(ptr)
}

/// Marks a retired node `Invalid` given its last known header control word
/// (caller holds the node lock, so a plain store is safe).
///
/// # Errors
///
/// [`EngineError::Dm`] on substrate failure.
pub fn invalidate_inner<T: Transport>(
    t: &mut T,
    ptr: RemotePtr,
    node: &InnerNode,
) -> Result<(), EngineError> {
    let word = node.header.control_with_status(NodeStatus::Invalid);
    t.write_u64(ptr, word)?;
    Ok(())
}

/// Hands an unlinked leaf to the epoch reclaimer: the region enters the
/// client's limbo list sized by the leaf's true length and is freed once
/// the grace period elapses. The caller must have won the unlink (the CAS
/// that removed or replaced the leaf's slot, or the tombstone CAS) —
/// never call `Transport::free` directly on a leaf other clients could
/// still reach.
pub fn retire_leaf<T: Transport>(
    t: &mut T,
    reclaim: &mut reclaim::ReclaimHandle,
    ptr: RemotePtr,
    leaf: &LeafNode,
) {
    reclaim.retire(t, ptr, leaf.len_units().max(1) as u64 * 64);
}

/// The retire companion to [`invalidate_inner`]: marks the replaced inner
/// node `Invalid` (so racing installs report [`Install::Ambiguous`]) and
/// hands its region to the epoch reclaimer. The caller holds the node
/// lock, exactly as for [`invalidate_inner`].
///
/// # Errors
///
/// [`EngineError::Dm`] if the invalidating store fails (the region is
/// then *not* retired — readers may still be routed into it).
pub fn retire_inner<T: Transport>(
    t: &mut T,
    reclaim: &mut reclaim::ReclaimHandle,
    ptr: RemotePtr,
    node: &InnerNode,
) -> Result<(), EngineError> {
    invalidate_inner(t, ptr, node)?;
    reclaim.retire(t, ptr, InnerNode::byte_size(node.header.kind) as u64);
    Ok(())
}

/// CASes one word of an inner node and — in the same doorbell batch —
/// re-reads the node's control word to detect a concurrent type switch
/// (the guarded install of §IV; one round trip).
///
/// # Errors
///
/// [`EngineError::Dm`] on substrate failure (including a misaligned word
/// address).
pub fn install_word<T: Transport>(
    t: &mut T,
    node_ptr: RemotePtr,
    offset: u64,
    expected: u64,
    new: u64,
) -> Result<Install, EngineError> {
    let word_ptr = node_ptr.checked_add(offset)?;
    let (prev, control_bytes) = t.cas_and_read(word_ptr, expected, new, node_ptr, 8)?;
    let control = u64::from_le_bytes(control_bytes.as_slice().try_into().expect("8 bytes"));
    if prev != expected {
        return Ok(Install::Raced);
    }
    if control & 0xFF == NodeStatus::Idle as u64 {
        return Ok(Install::Done);
    }
    // The node is Locked (mid type-switch) or Invalid. Our word landed and
    // *may already have been copied into the replacement node*, so it must
    // be treated as live: the caller retries from a fresh lookup (which
    // converges either way) and MUST NOT free anything the word references.
    Ok(Install::Ambiguous)
}

/// Lock-then-publish: CAS the lock word from `unlocked` to `locked`; on a
/// lost CAS returns `Ok(false)` without touching anything else. On success
/// applies `writes` in one doorbell batch — by convention the final write
/// stores a payload whose status byte releases the lock, so the whole
/// update costs two round trips (the §III-C in-place update).
///
/// # Errors
///
/// [`EngineError::Dm`] on substrate failure.
pub fn cas_locked_write<T: Transport>(
    t: &mut T,
    lock_ptr: RemotePtr,
    unlocked: u64,
    locked: u64,
    writes: Vec<(RemotePtr, Vec<u8>)>,
) -> Result<bool, EngineError> {
    if t.cas(lock_ptr, unlocked, locked)? != unlocked {
        return Ok(false);
    }
    t.write_many(writes)?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_sim::{ClusterConfig, DmClient, DmCluster};

    fn client() -> (DmCluster, DmClient) {
        let c = DmCluster::new(ClusterConfig::default());
        let cl = c.client(0);
        (c, cl)
    }

    #[test]
    fn leaf_roundtrip() {
        let (_c, mut cl) = client();
        let policy = RetryPolicy::default();
        let ptr = write_new_leaf(&mut cl, b"key", b"value").unwrap();
        let mut io = LeafReadStats::default();
        let leaf = read_validated_leaf(&mut cl, ptr, 128, &policy, &mut io).unwrap();
        assert_eq!(leaf.key, b"key");
        assert_eq!(leaf.value, b"value");
        assert_eq!(io, LeafReadStats::default());
    }

    #[test]
    fn big_leaf_needs_second_read() {
        let (_c, mut cl) = client();
        let policy = RetryPolicy::default();
        let value = vec![7u8; 500];
        let ptr = write_new_leaf(&mut cl, b"key", &value).unwrap();
        let before = cl.stats().round_trips;
        let mut io = LeafReadStats::default();
        let leaf = read_validated_leaf(&mut cl, ptr, 128, &policy, &mut io).unwrap();
        assert_eq!(leaf.value, value);
        assert_eq!(cl.stats().round_trips - before, 2, "hint read + full read");
        assert_eq!(io.extended_reads, 1);
        assert_eq!(io.checksum_retries, 0);
    }

    #[test]
    fn inner_roundtrip() {
        let (_c, mut cl) = client();
        let node = InnerNode::new(NodeKind::Node16, b"pre");
        let ptr = write_new_inner(&mut cl, &node, b"pre").unwrap();
        let back = read_inner_consistent(&mut cl, ptr, NodeKind::Node16).unwrap();
        assert_eq!(back, node);
    }

    #[test]
    fn invalidate_marks_status() {
        let (_c, mut cl) = client();
        let node = InnerNode::new(NodeKind::Node4, b"x");
        let ptr = write_new_inner(&mut cl, &node, b"x").unwrap();
        invalidate_inner(&mut cl, ptr, &node).unwrap();
        let back = read_inner_consistent(&mut cl, ptr, NodeKind::Node4).unwrap();
        assert_eq!(back.header.status, NodeStatus::Invalid);
    }

    #[test]
    fn install_word_detects_idle_raced_and_locked() {
        use art_core::layout::SLOTS_OFFSET;
        let (_c, mut cl) = client();
        let node = InnerNode::new(NodeKind::Node4, b"p");
        let ptr = write_new_inner(&mut cl, &node, b"p").unwrap();

        // Fresh slot installs cleanly in one round trip.
        let before = cl.stats().round_trips;
        assert_eq!(
            install_word(&mut cl, ptr, SLOTS_OFFSET, 0, 0x1234).unwrap(),
            Install::Done
        );
        assert_eq!(cl.stats().round_trips - before, 1);

        // Losing the CAS reports Raced.
        assert_eq!(
            install_word(&mut cl, ptr, SLOTS_OFFSET, 0, 0x5678).unwrap(),
            Install::Raced
        );

        // A locked node makes a *winning* CAS ambiguous.
        cl.write_u64(ptr, node.header.control_with_status(NodeStatus::Locked))
            .unwrap();
        assert_eq!(
            install_word(&mut cl, ptr, SLOTS_OFFSET, 0x1234, 0x9abc).unwrap(),
            Install::Ambiguous
        );
    }

    #[test]
    fn retire_helpers_feed_the_reclaimer() {
        let (c, mut cl) = client();
        let domain =
            reclaim::ReclaimDomain::create(&mut cl, 0, reclaim::ReclaimConfig::default()).unwrap();
        let mut handle = domain.register(&mut cl).unwrap();
        let policy = RetryPolicy::default();

        let leaf_ptr = write_new_leaf(&mut cl, b"key", b"value").unwrap();
        let mut io = LeafReadStats::default();
        let leaf = read_validated_leaf(&mut cl, leaf_ptr, 128, &policy, &mut io).unwrap();
        retire_leaf(&mut cl, &mut handle, leaf_ptr, &leaf);
        assert_eq!(handle.limbo_len(), 1);
        assert_eq!(handle.stats().retired_bytes, 64);

        let node = InnerNode::new(NodeKind::Node4, b"p");
        let inner_ptr = write_new_inner(&mut cl, &node, b"p").unwrap();
        retire_inner(&mut cl, &mut handle, inner_ptr, &node).unwrap();
        assert_eq!(handle.limbo_len(), 2);
        let back = read_inner_consistent(&mut cl, inner_ptr, NodeKind::Node4).unwrap();
        assert_eq!(back.header.status, NodeStatus::Invalid);

        // Sole registered client: one scan drains both regions.
        let live = c.mn(0).unwrap().alloc_stats().live_bytes
            + c.mn(1).unwrap().alloc_stats().live_bytes
            + c.mn(2).unwrap().alloc_stats().live_bytes;
        handle.scan(&mut cl);
        assert_eq!(handle.limbo_len(), 0);
        let after: u64 = (0..3)
            .map(|i| c.mn(i).unwrap().alloc_stats().live_bytes)
            .sum();
        assert!(after < live, "scan must return bytes to the pools");
        assert_eq!(handle.stats().errors, 0);
    }

    #[test]
    fn cas_locked_write_round_trips_and_loses() {
        let (_c, mut cl) = client();
        let policy = RetryPolicy::default();
        let ptr = write_new_leaf(&mut cl, b"k", b"v1").unwrap();
        let mut io = LeafReadStats::default();
        let leaf = read_validated_leaf(&mut cl, ptr, 64, &policy, &mut io).unwrap();
        let (idle, locked) = leaf.status_cas_words(NodeStatus::Idle, NodeStatus::Locked);

        let mut new_leaf = LeafNode::new(b"k".to_vec(), b"v2".to_vec());
        new_leaf.version = leaf.version.wrapping_add(1);
        new_leaf.set_len_units(leaf.len_units());
        let before = cl.stats().round_trips;
        assert!(
            cas_locked_write(&mut cl, ptr, idle, locked, vec![(ptr, new_leaf.encode())]).unwrap()
        );
        assert_eq!(
            cl.stats().round_trips - before,
            2,
            "lock CAS + publishing write"
        );

        let back = read_validated_leaf(&mut cl, ptr, 64, &policy, &mut io).unwrap();
        assert_eq!(back.value, b"v2");
        assert_eq!(
            back.status,
            NodeStatus::Idle,
            "publishing write released the lock"
        );

        // Stale lock word: the CAS loses and nothing is written.
        assert!(!cas_locked_write(&mut cl, ptr, idle, locked, vec![(ptr, leaf.encode())]).unwrap());
        let back = read_validated_leaf(&mut cl, ptr, 64, &policy, &mut io).unwrap();
        assert_eq!(back.value, b"v2");
    }
}
