//! Op pipelining: resumable operation state machines and the per-worker
//! pipeline driver.
//!
//! A DM index op is a chain of dependent round trips (probe → entry →
//! descend → leaf), so a blocking worker spends almost all its virtual
//! time parked on RTTs. The driver here keeps up to `depth` *independent*
//! operations in flight on one worker: each op is an explicit state
//! machine ([`OpState`]) that, instead of calling
//! [`Transport::execute`], *returns* the [`DoorbellBatch`] it wants
//! posted ([`StepOutcome::Submit`]) and is resumed with the completion.
//! Every scheduling round the driver submits one batch per in-flight op
//! and issues a single [`Transport::flush_submitted`] — same-MN verbs
//! from different ops fuse into one physical doorbell, and all in-flight
//! ops share one RTT per round instead of paying one each.
//!
//! ## Contract for `step`
//!
//! * `step(t, None)` is the initial call; `step(t, Some(results))` resumes
//!   with the completion of the batch the previous call submitted.
//! * `step` may use the transport for CPU-side work (placement, backoff,
//!   allocation) but must **not** call `execute`/`wait` — a blocking call
//!   inside `step` would flush every peer's pending submission early.
//!   (Correctness would survive — completions are reaped by token — but
//!   the fusion and RTT-overlap benefits would silently vanish.)
//! * Cross-op fusion is legal because the driver only fuses batches from
//!   *different* operations: no intra-op ordering edge ever crosses a
//!   flush fence, as each op has at most one batch in flight.

use std::collections::BTreeMap;

use dm_sim::{DoorbellBatch, SqeToken, Transport, VerbResult};

use crate::EngineError;

/// Default per-worker pipeline depth: enough in-flight ops to hide the
/// common three-round-trip chain several times over without blowing up
/// per-worker memory. Harness flags (`SPHINX_PIPELINE_DEPTH`) override it.
pub const DEFAULT_DEPTH: usize = 8;

/// What an [`OpState::step`] call decided.
pub enum StepOutcome<R> {
    /// Post this batch; resume the op when its completion arrives.
    Submit {
        /// The verbs to post (must be non-empty).
        batch: DoorbellBatch,
        /// Caller-defined attribution tag (e.g. an `obs` phase index)
        /// aggregated per tag in [`PipelineStats::by_tag`].
        tag: u32,
    },
    /// The op finished with this result.
    Done(R),
}

/// A resumable index operation: straight-line blocking code restructured
/// into an explicit state machine that yields at every round trip.
pub trait OpState {
    /// The op's result type.
    type Output;

    /// Advances the op: consumes the previous submission's completion
    /// (`None` on the first call) and either submits the next batch or
    /// finishes. See the module docs for the full contract.
    ///
    /// # Errors
    ///
    /// A fatal engine error aborts the whole pipeline run.
    fn step<T: Transport>(
        &mut self,
        t: &mut T,
        completion: Option<Vec<VerbResult>>,
    ) -> Result<StepOutcome<Self::Output>, EngineError>;

    /// Called once when the driver admits the op into a pipeline slot (or
    /// would — ops that finish on their first step are still admitted),
    /// before the first [`step`](OpState::step). `now_ns` is the
    /// transport's virtual clock. Default: no-op; tracing ops record a
    /// pipeline-admission event here.
    fn on_admitted(&mut self, now_ns: u64) {
        let _ = now_ns;
    }

    /// Called after each of this op's batches is placed on the submission
    /// queue, with the issued completion-queue token. Covers both the
    /// first submission and every resubmission (e.g. a retry after a torn
    /// read). Default: no-op; tracing ops record the token to establish
    /// doorbell-fusion membership.
    fn on_submitted(&mut self, token: SqeToken, now_ns: u64) {
        let _ = (token, now_ns);
    }
}

/// Per-tag network aggregates for one pipeline run (tags are the `tag`
/// values ops attach to their submissions — typically `obs` phase
/// indices, so callers can attribute round trips per phase).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TagAgg {
    /// Batches submitted with this tag.
    pub batches: u64,
    /// Logical round trips (distinct MNs per batch).
    pub round_trips: u64,
    /// Verbs submitted.
    pub verbs: u64,
    /// Wire bytes moved.
    pub bytes: u64,
}

/// Number of `≤`-buckets in [`PipelineStats::depth_hist`]
/// (1, 2, 4, 8, 16, >16).
pub const DEPTH_BUCKETS: usize = 6;

/// Counters describing one or more [`run_pipelined`] invocations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Ops driven to completion.
    pub ops: u64,
    /// Flush rounds issued.
    pub flushes: u64,
    /// Batches that shared their flush with at least one other batch
    /// (i.e. went out in a fused doorbell burst).
    pub fused_batches: u64,
    /// Flush rounds issued with fewer in-flight ops than the configured
    /// depth — the input stream ran dry or the pipeline was draining.
    pub stalls: u64,
    /// In-flight ops at each flush, bucketed ≤1, ≤2, ≤4, ≤8, ≤16, >16.
    pub depth_hist: [u64; DEPTH_BUCKETS],
    /// Network work grouped by the submitting op's tag.
    pub by_tag: BTreeMap<u32, TagAgg>,
}

impl PipelineStats {
    fn record_flush(&mut self, in_flight: usize, depth: usize) {
        self.flushes += 1;
        if in_flight > 1 {
            self.fused_batches += in_flight as u64;
        }
        if in_flight < depth {
            self.stalls += 1;
        }
        let bucket = match in_flight {
            0..=1 => 0,
            2 => 1,
            3..=4 => 2,
            5..=8 => 3,
            9..=16 => 4,
            _ => 5,
        };
        self.depth_hist[bucket] += 1;
    }

    fn record_submit(&mut self, tag: u32, batch: &DoorbellBatch) {
        let agg = self.by_tag.entry(tag).or_default();
        agg.batches += 1;
        agg.round_trips += batch.mn_groups() as u64;
        agg.verbs += batch.len() as u64;
        agg.bytes += batch.wire_bytes();
    }

    /// Fused submissions per million completed ops — the integer gauge
    /// form of the fusion rate, for samplers and machine-readable bench
    /// summaries (deterministic, no float rounding).
    pub fn fusion_ppm(&self) -> u64 {
        (self.fused_batches * 1_000_000)
            .checked_div(self.ops)
            .unwrap_or(0)
    }

    /// Merges another run's counters into this accumulator.
    pub fn merge(&mut self, other: &PipelineStats) {
        self.ops += other.ops;
        self.flushes += other.flushes;
        self.fused_batches += other.fused_batches;
        self.stalls += other.stalls;
        for (a, b) in self.depth_hist.iter_mut().zip(&other.depth_hist) {
            *a += b;
        }
        for (tag, agg) in &other.by_tag {
            let mine = self.by_tag.entry(*tag).or_default();
            mine.batches += agg.batches;
            mine.round_trips += agg.round_trips;
            mine.verbs += agg.verbs;
            mine.bytes += agg.bytes;
        }
    }
}

/// One pipeline slot: an admitted op and its outstanding submission.
struct Slot<S> {
    idx: usize,
    op: S,
    token: SqeToken,
}

/// Drives `ops` to completion keeping up to `depth` of them in flight,
/// returning their outputs in input order.
///
/// Each round: every in-flight op has exactly one submitted batch; one
/// [`Transport::flush_submitted`] posts them all (fused on transports
/// that support it); each op is resumed with its completion and either
/// resubmits (joining the next round) or finishes, freeing its slot for
/// the next op off the iterator. `depth` is clamped to at least 1; depth
/// 1 degenerates to the blocking path, one batch per flush.
///
/// # Errors
///
/// The first batch error or fatal `step` error aborts the run (remaining
/// ops are abandoned; their effects so far are retained, as with blocking
/// execution).
pub fn run_pipelined<T, S, I>(
    t: &mut T,
    ops: I,
    depth: usize,
    stats: &mut PipelineStats,
) -> Result<Vec<S::Output>, EngineError>
where
    T: Transport,
    S: OpState,
    I: IntoIterator<Item = S>,
{
    let depth = depth.max(1);
    let mut input = ops.into_iter();
    let mut outputs: Vec<Option<S::Output>> = Vec::new();
    let mut slots: Vec<Slot<S>> = Vec::with_capacity(depth);

    // Admit one op: run its first step; ops that finish without touching
    // the network never occupy a slot.
    let admit = |t: &mut T,
                 slots: &mut Vec<Slot<S>>,
                 outputs: &mut Vec<Option<S::Output>>,
                 stats: &mut PipelineStats,
                 mut op: S|
     -> Result<(), EngineError> {
        let idx = outputs.len();
        outputs.push(None);
        op.on_admitted(t.clock_ns());
        match op.step(t, None)? {
            StepOutcome::Done(out) => {
                outputs[idx] = Some(out);
                stats.ops += 1;
            }
            StepOutcome::Submit { batch, tag } => {
                stats.record_submit(tag, &batch);
                let token = t.submit(batch);
                op.on_submitted(token, t.clock_ns());
                slots.push(Slot { idx, op, token });
            }
        }
        Ok(())
    };

    loop {
        while slots.len() < depth {
            match input.next() {
                Some(op) => admit(t, &mut slots, &mut outputs, stats, op)?,
                None => break,
            }
        }
        if slots.is_empty() {
            break;
        }

        stats.record_flush(slots.len(), depth);
        t.flush_submitted();

        let mut kept: Vec<Slot<S>> = Vec::with_capacity(slots.len());
        for mut slot in slots {
            let results = t
                .poll(slot.token)
                .expect("flushed submission must have a completion")
                .map_err(EngineError::Dm)?;
            match slot.op.step(t, Some(results))? {
                StepOutcome::Done(out) => {
                    outputs[slot.idx] = Some(out);
                    stats.ops += 1;
                }
                StepOutcome::Submit { batch, tag } => {
                    stats.record_submit(tag, &batch);
                    slot.token = t.submit(batch);
                    slot.op.on_submitted(slot.token, t.clock_ns());
                    kept.push(slot);
                }
            }
        }
        slots = kept;
    }

    Ok(outputs
        .into_iter()
        .map(|o| o.expect("every admitted op either finished or aborted the run"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_sim::{ClusterConfig, DmCluster, NetConfig, RemotePtr, Verb};

    /// A toy op: `hops` dependent 8-byte reads of the same word, then
    /// returns the value observed.
    struct ChainRead {
        ptr: RemotePtr,
        hops: usize,
        last: u64,
    }

    impl OpState for ChainRead {
        type Output = u64;

        fn step<T: Transport>(
            &mut self,
            _t: &mut T,
            completion: Option<Vec<VerbResult>>,
        ) -> Result<StepOutcome<u64>, EngineError> {
            if let Some(mut res) = completion {
                let bytes = res.pop().expect("one read").into_read();
                self.last = u64::from_le_bytes(bytes.try_into().expect("8 bytes"));
                self.hops -= 1;
            }
            if self.hops == 0 {
                return Ok(StepOutcome::Done(self.last));
            }
            Ok(StepOutcome::Submit {
                batch: DoorbellBatch::from_iter([Verb::Read {
                    ptr: self.ptr,
                    len: 8,
                }]),
                tag: 0,
            })
        }
    }

    fn cluster() -> DmCluster {
        DmCluster::new(ClusterConfig {
            num_mns: 1,
            num_cns: 1,
            mn_capacity: 1 << 20,
            ..Default::default()
        })
    }

    #[test]
    fn pipelined_results_match_input_order() {
        let c = cluster();
        let mut cl = c.client(0);
        let mut ptrs = Vec::new();
        for i in 0..10u64 {
            let p = cl.alloc(0, 8).unwrap();
            dm_sim::Transport::write_u64(&mut cl, p, 100 + i).unwrap();
            ptrs.push(p);
        }
        let ops = ptrs.iter().map(|&ptr| ChainRead {
            ptr,
            hops: 3,
            last: 0,
        });
        let mut stats = PipelineStats::default();
        let out = run_pipelined(&mut cl, ops, 4, &mut stats).unwrap();
        assert_eq!(out, (100..110).collect::<Vec<u64>>());
        assert_eq!(stats.ops, 10);
        assert!(stats.fused_batches > 0);
        assert_eq!(stats.by_tag[&0].batches, 30, "3 hops x 10 ops");
    }

    #[test]
    fn deeper_pipeline_is_faster_and_rings_fewer_doorbells() {
        let c = cluster();
        let mk_ops = |cl: &mut dm_sim::DmClient| {
            let mut ptrs = Vec::new();
            for i in 0..32u64 {
                let p = cl.alloc(0, 8).unwrap();
                dm_sim::Transport::write_u64(cl, p, i).unwrap();
                ptrs.push(p);
            }
            ptrs
        };
        let mut d1 = c.client(0);
        let ptrs = mk_ops(&mut d1);
        c.reset_network();
        d1.set_clock_ns(0);
        let s0 = d1.stats();
        let mut st1 = PipelineStats::default();
        run_pipelined(
            &mut d1,
            ptrs.iter().map(|&ptr| ChainRead {
                ptr,
                hops: 3,
                last: 0,
            }),
            1,
            &mut st1,
        )
        .unwrap();
        let t1 = d1.clock_ns();
        let db1 = d1.stats().since(&s0).doorbells;

        c.reset_network();
        let mut d8 = c.client(0);
        let s0 = d8.stats();
        let mut st8 = PipelineStats::default();
        run_pipelined(
            &mut d8,
            ptrs.iter().map(|&ptr| ChainRead {
                ptr,
                hops: 3,
                last: 0,
            }),
            8,
            &mut st8,
        )
        .unwrap();
        let t8 = d8.clock_ns();
        let d = d8.stats().since(&s0);

        assert_eq!(
            d.round_trips, db1,
            "logical per-op round trips are depth-independent"
        );
        assert!(
            d.doorbells < db1,
            "depth 8 must fuse: {} physical vs {} at depth 1",
            d.doorbells,
            db1
        );
        assert!(
            t8 * 4 < t1 * 3,
            "depth 8 ({t8} ns) should beat depth 1 ({t1} ns) clearly"
        );
        assert_eq!(st8.depth_hist[3], st8.flushes - st8.stalls);
        assert!(st1.fused_batches == 0, "depth 1 never fuses");
    }

    #[test]
    fn immediate_done_ops_need_no_network() {
        struct Nop;
        impl OpState for Nop {
            type Output = u8;
            fn step<T: Transport>(
                &mut self,
                _t: &mut T,
                _c: Option<Vec<VerbResult>>,
            ) -> Result<StepOutcome<u8>, EngineError> {
                Ok(StepOutcome::Done(7))
            }
        }
        let c = cluster();
        let mut cl = c.client(0);
        let mut stats = PipelineStats::default();
        let out = run_pipelined(&mut cl, (0..5).map(|_| Nop), 8, &mut stats).unwrap();
        assert_eq!(out, vec![7; 5]);
        assert_eq!(cl.stats().round_trips, 0);
        assert_eq!(stats.flushes, 0);
    }

    #[test]
    fn depth_one_matches_blocking_costs_exactly() {
        let c = DmCluster::new(ClusterConfig {
            num_mns: 1,
            num_cns: 1,
            mn_capacity: 1 << 20,
            net: NetConfig::rdma(),
            ..Default::default()
        });
        let mut blocking = c.client(0);
        let p = blocking.alloc(0, 8).unwrap();
        dm_sim::Transport::write_u64(&mut blocking, p, 42).unwrap();
        c.reset_network();
        blocking.set_clock_ns(0);
        let sb = blocking.stats();
        for _ in 0..6 {
            dm_sim::Transport::read(&mut blocking, p, 8).unwrap();
        }
        let blocking_elapsed = blocking.clock_ns();
        let blocking_stats = blocking.stats().since(&sb);

        c.reset_network();
        let mut piped = c.client(0);
        let mut stats = PipelineStats::default();
        let out = run_pipelined(
            &mut piped,
            (0..2).map(|_| ChainRead {
                ptr: p,
                hops: 3,
                last: 0,
            }),
            1,
            &mut stats,
        )
        .unwrap();
        assert_eq!(out, vec![42, 42]);
        assert_eq!(piped.clock_ns(), blocking_elapsed);
        // `piped` is a fresh client, so its whole history is this run.
        assert_eq!(piped.stats(), blocking_stats);
    }
}
