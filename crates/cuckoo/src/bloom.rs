//! A plain Bloom filter — the obvious alternative the paper implicitly
//! rejects for the Succinct Filter Cache.
//!
//! Provided for the design ablation: at equal byte budgets a Bloom filter
//! has a comparable false-positive rate, but it supports **neither
//! deletion nor targeted eviction**. A cache must shed entries under
//! pressure; a Bloom filter can only be cleared wholesale, producing a
//! periodic hit-rate cliff, and it cannot forget prefixes whose nodes are
//! merged away. See `FilterStats`-based comparisons in the crate tests
//! and the `filter` Criterion bench.

use crate::{fnv1a64, mix64};

/// A classic Bloom filter over byte-string items (double hashing,
/// k derived from the bits-per-item budget).
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    mask: u64,
    hashes: u32,
    items: usize,
}

impl BloomFilter {
    /// Creates a filter using `bytes` bytes of bitmap, tuned for roughly
    /// `expected_items` insertions.
    ///
    /// # Panics
    ///
    /// Panics if `bytes < 8` or `expected_items == 0`.
    pub fn with_byte_budget(bytes: usize, expected_items: usize) -> Self {
        assert!(bytes >= 8, "budget too small");
        assert!(expected_items > 0, "expected_items must be positive");
        let words = (bytes / 8).next_power_of_two().max(1);
        let words = if words * 8 > bytes { words / 2 } else { words };
        let words = words.max(1);
        let bit_count = (words * 64) as f64;
        // k = ln2 * bits/items, clamped to something sane.
        let k = ((bit_count / expected_items as f64) * std::f64::consts::LN_2).round();
        BloomFilter {
            bits: vec![0; words],
            mask: (words as u64 * 64) - 1,
            hashes: k.clamp(1.0, 16.0) as u32,
            items: 0,
        }
    }

    /// Memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.bits.len() * 8
    }

    /// Number of inserted items (not distinct-counted).
    pub fn len(&self) -> usize {
        self.items
    }

    /// Whether no items were inserted.
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    fn positions(&self, item: &[u8]) -> impl Iterator<Item = u64> + '_ {
        let h1 = mix64(fnv1a64(item));
        let h2 = mix64(h1 ^ 0x9E37_79B9_7F4A_7C15) | 1;
        (0..self.hashes as u64).map(move |i| h1.wrapping_add(i.wrapping_mul(h2)) & self.mask)
    }

    /// Inserts an item (never fails, never evicts — that is the point of
    /// the comparison).
    pub fn insert(&mut self, item: &[u8]) {
        let positions: Vec<u64> = self.positions(item).collect();
        for pos in positions {
            self.bits[(pos / 64) as usize] |= 1 << (pos % 64);
        }
        self.items += 1;
    }

    /// Membership test (false positives possible, false negatives not).
    pub fn contains(&self, item: &[u8]) -> bool {
        self.positions(item)
            .all(|pos| self.bits[(pos / 64) as usize] & (1 << (pos % 64)) != 0)
    }

    /// The only way a Bloom filter sheds state: drop everything.
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.items = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CuckooFilter;

    #[test]
    fn no_false_negatives() {
        let mut b = BloomFilter::with_byte_budget(4096, 2000);
        for i in 0..2000u32 {
            b.insert(&i.to_le_bytes());
        }
        for i in 0..2000u32 {
            assert!(b.contains(&i.to_le_bytes()));
        }
    }

    #[test]
    fn fp_rate_reasonable_at_budget() {
        let mut b = BloomFilter::with_byte_budget(4096, 2000);
        for i in 0..2000u32 {
            b.insert(&i.to_le_bytes());
        }
        let fps = (1_000_000..1_050_000u32)
            .filter(|i| b.contains(&i.to_le_bytes()))
            .count();
        let rate = fps as f64 / 50_000.0;
        assert!(rate < 0.02, "bloom fp rate {rate}");
    }

    #[test]
    fn clear_is_total() {
        let mut b = BloomFilter::with_byte_budget(1024, 100);
        b.insert(b"x");
        b.clear();
        assert!(!b.contains(b"x"));
        assert!(b.is_empty());
    }

    #[test]
    fn budget_respected() {
        for budget in [64usize, 1000, 8192] {
            let b = BloomFilter::with_byte_budget(budget, 100);
            assert!(b.memory_bytes() <= budget);
        }
    }

    /// The ablation the module exists for: when the tracked set outgrows
    /// the budget, the cuckoo filter keeps serving the *hot* subset
    /// (second-chance eviction), while the Bloom filter degrades into a
    /// false-positive generator with no way to shed cold entries.
    #[test]
    fn cuckoo_beats_bloom_as_a_cache() {
        let budget = 2048; // bytes; far below the 20k-item working set
        let mut cuckoo = CuckooFilter::with_byte_budget(budget);
        let mut bloom = BloomFilter::with_byte_budget(budget, 20_000);

        let hot: Vec<Vec<u8>> = (0..200u32)
            .map(|i| format!("hot{i}").into_bytes())
            .collect();
        for h in &hot {
            cuckoo.insert(h);
            bloom.insert(h);
        }
        // Flood with 20k cold entries, keeping the hot set touched.
        for i in 0..20_000u32 {
            cuckoo.insert(&i.to_le_bytes());
            bloom.insert(&i.to_le_bytes());
            if i % 16 == 0 {
                for h in &hot {
                    cuckoo.contains(h);
                }
            }
        }
        // Hot-set retention.
        let cuckoo_hot = hot.iter().filter(|h| cuckoo.contains_quiet(h)).count();
        assert!(
            cuckoo_hot >= 180,
            "cuckoo retains the hot set: {cuckoo_hot}/200"
        );
        // Accuracy on definite non-members.
        let probes: Vec<Vec<u8>> = (0..5_000u32)
            .map(|i| format!("absent{i}").into_bytes())
            .collect();
        let cuckoo_fp = probes.iter().filter(|p| cuckoo.contains_quiet(p)).count();
        let bloom_fp = probes.iter().filter(|p| bloom.contains(p)).count();
        assert!(
            bloom_fp > 10 * cuckoo_fp.max(1),
            "overfilled bloom should be far less accurate: bloom {bloom_fp} vs cuckoo {cuckoo_fp}"
        );
    }
}
