//! # cuckoo — a cuckoo filter with second-chance eviction
//!
//! The substrate of Sphinx's **Succinct Filter Cache** (§III-B of the
//! paper): a cuckoo filter (Fan et al., CoNEXT'14) storing 12-bit
//! fingerprints in 4-way buckets, extended with one *hotness bit* per entry
//! implementing the second-chance replacement policy the paper describes:
//!
//! * a newly inserted entry starts cold (`hot = 0`);
//! * a membership hit sets the entry hot;
//! * when both candidate buckets are full, a random **cold** entry is
//!   evicted to make room (the filter is a cache — capacity misses lose
//!   information rather than failing);
//! * when every candidate entry is hot, classic cuckoo relocation kicks
//!   entries to their alternate buckets and **resets their hotness**,
//!   making them eligible for future eviction.
//!
//! Because the filter stores fingerprints only, membership answers can be
//! false positives (tunable by capacity; <1 % at the paper's operating
//! point) but never false negatives for resident entries.
//!
//! ## Example
//!
//! ```
//! use cuckoo::CuckooFilter;
//!
//! let mut filter = CuckooFilter::with_capacity(1024);
//! filter.insert(b"lyr");
//! assert!(filter.contains(b"lyr"));
//! assert!(filter.remove(b"lyr"));
//! assert!(!filter.contains(b"lyr"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bloom;

pub use bloom::BloomFilter;

use std::fmt;

const SLOTS_PER_BUCKET: usize = 4;
const FP_BITS: u32 = 12;
const FP_MASK: u16 = (1 << FP_BITS) - 1;
const HOT_BIT: u16 = 1 << 15;
const MAX_KICKS: usize = 500;

/// FNV-1a over a byte string — the canonical key hash shared by the
/// filter layers (the `sfc` crate reuses it so the cuckoo delta and the
/// frozen binary-fuse generation agree on key identity).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// 64-bit finalizer (murmur3-style) used to decorrelate [`fnv1a64`]
/// output before deriving bucket indices and fingerprints.
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^ (x >> 33)
}

/// Counters describing filter churn.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FilterStats {
    /// Entries inserted.
    pub inserts: u64,
    /// Cold entries evicted to make room (information loss).
    pub evictions: u64,
    /// Evictions where the hotness bit spared at least one hot entry —
    /// the second-chance policy actually taking effect.
    pub second_chance: u64,
    /// Cuckoo relocations performed.
    pub relocations: u64,
    /// Membership queries answered.
    pub lookups: u64,
    /// Membership queries that returned `true`.
    pub hits: u64,
    /// Hits later disproven by the index (the fetched hash entry did not
    /// exist) and reported back via
    /// [`CuckooFilter::note_false_positive`]. `false_positives / hits`
    /// is the observed FPR — previously unmeasurable from telemetry.
    pub false_positives: u64,
}

impl FilterStats {
    /// Adds another filter's counters into this one (e.g. summing the
    /// per-CN filters of a multi-CN run).
    pub fn merge(&mut self, other: &FilterStats) {
        self.inserts += other.inserts;
        self.evictions += other.evictions;
        self.second_chance += other.second_chance;
        self.relocations += other.relocations;
        self.lookups += other.lookups;
        self.hits += other.hits;
        self.false_positives += other.false_positives;
    }
}

/// A cuckoo filter with 12-bit fingerprints, 4-way buckets and
/// second-chance (hotness-bit) eviction.
///
/// Entries are byte strings; only their fingerprints are stored, so the
/// whole filter costs 2 bytes per slot — the "succinct" property the
/// Succinct Filter Cache relies on (≈13 bits per tracked prefix versus
/// 40–2056 bytes for caching the inner node itself).
#[derive(Clone)]
pub struct CuckooFilter {
    /// `buckets * SLOTS_PER_BUCKET` slots; 0 = empty, else fp | hot bit.
    slots: Vec<u16>,
    bucket_mask: u64,
    len: usize,
    rng_state: u64,
    stats: FilterStats,
}

impl fmt::Debug for CuckooFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CuckooFilter")
            .field("capacity", &self.capacity())
            .field("len", &self.len)
            .finish_non_exhaustive()
    }
}

impl CuckooFilter {
    /// Creates a filter able to hold at least `capacity` entries
    /// (rounded up so the bucket count is a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_capacity_and_seed(capacity, 0x5EED_CAFE)
    }

    /// Like [`CuckooFilter::with_capacity`] with an explicit seed for the
    /// eviction-choice RNG (deterministic tests/benchmarks).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity_and_seed(capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0, "filter capacity must be positive");
        let buckets = capacity
            .div_ceil(SLOTS_PER_BUCKET)
            .next_power_of_two()
            .max(2);
        CuckooFilter {
            slots: vec![0; buckets * SLOTS_PER_BUCKET],
            bucket_mask: buckets as u64 - 1,
            len: 0,
            rng_state: seed | 1,
            stats: FilterStats::default(),
        }
    }

    /// Creates a filter that fits within `bytes` bytes of memory
    /// (2 bytes per slot) — how a compute node sizes its Succinct Filter
    /// Cache from a memory budget.
    ///
    /// # Panics
    ///
    /// Panics if `bytes < 16`.
    pub fn with_byte_budget(bytes: usize) -> Self {
        Self::with_byte_budget_and_seed(bytes, 0x5EED_CAFE)
    }

    /// Like [`CuckooFilter::with_byte_budget`] with an explicit seed for
    /// the eviction-choice RNG (deterministic tests/benchmarks).
    ///
    /// # Panics
    ///
    /// Panics if `bytes < 16`.
    pub fn with_byte_budget_and_seed(bytes: usize, seed: u64) -> Self {
        assert!(bytes >= 16, "budget too small for even one bucket");
        // Power-of-two rounding must round *down* to respect the budget.
        let buckets = ((bytes / 2) / SLOTS_PER_BUCKET).max(2);
        let buckets = if buckets.is_power_of_two() {
            buckets
        } else {
            buckets.next_power_of_two() / 2
        };
        CuckooFilter {
            slots: vec![0; buckets * SLOTS_PER_BUCKET],
            bucket_mask: buckets as u64 - 1,
            len: 0,
            rng_state: seed | 1,
            stats: FilterStats::default(),
        }
    }

    /// Number of slots (maximum resident entries).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the filter holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.slots.len() * 2
    }

    /// Occupancy in `[0, 1]`.
    pub fn load_factor(&self) -> f64 {
        self.len as f64 / self.capacity() as f64
    }

    /// Churn counters.
    pub fn stats(&self) -> FilterStats {
        self.stats
    }

    /// Records that a previous hit turned out to be a false positive.
    ///
    /// The filter cannot detect this on its own — the index learns it
    /// when the hash-entry fetch for a filter-suggested prefix comes back
    /// empty, and reports it here so telemetry can expose the observed
    /// false-positive rate.
    pub fn note_false_positive(&mut self) {
        self.stats.false_positives += 1;
    }

    fn fp_and_bucket(&self, item: &[u8]) -> (u16, u64) {
        let h = mix64(fnv1a64(item));
        let fp = ((h >> 45) & FP_MASK as u64) as u16;
        let fp = if fp == 0 { 1 } else { fp };
        (fp, h & self.bucket_mask)
    }

    fn alt_bucket(&self, bucket: u64, fp: u16) -> u64 {
        (bucket ^ mix64(fp as u64)) & self.bucket_mask
    }

    fn slot_range(&self, bucket: u64) -> std::ops::Range<usize> {
        let start = bucket as usize * SLOTS_PER_BUCKET;
        start..start + SLOTS_PER_BUCKET
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Tests membership; a hit marks the matching entry hot
    /// (second-chance).
    pub fn contains(&mut self, item: &[u8]) -> bool {
        let (fp, b1) = self.fp_and_bucket(item);
        let b2 = self.alt_bucket(b1, fp);
        self.stats.lookups += 1;
        for bucket in [b1, b2] {
            for i in self.slot_range(bucket) {
                if self.slots[i] & FP_MASK == fp && self.slots[i] != 0 {
                    self.slots[i] |= HOT_BIT;
                    self.stats.hits += 1;
                    return true;
                }
            }
        }
        false
    }

    /// Read-only membership test (no hotness update) — for statistics.
    pub fn contains_quiet(&self, item: &[u8]) -> bool {
        let (fp, b1) = self.fp_and_bucket(item);
        let b2 = self.alt_bucket(b1, fp);
        [b1, b2].iter().any(|&bucket| {
            self.slot_range(bucket)
                .any(|i| self.slots[i] & FP_MASK == fp && self.slots[i] != 0)
        })
    }

    /// Inserts an item. Always succeeds: when both candidate buckets are
    /// full a cold entry is evicted (`stats().evictions` counts the
    /// information loss — cache semantics, not an error).
    ///
    /// Inserting an item whose fingerprint already resides in a candidate
    /// bucket is a no-op (set semantics).
    pub fn insert(&mut self, item: &[u8]) {
        let (fp, b1) = self.fp_and_bucket(item);
        let b2 = self.alt_bucket(b1, fp);
        self.stats.inserts += 1;

        // Set semantics: already present?
        for bucket in [b1, b2] {
            for i in self.slot_range(bucket) {
                if self.slots[i] & FP_MASK == fp && self.slots[i] != 0 {
                    return;
                }
            }
        }
        // Empty slot in either candidate bucket? New entries start cold.
        for bucket in [b1, b2] {
            for i in self.slot_range(bucket) {
                if self.slots[i] == 0 {
                    self.slots[i] = fp;
                    self.len += 1;
                    return;
                }
            }
        }
        // Both buckets full: evict a random cold entry if one exists
        // (§III-B's second-chance policy)…
        let cold: Vec<usize> = [b1, b2]
            .iter()
            .flat_map(|&b| self.slot_range(b))
            .filter(|&i| self.slots[i] & HOT_BIT == 0)
            .collect();
        if !cold.is_empty() {
            if cold.len() < 2 * SLOTS_PER_BUCKET {
                self.stats.second_chance += 1;
            }
            let victim = cold[(self.next_rand() % cold.len() as u64) as usize];
            self.slots[victim] = fp;
            self.stats.evictions += 1;
            return;
        }
        // …otherwise relocate via cuckoo kicks, resetting hotness of every
        // relocated entry.
        let start = if self.next_rand() & 1 == 0 { b1 } else { b2 };
        let mut bucket = start;
        let mut fp = fp;
        for _ in 0..MAX_KICKS {
            let slot = self.slot_range(bucket).start
                + (self.next_rand() % SLOTS_PER_BUCKET as u64) as usize;
            let displaced = self.slots[slot];
            self.slots[slot] = fp; // incoming entry is cold
            self.stats.relocations += 1;
            let displaced_fp = displaced & FP_MASK;
            bucket = self.alt_bucket(bucket, displaced_fp);
            fp = displaced_fp; // hotness reset: displaced re-enters cold
            for i in self.slot_range(bucket) {
                if self.slots[i] == 0 {
                    self.slots[i] = fp;
                    self.len += 1;
                    return;
                }
            }
            // If the alternate bucket has a cold entry, evict it and stop.
            let cold: Vec<usize> = self
                .slot_range(bucket)
                .filter(|&i| self.slots[i] & HOT_BIT == 0)
                .collect();
            if !cold.is_empty() {
                if cold.len() < SLOTS_PER_BUCKET {
                    self.stats.second_chance += 1;
                }
                let victim = cold[(self.next_rand() % cold.len() as u64) as usize];
                self.slots[victim] = fp;
                self.stats.evictions += 1;
                return;
            }
        }
        // Give up after MAX_KICKS: drop the carried fingerprint (cache
        // semantics — a loss, not an error).
        self.stats.evictions += 1;
    }

    /// Removes an item's fingerprint. Returns whether one was found.
    ///
    /// As with all cuckoo filters, removing an item that was never
    /// inserted can (rarely) delete a colliding entry — only call this for
    /// items previously inserted.
    pub fn remove(&mut self, item: &[u8]) -> bool {
        let (fp, b1) = self.fp_and_bucket(item);
        let b2 = self.alt_bucket(b1, fp);
        for bucket in [b1, b2] {
            for i in self.slot_range(bucket) {
                if self.slots[i] & FP_MASK == fp && self.slots[i] != 0 {
                    self.slots[i] = 0;
                    self.len -= 1;
                    return true;
                }
            }
        }
        false
    }

    /// Clears all entries and statistics.
    pub fn clear(&mut self) {
        self.slots.fill(0);
        self.len = 0;
        self.stats = FilterStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut f = CuckooFilter::with_capacity(128);
        f.insert(b"hello");
        assert!(f.contains(b"hello"));
        assert!(!f.contains(b"world"));
        assert!(f.remove(b"hello"));
        assert!(!f.contains(b"hello"));
        assert!(!f.remove(b"hello"));
    }

    #[test]
    fn near_total_retention_below_capacity() {
        // Unlike a classic cuckoo filter, the paper's policy evicts a cold
        // entry as soon as both candidate buckets fill (before trying
        // relocation), so a handful of losses at 50% load are by design.
        // They must stay well under 1%.
        let mut f = CuckooFilter::with_capacity(4096);
        let items: Vec<Vec<u8>> = (0..2000u32).map(|i| i.to_le_bytes().to_vec()).collect();
        for item in &items {
            f.insert(item);
        }
        let lost = items.iter().filter(|i| !f.contains_quiet(i)).count();
        assert!(
            lost as u64 <= f.stats().evictions,
            "losses bounded by evictions"
        );
        assert!(lost < 20, "should retain >99%: lost {lost}/2000");
    }

    #[test]
    fn false_positive_rate_below_one_percent() {
        let mut f = CuckooFilter::with_capacity(8192);
        for i in 0..4000u32 {
            f.insert(&i.to_le_bytes());
        }
        let fps = (1_000_000..1_050_000u32)
            .filter(|i| f.contains_quiet(&i.to_le_bytes()))
            .count();
        let rate = fps as f64 / 50_000.0;
        assert!(rate < 0.01, "false positive rate {rate} too high");
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let mut f = CuckooFilter::with_capacity(64);
        f.insert(b"x");
        f.insert(b"x");
        assert_eq!(f.len(), 1);
        assert!(f.remove(b"x"));
        assert!(!f.contains(b"x"));
    }

    #[test]
    fn second_chance_counted_when_hot_entries_spared() {
        let mut f = CuckooFilter::with_capacity_and_seed(64, 11);
        let items: Vec<Vec<u8>> = (0..f.capacity() as u32)
            .map(|i| i.to_le_bytes().to_vec())
            .collect();
        for item in &items {
            f.insert(item);
        }
        // Heat up the retained entries so full buckets contain hot slots.
        for item in &items {
            let _ = f.contains(item);
        }
        assert_eq!(f.stats().second_chance, 0, "no eviction yet");
        // Overfill: evictions now happen among buckets with hot entries.
        for i in 0..(f.capacity() * 4) as u32 {
            f.insert(&(1_000_000 + i).to_le_bytes());
        }
        let stats = f.stats();
        assert!(stats.evictions > 0);
        assert!(
            stats.second_chance > 0,
            "hot entries should have been spared at least once"
        );
        assert!(stats.second_chance <= stats.evictions);
    }

    #[test]
    fn eviction_kicks_in_at_capacity_and_prefers_cold() {
        let mut f = CuckooFilter::with_capacity_and_seed(64, 7);
        let n = f.capacity() * 4; // way past capacity
                                  // Insert hot set first and touch it to set hotness.
        let hot: Vec<Vec<u8>> = (0..16u32).map(|i| format!("hot{i}").into_bytes()).collect();
        for h in &hot {
            f.insert(h);
        }
        for h in &hot {
            assert!(f.contains(h));
        }
        // Flood with cold entries, keeping the hot set touched as a real
        // workload would.
        for i in 0..n as u32 {
            f.insert(&i.to_le_bytes());
            for h in &hot {
                f.contains(h);
            }
        }
        assert!(f.stats().evictions > 0, "flood must evict");
        let survivors = hot.iter().filter(|h| f.contains_quiet(h)).count();
        assert!(
            survivors >= 14,
            "hot entries should survive eviction: {survivors}/16"
        );
    }

    #[test]
    fn len_tracks_inserts_and_removes() {
        let mut f = CuckooFilter::with_capacity(256);
        for i in 0..100u32 {
            f.insert(&i.to_le_bytes());
        }
        assert_eq!(f.len(), 100);
        for i in 0..50u32 {
            assert!(f.remove(&i.to_le_bytes()));
        }
        assert_eq!(f.len(), 50);
        assert!((f.load_factor() - 50.0 / f.capacity() as f64).abs() < 1e-9);
    }

    #[test]
    fn byte_budget_respected() {
        for budget in [64usize, 1000, 4096, 100_000] {
            let f = CuckooFilter::with_byte_budget(budget);
            assert!(
                f.memory_bytes() <= budget,
                "{} > {budget}",
                f.memory_bytes()
            );
            assert!(
                f.memory_bytes() * 4 >= budget,
                "wastes too much of the budget"
            );
        }
    }

    #[test]
    fn clear_resets_everything() {
        let mut f = CuckooFilter::with_capacity(64);
        f.insert(b"a");
        f.contains(b"a");
        f.clear();
        assert!(f.is_empty());
        assert_eq!(f.stats(), FilterStats::default());
        assert!(!f.contains_quiet(b"a"));
    }

    #[test]
    fn deterministic_with_seed() {
        let mut a = CuckooFilter::with_capacity_and_seed(64, 99);
        let mut b = CuckooFilter::with_capacity_and_seed(64, 99);
        for i in 0..500u32 {
            a.insert(&i.to_le_bytes());
            b.insert(&i.to_le_bytes());
        }
        assert_eq!(a.slots, b.slots);
    }

    #[test]
    fn relocation_or_eviction_when_all_hot() {
        let mut f = CuckooFilter::with_capacity_and_seed(8, 3);
        // Fill completely and make everything hot.
        let mut resident = Vec::new();
        let mut i = 0u32;
        while f.len() < f.capacity() && i < 10_000 {
            let item = i.to_le_bytes().to_vec();
            f.insert(&item);
            resident.push(item);
            i += 1;
        }
        for item in &resident {
            f.contains(item);
        }
        let before = f.stats().relocations + f.stats().evictions;
        for j in 10_000..10_050u32 {
            f.insert(&j.to_le_bytes());
        }
        assert!(
            f.stats().relocations + f.stats().evictions > before,
            "full+hot filter must relocate or evict"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = CuckooFilter::with_capacity(0);
    }
}
