//! Table and CSV emission for the benchmark binaries.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A simple fixed-width text table matching the rows/series the paper
/// reports.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(
                    out,
                    "{:<width$}  ",
                    cell,
                    width = widths.get(i).copied().unwrap_or(0)
                );
            }
            out.push('\n');
        };
        fmt_row(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * cols;
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }

    /// Writes the table as CSV under `results/` (created on demand).
    ///
    /// # Panics
    ///
    /// Panics on I/O errors (bench context).
    pub fn write_csv(&self, name: &str) {
        let dir = Path::new("results");
        fs::create_dir_all(dir).expect("create results dir");
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        fs::write(dir.join(format!("{name}.csv")), out).expect("write csv");
    }
}

/// Writes a JSON document under `results/` (created on demand) — the
/// export path for telemetry registries
/// ([`obs::Registry::to_json`]).
///
/// # Panics
///
/// Panics on I/O errors (bench context).
pub fn write_json(name: &str, json: &str) {
    let dir = Path::new("results");
    fs::create_dir_all(dir).expect("create results dir");
    fs::write(dir.join(format!("{name}.json")), json).expect("write json");
}

/// Renders a throughput–latency scatter as ASCII: one letter per series,
/// log-scaled axes, suitable for eyeballing the Fig. 5 hockey stick in a
/// terminal. Points are `(x = Mops, y = latency µs)`.
pub fn ascii_curve(series: &[(&str, Vec<(f64, f64)>)]) -> String {
    const W: usize = 64;
    const H: usize = 18;
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().copied())
        .collect();
    if all.is_empty() {
        return String::from(
            "(no data)
",
        );
    }
    let (mut x0, mut x1, mut y0, mut y1) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
    for &(x, y) in &all {
        x0 = x0.min(x.max(1e-6));
        x1 = x1.max(x);
        y0 = y0.min(y.max(1e-6));
        y1 = y1.max(y);
    }
    let (lx0, lx1) = (x0.ln(), (x1.max(x0 * 1.01)).ln());
    let (ly0, ly1) = (y0.ln(), (y1.max(y0 * 1.01)).ln());
    let mut grid = vec![vec![b' '; W]; H];
    for (si, (label, pts)) in series.iter().enumerate() {
        let ch = label.as_bytes().first().copied().unwrap_or(b'A' + si as u8);
        for &(x, y) in pts {
            let cx = ((x.max(1e-6).ln() - lx0) / (lx1 - lx0) * (W - 1) as f64).round();
            let cy = ((y.max(1e-6).ln() - ly0) / (ly1 - ly0) * (H - 1) as f64).round();
            let (cx, cy) = (
                cx.clamp(0.0, (W - 1) as f64) as usize,
                cy.clamp(0.0, (H - 1) as f64) as usize,
            );
            grid[H - 1 - cy][cx] = ch;
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "latency (us, log) {y1:>8.1}");
    for row in &grid {
        out.push_str("  |");
        out.push_str(std::str::from_utf8(row).expect("ascii"));
        out.push('\n');
    }
    let _ = writeln!(out, "  +{}", "-".repeat(W));
    let _ = writeln!(
        out,
        "  {:.2} Mops (log) {:>width$.2}",
        x0,
        x1,
        width = W.saturating_sub(18)
    );
    let legend: Vec<String> = series
        .iter()
        .map(|(l, _)| format!("{} = {l}", l.chars().next().unwrap_or('?')))
        .collect();
    let _ = writeln!(out, "  {}", legend.join("   "));
    out
}

/// Parses `--flag value` style arguments with a default.
pub fn arg_u64(args: &[String], flag: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Formats a float with 3 significant decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["sys", "mops"]);
        t.row(["Sphinx", "1.234"]);
        t.row(["ART", "0.1"]);
        let s = t.render();
        assert!(s.contains("Sphinx"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn ascii_curve_draws_all_series() {
        let s = ascii_curve(&[
            ("Sphinx", vec![(1.0, 9.0), (10.0, 12.0)]),
            ("ART", vec![(0.5, 12.0), (3.0, 50.0)]),
        ]);
        assert!(s.contains('S') && s.contains('A'));
        assert!(s.contains("S = Sphinx"));
        assert!(s.lines().count() > 15);
    }

    #[test]
    fn ascii_curve_empty() {
        assert_eq!(ascii_curve(&[]), "(no data)\n");
    }

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["--keys", "5000", "--ops", "100"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_u64(&args, "--keys", 1), 5000);
        assert_eq!(arg_u64(&args, "--ops", 1), 100);
        assert_eq!(arg_u64(&args, "--workers", 24), 24);
    }
}
