//! Conservative virtual-time synchronization for benchmark workers.
//!
//! The NIC model in `dm-sim` is a FIFO server in *virtual* time: it is
//! accurate when requests arrive in roughly nondecreasing virtual order.
//! Real OS scheduling violates that — on a small host one worker thread
//! runs a long real-time slice, pushing its virtual clock far ahead, and
//! every later-scheduled worker then queues behind virtual history that
//! "already happened". The symptom is perfect serialization: aggregate
//! throughput pinned at a single worker's rate regardless of worker count.
//!
//! [`VirtualGate`] restores near-monotonic arrivals the way conservative
//! parallel-discrete-event simulators do: each worker publishes its clock
//! after every operation and yields while it is more than `window_ns`
//! ahead of the slowest active worker. The window trades fidelity (smaller
//! = more accurate queueing) against real-time overhead (more yields).

use std::sync::atomic::{AtomicU64, Ordering};

/// A clock-window barrier across benchmark workers.
#[derive(Debug)]
pub struct VirtualGate {
    clocks: Vec<AtomicU64>,
    window_ns: u64,
}

impl VirtualGate {
    /// Creates a gate for `workers` participants with the given window.
    pub fn new(workers: usize, window_ns: u64) -> Self {
        let mut clocks = Vec::with_capacity(workers);
        clocks.resize_with(workers, || AtomicU64::new(0));
        VirtualGate { clocks, window_ns }
    }

    /// Publishes worker `me`'s clock and blocks (yielding) while it runs
    /// more than the window ahead of the slowest active worker.
    pub fn sync(&self, me: usize, clock_ns: u64) {
        self.clocks[me].store(clock_ns, Ordering::Release);
        loop {
            let min = self
                .clocks
                .iter()
                .map(|c| c.load(Ordering::Acquire))
                .min()
                .unwrap_or(0);
            if clock_ns <= min.saturating_add(self.window_ns) {
                return;
            }
            std::thread::yield_now();
        }
    }

    /// Marks worker `me` finished so it no longer holds others back.
    pub fn finish(&self, me: usize) {
        self.clocks[me].store(u64::MAX, Ordering::Release);
    }

    /// Resets all clocks to zero (phase boundary).
    pub fn reset(&self) {
        for c in &self.clocks {
            c.store(0, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lone_worker_never_blocks() {
        let gate = VirtualGate::new(1, 1000);
        gate.sync(0, 0);
        gate.sync(0, 1_000_000_000);
    }

    #[test]
    fn fast_worker_waits_for_slow_one() {
        let gate = Arc::new(VirtualGate::new(2, 1_000));
        let g = gate.clone();
        let t = std::thread::spawn(move || {
            // Fast worker jumps to 1 ms; must block until the slow worker
            // catches up within 1 µs.
            g.sync(0, 1_000_000);
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!t.is_finished(), "fast worker should be gated");
        gate.sync(1, 999_500);
        t.join().unwrap();
    }

    #[test]
    fn finish_releases_waiters() {
        let gate = Arc::new(VirtualGate::new(2, 1_000));
        let g = gate.clone();
        let t = std::thread::spawn(move || g.sync(0, 5_000_000));
        std::thread::sleep(std::time::Duration::from_millis(5));
        gate.finish(1);
        t.join().unwrap();
    }
}
