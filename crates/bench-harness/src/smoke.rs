//! Shared scaffolding for the CI smoke binaries.
//!
//! Every smoke check (`telemetry_smoke`, `pipeline_smoke`, `trace_smoke`,
//! `metrics_smoke`, and the raw-cluster half of `sfc_smoke`) used to carry
//! its own copy of the cluster-build / preload / `RunConfig` boilerplate,
//! and the copies drifted. This module is the single source of the two
//! canonical smoke shapes:
//!
//! * the **fig4 YCSB-C short config** ([`ycsb_c_config`]) — 10k keys,
//!   8 workers × 1 500 ops, the shape the pipeline, trace, and metrics
//!   smokes all measure against; and
//! * the **YCSB-A telemetry config** ([`ycsb_a_config`]) — a smaller
//!   write-heavy mix for exercising the exporter.
//!
//! Sampling knobs default to *off* in both; a smoke that wants tracing or
//! time-series sampling flips the fields it needs on its copy.

use crate::runner::{load_phase, RunConfig};
use crate::systems::{System, SystemHandle};
use dm_sim::{ClusterConfig, DmCluster};
use ycsb::{KeySpace, Workload};

/// Key count for the fig4 YCSB-C short config.
pub const YCSB_C_KEYS: u64 = 10_000;

/// Key count for the YCSB-A telemetry config.
pub const YCSB_A_KEYS: u64 = 3_000;

/// Builds `system` with the standard smoke memory shape (64 MiB heap,
/// 1 MiB SFC budget) and preloads `keys` U64 keys with `load_workers`
/// parallel loaders.
pub fn build_loaded(system: System, keys: u64, load_workers: usize) -> SystemHandle {
    let handle = system.build(64 << 20, Some(1 << 20));
    load_phase(&handle, KeySpace::U64, keys, load_workers);
    handle
}

/// A raw 3-MN / 3-CN cluster for smokes that drive `dm-sim` directly
/// (health-control fixtures, SFC warm-start) rather than through a
/// [`System`].
pub fn smoke_cluster() -> DmCluster {
    DmCluster::new(ClusterConfig {
        num_mns: 3,
        num_cns: 3,
        mn_capacity: 1 << 30,
        ..Default::default()
    })
}

/// The fig4 YCSB-C short config at a given pipeline depth. Tracing and
/// time-series sampling are off; callers flip what they measure.
pub fn ycsb_c_config(keys: u64, depth: usize) -> RunConfig {
    RunConfig {
        keyspace: KeySpace::U64,
        num_keys: keys,
        workload: Workload::c(),
        workers: 8,
        ops_per_worker: 1_500,
        warmup_per_worker: 300,
        seed: 0x0051_400C_u64,
        pipeline_depth: depth,
        trace_head_every: 0,
        trace_tail_k: 0,
        sample_interval_ns: 0,
        sample_capacity: 0,
    }
}

/// The write-heavy YCSB-A config the telemetry smoke exports from.
pub fn ycsb_a_config(keys: u64) -> RunConfig {
    RunConfig {
        keyspace: KeySpace::U64,
        num_keys: keys,
        workload: Workload::a(),
        workers: 4,
        ops_per_worker: 500,
        warmup_per_worker: 100,
        seed: 0x51_0CE,
        pipeline_depth: RunConfig::depth_from_env(1),
        trace_head_every: 0,
        trace_tail_k: 0,
        sample_interval_ns: 0,
        sample_capacity: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_have_sampling_off() {
        let c = ycsb_c_config(YCSB_C_KEYS, 1);
        assert_eq!(c.trace_tail_k, 0);
        assert_eq!(c.sample_interval_ns, 0);
        let a = ycsb_a_config(YCSB_A_KEYS);
        assert_eq!(a.trace_tail_k, 0);
        assert_eq!(a.sample_interval_ns, 0);
    }

    #[test]
    fn smoke_cluster_shape() {
        let c = smoke_cluster();
        assert_eq!(c.config().num_mns, 3);
        assert_eq!(c.config().num_cns, 3);
    }
}
