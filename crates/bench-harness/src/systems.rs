//! The four evaluated systems behind one worker-client interface.

use baselines::{BaselineConfig, BaselineIndex};
use dm_sim::{ClientStats, ClusterConfig, DmCluster};
use sphinx::{CacheMode, SphinxConfig, SphinxIndex};

/// The paper's CN-side cache budget (20 MB against a 60 M-key dataset —
/// 4.2% of the u64 keys, 1.8% of the email keys), scaled to the number of
/// keys the experiment actually loads. SMART+C uses ten times this.
pub fn paper_cache_bytes(num_keys: u64) -> usize {
    ((num_keys as usize) / 3).max(4 << 10)
}

/// Which system a run drives (the four bars of Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// Sphinx with the paper's default 20 MB Succinct Filter Cache.
    Sphinx,
    /// Sphinx without the filter cache (INHT-only ablation; not in the
    /// paper's figures but used by the `ablation` binary).
    SphinxInhtOnly,
    /// SMART with a 20 MB CN-side node cache.
    Smart,
    /// SMART with a 200 MB CN-side node cache ("SMART+C").
    SmartC,
    /// The original ART ported to DM (no cache).
    Art,
    /// A Sherman-lite B+-tree (extension; fixed 8-byte keys — it cannot
    /// run the email dataset, which is the point of the comparison).
    BpTree,
}

impl System {
    /// The label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            System::Sphinx => "Sphinx",
            System::SphinxInhtOnly => "Sphinx-INHT",
            System::Smart => "SMART",
            System::SmartC => "SMART+C",
            System::Art => "ART",
            System::BpTree => "B+Tree",
        }
    }

    /// The systems compared in Fig. 4 / Fig. 5.
    pub fn paper_lineup() -> [System; 4] {
        [System::Sphinx, System::Smart, System::SmartC, System::Art]
    }

    /// Builds the system on a fresh cluster mirroring the paper's testbed
    /// (3 machines, each one CN + one MN). `cache_bytes` overrides the
    /// CN-side cache budget where the system has one.
    pub fn build(&self, mn_capacity: usize, cache_bytes: Option<usize>) -> SystemHandle {
        let cluster = DmCluster::new(ClusterConfig {
            num_mns: 3,
            num_cns: 3,
            mn_capacity,
            ..Default::default()
        });
        self.build_on(&cluster, cache_bytes)
    }

    /// Builds the system with the paper's cache proportions for a run
    /// over `num_keys` keys (Sphinx/SMART get the scaled 20 MB budget,
    /// SMART+C ten times that, ART none).
    pub fn build_scaled(&self, mn_capacity: usize, num_keys: u64) -> SystemHandle {
        let cache = paper_cache_bytes(num_keys);
        let budget = match self {
            System::SmartC => 10 * cache,
            _ => cache,
        };
        self.build(mn_capacity, Some(budget))
    }

    /// Builds the system on an existing cluster.
    ///
    /// # Panics
    ///
    /// Panics if index creation fails (out of MN memory — raise
    /// `mn_capacity`).
    pub fn build_on(&self, cluster: &DmCluster, cache_bytes: Option<usize>) -> SystemHandle {
        match self {
            System::Sphinx | System::SphinxInhtOnly => {
                let config = SphinxConfig {
                    cache_bytes: cache_bytes.unwrap_or(20 << 20),
                    mode: if *self == System::SphinxInhtOnly {
                        CacheMode::InhtOnly
                    } else {
                        CacheMode::FilterCache
                    },
                    ..SphinxConfig::default()
                };
                SystemHandle::Sphinx(SphinxIndex::create(cluster, config).expect("create sphinx"))
            }
            System::Smart => SystemHandle::Baseline(
                BaselineIndex::create(
                    cluster,
                    BaselineConfig::smart(cache_bytes.unwrap_or(20 << 20)),
                )
                .expect("create smart"),
            ),
            System::SmartC => SystemHandle::Baseline(
                BaselineIndex::create(
                    cluster,
                    BaselineConfig::smart(cache_bytes.unwrap_or(200 << 20)),
                )
                .expect("create smart+c"),
            ),
            System::Art => SystemHandle::Baseline(
                BaselineIndex::create(cluster, BaselineConfig::art()).expect("create art"),
            ),
            System::BpTree => SystemHandle::BpTree(
                bptree::BpTreeIndex::create(cluster, cache_bytes.unwrap_or(20 << 20))
                    .expect("create b+tree"),
            ),
        }
    }
}

/// A built index, able to mint per-worker clients.
#[derive(Clone)]
pub enum SystemHandle {
    /// A Sphinx index.
    Sphinx(SphinxIndex),
    /// An ART or SMART baseline index.
    Baseline(BaselineIndex),
    /// A B+-tree index (extension experiments).
    BpTree(bptree::BpTreeIndex),
}

impl SystemHandle {
    /// Creates a worker client bound to compute node `cn_id`.
    ///
    /// # Panics
    ///
    /// Panics on substrate errors (bench context).
    pub fn worker(&self, cn_id: u16) -> WorkerClient {
        match self {
            SystemHandle::Sphinx(idx) => {
                WorkerClient::Sphinx(Box::new(idx.client(cn_id).expect("sphinx client")))
            }
            SystemHandle::Baseline(idx) => {
                WorkerClient::Baseline(Box::new(idx.client(cn_id).expect("baseline client")))
            }
            SystemHandle::BpTree(idx) => {
                WorkerClient::BpTree(Box::new(idx.client(cn_id).expect("b+tree client")))
            }
        }
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &DmCluster {
        match self {
            SystemHandle::Sphinx(idx) => idx.cluster(),
            SystemHandle::Baseline(idx) => idx.cluster(),
            SystemHandle::BpTree(idx) => idx.cluster(),
        }
    }

    /// Index-level telemetry: counters owned by the index rather than any
    /// worker (Sphinx's per-CN filter statistics, collected once here to
    /// avoid counting the shared filters once per worker), plus the
    /// cluster's fault-injection count. Empty for uninstrumented systems.
    pub fn index_telemetry(&self) -> obs::Registry {
        let mut reg = match self {
            SystemHandle::Sphinx(idx) => idx.sfc_telemetry(),
            SystemHandle::Baseline(_) | SystemHandle::BpTree(_) => obs::Registry::new(),
        };
        reg.add("faults.injected", self.cluster().fault_injections());
        // MN-pool accounting, summed over memory nodes: total live bytes,
        // bytes recovered through the epoch reclaimer, and live block
        // counts per allocation size class (Fig. 6 attribution).
        let cluster = self.cluster();
        let mut live_bytes = 0u64;
        let mut reclaimed = 0u64;
        let mut by_class: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
        for mn_id in 0..cluster.num_mns() {
            let mn = cluster.mn(mn_id).expect("mn in range");
            let stats = mn.alloc_stats();
            live_bytes += stats.live_bytes;
            reclaimed += stats.reclaimed_bytes;
            for (class, blocks) in mn.live_by_class() {
                *by_class.entry(class).or_default() += blocks;
            }
        }
        reg.add("mem.live_bytes", live_bytes);
        reg.add("mem.reclaimed_bytes", reclaimed);
        for (class, blocks) in by_class {
            reg.add(&format!("mem.class_{class}.live"), blocks);
        }
        reg
    }

    /// MN-side memory: `(index bytes, auxiliary bytes)` where auxiliary is
    /// Sphinx's Inner Node Hash Table (0 for the baselines). Fig. 6.
    pub fn memory_breakdown(&self) -> (u64, u64) {
        match self {
            SystemHandle::Sphinx(idx) => {
                let s = idx.space_breakdown().expect("space breakdown");
                (s.art_bytes, s.inht_bytes)
            }
            SystemHandle::Baseline(idx) => (idx.memory_bytes(), 0),
            SystemHandle::BpTree(idx) => (idx.memory_bytes(), 0),
        }
    }
}

/// One benchmark worker: a thin uniform facade over the two client types.
///
/// Methods panic on substrate errors — benchmark context, where an error
/// is a bug, not a condition to handle.
pub enum WorkerClient {
    /// Sphinx worker.
    Sphinx(Box<sphinx::SphinxClient>),
    /// Baseline worker.
    Baseline(Box<baselines::BaselineClient>),
    /// B+-tree worker: keys must be 8-byte big-endian integers (the u64
    /// dataset); anything else panics — fixed-width keys are the point of
    /// the comparison.
    BpTree(Box<bptree::BpTreeClient>),
}

fn bp_key(key: &[u8]) -> u64 {
    u64::from_be_bytes(
        key.try_into()
            .expect("B+tree supports fixed 8-byte keys only (u64 dataset)"),
    )
}

/// The B+-tree stores values in fixed 64-byte zero-padded slots
/// ([`bptree`'s Sherman-style leaf entry]), so a raw `get` returns padding
/// the caller never wrote. The facade keeps reads faithful to writes by
/// spending two slot bytes on a length prefix; payloads are capped at 62
/// bytes (ample for the harness's 16-byte tagged values).
fn bp_value_encode(value: &[u8]) -> Vec<u8> {
    let n = value.len().min(62);
    let mut v = Vec::with_capacity(2 + n);
    v.extend_from_slice(&(n as u16).to_le_bytes());
    v.extend_from_slice(&value[..n]);
    v
}

fn bp_value_decode(mut slot: Vec<u8>) -> Vec<u8> {
    let n = (u16::from_le_bytes([slot[0], slot[1]]) as usize).min(slot.len() - 2);
    slot.drain(..2);
    slot.truncate(n);
    slot
}

impl WorkerClient {
    /// Point lookup.
    pub fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        match self {
            WorkerClient::Sphinx(c) => c.get(key).expect("get"),
            WorkerClient::Baseline(c) => c.get(key).expect("get"),
            WorkerClient::BpTree(c) => c.get(bp_key(key)).expect("get").map(bp_value_decode),
        }
    }

    /// Insert / upsert.
    pub fn insert(&mut self, key: &[u8], value: &[u8]) {
        match self {
            WorkerClient::Sphinx(c) => c.insert(key, value).expect("insert"),
            WorkerClient::Baseline(c) => c.insert(key, value).expect("insert"),
            WorkerClient::BpTree(c) => c
                .insert(bp_key(key), &bp_value_encode(value))
                .expect("insert"),
        }
    }

    /// Update an existing key.
    pub fn update(&mut self, key: &[u8], value: &[u8]) -> bool {
        match self {
            WorkerClient::Sphinx(c) => c.update(key, value).expect("update"),
            WorkerClient::Baseline(c) => c.update(key, value).expect("update"),
            WorkerClient::BpTree(c) => c
                .update(bp_key(key), &bp_value_encode(value))
                .expect("update"),
        }
    }

    /// Delete a key; returns whether it was present.
    pub fn remove(&mut self, key: &[u8]) -> bool {
        match self {
            WorkerClient::Sphinx(c) => c.remove(key).expect("remove"),
            WorkerClient::Baseline(c) => c.remove(key).expect("remove"),
            WorkerClient::BpTree(c) => c.remove(bp_key(key)).expect("remove"),
        }
    }

    /// Batched point lookups, parallel to `keys`. Sphinx issues its real
    /// doorbell-batched `multi_get`; the baselines have no batched read
    /// path, so the facade emulates one with sequential gets (each
    /// returned value is still read at some point inside the call).
    pub fn multi_get(&mut self, keys: &[&[u8]]) -> Vec<Option<Vec<u8>>> {
        match self {
            WorkerClient::Sphinx(c) => c.multi_get(keys).expect("multi_get"),
            WorkerClient::Baseline(c) => keys
                .iter()
                .map(|k| c.get(k).expect("multi_get component"))
                .collect(),
            WorkerClient::BpTree(c) => keys
                .iter()
                .map(|k| {
                    c.get(bp_key(k))
                        .expect("multi_get component")
                        .map(bp_value_decode)
                })
                .collect(),
        }
    }

    /// Batched point lookups with up to `depth` operations in flight per
    /// worker (the op-pipelining path, see
    /// [`sphinx::SphinxClient::get_many_pipelined`]). Sphinx and the
    /// B+-tree drive resumable per-key state machines whose round trips
    /// fuse across operations; the baselines have no completion-queue
    /// client and keep the blocking one-get-at-a-time path regardless of
    /// `depth` (every caller still gets positionally aligned results).
    pub fn multi_get_pipelined(&mut self, keys: &[&[u8]], depth: usize) -> Vec<Option<Vec<u8>>> {
        match self {
            WorkerClient::Sphinx(c) => c
                .get_many_pipelined(keys, depth)
                .expect("multi_get_pipelined"),
            WorkerClient::Baseline(c) => keys
                .iter()
                .map(|k| c.get(k).expect("multi_get_pipelined component"))
                .collect(),
            WorkerClient::BpTree(c) => {
                let bp_keys: Vec<u64> = keys.iter().map(|k| bp_key(k)).collect();
                c.get_many_pipelined(&bp_keys, depth)
                    .expect("multi_get_pipelined")
                    .into_iter()
                    .map(|v| v.map(bp_value_decode))
                    .collect()
            }
        }
    }

    /// Range scan; returns the number of entries found.
    pub fn scan(&mut self, low: &[u8], high: &[u8]) -> usize {
        self.scan_pairs(low, high).len()
    }

    /// Inclusive range scan returning the pairs (`low <= key <= high`).
    pub fn scan_pairs(&mut self, low: &[u8], high: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        match self {
            WorkerClient::Sphinx(c) => c.scan(low, high).expect("scan"),
            WorkerClient::Baseline(c) => c.scan(low, high).expect("scan"),
            WorkerClient::BpTree(c) => c
                .scan(bp_key(low), bp_key(high))
                .expect("scan")
                .into_iter()
                .map(|(k, v)| (k.to_be_bytes().to_vec(), bp_value_decode(v)))
                .collect(),
        }
    }

    /// The first `limit` entries with `key >= low`. Sphinx has a native
    /// bounded scan; the baselines emulate it with a full-range scan
    /// truncated to `limit`.
    pub fn scan_n(&mut self, low: &[u8], limit: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
        match self {
            WorkerClient::Sphinx(c) => c.scan_n(low, limit).expect("scan_n"),
            WorkerClient::Baseline(c) => {
                // An upper bound above any legal key (keys are capped at
                // 4096 bytes, all-0xFF at that length sorts last).
                let high = vec![0xFFu8; 4096];
                let mut pairs = c.scan(low, &high).expect("scan_n");
                pairs.truncate(limit);
                pairs
            }
            WorkerClient::BpTree(c) => {
                let mut pairs: Vec<(Vec<u8>, Vec<u8>)> = c
                    .scan(bp_key(low), u64::MAX)
                    .expect("scan_n")
                    .into_iter()
                    .map(|(k, v)| (k.to_be_bytes().to_vec(), bp_value_decode(v)))
                    .collect();
                pairs.truncate(limit);
                pairs
            }
        }
    }

    /// Forces one epoch-reclamation scan on this worker (advance the
    /// cluster epoch, free limbo entries past grace). No-op for the
    /// B+-tree, which never unlinks nodes.
    pub fn reclaim_scan(&mut self) {
        match self {
            WorkerClient::Sphinx(c) => c.reclaim_scan(),
            WorkerClient::Baseline(c) => c.reclaim_scan(),
            WorkerClient::BpTree(_) => {}
        }
    }

    /// Scans until this worker's limbo list drains (or `max_rounds` scans
    /// pass); returns whether it drained. Quiescing a multi-worker run
    /// needs round-robin calls across the workers, since each one's frees
    /// are gated on the *others* having refreshed their epoch slots.
    pub fn reclaim_quiesce(&mut self, max_rounds: usize) -> bool {
        match self {
            WorkerClient::Sphinx(c) => c.reclaim_quiesce(max_rounds),
            WorkerClient::Baseline(c) => c.reclaim_quiesce(max_rounds),
            WorkerClient::BpTree(_) => true,
        }
    }

    /// Removes this worker from epoch gating (before dropping it idle).
    pub fn reclaim_deregister(&mut self) {
        match self {
            WorkerClient::Sphinx(c) => c.reclaim_deregister(),
            WorkerClient::Baseline(c) => c.reclaim_deregister(),
            WorkerClient::BpTree(_) => {}
        }
    }

    /// Attaches a deterministic-schedule participant handle to this
    /// worker's transport (see [`dm_sim::Schedule`]).
    pub fn attach_schedule(&mut self, handle: dm_sim::ScheduleHandle) {
        match self {
            WorkerClient::Sphinx(c) => c.attach_schedule(handle),
            WorkerClient::Baseline(c) => c.attach_schedule(handle),
            WorkerClient::BpTree(c) => c.attach_schedule(handle),
        }
    }

    /// Consumes one scheduling step and returns its number (a virtual
    /// timestamp); `None` when no schedule is attached.
    pub fn schedule_tick(&mut self) -> Option<u64> {
        match self {
            WorkerClient::Sphinx(c) => c.schedule_tick(),
            WorkerClient::Baseline(c) => c.schedule_tick(),
            WorkerClient::BpTree(c) => c.schedule_tick(),
        }
    }

    /// Virtual clock (ns).
    pub fn clock_ns(&self) -> u64 {
        match self {
            WorkerClient::Sphinx(c) => c.clock_ns(),
            WorkerClient::Baseline(c) => c.clock_ns(),
            WorkerClient::BpTree(c) => c.clock_ns(),
        }
    }

    /// Reset the virtual clock (phase barrier).
    pub fn set_clock_ns(&mut self, ns: u64) {
        match self {
            WorkerClient::Sphinx(c) => c.set_clock_ns(ns),
            WorkerClient::Baseline(c) => c.set_clock_ns(ns),
            WorkerClient::BpTree(c) => c.set_clock_ns(ns),
        }
    }

    /// Cheap SFC gauges for the metrics sampler —
    /// `[lookups, hits, frozen_len, delta_len]`, all zeros for systems
    /// without a filter cache. Reads shared atomics only: no verbs, no
    /// allocation, safe to poll at every op boundary.
    pub fn sfc_gauges(&self) -> [u64; 4] {
        match self {
            WorkerClient::Sphinx(c) => c.sfc_gauges(),
            WorkerClient::Baseline(_) | WorkerClient::BpTree(_) => [0; 4],
        }
    }

    /// Network counters.
    pub fn net_stats(&self) -> ClientStats {
        match self {
            WorkerClient::Sphinx(c) => c.net_stats(),
            WorkerClient::Baseline(c) => c.net_stats(),
            WorkerClient::BpTree(c) => c.net_stats(),
        }
    }

    /// This worker's telemetry registry (phase-attributed spans plus
    /// domain counters). The B+-tree extension has no span recorder, but
    /// its pipelined-execution counters are exported so fig4_pipeline and
    /// the smoke checks can compare fusion across systems.
    pub fn telemetry(&self) -> obs::Registry {
        match self {
            WorkerClient::Sphinx(c) => c.telemetry(),
            WorkerClient::Baseline(c) => c.telemetry(),
            WorkerClient::BpTree(c) => {
                let mut reg = obs::Registry::new();
                let p = c.pipeline_stats();
                reg.add("pipeline.ops", p.ops);
                reg.add("pipeline.flushes", p.flushes);
                reg.add("pipeline.fused_batches", p.fused_batches);
                reg.add("pipeline.stalls", p.stalls);
                // All B+-tree submissions are node fetches (tag 0):
                // surface them under the traversal phase name.
                reg.add(
                    "pipeline.rts.Traversal",
                    p.by_tag.values().map(|a| a.round_trips).sum(),
                );
                // Mirror the first-class pipeline aggregate so the
                // depth histogram and per-tag table reach the
                // sphinx.telemetry.v1 export for this system too.
                reg.pipeline.ops = p.ops;
                reg.pipeline.flushes = p.flushes;
                reg.pipeline.fused_batches = p.fused_batches;
                reg.pipeline.stalls = p.stalls;
                reg.pipeline.depth_hist = p.depth_hist;
                for agg in p.by_tag.values() {
                    let t = reg
                        .pipeline
                        .by_tag
                        .entry(obs::Phase::Traversal.name().to_string())
                        .or_default();
                    t.batches += agg.batches;
                    t.round_trips += agg.round_trips;
                    t.verbs += agg.verbs;
                    t.bytes += agg.bytes;
                }
                reg
            }
        }
    }

    /// Configures causal-trace sampling (`head_every` = uniform 1-in-N
    /// head sample, 0 = off; `tail_k` = slowest/most-retried retention
    /// depth). The baselines have no pipelined path and therefore no
    /// tracer; the call is a no-op for them.
    pub fn set_trace_sampling(&mut self, head_every: u64, tail_k: usize) {
        match self {
            WorkerClient::Sphinx(c) => c.set_trace_sampling(head_every, tail_k),
            WorkerClient::Baseline(_) => {}
            WorkerClient::BpTree(c) => c.set_trace_sampling(head_every, tail_k),
        }
    }

    /// Sets the worker id baked into this client's trace ids, keeping
    /// ids unique (and exports deterministic) across a run's workers.
    pub fn set_trace_worker(&mut self, worker: u32) {
        match self {
            WorkerClient::Sphinx(c) => c.set_trace_worker(worker),
            WorkerClient::Baseline(_) => {}
            WorkerClient::BpTree(c) => c.set_trace_worker(worker),
        }
    }

    /// Drains this worker's retained causal traces (empty for the
    /// baselines).
    pub fn take_traces(&mut self) -> Vec<obs::OpTrace> {
        match self {
            WorkerClient::Sphinx(c) => c.take_traces(),
            WorkerClient::Baseline(_) => Vec::new(),
            WorkerClient::BpTree(c) => c.take_traces(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_systems_build_and_serve() {
        for sys in [
            System::Sphinx,
            System::SphinxInhtOnly,
            System::Smart,
            System::SmartC,
            System::Art,
            System::BpTree,
        ] {
            let handle = sys.build(64 << 20, Some(1 << 20));
            let mut w = handle.worker(0);
            // The B+tree takes fixed 8-byte keys; use one everywhere.
            let key = 42u64.to_be_bytes();
            let (lo, hi) = (0u64.to_be_bytes(), u64::MAX.to_be_bytes());
            w.insert(&key, b"value");
            let got = w.get(&key).expect("present");
            assert_eq!(&got[..5], b"value", "{}", sys.label());
            assert!(w.update(&key, b"value2"), "{}", sys.label());
            assert_eq!(w.scan(&lo, &hi), 1, "{}", sys.label());
        }
    }
}
