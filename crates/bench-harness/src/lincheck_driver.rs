//! Deterministic-schedule linearizability runs over the full index stack.
//!
//! This module is the glue between three independent pieces:
//!
//! * [`dm_sim::Schedule`] — the lock-step scheduler that turns a
//!   multi-threaded run into a deterministic function of a seed (or of a
//!   recorded trace, for replay),
//! * [`lincheck::HistoryRecorder`] — invoke/response timestamping with
//!   virtual time (schedule steps while scheduled, a private atomic clock
//!   otherwise), and
//! * [`lincheck::check_history`] — the per-key Wing–Gong checker.
//!
//! [`run_scheduled`] drives one seeded (or replayed) run of a workload
//! against any [`System`] and returns the recorded history, the schedule
//! trace, the checker's verdict, and merged telemetry. A failing trace can
//! be cut down to a minimal failing prefix with [`shrink_failing_trace`]
//! and rendered for a bug report with [`failure_report`].
//!
//! Determinism contract: with the lock-step gate, at most one worker runs
//! between grants, so the recorded event order — and therefore
//! [`lincheck::History::digest`] — is a pure function of
//! `(workload_seed, schedule seed | trace)`. The regression tests and the
//! `lincheck_explorer` binary both assert this by running twice.

use std::sync::Arc;
use std::thread;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use dm_sim::{FaultHook, RemotePtr, Schedule, ScheduleConfig, TraceStep};
use lincheck::{check_history, CheckConfig, History, HistoryRecorder, Op, Outcome, Ret};
use ycsb::KeySpace;

use crate::systems::{System, WorkerClient};

/// A deterministic, stateless torn-read fault: any READ completion that
/// parses as a valid leaf gets up to eight bytes of its *value* region
/// XOR-ed (the key and header stay intact, so the index's key-comparison
/// checks cannot notice — only the leaf checksum can).
///
/// Statelessness matters: the schedule decides *when* a tear fires (the
/// step's [`dm_sim::StepDecision::tear`] flag, recorded in the trace), so
/// the hook itself must be a pure function of the buffer for replays to
/// reproduce the run bit-for-bit. Inner nodes and pointer words do not
/// decode as leaves and pass through untouched — exactly the hazard the
/// leaf checksum exists to catch. With checksum validation on, every tear
/// is retried and histories stay linearizable; with it off
/// ([`node_engine::set_leaf_validation`]), torn values are served to
/// clients and the checker reports the wrong-value violation.
#[derive(Debug, Default)]
pub struct TornLeafHook;

impl FaultHook for TornLeafHook {
    fn corrupt_read(&self, _ptr: RemotePtr, data: &mut [u8]) {
        let Ok(leaf) = art_core::layout::LeafNode::decode(data) else {
            return;
        };
        let start = 16 + leaf.key.len();
        let end = (start + 8).min(start + leaf.value.len());
        if start < end && end <= data.len() {
            for b in &mut data[start..end] {
                *b ^= 0xA5;
            }
        }
    }
}

/// Whether a run records a fresh schedule from a seed or replays a trace.
#[derive(Debug, Clone)]
pub enum ScheduleMode {
    /// Record: grant order, delays, and tears drawn from the seeded RNG.
    Record(ScheduleConfig),
    /// Replay a recorded trace. Past the end of the trace (or on
    /// divergence) the schedule falls back to fault-free round-robin, so
    /// a *prefix* of a failing trace is still a complete, runnable
    /// schedule — the property [`shrink_failing_trace`] exploits.
    Replay(Vec<TraceStep>),
}

/// One exploration run's shape: which system, how many workers, how much
/// work, and which faults ride along.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// System under test.
    pub system: System,
    /// Concurrent workers (schedule participants).
    pub threads: u32,
    /// Key-space size; keys are [`ycsb::KeySpace::U64`] items `0..keys`
    /// (8-byte big-endian, so every system including the B+-tree runs).
    pub keys: u64,
    /// Operations issued per worker.
    pub ops_per_thread: u64,
    /// Seed for the per-thread workload streams — independent of the
    /// schedule seed so a replay reruns the identical workload under a
    /// different (pinned) interleaving.
    pub workload_seed: u64,
    /// Install [`TornLeafHook`] on the schedule (tears still only fire on
    /// steps whose `tear` decision fired).
    pub tear_hook: bool,
    /// Include `multi_get` / `scan` / `scan_n` in the op mix.
    pub multi_ops: bool,
    /// Ops kept in flight per worker for the batched-read slice of the
    /// mix: `1` serves [`lincheck::Op::MultiGet`] through the blocking
    /// `multi_get`, larger depths drive it through the pipelined op
    /// scheduler ([`WorkerClient::multi_get_pipelined`]) so the schedule
    /// explores interleavings *between the round trips of concurrently
    /// in-flight operations* — each parked op is a schedulable
    /// participant's pending grant, not an atomic block.
    pub pipeline_depth: usize,
    /// Checker budget.
    pub check: CheckConfig,
}

impl ExploreConfig {
    /// The CI smoke shape: small key space, three workers, enough ops that
    /// one seed's history comfortably clears 10 k operations.
    pub fn smoke(system: System, threads: u32, keys: u64, ops_per_thread: u64) -> Self {
        ExploreConfig {
            system,
            threads,
            keys,
            ops_per_thread,
            workload_seed: 0xC0FF_EE00,
            tear_hook: true,
            multi_ops: true,
            pipeline_depth: 1,
            check: CheckConfig::default(),
        }
    }
}

/// Everything one run produces.
pub struct RunOutput {
    /// The recorded history (preload included).
    pub history: History,
    /// The schedule trace — feed to [`ScheduleMode::Replay`] to reproduce.
    pub trace: Vec<TraceStep>,
    /// The checker's verdict on `history`.
    pub outcome: Outcome,
    /// Schedule steps granted.
    pub steps: u64,
    /// Index-level telemetry merged with every worker's registry.
    pub telemetry: obs::Registry,
    /// Retained causal traces from every worker (head-sampled: under the
    /// lock-step schedule every pipelined op is traced, so a violation
    /// report can attach the traces overlapping its window). Sorted by
    /// trace id, hence deterministic for a fixed seed.
    pub traces: Vec<obs::OpTrace>,
    /// Cluster metrics over the whole run (preload included): per-MN
    /// accounting conserved against the summed client ledger, plus the
    /// health monitor's verdict — attached to failure reports so a
    /// violation arrives with the cluster's load picture.
    pub metrics: obs::MetricsReport,
}

/// Client id the recorder uses for the serial preload phase (workers use
/// `0..threads`).
fn preload_client(cfg: &ExploreConfig) -> u32 {
    cfg.threads
}

fn value_bytes(client: u32, seq: u64) -> Vec<u8> {
    let mut v = Vec::with_capacity(16);
    v.extend_from_slice(&(client as u64).to_le_bytes());
    v.extend_from_slice(&seq.to_le_bytes());
    v
}

fn gen_key(rng: &mut SmallRng, cfg: &ExploreConfig) -> Vec<u8> {
    KeySpace::U64.key(rng.gen_range(0..cfg.keys))
}

/// Draws the next operation for worker `tid` (op `seq`). Weights roughly
/// follow a write-heavy YCSB mix, with a slice of batched reads and scans
/// so the checker exercises interval-sharing events.
fn gen_op(rng: &mut SmallRng, cfg: &ExploreConfig, tid: u32, seq: u64) -> Op {
    let mut roll = rng.gen_range(0u32..100);
    if !cfg.multi_ops && roll >= 82 {
        roll = 0; // fold the batched/scan slice into point gets
    }
    match roll {
        0..=39 => Op::Get {
            key: gen_key(rng, cfg),
        },
        40..=59 => Op::Insert {
            key: gen_key(rng, cfg),
            value: value_bytes(tid, seq),
        },
        60..=71 => Op::Update {
            key: gen_key(rng, cfg),
            value: value_bytes(tid, seq),
        },
        72..=81 => Op::Delete {
            key: gen_key(rng, cfg),
        },
        82..=89 => {
            let n = rng.gen_range(2usize..=4);
            Op::MultiGet {
                keys: (0..n).map(|_| gen_key(rng, cfg)).collect(),
            }
        }
        90..=94 => {
            let a = gen_key(rng, cfg);
            let b = gen_key(rng, cfg);
            let (low, high) = if a <= b { (a, b) } else { (b, a) };
            Op::Scan { low, high }
        }
        _ => Op::ScanN {
            low: gen_key(rng, cfg),
            limit: rng.gen_range(1usize..=4),
        },
    }
}

/// Executes `op` against a worker and shapes the result for the history —
/// the single point where [`lincheck::Op`] meets [`WorkerClient`] (also
/// used by the integration tests that record unscheduled histories).
pub fn apply_op(w: &mut WorkerClient, op: &Op) -> Ret {
    apply_op_pipelined(w, op, 1)
}

/// [`apply_op`] with an explicit pipeline depth: at depth > 1 the batched
/// reads run through the pipelined op scheduler, so a lincheck run
/// exercises cross-op in-flight interleavings under the lock-step
/// schedule.
pub fn apply_op_pipelined(w: &mut WorkerClient, op: &Op, depth: usize) -> Ret {
    match op {
        Op::Get { key } => Ret::Got(w.get(key)),
        Op::Insert { key, value } => {
            w.insert(key, value);
            Ret::Inserted
        }
        Op::Update { key, value } => Ret::Updated(w.update(key, value)),
        Op::Delete { key } => Ret::Deleted(w.remove(key)),
        Op::MultiGet { keys } => {
            let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
            if depth > 1 {
                Ret::MultiGot(w.multi_get_pipelined(&refs, depth))
            } else {
                Ret::MultiGot(w.multi_get(&refs))
            }
        }
        Op::Scan { low, high } => Ret::Scanned(w.scan_pairs(low, high)),
        Op::ScanN { low, limit } => Ret::Scanned(w.scan_n(low, *limit)),
    }
}

/// One full run: build the system, record a serial preload, then drive
/// `cfg.threads` workers through the lock-step schedule and check the
/// recorded history.
///
/// # Panics
///
/// Panics on substrate errors and on worker panics (an index bug surfaced
/// by the schedule — the `lincheck_explorer` binary catches these and
/// reports the trace that provoked them).
pub fn run_scheduled(cfg: &ExploreConfig, mode: ScheduleMode) -> RunOutput {
    let handle = cfg.system.build(64 << 20, Some(1 << 20));
    let num_cns = handle.cluster().config().num_cns;
    let rec = Arc::new(HistoryRecorder::new());

    // Conservation window opens here: index creation's own verbs are
    // excluded, every client minted below is covered (a client's setup
    // verbs land in its own cumulative stats).
    let cluster_base = handle.cluster().cluster_stats();
    let mut client_sum;

    // Serial preload: half the key space, recorded so the checker knows
    // the initial state. Runs before the schedule exists, stamped by the
    // recorder's own clock.
    {
        let mut loader = handle.worker(0);
        let pc = preload_client(cfg);
        for i in 0..cfg.keys / 2 {
            let key = KeySpace::U64.key(i);
            let value = value_bytes(pc, i);
            let op = Op::Insert {
                key: key.clone(),
                value: value.clone(),
            };
            let id = rec.invoke_now(pc, op);
            loader.insert(&key, &value);
            rec.respond_now(id, Ret::Inserted);
        }
        // Drop out of epoch gating: the loader never scans again, and a
        // stale pin slot would block every scheduled worker's frees.
        loader.reclaim_deregister();
        client_sum = loader.net_stats();
    }

    let schedule = match &mode {
        ScheduleMode::Record(sc) => Schedule::new(sc.clone()),
        ScheduleMode::Replay(trace) => Schedule::replay(trace.clone()),
    };
    // Scheduled timestamps continue where the preload clock stopped, so
    // the history's virtual time is monotonic across the phase change.
    schedule.set_base_step(rec.clock());
    if cfg.tear_hook {
        schedule.set_tear_hook(Some(Arc::new(TornLeafHook)));
    }

    // Build and register workers from the main thread in a fixed order:
    // registration order defines trace participant ids.
    let mut workers = Vec::with_capacity(cfg.threads as usize);
    for t in 0..cfg.threads {
        let mut w = handle.worker((t as u16) % num_cns);
        w.attach_schedule(schedule.register());
        // Head-sample every pipelined op: scheduled runs are small and a
        // violation report wants the full causal picture, not a tail.
        w.set_trace_sampling(1, obs::DEFAULT_TAIL_K);
        w.set_trace_worker(t);
        workers.push(w);
    }

    let (mut telemetry, mut traces, net_sum, clock_max) = thread::scope(|s| {
        let joins: Vec<_> = workers
            .into_iter()
            .enumerate()
            .map(|(t, mut w)| {
                let rec = Arc::clone(&rec);
                let tid = t as u32;
                s.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(
                        cfg.workload_seed ^ (tid as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    for seq in 0..cfg.ops_per_thread {
                        let op = gen_op(&mut rng, cfg, tid, seq);
                        let ts = w.schedule_tick().unwrap_or_else(|| rec.next_ts());
                        let id = rec.invoke(tid, op.clone(), ts);
                        let ret = apply_op_pipelined(&mut w, &op, cfg.pipeline_depth);
                        let ts = w.schedule_tick().unwrap_or_else(|| rec.next_ts());
                        rec.respond(id, ret, ts);
                    }
                    let reg = w.telemetry();
                    let traces = w.take_traces();
                    let net = w.net_stats();
                    let clock = w.clock_ns();
                    drop(w); // deregisters the schedule participant
                    (reg, traces, net, clock)
                })
            })
            .collect();
        let mut merged = obs::Registry::new();
        let mut traces = Vec::new();
        let mut net_sum = dm_sim::ClientStats::default();
        let mut clock_max = 0u64;
        for j in joins {
            let (reg, t, net, clock) = j.join().expect("lincheck worker panicked");
            merged.merge(&reg);
            traces.extend(t);
            net_sum.merge(&net);
            clock_max = clock_max.max(clock);
        }
        (merged, traces, net_sum, clock_max)
    });
    telemetry.merge(&handle.index_telemetry());
    traces.sort_by_key(|t| t.id);
    client_sum.merge(&net_sum);

    // Close the conservation window and run the health monitor; detector
    // findings land in the merged registry as `health.*` counters so a
    // failure report carries the verdict alongside the raw ledgers.
    let cluster_window = handle.cluster().cluster_stats().since(&cluster_base);
    let health = obs::evaluate_health(&cluster_window, &telemetry, &obs::HealthConfig::default());
    health.stamp(&mut telemetry);
    let metrics = obs::MetricsReport {
        cluster: cluster_window,
        client_sum,
        window_ns: clock_max.max(1),
        samples: None,
        health,
    };

    let trace = schedule.trace();
    let steps = schedule.steps();
    let history = Arc::try_unwrap(rec)
        .expect("recorder still shared after join")
        .finish();
    let outcome = check_history(&history, &cfg.check);
    RunOutput {
        history,
        trace,
        outcome,
        steps,
        telemetry,
        traces,
        metrics,
    }
}

/// Binary-searches the shortest failing prefix of `full` (replay past the
/// prefix falls back to fault-free round-robin, so every prefix is a
/// complete schedule). Returns the minimal prefix and its failing run.
///
/// Failure is not guaranteed monotonic in prefix length, so this is the
/// standard greedy approximation: the returned prefix fails, and no probed
/// shorter prefix did.
///
/// # Panics
///
/// Panics if the full trace does not fail when replayed.
pub fn shrink_failing_trace(
    cfg: &ExploreConfig,
    full: &[TraceStep],
) -> (Vec<TraceStep>, RunOutput) {
    let mut lo = 0usize;
    let mut hi = full.len();
    let mut failing: Option<RunOutput> = None;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let out = run_scheduled(cfg, ScheduleMode::Replay(full[..mid].to_vec()));
        if out.outcome.is_linearizable() {
            lo = mid + 1;
        } else {
            hi = mid;
            failing = Some(out);
        }
    }
    let out = failing.unwrap_or_else(|| {
        let out = run_scheduled(cfg, ScheduleMode::Replay(full[..hi].to_vec()));
        assert!(
            !out.outcome.is_linearizable(),
            "full trace no longer fails on replay"
        );
        out
    });
    (full[..hi].to_vec(), out)
}

/// Whether `op` reads or writes `key` (scans touch their whole range).
fn op_touches(op: &Op, key: &[u8]) -> bool {
    match op {
        Op::Get { key: k }
        | Op::Insert { key: k, .. }
        | Op::Update { key: k, .. }
        | Op::Delete { key: k } => k.as_slice() == key,
        Op::MultiGet { keys } => keys.iter().any(|k| k.as_slice() == key),
        Op::Scan { low, high } => low.as_slice() <= key && key <= high.as_slice(),
        Op::ScanN { low, .. } => key >= low.as_slice(),
    }
}

/// Renders a failing run as a self-contained text report: the config and
/// seed needed to reproduce, the minimal trace (one `pid:delay:tear` step
/// per line, the [`TraceStep`] display format), the checker's per-key
/// violation report, the causal traces of operations overlapping the
/// violating window (matched by NIC grant step), and the run's telemetry.
pub fn failure_report(
    cfg: &ExploreConfig,
    seed: u64,
    minimal: &[TraceStep],
    out: &RunOutput,
) -> String {
    use std::fmt::Write as _;
    let mut r = String::new();
    let _ = writeln!(r, "lincheck failure: {}", cfg.system.label());
    let _ = writeln!(
        r,
        "config: threads={} keys={} ops_per_thread={} workload_seed={:#x} schedule_seed={:#x}",
        cfg.threads, cfg.keys, cfg.ops_per_thread, cfg.workload_seed, seed
    );
    let _ = writeln!(
        r,
        "history: {} events, digest {:#018x}, {} schedule steps",
        out.history.len(),
        out.history.digest(),
        out.steps
    );
    match &out.outcome {
        Outcome::Violation(v) => {
            let _ = writeln!(r, "\nviolation on key {:02x?}:\n{}", v.key, v.report);
        }
        Outcome::ResourceExhausted { key, steps } => {
            let _ = writeln!(
                r,
                "\nchecker budget exhausted on key {key:02x?} after {steps} steps"
            );
        }
        Outcome::Linearizable { .. } => {
            let _ = writeln!(r, "\n(no violation — report generated for a passing run)");
        }
    }
    let _ = writeln!(r, "\nminimal failing trace ({} steps):", minimal.len());
    for step in minimal {
        let _ = writeln!(r, "  {step}");
    }
    if let Outcome::Violation(v) = &out.outcome {
        // The violating window in schedule steps: the span of every
        // recorded event touching the key. Traces attach when one of
        // their NIC bursts was granted inside it.
        let window = out
            .history
            .events
            .iter()
            .filter(|e| op_touches(&e.op, &v.key))
            .fold(None::<(u64, u64)>, |w, e| {
                let (lo, hi) = w.unwrap_or((e.invoke_ts, e.response_ts));
                Some((lo.min(e.invoke_ts), hi.max(e.response_ts)))
            });
        if let Some((lo, hi)) = window {
            let overlapping: Vec<&obs::OpTrace> = out
                .traces
                .iter()
                .filter(|t| {
                    t.bursts.iter().any(|ev| match ev {
                        dm_sim::trace::TransportEvent::Burst(b) => {
                            b.grant_step.is_some_and(|s| lo <= s && s <= hi)
                        }
                        dm_sim::trace::TransportEvent::Advance { .. } => false,
                    })
                })
                .collect();
            let _ = writeln!(
                r,
                "\ncausal traces overlapping the violation window (steps {lo}..={hi}): \
                 {} of {} retained",
                overlapping.len(),
                out.traces.len()
            );
            for t in &overlapping {
                let cp = obs::critical_path(t);
                let _ = writeln!(
                    r,
                    "  trace {:#018x} {:?} [{}..{}]ns retries={} queue={} fusion={} \
                     service={} stall={} compute={}{}",
                    t.id,
                    t.kind,
                    t.begin_ns,
                    t.end_ns,
                    t.retries,
                    cp.queue_ns,
                    cp.fusion_ns,
                    cp.service_ns,
                    cp.stall_ns,
                    cp.compute_ns,
                    if cp.is_exact() { "" } else { " (inexact)" }
                );
            }
            if !overlapping.is_empty() {
                let full: Vec<obs::OpTrace> = overlapping.into_iter().cloned().collect();
                let _ = writeln!(r, "\ntrace export: {}", obs::export_chrome(&full));
            }
        }
    }
    let _ = writeln!(r, "\ntelemetry: {}", out.telemetry.to_json());
    let _ = writeln!(r, "\n{}", out.metrics.render_text());
    let _ = writeln!(r, "metrics: {}", out.metrics.to_json());
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(system: System) -> ExploreConfig {
        ExploreConfig {
            system,
            threads: 3,
            keys: 8,
            ops_per_thread: 40,
            workload_seed: 11,
            tear_hook: true,
            multi_ops: true,
            pipeline_depth: 1,
            check: CheckConfig::default(),
        }
    }

    #[test]
    fn scheduled_run_is_deterministic_and_linearizable() {
        let cfg = tiny(System::Sphinx);
        let mode = ScheduleMode::Record(ScheduleConfig::adversarial(7));
        let a = run_scheduled(&cfg, mode.clone());
        let b = run_scheduled(&cfg, mode);
        assert!(a.outcome.is_linearizable(), "run A: {:?}", a.outcome);
        assert!(b.outcome.is_linearizable(), "run B: {:?}", b.outcome);
        assert_eq!(a.history.digest(), b.history.digest());
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn replay_reproduces_the_recorded_history() {
        let cfg = tiny(System::Art);
        let rec = run_scheduled(&cfg, ScheduleMode::Record(ScheduleConfig::adversarial(3)));
        assert!(rec.outcome.is_linearizable(), "{:?}", rec.outcome);
        let rep = run_scheduled(&cfg, ScheduleMode::Replay(rec.trace.clone()));
        assert_eq!(rec.history.digest(), rep.history.digest());
        assert_eq!(rec.trace, rep.trace);
    }

    #[test]
    fn bptree_runs_under_schedule() {
        let cfg = tiny(System::BpTree);
        let out = run_scheduled(&cfg, ScheduleMode::Record(ScheduleConfig::adversarial(5)));
        assert!(out.outcome.is_linearizable(), "{:?}", out.outcome);
        assert!(out.steps > 0);
    }
}
