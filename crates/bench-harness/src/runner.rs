//! The multi-worker, virtual-time workload runner.
//!
//! Workers are OS threads, each owning a [`WorkerClient`] with its own
//! virtual clock; throughput and latency are computed from **virtual**
//! time, so results are meaningful regardless of host core count (the
//! simulation thesis of DESIGN.md §2). Between the load and run phases the
//! NIC queues and worker clocks are reset, and the run phase starts with a
//! warm-up fraction so caches reach steady state before measurement.

use std::sync::{Arc, Barrier, Mutex};

use dm_sim::{ClientStats, ClusterStats, LatencyHistogram};
use ycsb::{value_for, KeySpace, Op, OpStream, SharedInsertCursor, Workload};

use crate::gate::VirtualGate;
use crate::systems::{SystemHandle, WorkerClient};

/// How far ahead of the slowest worker a clock may run (see
/// [`VirtualGate`]). Roughly two operations at the common three-round-trip
/// cost.
const GATE_WINDOW_NS: u64 = 15_000;

/// Parameters of one measured run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Key dataset.
    pub keyspace: KeySpace,
    /// Preloaded key count.
    pub num_keys: u64,
    /// Workload mix.
    pub workload: Workload,
    /// Total worker count, distributed round-robin over the CNs.
    pub workers: usize,
    /// Measured operations per worker.
    pub ops_per_worker: u64,
    /// Warm-up operations per worker (run before clocks reset).
    pub warmup_per_worker: u64,
    /// Base RNG seed.
    pub seed: u64,
    /// Operations kept in flight per worker on the read path. `1` keeps
    /// the legacy blocking loop; larger depths chunk consecutive YCSB
    /// reads through [`WorkerClient::multi_get_pipelined`] so their round
    /// trips fuse into shared doorbells (see DESIGN.md "Pipelined
    /// execution").
    pub pipeline_depth: usize,
    /// Uniform head-sampling period for causal tracing: every N-th leased
    /// op is traced unconditionally. `0` disables head sampling (the
    /// always-on tail sampler still runs when `trace_tail_k > 0`).
    pub trace_head_every: u64,
    /// Tail-retention depth for causal tracing: each worker keeps its
    /// `trace_tail_k` slowest and `trace_tail_k` most-retried operations.
    /// `0` together with `trace_head_every == 0` turns tracing off.
    pub trace_tail_k: usize,
    /// Metrics-sampling interval on the virtual clock, ns. Worker 0
    /// polls per-MN gauges into a ring-buffer [`obs::Sampler`] whenever an
    /// op boundary crosses the interval; `0` (the default everywhere)
    /// turns time-series sampling off. Sampling reads atomics only — it
    /// never issues verbs or advances any virtual clock — but mid-run
    /// gauge values depend on thread interleaving, so byte-stable exports
    /// need `workers == 1`.
    pub sample_interval_ns: u64,
    /// Ring capacity (rows) for the metrics sampler; when the run outlives
    /// `capacity × interval` the oldest rows are overwritten and counted.
    pub sample_capacity: usize,
}

impl RunConfig {
    /// Reads the per-worker pipeline depth from the `SPHINX_PIPELINE_DEPTH`
    /// environment variable (the harness-wide flag for the op scheduler),
    /// falling back to `default` when unset or unparsable. Binaries pass
    /// `1` to keep their checked-in results comparable; the pipelined
    /// artifacts pass `node_engine::pipeline::DEFAULT_DEPTH` (8).
    pub fn depth_from_env(default: usize) -> usize {
        std::env::var("SPHINX_PIPELINE_DEPTH")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&d| d >= 1)
            .unwrap_or(default)
    }

    /// A laptop-scale default: 100k keys, 24 workers, 2k measured ops per
    /// worker.
    pub fn quick(keyspace: KeySpace, workload: Workload) -> Self {
        RunConfig {
            keyspace,
            num_keys: 100_000,
            workload,
            workers: 24,
            ops_per_worker: 2_000,
            warmup_per_worker: 400,
            seed: 0xBEAC_0001,
            pipeline_depth: 1,
            trace_head_every: 0,
            trace_tail_k: obs::DEFAULT_TAIL_K,
            sample_interval_ns: 0,
            sample_capacity: 0,
        }
    }
}

/// Aggregated outcome of a run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Throughput in million operations per second (virtual time).
    pub mops: f64,
    /// Mean operation latency, microseconds.
    pub avg_latency_us: f64,
    /// 99th-percentile latency, microseconds.
    pub p99_latency_us: f64,
    /// Total measured operations.
    pub total_ops: u64,
    /// Network round trips per operation.
    pub round_trips_per_op: f64,
    /// Physical doorbells per operation. Equal to
    /// [`round_trips_per_op`](Self::round_trips_per_op) when every
    /// operation runs blocking; lower when pipelining fuses round trips
    /// from different in-flight operations into one doorbell.
    pub doorbells_per_op: f64,
    /// Wire bytes per operation.
    pub bytes_per_op: f64,
    /// Merged telemetry: every worker's phase-attributed registry plus the
    /// index-level counters (SFC filter stats, fault injections). Spans
    /// cover each worker's whole lifetime — warm-up included — unlike the
    /// scalar fields above, which cover only the measured window.
    pub telemetry: obs::Registry,
    /// Retained causal traces from the measured window, across all
    /// workers (tail-sampled slowest/most-retried plus any uniform head
    /// samples; see [`obs::Tracer`]). Warm-up traces are discarded at the
    /// phase barrier. Empty when tracing is off or the system has no
    /// pipelined path.
    pub traces: Vec<obs::OpTrace>,
    /// The cluster metrics plane's view of the measured window: per-MN
    /// server-side accounting, the summed client-side ledger (which the
    /// server side provably conserves against — the window runs from the
    /// post-warm-up barrier through each worker's reclaim deregistration),
    /// worker 0's time-series samples when sampling was on, and the
    /// health monitor's verdict. Exports as `sphinx.metrics.v1`.
    pub metrics: obs::MetricsReport,
}

/// Loads `num_keys` keys (indexes `0..num_keys`) through `load_workers`
/// parallel workers. Values are the deterministic 64-byte YCSB payloads.
///
/// # Panics
///
/// Panics on index errors (bench context).
pub fn load_phase(handle: &SystemHandle, keyspace: KeySpace, num_keys: u64, load_workers: usize) {
    let num_cns = handle.cluster().num_cns();
    std::thread::scope(|s| {
        for w in 0..load_workers {
            let handle = handle.clone();
            s.spawn(move || {
                let mut client = handle.worker((w % num_cns as usize) as u16);
                let mut i = w as u64;
                while i < num_keys {
                    client.insert(&keyspace.key(i), &value_for(i, 0));
                    i += load_workers as u64;
                }
                // Leave epoch gating: a dropped loader's stale pin slot
                // would block every later worker's reclamation.
                client.reclaim_deregister();
            });
        }
    });
    // The load phase must not pollute run-phase clocks or NIC queues.
    handle.cluster().reset_network();
}

/// Sorted initial keys — used to translate YCSB `Scan(start, len)` into
/// the `[low, high]` ranges the indexes serve.
pub fn sorted_keys(keyspace: KeySpace, num_keys: u64) -> Arc<Vec<Vec<u8>>> {
    let mut keys: Vec<Vec<u8>> = (0..num_keys).map(|i| keyspace.key(i)).collect();
    keys.sort();
    Arc::new(keys)
}

struct WorkerOutcome {
    clock_ns: u64,
    ops: u64,
    hist: LatencyHistogram,
    round_trips: u64,
    doorbells: u64,
    bytes: u64,
    telemetry: obs::Registry,
    traces: Vec<obs::OpTrace>,
    /// Client-side network delta over the conservation window: measured
    /// loop *plus* the reclaim deregistration verbs, so it balances the
    /// cluster-side snapshot taken after every worker joined.
    net_full: ClientStats,
    /// Worker 0's metrics sampler (None for other workers / sampling off).
    samples: Option<obs::Sampler>,
}

/// Column schema for the metrics sampler: three gauges per MN plus the
/// driving worker's client and SFC scalars.
fn sampler_columns(num_mns: u16) -> Vec<String> {
    let mut cols = Vec::with_capacity(num_mns as usize * 3 + 4);
    for m in 0..num_mns {
        cols.push(format!("mn{m}.verbs"));
        cols.push(format!("mn{m}.doorbells"));
        cols.push(format!("mn{m}.queue_ns"));
    }
    for c in [
        "client.round_trips",
        "client.bytes",
        "sfc.lookups",
        "sfc.frozen",
    ] {
        cols.push(c.to_string());
    }
    cols
}

/// Executes the measured phase and aggregates virtual-time results.
///
/// # Panics
///
/// Panics on index errors (bench context).
pub fn run_phase(handle: &SystemHandle, cfg: &RunConfig) -> RunResult {
    let num_cns = handle.cluster().num_cns() as usize;
    let cursor = SharedInsertCursor::new(cfg.num_keys);
    let sorted = if cfg.workload.scan > 0.0 {
        sorted_keys(cfg.keyspace, cfg.num_keys)
    } else {
        Arc::new(Vec::new())
    };

    let barrier = Arc::new(Barrier::new(cfg.workers));
    let gate = Arc::new(VirtualGate::new(cfg.workers, GATE_WINDOW_NS));
    // The leader snapshots the cluster-side accounting between the two
    // post-warm-up barriers (every worker is blocked, so no verb is in
    // flight): the conservation window's server-side base.
    let cluster_base: Arc<Mutex<Option<ClusterStats>>> = Arc::new(Mutex::new(None));
    let outcomes: Vec<WorkerOutcome> = std::thread::scope(|s| {
        let mut joins = Vec::with_capacity(cfg.workers);
        for w in 0..cfg.workers {
            let handle = handle.clone();
            let cursor = cursor.clone();
            let sorted = sorted.clone();
            let cfg = cfg.clone();
            let barrier = barrier.clone();
            let gate = gate.clone();
            let cluster_base = cluster_base.clone();
            joins.push(s.spawn(move || {
                let mut client = handle.worker((w % num_cns) as u16);
                client.set_trace_sampling(cfg.trace_head_every, cfg.trace_tail_k);
                client.set_trace_worker(w as u32);
                let mut stream = OpStream::with_cursor(
                    cfg.workload.clone(),
                    cfg.num_keys,
                    cfg.seed ^ (w as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    cursor,
                );
                // Warm-up: populate filter/node caches…
                for _ in 0..cfg.warmup_per_worker {
                    execute_op(&mut client, &mut stream, &cfg, &sorted);
                    gate.sync(w, client.clock_ns());
                }
                // …then synchronize everyone, drain the virtual NIC queues
                // exactly once, and restart all clocks at zero so the
                // measured interval is a clean steady-state window.
                gate.finish(w);
                if barrier.wait().is_leader() {
                    handle.cluster().reset_network();
                    gate.reset();
                    *cluster_base.lock().expect("cluster base poisoned") =
                        Some(handle.cluster().cluster_stats());
                }
                barrier.wait();
                client.set_clock_ns(0);
                // Warm-up samples would pollute the tail ranking (their
                // clocks predate the reset): drop them at the barrier.
                client.take_traces();
                let base_stats = client.net_stats();

                // Worker 0 drives the metrics sampler. `cfg!` rather than
                // an attribute so the off path stays type-checked; the
                // optimizer removes it entirely with telemetry disabled.
                let cluster = handle.cluster();
                let num_mns = cluster.num_mns();
                let mut sampler = (w == 0
                    && cfg.sample_interval_ns > 0
                    && cfg!(feature = "telemetry"))
                .then(|| {
                    obs::Sampler::new(
                        sampler_columns(num_mns),
                        cfg.sample_capacity.max(1),
                        cfg.sample_interval_ns,
                    )
                });
                let mut row: Vec<u64> =
                    Vec::with_capacity(sampler.as_ref().map_or(0, |s| s.width()));
                let hist = {
                    let mut probe = |c: &WorkerClient| {
                        let Some(s) = sampler.as_mut() else { return };
                        let now = c.clock_ns();
                        if !s.due(now) {
                            return;
                        }
                        row.clear();
                        for m in 0..num_mns {
                            let mn = cluster.mn_stats(m).expect("mn id in range");
                            row.push(mn.verbs());
                            row.push(mn.doorbells);
                            row.push(mn.queue_ns);
                        }
                        let net = c.net_stats();
                        row.push(net.round_trips);
                        row.push(net.bytes_total());
                        let sfc = c.sfc_gauges();
                        row.push(sfc[0]);
                        row.push(sfc[2]);
                        s.record(now, &row);
                    };
                    measured_loop(
                        &mut client,
                        &mut stream,
                        &cfg,
                        &sorted,
                        &gate,
                        w,
                        &mut probe,
                    )
                };
                gate.finish(w);
                let net = client.net_stats().since(&base_stats);
                let clock_ns = client.clock_ns();
                let telemetry = client.telemetry();
                let traces = client.take_traces();
                client.reclaim_deregister();
                WorkerOutcome {
                    clock_ns,
                    ops: cfg.ops_per_worker,
                    hist,
                    round_trips: net.round_trips,
                    doorbells: net.doorbells,
                    bytes: net.bytes_total(),
                    telemetry,
                    traces,
                    // Includes the deregistration verbs: the cluster-side
                    // snapshot is taken after workers join, so the client
                    // ledger must cover everything up to that point.
                    net_full: client.net_stats().since(&base_stats),
                    samples: sampler,
                }
            }));
        }
        joins
            .into_iter()
            .map(|j| j.join().expect("worker panicked"))
            .collect()
    });

    let total_ops: u64 = outcomes.iter().map(|o| o.ops).sum();
    let makespan_ns = outcomes
        .iter()
        .map(|o| o.clock_ns)
        .max()
        .unwrap_or(1)
        .max(1);
    let mut hist = LatencyHistogram::new();
    for o in &outcomes {
        hist.merge(&o.hist);
    }
    let round_trips: u64 = outcomes.iter().map(|o| o.round_trips).sum();
    let doorbells: u64 = outcomes.iter().map(|o| o.doorbells).sum();
    let bytes: u64 = outcomes.iter().map(|o| o.bytes).sum();
    let mut telemetry = handle.index_telemetry();
    for o in &outcomes {
        telemetry.merge(&o.telemetry);
    }

    // Close the conservation window: every worker has joined (and
    // deregistered), so the cluster-side delta must balance the summed
    // client-side deltas exactly.
    let cluster_base = cluster_base
        .lock()
        .expect("cluster base poisoned")
        .take()
        .expect("leader must snapshot the cluster base");
    let cluster_window = handle.cluster().cluster_stats().since(&cluster_base);
    let mut client_sum = ClientStats::default();
    for o in &outcomes {
        client_sum.merge(&o.net_full);
    }
    let health = obs::evaluate_health(&cluster_window, &telemetry, &obs::HealthConfig::default());
    health.stamp(&mut telemetry);

    let mut outcomes = outcomes;
    let samples = outcomes.iter_mut().find_map(|o| o.samples.take());
    let mut traces: Vec<obs::OpTrace> = outcomes.into_iter().flat_map(|o| o.traces).collect();
    traces.sort_by_key(|t| t.id);
    let metrics = obs::MetricsReport {
        cluster: cluster_window,
        client_sum,
        window_ns: makespan_ns,
        samples,
        health,
    };
    RunResult {
        mops: total_ops as f64 / makespan_ns as f64 * 1e3,
        avg_latency_us: hist.mean_ns() as f64 / 1e3,
        p99_latency_us: hist.quantile_ns(0.99) as f64 / 1e3,
        total_ops,
        round_trips_per_op: round_trips as f64 / total_ops as f64,
        doorbells_per_op: doorbells as f64 / total_ops as f64,
        bytes_per_op: bytes as f64 / total_ops as f64,
        telemetry,
        traces,
        metrics,
    }
}

/// The measured window: the depth-1 path times every op individually; at
/// larger depths consecutive YCSB reads are chunked through
/// [`WorkerClient::multi_get_pipelined`] so up to `pipeline_depth` lookups
/// share the wire, while writes/scans flush the chunk and run blocking —
/// each worker's stream keeps its program order either way. `probe` runs
/// at every gate-sync op boundary (the metrics sampler's hook; a no-op
/// closure when sampling is off).
fn measured_loop(
    client: &mut WorkerClient,
    stream: &mut OpStream,
    cfg: &RunConfig,
    sorted: &[Vec<u8>],
    gate: &VirtualGate,
    w: usize,
    probe: &mut dyn FnMut(&WorkerClient),
) -> LatencyHistogram {
    let mut hist = LatencyHistogram::new();
    if cfg.pipeline_depth <= 1 {
        for _ in 0..cfg.ops_per_worker {
            let before = client.clock_ns();
            execute_op(client, stream, cfg, sorted);
            hist.record(client.clock_ns() - before);
            // Keep virtual clocks in lockstep so the NIC FIFO sees
            // near-monotonic arrivals (see gate.rs).
            gate.sync(w, client.clock_ns());
            probe(client);
        }
        return hist;
    }
    // Chunks hold a few pipeline-fulls so admission never starves the
    // in-flight window, without letting one worker's clock run far ahead
    // of the gate between sync points.
    let chunk = cfg.pipeline_depth * 4;
    let mut pending: Vec<u64> = Vec::with_capacity(chunk);
    for _ in 0..cfg.ops_per_worker {
        match stream.next_op() {
            Op::Read(idx) => {
                pending.push(idx);
                if pending.len() >= chunk {
                    flush_reads(client, &mut pending, cfg, &mut hist);
                    gate.sync(w, client.clock_ns());
                    probe(client);
                }
            }
            op => {
                flush_reads(client, &mut pending, cfg, &mut hist);
                let before = client.clock_ns();
                apply_op(client, op, cfg, sorted);
                hist.record(client.clock_ns() - before);
                gate.sync(w, client.clock_ns());
                probe(client);
            }
        }
    }
    flush_reads(client, &mut pending, cfg, &mut hist);
    gate.sync(w, client.clock_ns());
    probe(client);
    hist
}

/// Drains the buffered read chunk through the pipelined path. Latency is
/// attributed evenly: the chunk's virtual-time span divided by its length
/// (individual completion times interleave and are not observable at this
/// layer).
fn flush_reads(
    client: &mut WorkerClient,
    pending: &mut Vec<u64>,
    cfg: &RunConfig,
    hist: &mut LatencyHistogram,
) {
    if pending.is_empty() {
        return;
    }
    let keys: Vec<Vec<u8>> = pending.iter().map(|&i| cfg.keyspace.key(i)).collect();
    let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
    let before = client.clock_ns();
    client.multi_get_pipelined(&refs, cfg.pipeline_depth);
    let per_op = (client.clock_ns() - before) / pending.len() as u64;
    for _ in 0..pending.len() {
        hist.record(per_op);
    }
    pending.clear();
}

fn execute_op(
    client: &mut WorkerClient,
    stream: &mut OpStream,
    cfg: &RunConfig,
    sorted: &[Vec<u8>],
) {
    apply_op(client, stream.next_op(), cfg, sorted);
}

fn apply_op(client: &mut WorkerClient, op: Op, cfg: &RunConfig, sorted: &[Vec<u8>]) {
    match op {
        Op::Read(idx) => {
            client.get(&cfg.keyspace.key(idx));
        }
        Op::Update(idx) => {
            client.update(&cfg.keyspace.key(idx), &value_for(idx, 1));
        }
        Op::Insert(idx) => {
            client.insert(&cfg.keyspace.key(idx), &value_for(idx, 0));
        }
        Op::ReadModifyWrite(idx) => {
            let key = cfg.keyspace.key(idx);
            let version = client
                .get(&key)
                .map_or(0, |v| v.first().copied().unwrap_or(0) as u32);
            client.update(&key, &value_for(idx, version.wrapping_add(1)));
        }
        Op::Scan(idx, len) => {
            if sorted.is_empty() {
                return;
            }
            let j = (idx as usize) % sorted.len();
            let hi = (j + len.max(1) - 1).min(sorted.len() - 1);
            client.scan(&sorted[j], &sorted[hi]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems::System;

    #[test]
    fn quick_run_produces_sane_numbers() {
        let handle = System::Sphinx.build(64 << 20, Some(1 << 20));
        load_phase(&handle, KeySpace::U64, 2_000, 4);
        let cfg = RunConfig {
            keyspace: KeySpace::U64,
            num_keys: 2_000,
            workload: Workload::c(),
            workers: 6,
            ops_per_worker: 300,
            warmup_per_worker: 50,
            seed: 7,
            pipeline_depth: 1,
            trace_head_every: 0,
            trace_tail_k: obs::DEFAULT_TAIL_K,
            sample_interval_ns: 5_000,
            sample_capacity: 64,
        };
        let r = run_phase(&handle, &cfg);
        assert_eq!(r.total_ops, 1800);
        r.metrics
            .conservation()
            .expect("server-side accounting must conserve the client ledger");
        assert_eq!(r.metrics.health.checks, 4, "all detectors must run");
        assert!(r.metrics.window_ns > 0);
        assert!(r.mops > 0.0);
        assert!(
            r.avg_latency_us > 1.0,
            "latency below one RTT: {}",
            r.avg_latency_us
        );
        assert!(r.round_trips_per_op >= 1.0);
        #[cfg(feature = "telemetry")]
        {
            use obs::{OpKind, Phase};
            assert!(r.telemetry.total_ops() > 0, "spans must reach the registry");
            assert!(
                r.telemetry.phase(OpKind::Get, Phase::SfcProbe).count > 0,
                "gets must attribute SfcProbe intervals"
            );
            assert!(
                r.telemetry.phase(OpKind::Get, Phase::LeafRead).round_trips > 0,
                "gets must attribute LeafRead round trips"
            );
            assert!(
                r.telemetry.counter("sfc.lookups") > 0,
                "index-level SFC stats merged"
            );
            let samples = r.metrics.samples.as_ref().expect("sampler ran on worker 0");
            assert!(!samples.is_empty(), "sampler must capture rows");
            assert_eq!(
                r.telemetry.counter("health.checks"),
                4,
                "health verdict must be stamped into the registry"
            );
        }
    }

    #[test]
    fn pipelined_run_fuses_doorbells() {
        let handle = System::Sphinx.build(64 << 20, Some(1 << 20));
        load_phase(&handle, KeySpace::U64, 2_000, 4);
        let mk = |depth| RunConfig {
            keyspace: KeySpace::U64,
            num_keys: 2_000,
            workload: Workload::c(),
            workers: 4,
            ops_per_worker: 400,
            warmup_per_worker: 100,
            seed: 11,
            pipeline_depth: depth,
            trace_head_every: 0,
            trace_tail_k: obs::DEFAULT_TAIL_K,
            sample_interval_ns: 0,
            sample_capacity: 0,
        };
        let r1 = run_phase(&handle, &mk(1));
        let r8 = run_phase(&handle, &mk(8));
        // The conservation identity must survive doorbell fusion.
        r1.metrics.conservation().expect("depth-1 conservation");
        r8.metrics.conservation().expect("depth-8 conservation");
        // Pipelining rearranges round trips; it must not add any.
        assert!(
            (r8.round_trips_per_op - r1.round_trips_per_op).abs() < 0.25,
            "round trips changed: {} vs {}",
            r1.round_trips_per_op,
            r8.round_trips_per_op
        );
        assert!(
            r8.doorbells_per_op < r1.doorbells_per_op * 0.7,
            "depth 8 must fuse doorbells: {} vs {}",
            r1.doorbells_per_op,
            r8.doorbells_per_op
        );
        assert!(
            r8.mops > r1.mops * 1.3,
            "depth 8 must speed up YCSB-C: {} vs {} mops",
            r1.mops,
            r8.mops
        );
        assert!((r1.doorbells_per_op - r1.round_trips_per_op).abs() < 1e-9);
    }

    #[test]
    fn scan_workload_runs() {
        let handle = System::Smart.build(64 << 20, Some(1 << 20));
        load_phase(&handle, KeySpace::U64, 1_000, 4);
        let cfg = RunConfig {
            keyspace: KeySpace::U64,
            num_keys: 1_000,
            workload: Workload::e(),
            workers: 3,
            ops_per_worker: 30,
            warmup_per_worker: 5,
            seed: 7,
            pipeline_depth: 1,
            trace_head_every: 0,
            trace_tail_k: obs::DEFAULT_TAIL_K,
            sample_interval_ns: 0,
            sample_capacity: 0,
        };
        let r = run_phase(&handle, &cfg);
        assert!(r.total_ops == 90 && r.mops > 0.0);
    }

    #[test]
    fn load_phase_inserts_all_keys() {
        let handle = System::Art.build(64 << 20, None);
        load_phase(&handle, KeySpace::Email, 500, 3);
        let mut w = handle.worker(0);
        for i in (0..500).step_by(71) {
            assert!(
                w.get(&KeySpace::Email.key(i)).is_some(),
                "key {i} missing after load"
            );
        }
    }
}
