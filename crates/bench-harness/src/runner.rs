//! The multi-worker, virtual-time workload runner.
//!
//! Workers are OS threads, each owning a [`WorkerClient`] with its own
//! virtual clock; throughput and latency are computed from **virtual**
//! time, so results are meaningful regardless of host core count (the
//! simulation thesis of DESIGN.md §2). Between the load and run phases the
//! NIC queues and worker clocks are reset, and the run phase starts with a
//! warm-up fraction so caches reach steady state before measurement.

use std::sync::{Arc, Barrier};

use dm_sim::LatencyHistogram;
use ycsb::{value_for, KeySpace, Op, OpStream, SharedInsertCursor, Workload};

use crate::gate::VirtualGate;
use crate::systems::{SystemHandle, WorkerClient};

/// How far ahead of the slowest worker a clock may run (see
/// [`VirtualGate`]). Roughly two operations at the common three-round-trip
/// cost.
const GATE_WINDOW_NS: u64 = 15_000;

/// Parameters of one measured run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Key dataset.
    pub keyspace: KeySpace,
    /// Preloaded key count.
    pub num_keys: u64,
    /// Workload mix.
    pub workload: Workload,
    /// Total worker count, distributed round-robin over the CNs.
    pub workers: usize,
    /// Measured operations per worker.
    pub ops_per_worker: u64,
    /// Warm-up operations per worker (run before clocks reset).
    pub warmup_per_worker: u64,
    /// Base RNG seed.
    pub seed: u64,
    /// Operations kept in flight per worker on the read path. `1` keeps
    /// the legacy blocking loop; larger depths chunk consecutive YCSB
    /// reads through [`WorkerClient::multi_get_pipelined`] so their round
    /// trips fuse into shared doorbells (see DESIGN.md "Pipelined
    /// execution").
    pub pipeline_depth: usize,
    /// Uniform head-sampling period for causal tracing: every N-th leased
    /// op is traced unconditionally. `0` disables head sampling (the
    /// always-on tail sampler still runs when `trace_tail_k > 0`).
    pub trace_head_every: u64,
    /// Tail-retention depth for causal tracing: each worker keeps its
    /// `trace_tail_k` slowest and `trace_tail_k` most-retried operations.
    /// `0` together with `trace_head_every == 0` turns tracing off.
    pub trace_tail_k: usize,
}

impl RunConfig {
    /// Reads the per-worker pipeline depth from the `SPHINX_PIPELINE_DEPTH`
    /// environment variable (the harness-wide flag for the op scheduler),
    /// falling back to `default` when unset or unparsable. Binaries pass
    /// `1` to keep their checked-in results comparable; the pipelined
    /// artifacts pass `node_engine::pipeline::DEFAULT_DEPTH` (8).
    pub fn depth_from_env(default: usize) -> usize {
        std::env::var("SPHINX_PIPELINE_DEPTH")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&d| d >= 1)
            .unwrap_or(default)
    }

    /// A laptop-scale default: 100k keys, 24 workers, 2k measured ops per
    /// worker.
    pub fn quick(keyspace: KeySpace, workload: Workload) -> Self {
        RunConfig {
            keyspace,
            num_keys: 100_000,
            workload,
            workers: 24,
            ops_per_worker: 2_000,
            warmup_per_worker: 400,
            seed: 0xBEAC_0001,
            pipeline_depth: 1,
            trace_head_every: 0,
            trace_tail_k: obs::DEFAULT_TAIL_K,
        }
    }
}

/// Aggregated outcome of a run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Throughput in million operations per second (virtual time).
    pub mops: f64,
    /// Mean operation latency, microseconds.
    pub avg_latency_us: f64,
    /// 99th-percentile latency, microseconds.
    pub p99_latency_us: f64,
    /// Total measured operations.
    pub total_ops: u64,
    /// Network round trips per operation.
    pub round_trips_per_op: f64,
    /// Physical doorbells per operation. Equal to
    /// [`round_trips_per_op`](Self::round_trips_per_op) when every
    /// operation runs blocking; lower when pipelining fuses round trips
    /// from different in-flight operations into one doorbell.
    pub doorbells_per_op: f64,
    /// Wire bytes per operation.
    pub bytes_per_op: f64,
    /// Merged telemetry: every worker's phase-attributed registry plus the
    /// index-level counters (SFC filter stats, fault injections). Spans
    /// cover each worker's whole lifetime — warm-up included — unlike the
    /// scalar fields above, which cover only the measured window.
    pub telemetry: obs::Registry,
    /// Retained causal traces from the measured window, across all
    /// workers (tail-sampled slowest/most-retried plus any uniform head
    /// samples; see [`obs::Tracer`]). Warm-up traces are discarded at the
    /// phase barrier. Empty when tracing is off or the system has no
    /// pipelined path.
    pub traces: Vec<obs::OpTrace>,
}

/// Loads `num_keys` keys (indexes `0..num_keys`) through `load_workers`
/// parallel workers. Values are the deterministic 64-byte YCSB payloads.
///
/// # Panics
///
/// Panics on index errors (bench context).
pub fn load_phase(handle: &SystemHandle, keyspace: KeySpace, num_keys: u64, load_workers: usize) {
    let num_cns = handle.cluster().num_cns();
    std::thread::scope(|s| {
        for w in 0..load_workers {
            let handle = handle.clone();
            s.spawn(move || {
                let mut client = handle.worker((w % num_cns as usize) as u16);
                let mut i = w as u64;
                while i < num_keys {
                    client.insert(&keyspace.key(i), &value_for(i, 0));
                    i += load_workers as u64;
                }
                // Leave epoch gating: a dropped loader's stale pin slot
                // would block every later worker's reclamation.
                client.reclaim_deregister();
            });
        }
    });
    // The load phase must not pollute run-phase clocks or NIC queues.
    handle.cluster().reset_network();
}

/// Sorted initial keys — used to translate YCSB `Scan(start, len)` into
/// the `[low, high]` ranges the indexes serve.
pub fn sorted_keys(keyspace: KeySpace, num_keys: u64) -> Arc<Vec<Vec<u8>>> {
    let mut keys: Vec<Vec<u8>> = (0..num_keys).map(|i| keyspace.key(i)).collect();
    keys.sort();
    Arc::new(keys)
}

struct WorkerOutcome {
    clock_ns: u64,
    ops: u64,
    hist: LatencyHistogram,
    round_trips: u64,
    doorbells: u64,
    bytes: u64,
    telemetry: obs::Registry,
    traces: Vec<obs::OpTrace>,
}

/// Executes the measured phase and aggregates virtual-time results.
///
/// # Panics
///
/// Panics on index errors (bench context).
pub fn run_phase(handle: &SystemHandle, cfg: &RunConfig) -> RunResult {
    let num_cns = handle.cluster().num_cns() as usize;
    let cursor = SharedInsertCursor::new(cfg.num_keys);
    let sorted = if cfg.workload.scan > 0.0 {
        sorted_keys(cfg.keyspace, cfg.num_keys)
    } else {
        Arc::new(Vec::new())
    };

    let barrier = Arc::new(Barrier::new(cfg.workers));
    let gate = Arc::new(VirtualGate::new(cfg.workers, GATE_WINDOW_NS));
    let outcomes: Vec<WorkerOutcome> = std::thread::scope(|s| {
        let mut joins = Vec::with_capacity(cfg.workers);
        for w in 0..cfg.workers {
            let handle = handle.clone();
            let cursor = cursor.clone();
            let sorted = sorted.clone();
            let cfg = cfg.clone();
            let barrier = barrier.clone();
            let gate = gate.clone();
            joins.push(s.spawn(move || {
                let mut client = handle.worker((w % num_cns) as u16);
                client.set_trace_sampling(cfg.trace_head_every, cfg.trace_tail_k);
                client.set_trace_worker(w as u32);
                let mut stream = OpStream::with_cursor(
                    cfg.workload.clone(),
                    cfg.num_keys,
                    cfg.seed ^ (w as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    cursor,
                );
                // Warm-up: populate filter/node caches…
                for _ in 0..cfg.warmup_per_worker {
                    execute_op(&mut client, &mut stream, &cfg, &sorted);
                    gate.sync(w, client.clock_ns());
                }
                // …then synchronize everyone, drain the virtual NIC queues
                // exactly once, and restart all clocks at zero so the
                // measured interval is a clean steady-state window.
                gate.finish(w);
                if barrier.wait().is_leader() {
                    handle.cluster().reset_network();
                    gate.reset();
                }
                barrier.wait();
                client.set_clock_ns(0);
                // Warm-up samples would pollute the tail ranking (their
                // clocks predate the reset): drop them at the barrier.
                client.take_traces();
                let base_stats = client.net_stats();

                let hist = measured_loop(&mut client, &mut stream, &cfg, &sorted, &gate, w);
                gate.finish(w);
                let net = client.net_stats().since(&base_stats);
                let outcome = WorkerOutcome {
                    clock_ns: client.clock_ns(),
                    ops: cfg.ops_per_worker,
                    hist,
                    round_trips: net.round_trips,
                    doorbells: net.doorbells,
                    bytes: net.bytes_total(),
                    telemetry: client.telemetry(),
                    traces: client.take_traces(),
                };
                client.reclaim_deregister();
                outcome
            }));
        }
        joins
            .into_iter()
            .map(|j| j.join().expect("worker panicked"))
            .collect()
    });

    let total_ops: u64 = outcomes.iter().map(|o| o.ops).sum();
    let makespan_ns = outcomes
        .iter()
        .map(|o| o.clock_ns)
        .max()
        .unwrap_or(1)
        .max(1);
    let mut hist = LatencyHistogram::new();
    for o in &outcomes {
        hist.merge(&o.hist);
    }
    let round_trips: u64 = outcomes.iter().map(|o| o.round_trips).sum();
    let doorbells: u64 = outcomes.iter().map(|o| o.doorbells).sum();
    let bytes: u64 = outcomes.iter().map(|o| o.bytes).sum();
    let mut telemetry = handle.index_telemetry();
    for o in &outcomes {
        telemetry.merge(&o.telemetry);
    }
    let mut traces: Vec<obs::OpTrace> = outcomes.into_iter().flat_map(|o| o.traces).collect();
    traces.sort_by_key(|t| t.id);
    RunResult {
        mops: total_ops as f64 / makespan_ns as f64 * 1e3,
        avg_latency_us: hist.mean_ns() as f64 / 1e3,
        p99_latency_us: hist.quantile_ns(0.99) as f64 / 1e3,
        total_ops,
        round_trips_per_op: round_trips as f64 / total_ops as f64,
        doorbells_per_op: doorbells as f64 / total_ops as f64,
        bytes_per_op: bytes as f64 / total_ops as f64,
        telemetry,
        traces,
    }
}

/// The measured window: the depth-1 path times every op individually; at
/// larger depths consecutive YCSB reads are chunked through
/// [`WorkerClient::multi_get_pipelined`] so up to `pipeline_depth` lookups
/// share the wire, while writes/scans flush the chunk and run blocking —
/// each worker's stream keeps its program order either way.
fn measured_loop(
    client: &mut WorkerClient,
    stream: &mut OpStream,
    cfg: &RunConfig,
    sorted: &[Vec<u8>],
    gate: &VirtualGate,
    w: usize,
) -> LatencyHistogram {
    let mut hist = LatencyHistogram::new();
    if cfg.pipeline_depth <= 1 {
        for _ in 0..cfg.ops_per_worker {
            let before = client.clock_ns();
            execute_op(client, stream, cfg, sorted);
            hist.record(client.clock_ns() - before);
            // Keep virtual clocks in lockstep so the NIC FIFO sees
            // near-monotonic arrivals (see gate.rs).
            gate.sync(w, client.clock_ns());
        }
        return hist;
    }
    // Chunks hold a few pipeline-fulls so admission never starves the
    // in-flight window, without letting one worker's clock run far ahead
    // of the gate between sync points.
    let chunk = cfg.pipeline_depth * 4;
    let mut pending: Vec<u64> = Vec::with_capacity(chunk);
    for _ in 0..cfg.ops_per_worker {
        match stream.next_op() {
            Op::Read(idx) => {
                pending.push(idx);
                if pending.len() >= chunk {
                    flush_reads(client, &mut pending, cfg, &mut hist);
                    gate.sync(w, client.clock_ns());
                }
            }
            op => {
                flush_reads(client, &mut pending, cfg, &mut hist);
                let before = client.clock_ns();
                apply_op(client, op, cfg, sorted);
                hist.record(client.clock_ns() - before);
                gate.sync(w, client.clock_ns());
            }
        }
    }
    flush_reads(client, &mut pending, cfg, &mut hist);
    gate.sync(w, client.clock_ns());
    hist
}

/// Drains the buffered read chunk through the pipelined path. Latency is
/// attributed evenly: the chunk's virtual-time span divided by its length
/// (individual completion times interleave and are not observable at this
/// layer).
fn flush_reads(
    client: &mut WorkerClient,
    pending: &mut Vec<u64>,
    cfg: &RunConfig,
    hist: &mut LatencyHistogram,
) {
    if pending.is_empty() {
        return;
    }
    let keys: Vec<Vec<u8>> = pending.iter().map(|&i| cfg.keyspace.key(i)).collect();
    let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
    let before = client.clock_ns();
    client.multi_get_pipelined(&refs, cfg.pipeline_depth);
    let per_op = (client.clock_ns() - before) / pending.len() as u64;
    for _ in 0..pending.len() {
        hist.record(per_op);
    }
    pending.clear();
}

fn execute_op(
    client: &mut WorkerClient,
    stream: &mut OpStream,
    cfg: &RunConfig,
    sorted: &[Vec<u8>],
) {
    apply_op(client, stream.next_op(), cfg, sorted);
}

fn apply_op(client: &mut WorkerClient, op: Op, cfg: &RunConfig, sorted: &[Vec<u8>]) {
    match op {
        Op::Read(idx) => {
            client.get(&cfg.keyspace.key(idx));
        }
        Op::Update(idx) => {
            client.update(&cfg.keyspace.key(idx), &value_for(idx, 1));
        }
        Op::Insert(idx) => {
            client.insert(&cfg.keyspace.key(idx), &value_for(idx, 0));
        }
        Op::ReadModifyWrite(idx) => {
            let key = cfg.keyspace.key(idx);
            let version = client
                .get(&key)
                .map_or(0, |v| v.first().copied().unwrap_or(0) as u32);
            client.update(&key, &value_for(idx, version.wrapping_add(1)));
        }
        Op::Scan(idx, len) => {
            if sorted.is_empty() {
                return;
            }
            let j = (idx as usize) % sorted.len();
            let hi = (j + len.max(1) - 1).min(sorted.len() - 1);
            client.scan(&sorted[j], &sorted[hi]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems::System;

    #[test]
    fn quick_run_produces_sane_numbers() {
        let handle = System::Sphinx.build(64 << 20, Some(1 << 20));
        load_phase(&handle, KeySpace::U64, 2_000, 4);
        let cfg = RunConfig {
            keyspace: KeySpace::U64,
            num_keys: 2_000,
            workload: Workload::c(),
            workers: 6,
            ops_per_worker: 300,
            warmup_per_worker: 50,
            seed: 7,
            pipeline_depth: 1,
            trace_head_every: 0,
            trace_tail_k: obs::DEFAULT_TAIL_K,
        };
        let r = run_phase(&handle, &cfg);
        assert_eq!(r.total_ops, 1800);
        assert!(r.mops > 0.0);
        assert!(
            r.avg_latency_us > 1.0,
            "latency below one RTT: {}",
            r.avg_latency_us
        );
        assert!(r.round_trips_per_op >= 1.0);
        #[cfg(feature = "telemetry")]
        {
            use obs::{OpKind, Phase};
            assert!(r.telemetry.total_ops() > 0, "spans must reach the registry");
            assert!(
                r.telemetry.phase(OpKind::Get, Phase::SfcProbe).count > 0,
                "gets must attribute SfcProbe intervals"
            );
            assert!(
                r.telemetry.phase(OpKind::Get, Phase::LeafRead).round_trips > 0,
                "gets must attribute LeafRead round trips"
            );
            assert!(
                r.telemetry.counter("sfc.lookups") > 0,
                "index-level SFC stats merged"
            );
        }
    }

    #[test]
    fn pipelined_run_fuses_doorbells() {
        let handle = System::Sphinx.build(64 << 20, Some(1 << 20));
        load_phase(&handle, KeySpace::U64, 2_000, 4);
        let mk = |depth| RunConfig {
            keyspace: KeySpace::U64,
            num_keys: 2_000,
            workload: Workload::c(),
            workers: 4,
            ops_per_worker: 400,
            warmup_per_worker: 100,
            seed: 11,
            pipeline_depth: depth,
            trace_head_every: 0,
            trace_tail_k: obs::DEFAULT_TAIL_K,
        };
        let r1 = run_phase(&handle, &mk(1));
        let r8 = run_phase(&handle, &mk(8));
        // Pipelining rearranges round trips; it must not add any.
        assert!(
            (r8.round_trips_per_op - r1.round_trips_per_op).abs() < 0.25,
            "round trips changed: {} vs {}",
            r1.round_trips_per_op,
            r8.round_trips_per_op
        );
        assert!(
            r8.doorbells_per_op < r1.doorbells_per_op * 0.7,
            "depth 8 must fuse doorbells: {} vs {}",
            r1.doorbells_per_op,
            r8.doorbells_per_op
        );
        assert!(
            r8.mops > r1.mops * 1.3,
            "depth 8 must speed up YCSB-C: {} vs {} mops",
            r1.mops,
            r8.mops
        );
        assert!((r1.doorbells_per_op - r1.round_trips_per_op).abs() < 1e-9);
    }

    #[test]
    fn scan_workload_runs() {
        let handle = System::Smart.build(64 << 20, Some(1 << 20));
        load_phase(&handle, KeySpace::U64, 1_000, 4);
        let cfg = RunConfig {
            keyspace: KeySpace::U64,
            num_keys: 1_000,
            workload: Workload::e(),
            workers: 3,
            ops_per_worker: 30,
            warmup_per_worker: 5,
            seed: 7,
            pipeline_depth: 1,
            trace_head_every: 0,
            trace_tail_k: obs::DEFAULT_TAIL_K,
        };
        let r = run_phase(&handle, &cfg);
        assert!(r.total_ops == 90 && r.mops > 0.0);
    }

    #[test]
    fn load_phase_inserts_all_keys() {
        let handle = System::Art.build(64 << 20, None);
        load_phase(&handle, KeySpace::Email, 500, 3);
        let mut w = handle.worker(0);
        for i in (0..500).step_by(71) {
            assert!(
                w.get(&KeySpace::Email.key(i)).is_some(),
                "key {i} missing after load"
            );
        }
    }
}
