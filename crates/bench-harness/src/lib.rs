//! # bench-harness — regenerates every figure and table of the paper
//!
//! The harness drives the four evaluated systems — **Sphinx**, **SMART**
//! (20 MB cache), **SMART+C** (200 MB cache) and **ART** — through the
//! YCSB workloads of §V on the `dm-sim` substrate, and reports
//! virtual-time throughput and latency plus network-cost counters.
//!
//! Binaries (also see the Criterion benches in `benches/`):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig4` | Fig. 4 — YCSB throughput, 6 workloads × {u64, email} × 4 systems |
//! | `fig5` | Fig. 5 — throughput–latency scalability curve, YCSB-A |
//! | `fig6` | Fig. 6 + §V-D — MN-side memory usage across datasets |
//! | `sfc_stats` | §III-B — filter false-positive and retry rates |
//! | `ablation` | design ablation: INHT-only vs INHT+SFC round trips/bytes |
//!
//! Every binary accepts `--keys N` and `--ops N` to scale the experiment;
//! defaults are laptop-sized (see EXPERIMENTS.md for the recorded runs).

#![forbid(unsafe_code)]

pub mod gate;
pub mod lincheck_driver;
pub mod report;
pub mod runner;
pub mod smoke;
pub mod systems;

pub use lincheck_driver::{
    apply_op, apply_op_pipelined, failure_report, run_scheduled, shrink_failing_trace,
    ExploreConfig, RunOutput, ScheduleMode, TornLeafHook,
};
pub use runner::{load_phase, run_phase, RunConfig, RunResult};
pub use systems::{System, SystemHandle, WorkerClient};
