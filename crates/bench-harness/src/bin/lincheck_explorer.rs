//! Schedule explorer: sweeps seeds × fault matrices across the index
//! stack, checking every recorded history for linearizability.
//!
//! For each `(system, seed)` pair the explorer records one deterministic
//! lock-step run ([`bench_harness::run_scheduled`]), checks the history,
//! and on failure shrinks the trace to a minimal failing prefix and dumps
//! a reproduction report (trace, violating-key projection, telemetry)
//! under `--out`.
//!
//! ```text
//! cargo run --release -p bench-harness --bin lincheck_explorer -- \
//!     --systems sphinx,art,bptree --seeds 4 --threads 3 --keys 64 \
//!     --ops 1700 --fault-matrix full --verify-determinism
//! ```
//!
//! Flags:
//!
//! * `--systems a,b,..` — sphinx | sphinx-inht | smart | smartc | art |
//!   bptree (default `sphinx,art,bptree`)
//! * `--seeds N` / `--seed-base B` — sweep schedule seeds `B..B+N`
//! * `--threads N`, `--keys N`, `--ops N` — workload shape (ops is per
//!   thread; the recorded history also includes the `keys/2` preload)
//! * `--pipeline-depth N` — ops in flight per worker for the batched-read
//!   slice of the mix (default 1 = blocking; see the op-pipelining
//!   scheduler in `node-engine`)
//! * `--fault-matrix quiet|delay|tear|full` — which perturbations the
//!   schedule injects (see [`dm_sim::ScheduleConfig`])
//! * `--verify-determinism` — run each seed twice and replay its trace,
//!   failing on any history-digest mismatch
//! * `--expect-violation` — invert the verdict: exit 0 only if at least
//!   one run is non-linearizable (negative tests: a deliberately broken
//!   protocol must be *caught*)
//! * `--unsafe-disable-leaf-validation` — switch off leaf checksum
//!   validation ([`node_engine::set_leaf_validation`]) so torn reads are
//!   served: the broken protocol behind the CI negative test
//! * `--unsafe-zero-grace` — free retired regions immediately instead of
//!   waiting out the reclamation grace period
//!   ([`reclaim::set_zero_grace`]): readers can be served recycled
//!   memory, the use-after-free the epoch protocol exists to prevent —
//!   the second CI negative test
//! * `--replay FILE` — skip the sweep; replay a dumped trace (one
//!   `pid:delay:tear` step per line) against `--systems`' first entry with
//!   the same workload flags, and report the outcome
//! * `--out DIR` — where failure reports go (default `results`)
//!
//! Exit status: `0` on success, `1` on any linearizability violation,
//! checker timeout, worker panic, or determinism mismatch (inverted by
//! `--expect-violation` for violations), `2` on usage errors.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;
use std::str::FromStr;

use bench_harness::report::arg_u64;
use bench_harness::{
    failure_report, run_scheduled, shrink_failing_trace, ExploreConfig, RunOutput, ScheduleMode,
    System,
};
use dm_sim::{ScheduleConfig, TraceStep};
use lincheck::{CheckConfig, Outcome};

fn arg_str(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn arg_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn parse_system(name: &str) -> Option<System> {
    Some(match name {
        "sphinx" => System::Sphinx,
        "sphinx-inht" => System::SphinxInhtOnly,
        "smart" => System::Smart,
        "smartc" => System::SmartC,
        "art" => System::Art,
        "bptree" => System::BpTree,
        _ => return None,
    })
}

/// Maps a fault-matrix name to the schedule perturbations it enables and
/// whether the leaf tear hook is installed.
fn fault_matrix(name: &str, seed: u64) -> Option<(ScheduleConfig, bool)> {
    Some(match name {
        "quiet" => (ScheduleConfig::quiet(seed), false),
        "delay" => (
            ScheduleConfig {
                delay_pct: 30,
                max_delay_ns: 20_000,
                cas_hold_pct: 20,
                ..ScheduleConfig::quiet(seed)
            },
            false,
        ),
        "tear" => (
            ScheduleConfig {
                tear_pct: 30,
                ..ScheduleConfig::quiet(seed)
            },
            true,
        ),
        "full" => (ScheduleConfig::adversarial(seed), true),
        _ => return None,
    })
}

struct RunVerdict {
    ok: bool,
    violation: bool,
    line: String,
}

/// One `(system, seed)` exploration: record, check, optionally verify
/// determinism, and on failure shrink + dump.
fn explore(
    cfg: &ExploreConfig,
    seed: u64,
    matrix: &str,
    verify_determinism: bool,
    out_dir: &str,
) -> RunVerdict {
    let (sc, hook) = fault_matrix(matrix, seed).expect("matrix validated in main");
    let cfg = ExploreConfig {
        tear_hook: hook,
        ..cfg.clone()
    };
    let label = cfg.system.label();

    let run = match catch_unwind(AssertUnwindSafe(|| {
        run_scheduled(&cfg, ScheduleMode::Record(sc.clone()))
    })) {
        Ok(run) => run,
        Err(_) => {
            return RunVerdict {
                ok: false,
                violation: false,
                line: format!("{label:12} seed={seed:<4} PANIC (worker died mid-run)"),
            }
        }
    };

    let mut line = format!(
        "{label:12} seed={seed:<4} ops={:<6} steps={:<6} digest={:#018x} {}",
        run.history.len(),
        run.steps,
        run.history.digest(),
        outcome_word(&run.outcome),
    );

    if !run.outcome.is_linearizable() {
        let (minimal, failing) = shrink_failing_trace(&cfg, &run.trace);
        let report = failure_report(&cfg, seed, &minimal, &failing);
        let path = format!(
            "{out_dir}/lincheck_{}_{seed}.txt",
            label.to_lowercase().replace('+', "_")
        );
        std::fs::create_dir_all(out_dir).expect("create out dir");
        std::fs::write(&path, &report).expect("write failure report");
        line.push_str(&format!(
            " -> shrunk {} -> {} steps, report at {path}",
            run.trace.len(),
            minimal.len()
        ));
        return RunVerdict {
            ok: false,
            violation: true,
            line,
        };
    }

    if verify_determinism {
        let again = run_scheduled(&cfg, ScheduleMode::Record(sc));
        let replayed = run_scheduled(&cfg, ScheduleMode::Replay(run.trace.clone()));
        let rerun_ok = again.history.digest() == run.history.digest();
        let replay_ok = replayed.history.digest() == run.history.digest();
        if !rerun_ok || !replay_ok {
            line.push_str(&format!(
                " DETERMINISM MISMATCH (rerun {}, replay {})",
                if rerun_ok { "ok" } else { "DIVERGED" },
                if replay_ok { "ok" } else { "DIVERGED" },
            ));
            return RunVerdict {
                ok: false,
                violation: false,
                line,
            };
        }
        line.push_str(" [deterministic: rerun+replay]");
    }

    RunVerdict {
        ok: true,
        violation: false,
        line,
    }
}

fn outcome_word(o: &Outcome) -> String {
    match o {
        Outcome::Linearizable { keys, .. } => format!("linearizable ({keys} keys)"),
        Outcome::Violation(v) => format!("VIOLATION on key {:02x?}", v.key),
        Outcome::ResourceExhausted { steps, .. } => format!("CHECKER EXHAUSTED ({steps} steps)"),
    }
}

fn replay_file(cfg: &ExploreConfig, path: &str) -> RunVerdict {
    let text = std::fs::read_to_string(path).expect("read trace file");
    let trace: Vec<TraceStep> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(|l| TraceStep::from_str(l).expect("malformed trace step"))
        .collect();
    let run: RunOutput = run_scheduled(cfg, ScheduleMode::Replay(trace));
    let ok = run.outcome.is_linearizable();
    RunVerdict {
        ok,
        violation: !ok,
        line: format!(
            "{:12} replay {path}: ops={} steps={} digest={:#018x} {}",
            cfg.system.label(),
            run.history.len(),
            run.steps,
            run.history.digest(),
            outcome_word(&run.outcome),
        ),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();

    let systems: Vec<System> = match arg_str(&args, "--systems")
        .unwrap_or_else(|| "sphinx,art,bptree".into())
        .split(',')
        .map(parse_system)
        .collect::<Option<Vec<_>>>()
    {
        Some(s) if !s.is_empty() => s,
        _ => {
            eprintln!("unknown system in --systems (sphinx|sphinx-inht|smart|smartc|art|bptree)");
            return ExitCode::from(2);
        }
    };
    let seeds = arg_u64(&args, "--seeds", 2);
    let seed_base = arg_u64(&args, "--seed-base", 1);
    let threads = arg_u64(&args, "--threads", 3) as u32;
    let keys = arg_u64(&args, "--keys", 64);
    let ops = arg_u64(&args, "--ops", 3_400);
    let depth = (arg_u64(&args, "--pipeline-depth", 1) as usize).max(1);
    let matrix = arg_str(&args, "--fault-matrix").unwrap_or_else(|| "full".into());
    if fault_matrix(&matrix, 0).is_none() {
        eprintln!("unknown --fault-matrix {matrix} (quiet|delay|tear|full)");
        return ExitCode::from(2);
    }
    let verify_determinism = arg_flag(&args, "--verify-determinism");
    let expect_violation = arg_flag(&args, "--expect-violation");
    let out_dir = arg_str(&args, "--out").unwrap_or_else(|| "results".into());

    if arg_flag(&args, "--unsafe-disable-leaf-validation") {
        node_engine::set_leaf_validation(false);
        println!("leaf checksum validation DISABLED (broken-protocol mode)");
    }
    if arg_flag(&args, "--unsafe-zero-grace") {
        reclaim::set_zero_grace(true);
        println!("reclamation grace period DISABLED (use-after-free mode)");
    }

    let base_cfg = |system: System| ExploreConfig {
        check: CheckConfig::default(),
        pipeline_depth: depth,
        ..ExploreConfig::smoke(system, threads, keys, ops)
    };

    if let Some(path) = arg_str(&args, "--replay") {
        let v = replay_file(&base_cfg(systems[0]), &path);
        println!("{}", v.line);
        return if v.ok {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        };
    }

    println!(
        "lincheck explorer: {} system(s) × {seeds} seed(s), threads={threads} keys={keys} \
         ops/thread={ops} matrix={matrix}",
        systems.len()
    );

    let mut failures = 0u32;
    let mut violations = 0u32;
    for &system in &systems {
        let cfg = base_cfg(system);
        for seed in seed_base..seed_base + seeds {
            let v = explore(&cfg, seed, &matrix, verify_determinism, &out_dir);
            println!("{}", v.line);
            if !v.ok {
                failures += 1;
            }
            if v.violation {
                violations += 1;
            }
        }
    }

    if expect_violation {
        if violations > 0 {
            println!("expected violation observed ({violations} run(s)) — checker catches the broken protocol");
            ExitCode::SUCCESS
        } else {
            eprintln!("--expect-violation: every run linearizable; the checker missed the defect");
            ExitCode::from(1)
        }
    } else if failures > 0 {
        eprintln!("{failures} failing run(s)");
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
