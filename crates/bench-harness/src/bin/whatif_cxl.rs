//! What-if: the same indexes on CXL-class interconnect.
//!
//! The paper motivates DM with both RDMA and CXL (§II-A) but evaluates on
//! RDMA. This experiment re-runs YCSB-C under a CXL-like cost model
//! (~400 ns round trips, higher link bandwidth) to ask: how much of
//! Sphinx's advantage is round-trip elimination, and does it survive when
//! round trips get 5× cheaper?
//!
//! Expected shape: the absolute gap shrinks (everyone's traversals get
//! cheap) but the ordering persists — fewer round trips and fewer bytes
//! still win, just by less.
//!
//! ```text
//! cargo run --release -p bench-harness --bin whatif_cxl -- \
//!     [--keys 60000] [--ops 1500] [--workers 24]
//! ```

use bench_harness::report::{arg_u64, f3, Table};
use bench_harness::runner::{load_phase, run_phase, RunConfig};
use bench_harness::systems::{paper_cache_bytes, System};
use dm_sim::{ClusterConfig, DmCluster, NetConfig};
use ycsb::{KeySpace, Workload};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let keys = arg_u64(&args, "--keys", 60_000);
    let ops = arg_u64(&args, "--ops", 1_500);
    let workers = arg_u64(&args, "--workers", 24) as usize;

    println!("What-if — YCSB-C on u64 under RDMA vs CXL cost models");
    println!("keys={keys}, {workers} workers, {ops} ops/worker\n");
    let mut table = Table::new(["interconnect", "system", "mops", "avg_lat_us", "rts_per_op"]);

    for (label, net) in [("RDMA", NetConfig::rdma()), ("CXL", NetConfig::cxl())] {
        for sys in [System::Sphinx, System::Smart, System::Art] {
            let cluster = DmCluster::new(ClusterConfig {
                num_mns: 3,
                num_cns: 3,
                mn_capacity: 1 << 30,
                net: net.clone(),
                ..Default::default()
            });
            let handle = sys.build_on(&cluster, Some(paper_cache_bytes(keys)));
            load_phase(&handle, KeySpace::U64, keys, 8);
            let r = run_phase(
                &handle,
                &RunConfig {
                    keyspace: KeySpace::U64,
                    num_keys: keys,
                    workload: Workload::c(),
                    workers,
                    ops_per_worker: ops,
                    warmup_per_worker: (ops / 5).max(50),
                    seed: 0xC1_2024,
                    pipeline_depth: RunConfig::depth_from_env(1),
                    trace_head_every: 0,
                    trace_tail_k: obs::DEFAULT_TAIL_K,
                    sample_interval_ns: 0,
                    sample_capacity: 0,
                },
            );
            table.row([
                label.to_string(),
                sys.label().to_string(),
                f3(r.mops),
                f3(r.avg_latency_us),
                f3(r.round_trips_per_op),
            ]);
        }
    }
    println!("{}", table.render());
    table.write_csv("whatif_cxl");
}
