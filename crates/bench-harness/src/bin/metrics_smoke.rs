//! CI gate for the cluster metrics plane (per-MN accounting, sampler,
//! health monitor, `sphinx.metrics.v1` export).
//!
//! Asserts, exiting nonzero (panicking) on any violation:
//!
//! 1. **Conservation** — over the measured window the summed client
//!    ledger equals the summed per-MN ledger exactly, at pipeline depth
//!    1 and at depth 8 (fused doorbells included).
//! 2. **Overhead** — time-series sampling costs ≤2% virtual-time
//!    throughput against the telemetry-only baseline on YCSB-C (the
//!    sampler never touches the virtual clock, so the budget is slack).
//! 3. **Health controls** — a deliberately hot memory node trips the
//!    `mn_imbalance` detector (positive control) and a uniform run does
//!    not (negative control); neither outcome is fatal.
//! 4. **Byte determinism** — two same-seed single-worker runs export
//!    byte-identical `sphinx.metrics.v1` documents, sampling included.
//!
//! Also emits `BENCH_core.json` at the repo root — the canonical
//! machine-readable perf summary (YCSB-C ops/s, rts/op, doorbells/op,
//! SFC bits/entry) tracked PR over PR.
//!
//! ```text
//! cargo run --release -p bench-harness --bin metrics_smoke
//! ```

use bench_harness::runner::run_phase;
use bench_harness::smoke;
use bench_harness::systems::System;
use obs::json::JsonWriter;
use sphinx::sfc::{FilterCache, SfcConfig};

/// Sampling knobs used wherever the smoke turns the sampler on.
const SAMPLE_INTERVAL_NS: u64 = 5_000;
const SAMPLE_CAPACITY: usize = 256;

/// Positive control: every verb lands on MN 0, so the imbalance detector
/// must fire. Negative control: round-robin reads stay uniform, so it
/// must not. Both run on a raw cluster to keep the fixture exact.
fn health_controls() {
    let reg = obs::Registry::new();
    let hc = obs::HealthConfig::default();

    let hot = smoke::smoke_cluster();
    let mut c = hot.client(0);
    let ptr = c.alloc(0, 256).expect("alloc on MN 0");
    for _ in 0..2_000 {
        c.read(ptr, 256).expect("read");
    }
    let h = obs::evaluate_health(&hot.cluster_stats(), &reg, &hc);
    assert!(
        h.fired("mn_imbalance"),
        "hot-MN positive control must trip mn_imbalance: {h:?}"
    );
    assert!(!h.healthy(), "a fired detector must degrade the verdict");

    let uniform = smoke::smoke_cluster();
    let mut c = uniform.client(0);
    let ptrs: Vec<_> = (0..uniform.num_mns())
        .map(|m| c.alloc(m, 256).expect("alloc"))
        .collect();
    for i in 0..2_000usize {
        c.read(ptrs[i % ptrs.len()], 256).expect("read");
    }
    let h = obs::evaluate_health(&uniform.cluster_stats(), &reg, &hc);
    assert!(
        !h.fired("mn_imbalance"),
        "uniform negative control must stay healthy: {h:?}"
    );
    assert!(h.healthy());
    println!("health controls OK: hot MN trips mn_imbalance, uniform run does not");
}

/// Two same-seed single-worker runs on fresh systems must export
/// byte-identical `sphinx.metrics.v1` documents (sampling on). The
/// preload is single-threaded too: sampled gauges are cumulative since
/// boot, so a racy parallel load would leak into the rows.
fn byte_determinism() {
    let export = || {
        let handle = smoke::build_loaded(System::Sphinx, smoke::YCSB_C_KEYS, 1);
        let mut cfg = smoke::ycsb_c_config(smoke::YCSB_C_KEYS, 8);
        cfg.workers = 1;
        cfg.ops_per_worker = 2_000;
        cfg.sample_interval_ns = SAMPLE_INTERVAL_NS;
        cfg.sample_capacity = SAMPLE_CAPACITY;
        run_phase(&handle, &cfg).metrics.to_json()
    };
    let (a, b) = (export(), export());
    assert_eq!(
        a, b,
        "same-seed single-worker runs must export byte-identical metrics"
    );
    println!(
        "byte determinism OK: {} byte export, stable across runs",
        a.len()
    );
}

/// SFC cost metric for `BENCH_core.json`: bits per frozen entry at 64k
/// keys (the sfc_smoke succinctness fixture).
fn sfc_bits_per_entry() -> f64 {
    const N: u64 = 64_000;
    let f = FilterCache::new(1 << 20, SfcConfig::default(), 0xF0CC);
    for i in 0..N {
        f.insert(format!("prefix/{i:08}").as_bytes());
    }
    assert!(f.force_rebuild(), "64k-key fuse build must succeed");
    f.stats().frozen_bits_per_entry()
}

fn main() {
    health_controls();
    byte_determinism();

    let handle = smoke::build_loaded(System::Sphinx, smoke::YCSB_C_KEYS, 8);

    // Depth 1 and depth 8, sampling off: the perf baseline + the
    // conservation checks (fused doorbells included at depth 8).
    let r1 = run_phase(&handle, &smoke::ycsb_c_config(smoke::YCSB_C_KEYS, 1));
    r1.metrics
        .conservation()
        .expect("depth-1 window must conserve");
    let r8 = run_phase(
        &handle,
        &smoke::ycsb_c_config(smoke::YCSB_C_KEYS, node_engine::pipeline::DEFAULT_DEPTH),
    );
    r8.metrics
        .conservation()
        .expect("depth-8 window must conserve (fused doorbells included)");
    assert_eq!(r8.metrics.health.checks, 4, "all detectors must run");

    // Sampling on: virtual-time throughput within 2% of the baseline.
    let mut cfg = smoke::ycsb_c_config(smoke::YCSB_C_KEYS, node_engine::pipeline::DEFAULT_DEPTH);
    cfg.sample_interval_ns = SAMPLE_INTERVAL_NS;
    cfg.sample_capacity = SAMPLE_CAPACITY;
    let rs = run_phase(&handle, &cfg);
    rs.metrics
        .conservation()
        .expect("sampled window must conserve");
    if cfg!(feature = "telemetry") {
        let samples = rs.metrics.samples.as_ref().expect("sampler retained");
        assert!(!samples.is_empty(), "sampler must capture rows mid-run");
    }
    let slowdown = (r8.mops - rs.mops) / r8.mops;
    assert!(
        slowdown <= 0.02,
        "sampling cost {:.2}% throughput ({:.3} -> {:.3} mops); budget is 2%",
        slowdown * 100.0,
        r8.mops,
        rs.mops
    );

    // The canonical perf summary, tracked PR over PR.
    let bits = sfc_bits_per_entry();
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.str_field("schema", "sphinx.bench.v1");
    w.key("ycsb_c");
    w.begin_obj();
    for (name, r) in [("depth1", &r1), ("depth8", &r8)] {
        w.key(name);
        w.begin_obj();
        w.f64_field("ops_per_sec", r.mops * 1e6);
        w.f64_field("rts_per_op", r.round_trips_per_op);
        w.f64_field("doorbells_per_op", r.doorbells_per_op);
        w.end_obj();
    }
    w.end_obj();
    w.key("sfc");
    w.begin_obj();
    w.f64_field("bits_per_entry", bits);
    w.end_obj();
    w.end_obj();
    let doc = w.finish();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_core.json");
    std::fs::write(path, &doc).expect("write BENCH_core.json");

    println!("{}", rs.metrics.render_text());
    println!(
        "metrics smoke OK: conserved at depth 1 and {}, sampling {:+.2}% \
         ({:.3} vs {:.3} mops), {:.2} bits/entry -> BENCH_core.json",
        node_engine::pipeline::DEFAULT_DEPTH,
        -slowdown * 100.0,
        rs.mops,
        r8.mops,
        bits,
    );
}
