//! CI smoke check for the pipelined op scheduler.
//!
//! Runs the fig4 YCSB-C short config twice — pipeline depth 1 (the legacy
//! blocking path) and depth 8 — and asserts the properties the op
//! pipeline is sold on:
//!
//! * per-op network round trips are unchanged (pipelining rearranges
//!   round trips, it must not add any);
//! * per-op *doorbells* drop: round trips from different in-flight ops
//!   fuse into shared physical doorbells;
//! * virtual time per op drops enough that throughput at depth 8 is
//!   ≥ 1.5× depth 1 (the acceptance bar under the default `NetConfig`);
//! * `pipeline.fused_batches > 0` in the exported telemetry;
//! * at depth 1 doorbells equal round trips exactly — the depth-1
//!   equivalence guard (no fusion without in-flight concurrency).
//!
//! Exits nonzero (panics) on any violation — wired as a CI job.
//!
//! ```text
//! cargo run --release -p bench-harness --bin pipeline_smoke
//! ```

use bench_harness::runner::run_phase;
use bench_harness::smoke;
use bench_harness::systems::System;

fn main() {
    let keys = smoke::YCSB_C_KEYS;
    let handle = smoke::build_loaded(System::Sphinx, keys, 8);

    let cfg = |depth: usize| {
        let mut c = smoke::ycsb_c_config(keys, depth);
        c.trace_tail_k = obs::DEFAULT_TAIL_K;
        c
    };
    let r1 = run_phase(&handle, &cfg(1));
    let r8 = run_phase(&handle, &cfg(node_engine::pipeline::DEFAULT_DEPTH));

    assert!(
        (r8.round_trips_per_op - r1.round_trips_per_op).abs() < 0.25,
        "pipelining changed per-op round trips: {:.3} -> {:.3}",
        r1.round_trips_per_op,
        r8.round_trips_per_op
    );
    assert!(
        (r1.doorbells_per_op - r1.round_trips_per_op).abs() < 1e-9,
        "depth 1 must not fuse doorbells: {:.3} doorbells vs {:.3} rts",
        r1.doorbells_per_op,
        r1.round_trips_per_op
    );
    assert!(
        r8.doorbells_per_op < r1.doorbells_per_op * 0.7,
        "depth 8 must fuse doorbells: {:.3} -> {:.3} per op",
        r1.doorbells_per_op,
        r8.doorbells_per_op
    );
    let speedup = r8.mops / r1.mops;
    assert!(
        speedup >= 1.5,
        "depth 8 must be >= 1.5x depth 1 on YCSB-C: {:.3} vs {:.3} mops ({speedup:.2}x)",
        r1.mops,
        r8.mops
    );
    let fused = r8.telemetry.counter("pipeline.fused_batches");
    assert!(
        fused > 0,
        "pipeline.fused_batches must be exported in telemetry"
    );

    println!(
        "pipeline smoke OK: {:.3} -> {:.3} mops ({speedup:.2}x), rts/op {:.3} -> {:.3}, \
         doorbells/op {:.3} -> {:.3}, fused batches {fused}",
        r1.mops,
        r8.mops,
        r1.round_trips_per_op,
        r8.round_trips_per_op,
        r1.doorbells_per_op,
        r8.doorbells_per_op,
    );
}
