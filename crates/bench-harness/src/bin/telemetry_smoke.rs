//! CI telemetry smoke check.
//!
//! Runs a tiny Sphinx workload, exports the merged telemetry registry as
//! JSON, re-parses it with the crate's own parser, and asserts the
//! structural invariants downstream consumers rely on:
//!
//! * the schema tag matches [`obs::SCHEMA`] (fails loudly on drift);
//! * point lookups carry nonzero `SfcProbe` and `LeafRead` attribution
//!   (the phase-span plumbing through the read path is alive);
//! * the SFC probe counters are populated;
//! * the flight recorder captured at least one operation;
//! * every exported counter name matches the counter catalogue in
//!   `docs/OBSERVABILITY.md` (the docs and the code cannot drift
//!   silently).
//!
//! Exits nonzero (panics) on any violation — wired as a CI job.
//!
//! ```text
//! cargo run --release -p bench-harness --bin telemetry_smoke
//! ```

use bench_harness::report::write_json;
use bench_harness::runner::run_phase;
use bench_harness::smoke;
use bench_harness::systems::System;
use obs::{json, OpKind, Phase, SCHEMA};

/// The observability doc, pulled in at compile time so the counter
/// catalogue below is always the checked-in one.
const OBS_DOC: &str = include_str!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../docs/OBSERVABILITY.md"
));

/// Extracts the counter-catalogue patterns from the fenced block between
/// the `counter-catalogue` markers in `docs/OBSERVABILITY.md`.
fn catalogue_patterns() -> Vec<&'static str> {
    let begin = OBS_DOC
        .find("<!-- counter-catalogue:begin -->")
        .expect("OBSERVABILITY.md must carry a counter-catalogue block");
    let end = OBS_DOC[begin..]
        .find("<!-- counter-catalogue:end -->")
        .map(|i| begin + i)
        .expect("counter-catalogue block must be closed");
    OBS_DOC[begin..end]
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("<!--") && !l.starts_with("```"))
        .collect()
}

/// `*`-wildcard glob match (no escaping; counter names never contain
/// `*`). Iterative two-pointer form with backtracking to the last star.
fn glob_match(pattern: &str, name: &str) -> bool {
    let (p, n) = (pattern.as_bytes(), name.as_bytes());
    let (mut pi, mut ni) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None;
    while ni < n.len() {
        if pi < p.len() && (p[pi] == n[ni]) {
            pi += 1;
            ni += 1;
        } else if pi < p.len() && p[pi] == b'*' {
            star = Some((pi, ni));
            pi += 1;
        } else if let Some((sp, sn)) = star {
            pi = sp + 1;
            ni = sn + 1;
            star = Some((sp, sn + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == b'*' {
        pi += 1;
    }
    pi == p.len()
}

fn main() {
    let keys = smoke::YCSB_A_KEYS;
    let handle = smoke::build_loaded(System::Sphinx, keys, 4);
    let mut cfg = smoke::ycsb_a_config(keys);
    cfg.trace_tail_k = obs::DEFAULT_TAIL_K;
    let r = run_phase(&handle, &cfg);

    let reg = &r.telemetry;
    let doc = reg.to_json();
    write_json("telemetry_smoke", &doc);

    // The JSON must parse with our own parser and carry the pinned schema.
    let parsed = json::parse(&doc).expect("telemetry JSON must parse");
    assert_eq!(
        parsed.get("schema").and_then(|v| v.as_str()),
        Some(SCHEMA),
        "schema drift: bump consumers together with obs::SCHEMA"
    );

    // Structural invariants, checked on the parsed document (so the
    // exporter, not just the in-memory registry, is what's validated).
    let get = parsed
        .get("ops")
        .and_then(|o| o.get("get"))
        .expect("get ops present");
    let phase_rts = |name: &str| {
        get.get("phases")
            .and_then(|p| p.get(name))
            .and_then(|p| p.get("round_trips"))
            .and_then(|v| v.as_u64())
            .unwrap_or(0)
    };
    let phase_count = |name: &str| {
        get.get("phases")
            .and_then(|p| p.get(name))
            .and_then(|p| p.get("count"))
            .and_then(|v| v.as_u64())
            .unwrap_or(0)
    };
    assert!(
        phase_count("SfcProbe") > 0,
        "gets must attribute SfcProbe intervals (CN-local probes count even with zero verbs)"
    );
    assert!(
        phase_rts("LeafRead") > 0,
        "gets must attribute round trips to LeafRead"
    );

    // Counters: both recorder-side and in-memory registry agree.
    let counters = parsed.get("counters").expect("counters present");
    let probe_hits = counters
        .get("sfc.probe_hit")
        .and_then(|v| v.as_u64())
        .unwrap_or(0);
    let probe_misses = counters
        .get("sfc.probe_miss")
        .and_then(|v| v.as_u64())
        .unwrap_or(0);
    assert!(
        probe_hits + probe_misses > 0,
        "SFC probe counters must be populated"
    );
    assert!(
        reg.phase(OpKind::Get, Phase::SfcProbe).count > 0,
        "in-memory registry must agree with the export"
    );

    let flight = parsed
        .get("flight")
        .and_then(|f| f.get("slowest"))
        .and_then(|v| v.as_arr())
        .expect("flight.slowest present");
    assert!(!flight.is_empty(), "flight recorder must capture ops");

    // Every exported counter must match the docs' counter catalogue —
    // the check that keeps docs/OBSERVABILITY.md honest.
    let patterns = catalogue_patterns();
    assert!(
        patterns.len() >= 40,
        "counter catalogue suspiciously small ({} patterns) — markers moved?",
        patterns.len()
    );
    let counter_map = counters.as_obj().expect("counters is an object");
    let mut unlisted = Vec::new();
    for name in counter_map.keys() {
        if !patterns.iter().any(|p| glob_match(p, name)) {
            unlisted.push(name.as_str());
        }
    }
    assert!(
        unlisted.is_empty(),
        "counters missing from the docs/OBSERVABILITY.md catalogue: {unlisted:?} — \
         extend the counter-catalogue block together with the new counter"
    );

    println!(
        "telemetry smoke OK: {} ops, SfcProbe count {}, LeafRead rts {}, probes {}, \
         {} counters against {} catalogue patterns",
        reg.total_ops(),
        phase_count("SfcProbe"),
        phase_rts("LeafRead"),
        probe_hits + probe_misses,
        counter_map.len(),
        patterns.len(),
    );
}
