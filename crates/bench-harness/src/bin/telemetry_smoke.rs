//! CI telemetry smoke check.
//!
//! Runs a tiny Sphinx workload, exports the merged telemetry registry as
//! JSON, re-parses it with the crate's own parser, and asserts the
//! structural invariants downstream consumers rely on:
//!
//! * the schema tag matches [`obs::SCHEMA`] (fails loudly on drift);
//! * point lookups carry nonzero `SfcProbe` and `LeafRead` attribution
//!   (the phase-span plumbing through the read path is alive);
//! * the SFC probe counters are populated;
//! * the flight recorder captured at least one operation.
//!
//! Exits nonzero (panics) on any violation — wired as a CI job.
//!
//! ```text
//! cargo run --release -p bench-harness --bin telemetry_smoke
//! ```

use bench_harness::report::write_json;
use bench_harness::runner::{load_phase, run_phase, RunConfig};
use bench_harness::systems::System;
use obs::{json, OpKind, Phase, SCHEMA};
use ycsb::{KeySpace, Workload};

fn main() {
    let keys = 3_000;
    let handle = System::Sphinx.build(64 << 20, Some(1 << 20));
    load_phase(&handle, KeySpace::U64, keys, 4);
    let r = run_phase(
        &handle,
        &RunConfig {
            keyspace: KeySpace::U64,
            num_keys: keys,
            workload: Workload::a(),
            workers: 4,
            ops_per_worker: 500,
            warmup_per_worker: 100,
            seed: 0x51_0CE,
            pipeline_depth: RunConfig::depth_from_env(1),
            trace_head_every: 0,
            trace_tail_k: obs::DEFAULT_TAIL_K,
        },
    );

    let reg = &r.telemetry;
    let doc = reg.to_json();
    write_json("telemetry_smoke", &doc);

    // The JSON must parse with our own parser and carry the pinned schema.
    let parsed = json::parse(&doc).expect("telemetry JSON must parse");
    assert_eq!(
        parsed.get("schema").and_then(|v| v.as_str()),
        Some(SCHEMA),
        "schema drift: bump consumers together with obs::SCHEMA"
    );

    // Structural invariants, checked on the parsed document (so the
    // exporter, not just the in-memory registry, is what's validated).
    let get = parsed
        .get("ops")
        .and_then(|o| o.get("get"))
        .expect("get ops present");
    let phase_rts = |name: &str| {
        get.get("phases")
            .and_then(|p| p.get(name))
            .and_then(|p| p.get("round_trips"))
            .and_then(|v| v.as_u64())
            .unwrap_or(0)
    };
    let phase_count = |name: &str| {
        get.get("phases")
            .and_then(|p| p.get(name))
            .and_then(|p| p.get("count"))
            .and_then(|v| v.as_u64())
            .unwrap_or(0)
    };
    assert!(
        phase_count("SfcProbe") > 0,
        "gets must attribute SfcProbe intervals (CN-local probes count even with zero verbs)"
    );
    assert!(
        phase_rts("LeafRead") > 0,
        "gets must attribute round trips to LeafRead"
    );

    // Counters: both recorder-side and in-memory registry agree.
    let counters = parsed.get("counters").expect("counters present");
    let probe_hits = counters
        .get("sfc.probe_hit")
        .and_then(|v| v.as_u64())
        .unwrap_or(0);
    let probe_misses = counters
        .get("sfc.probe_miss")
        .and_then(|v| v.as_u64())
        .unwrap_or(0);
    assert!(
        probe_hits + probe_misses > 0,
        "SFC probe counters must be populated"
    );
    assert!(
        reg.phase(OpKind::Get, Phase::SfcProbe).count > 0,
        "in-memory registry must agree with the export"
    );

    let flight = parsed
        .get("flight")
        .and_then(|f| f.get("slowest"))
        .and_then(|v| v.as_arr())
        .expect("flight.slowest present");
    assert!(!flight.is_empty(), "flight recorder must capture ops");

    println!(
        "telemetry smoke OK: {} ops, SfcProbe count {}, LeafRead rts {}, probes {}",
        reg.total_ops(),
        phase_count("SfcProbe"),
        phase_rts("LeafRead"),
        probe_hits + probe_misses,
    );
}
