//! CI smoke check for causal per-op tracing (see `obs::trace`).
//!
//! Runs the fig4 YCSB-C short config at depth 8 three ways and asserts
//! the properties the tracer is sold on:
//!
//! * with always-on tail sampling the run retains traces, every one of
//!   them decomposes into an **exact** critical path (queueing + fusion
//!   wait + NIC service + scheduler stall + CN compute == end-to-end
//!   latency, to the nanosecond);
//! * at depth 8 the retained traces witness doorbell fusion: some burst
//!   carries member tokens from more than one operation;
//! * the Chrome-trace export is valid `sphinx.trace.v1` JSON (parsed with
//!   the same in-tree parser CI uses for telemetry);
//! * with sampling fully off (`head_every == 0`, `tail_k == 0`) a depth-1
//!   run retains **zero** traces — the compile-out/off path stays free;
//! * always-on tail sampling costs at most 5% throughput against the
//!   telemetry-only baseline (tracing never touches the virtual clock,
//!   so virtual-time throughput must be essentially unchanged).
//!
//! Exits nonzero (panics) on any violation — wired as a CI job.
//!
//! ```text
//! cargo run --release -p bench-harness --bin trace_smoke
//! ```

use bench_harness::runner::run_phase;
use bench_harness::smoke;
use bench_harness::systems::System;
use obs::{critical_path, export_chrome, TRACE_SCHEMA};

fn main() {
    let keys = smoke::YCSB_C_KEYS;
    let handle = smoke::build_loaded(System::Sphinx, keys, 8);

    let cfg = |depth: usize, head_every: u64, tail_k: usize| {
        let mut c = smoke::ycsb_c_config(keys, depth);
        c.trace_head_every = head_every;
        c.trace_tail_k = tail_k;
        c
    };
    let depth = node_engine::pipeline::DEFAULT_DEPTH;

    // Telemetry-only baseline: sampling fully off.
    let base = run_phase(&handle, &cfg(depth, 0, 0));
    assert!(
        base.traces.is_empty(),
        "sampling off must retain zero traces, got {}",
        base.traces.len()
    );

    // Sampling fully off on the depth-1 (blocking) path too.
    let r1 = run_phase(&handle, &cfg(1, 0, 0));
    assert!(
        r1.traces.is_empty(),
        "depth-1 run with sampling off must retain zero traces, got {}",
        r1.traces.len()
    );

    // Always-on tail sampling (the production default).
    let traced = run_phase(&handle, &cfg(depth, 0, obs::DEFAULT_TAIL_K));
    assert!(
        !traced.traces.is_empty(),
        "tail sampling at depth {depth} must retain traces"
    );

    let mut exact = 0usize;
    let mut fused_bursts = 0usize;
    for t in &traced.traces {
        let cp = critical_path(t);
        assert!(
            cp.is_exact(),
            "critical path must sum exactly for trace {:#x}: \
             queue {} + fusion {} + service {} + stall {} + compute {} != total {}",
            t.id,
            cp.queue_ns,
            cp.fusion_ns,
            cp.service_ns,
            cp.stall_ns,
            cp.compute_ns,
            cp.total_ns
        );
        exact += 1;
        fused_bursts += t
            .bursts
            .iter()
            .filter(|ev| match ev {
                dm_sim::trace::TransportEvent::Burst(b) => b.tokens().len() > 1,
                dm_sim::trace::TransportEvent::Advance { .. } => false,
            })
            .count();
    }
    assert!(
        fused_bursts > 0,
        "depth-{depth} traces must witness doorbell fusion (a burst with >1 member ops)"
    );

    // The export must be valid `sphinx.trace.v1` Chrome-trace JSON.
    let json = export_chrome(&traced.traces);
    let doc = obs::json::parse(&json).expect("trace export must parse");
    assert_eq!(
        doc.get("schema").and_then(|v| v.as_str()),
        Some(TRACE_SCHEMA),
        "export must be stamped {TRACE_SCHEMA}"
    );
    assert_eq!(
        doc.get("displayTimeUnit").and_then(|v| v.as_str()),
        Some("ns"),
        "export must display virtual nanoseconds"
    );
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");
    assert!(!events.is_empty(), "export must carry events");
    for ev in events {
        for key in ["ph", "pid", "name"] {
            assert!(
                ev.get(key).is_some(),
                "every trace event needs `{key}`: {json:.120}"
            );
        }
    }

    // Always-on tail sampling must not cost virtual-time throughput.
    let slowdown = (base.mops - traced.mops) / base.mops;
    assert!(
        slowdown <= 0.05,
        "tail sampling cost {:.1}% throughput ({:.3} -> {:.3} mops); budget is 5%",
        slowdown * 100.0,
        base.mops,
        traced.mops
    );

    println!(
        "trace smoke OK: {} traces retained ({} exact critical paths, {} fused bursts), \
         {} export events, {:.3} -> {:.3} mops ({:+.2}% vs telemetry-only)",
        traced.traces.len(),
        exact,
        fused_bursts,
        events.len(),
        base.mops,
        traced.mops,
        -slowdown * 100.0,
    );
}
