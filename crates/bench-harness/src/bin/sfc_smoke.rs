//! CI gate for the generational Succinct Filter Cache (SFC 2.0).
//!
//! Asserts the subsystem's three headline contracts, exiting nonzero
//! (panicking) on any violation:
//!
//! 1. **Succinctness at scale** — a frozen generation holding ≥50k
//!    prefixes costs ≤10 bits per entry. (Binary-fuse slack is a fixed
//!    overhead amortised by size: tiny filters sit near 12 bits/entry,
//!    so the guard is only meaningful at scale.)
//! 2. **Snapshot determinism** — `snapshot()` is reproducible, and a
//!    filter warm-started from a snapshot re-exports byte-identical
//!    bytes: snapshots can be content-addressed and diffed across CNs.
//! 3. **Warm-start** — a CN that loads a peer's snapshot starts with
//!    the frozen prefix set resident and does NOT pay the Θ(L)
//!    entry-miss ramp a cold CN pays on the same read mix.
//!
//! The paired CI job also builds the stack `--no-default-features` to
//! prove the subsystem compiles with telemetry off.
//!
//! ```text
//! cargo run --release -p bench-harness --bin sfc_smoke
//! ```

use bench_harness::smoke;
use sphinx::sfc::{FilterCache, SfcConfig};
use sphinx::{SphinxConfig, SphinxIndex};
use ycsb::KeySpace;

/// Contract 1: ≤10 bits/entry once the fuse's fixed slack is amortised.
fn succinctness_at_scale() {
    const N: u64 = 64_000;
    let f = FilterCache::new(1 << 20, SfcConfig::default(), 0xF0CC);
    for i in 0..N {
        f.insert(format!("prefix/{i:08}").as_bytes());
    }
    assert!(f.force_rebuild(), "64k-key fuse build must succeed");
    let s = f.stats();
    assert_eq!(s.frozen_len, N, "every inserted prefix must freeze");
    let bits = s.frozen_bits_per_entry();
    assert!(
        bits <= 10.0,
        "frozen generation costs {bits:.2} bits/entry at {N} keys (contract: <=10)"
    );
    // The probe structure still answers: zero false negatives.
    for i in (0..N).step_by(97) {
        assert!(f.contains_quiet(format!("prefix/{i:08}").as_bytes()));
    }
    println!("succinctness: {N} frozen prefixes at {bits:.2} bits/entry");
}

/// Contract 2: snapshots are deterministic and round-trip byte-identical.
fn snapshot_byte_identity() {
    let f = FilterCache::new(64 << 10, SfcConfig::default(), 0x5EED);
    for i in 0..5_000u64 {
        f.insert(format!("tenant-{:03}/{i:06}", i % 17).as_bytes());
    }
    assert!(f.force_rebuild());
    let snap = f.snapshot();
    assert_eq!(snap, f.snapshot(), "snapshot() must be reproducible");

    let twin = FilterCache::new(64 << 10, SfcConfig::default(), 0x5EED);
    twin.load_snapshot(&snap).expect("clean snapshot must load");
    assert_eq!(
        twin.snapshot(),
        snap,
        "a warm-started filter must re-export byte-identical snapshot bytes"
    );
    println!(
        "snapshot: {} bytes, byte-identical across a round trip",
        snap.len()
    );
}

/// Contract 3: a snapshot-loaded CN skips the cold entry-miss ramp.
fn warm_start_skips_cold_ramp() {
    const KEYS: u64 = 4_000;
    let cluster = smoke::smoke_cluster();
    let index = SphinxIndex::create(&cluster, SphinxConfig::default()).expect("create");
    let mut writer = index.client(0).expect("cn0");
    for i in 0..KEYS {
        writer
            .insert(&KeySpace::Email.key(i), b"v")
            .expect("insert");
    }
    // One read pass teaches CN 0's filter the live prefix set; freeze it.
    for i in 0..KEYS {
        writer.get(&KeySpace::Email.key(i)).expect("get");
    }
    writer.filter_handle().force_rebuild();
    let snap = index.sfc_snapshot(0);

    // The cold ramp is invisible to `entry_misses`: an empty filter
    // offers no candidate, so the client walks root-to-leaf (Θ(L) round
    // trips) without ever consulting the INHT entry. The ramp's
    // signatures are (a) `filter_refreshes` — every inner prefix must be
    // taught on first contact — and (b) wire round trips per get.
    let ramp = |cn: u16| {
        let mut c = index.client(cn).expect("client");
        let (base, net0) = (c.op_stats(), c.net_stats());
        for i in 0..KEYS {
            assert!(c.get(&KeySpace::Email.key(i)).expect("get").is_some());
        }
        let (s, net) = (c.op_stats(), c.net_stats().since(&net0));
        (
            s.gets - base.gets,
            s.entry_misses - base.entry_misses,
            s.filter_refreshes - base.filter_refreshes,
            net.round_trips,
        )
    };

    // CN 1 starts cold; CN 2 warm-starts from CN 0's snapshot before
    // its first op.
    let (cold_gets, _, cold_refreshes, cold_rts) = ramp(1);
    index.load_sfc_snapshot(2, &snap).expect("snapshot load");
    let (warm_gets, warm_misses, warm_refreshes, warm_rts) = ramp(2);

    assert_eq!(cold_gets, warm_gets);
    assert!(
        cold_refreshes > 50,
        "cold CN must visibly ramp (taught only {cold_refreshes} prefixes)"
    );
    assert!(
        warm_refreshes * 10 < cold_refreshes,
        "warm-started CN still learning prefixes: {warm_refreshes} refreshes \
         vs {cold_refreshes} cold"
    );
    assert!(
        (warm_misses as f64) < warm_gets as f64 * 0.10,
        "warm-started CN missing its own frozen set: {warm_misses} entry \
         misses over {warm_gets} gets"
    );
    assert!(
        warm_rts < cold_rts,
        "warm start must save wire round trips ({warm_rts} vs {cold_rts})"
    );
    println!(
        "warm start: {warm_refreshes} prefixes taught vs {cold_refreshes} cold; \
         {warm_rts} vs {cold_rts} round trips over {warm_gets} gets"
    );

    let stats = index.sfc_stats();
    assert_eq!(stats.snapshot_loads, 1);
    assert_eq!(stats.snapshot_rejects, 0);
    assert!(
        index.sfc_telemetry().counter("sfc.gen.snapshot_loads") > 0,
        "snapshot loads must surface in sphinx.telemetry.v1"
    );
}

fn main() {
    succinctness_at_scale();
    snapshot_byte_identity();
    warm_start_skips_cold_ramp();
    println!("sfc_smoke: all contracts hold");
}
