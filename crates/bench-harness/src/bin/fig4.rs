//! Fig. 4 — throughput under the YCSB benchmark.
//!
//! Reproduces the paper's headline figure: throughput of Sphinx, SMART
//! (scaled 20 MB cache), SMART+C (10×) and ART on YCSB A/B/C/D/E/LOAD
//! over the u64 and email datasets (zipfian 0.99, 64-byte values).
//!
//! One tree is loaded per (system, dataset) and reused across the
//! workloads (read-heavy first, LOAD last — it measures insert throughput
//! of fresh keys into the loaded tree).
//!
//! ```text
//! cargo run --release -p bench-harness --bin fig4 -- \
//!     [--keys 60000] [--ops 2000] [--workers 24]
//! ```

use bench_harness::report::{arg_u64, f3, write_json, Table};
use bench_harness::runner::{load_phase, run_phase, RunConfig};
use bench_harness::systems::System;
use obs::{OpKind, Phase};
use ycsb::{KeySpace, Workload};

/// Compact per-phase round-trip attribution for point lookups — the
/// telemetry view of the paper's cost argument (SFC hit ≈ one hash-entry
/// read; miss walks Θ(L) prefixes).
fn get_phase_summary(reg: &obs::Registry) -> String {
    let get = reg.op(OpKind::Get);
    if get.count == 0 {
        return String::from("(no gets)");
    }
    let per = |p: Phase| get.phases[p.idx()].round_trips as f64 / get.count as f64;
    let hits = reg.counter("sfc.probe_hit");
    let probes = hits + reg.counter("sfc.probe_miss");
    let mut s = format!(
        "get rts/op: InhtLookup {:.2}, Traversal {:.2}, LeafRead {:.2}",
        per(Phase::InhtLookup),
        per(Phase::Traversal),
        per(Phase::LeafRead),
    );
    if probes > 0 {
        s.push_str(&format!(
            " | sfc probe hit-rate {:.1}%",
            hits as f64 / probes as f64 * 100.0
        ));
    }
    s
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let keys = arg_u64(&args, "--keys", 60_000);
    let ops = arg_u64(&args, "--ops", 2_000);
    let workers = arg_u64(&args, "--workers", 96) as usize;

    // Display order matches the paper; execution order puts the read-only
    // workload first so the reused tree is pristine for it, and LOAD last
    // (it measures insert throughput *into the loaded tree*, approximating
    // the paper's steady-state load of a 60 M-key dataset).
    let display = ["LOAD", "A", "B", "C", "D", "E"];
    println!("Fig. 4 — YCSB throughput (Mops/s, virtual time)");
    println!("keys={keys} per dataset, {workers} workers, {ops} ops/worker\n");

    for keyspace in [KeySpace::U64, KeySpace::Email] {
        let mut table = Table::new(
            std::iter::once("system".to_string())
                .chain(display.iter().map(|w| format!("YCSB-{w}"))),
        );
        let mut per_system: Vec<Vec<f64>> = Vec::new();
        let mut phase_lines: Vec<String> = Vec::new();
        for sys in System::paper_lineup() {
            let mut mops = std::collections::HashMap::new();
            let mut telem = obs::Registry::new();

            // Preloaded tree for A–E.
            let handle = sys.build_scaled(1 << 30, keys);
            load_phase(&handle, keyspace, keys, 8);
            for wl_name in ["C", "B", "A", "D", "E"] {
                let workload = Workload::by_name(wl_name).expect("workload");
                let ops_here = if wl_name == "E" {
                    (ops / 8).max(1)
                } else {
                    ops
                };
                let r = run_phase(
                    &handle,
                    &RunConfig {
                        keyspace,
                        num_keys: keys,
                        workload,
                        workers,
                        ops_per_worker: ops_here,
                        warmup_per_worker: (ops_here / 5).max(50),
                        seed: 0xF160_0004,
                        pipeline_depth: RunConfig::depth_from_env(1),
                        trace_head_every: 0,
                        trace_tail_k: obs::DEFAULT_TAIL_K,
                        sample_interval_ns: 0,
                        sample_capacity: 0,
                    },
                );
                telem.merge(&r.telemetry);
                mops.insert(wl_name, r.mops);
            }

            // LOAD: insert throughput of brand-new keys into the loaded
            // tree (the tail of the paper's 60 M-key load phase).
            let r = run_phase(
                &handle,
                &RunConfig {
                    keyspace,
                    num_keys: keys,
                    workload: Workload::load(),
                    workers,
                    ops_per_worker: ops,
                    warmup_per_worker: (ops / 5).max(50),
                    seed: 0xF160_0004,
                    pipeline_depth: RunConfig::depth_from_env(1),
                    trace_head_every: 0,
                    trace_tail_k: obs::DEFAULT_TAIL_K,
                    sample_interval_ns: 0,
                    sample_capacity: 0,
                },
            );
            telem.merge(&r.telemetry);
            mops.insert("LOAD", r.mops);

            let slug = sys.label().to_lowercase().replace('+', "_plus_");
            write_json(
                &format!("fig4_telemetry_{}_{}", keyspace.name(), slug),
                &telem.to_json(),
            );
            phase_lines.push(format!("{:<10} {}", sys.label(), get_phase_summary(&telem)));

            let row: Vec<f64> = display.iter().map(|w| mops[w]).collect();
            table.row(std::iter::once(sys.label().to_string()).chain(row.iter().map(|m| f3(*m))));
            per_system.push(row);
        }
        println!("dataset: {}", keyspace.name());
        println!("{}", table.render());
        table.write_csv(&format!("fig4_{}", keyspace.name()));
        println!("phase attribution (full run incl. warm-up; JSON in results/):");
        for line in &phase_lines {
            println!("  {line}");
        }
        println!();

        // The paper's headline: Sphinx vs best/worst competitor per
        // workload.
        let sphinx = &per_system[0];
        let mut min_gain = f64::INFINITY;
        let mut max_gain: f64 = 0.0;
        for (w, _) in display.iter().enumerate() {
            let best_other = per_system[1..]
                .iter()
                .map(|row| row[w])
                .fold(f64::MIN, f64::max);
            let worst_other = per_system[1..]
                .iter()
                .map(|row| row[w])
                .fold(f64::MAX, f64::min);
            min_gain = min_gain.min(sphinx[w] / best_other);
            max_gain = max_gain.max(sphinx[w] / worst_other);
        }
        println!(
            "Sphinx speedup over competitors on {}: {:.1}x – {:.1}x (paper: {})\n",
            keyspace.name(),
            min_gain,
            max_gain,
            if keyspace == KeySpace::U64 {
                "1.2–3.6x"
            } else {
                "1.9–7.3x"
            },
        );
    }
}
