//! Fig. 6 follow-up — MN-side memory under churn, with and without
//! epoch-based reclamation.
//!
//! The original Fig. 6 loads once and measures, which no reclaimer can
//! change. This experiment adds what the paper's load-only setup hides:
//! delete/re-insert churn with alternating value sizes (every flip
//! replaces a leaf out of place). Without reclamation every replaced
//! leaf, unlinked delete victim, and type-switched node is leaked, so
//! the footprint ratchets upward with churn; with the `reclaim` crate
//! wired in, the post-quiescence footprint returns to the loaded
//! working set.
//!
//! ```text
//! cargo run --release -p bench-harness --bin fig6_reclaim -- [--keys 20000] [--rounds 3]
//! ```

use baselines::{BaselineConfig, BaselineIndex};
use bench_harness::report::{arg_u64, Table};
use bench_harness::runner::load_phase;
use bench_harness::systems::SystemHandle;
use dm_sim::{ClusterConfig, DmCluster};
use sphinx::{SphinxConfig, SphinxIndex};
use ycsb::{value_for, KeySpace};

fn mib(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / (1 << 20) as f64)
}

fn build(system: &str, reclaim_on: bool) -> SystemHandle {
    let cluster = DmCluster::new(ClusterConfig {
        num_mns: 3,
        num_cns: 3,
        mn_capacity: 2 << 30,
        ..Default::default()
    });
    let reclaim = reclaim::ReclaimConfig {
        enabled: reclaim_on,
        ..reclaim::ReclaimConfig::default()
    };
    match system {
        "Sphinx" => {
            let config = SphinxConfig {
                reclaim,
                ..SphinxConfig::default()
            };
            SystemHandle::Sphinx(SphinxIndex::create(&cluster, config).expect("create sphinx"))
        }
        "ART" => {
            let config = BaselineConfig {
                reclaim,
                ..BaselineConfig::art()
            };
            SystemHandle::Baseline(BaselineIndex::create(&cluster, config).expect("create art"))
        }
        other => unreachable!("unknown system {other}"),
    }
}

/// Delete/re-insert churn over the whole key set, alternating between
/// the loaded 64-byte values and oversized 150-byte ones so every flip
/// goes out of place. Two workers, so frees are genuinely epoch-gated.
fn churn(handle: &SystemHandle, keyspace: KeySpace, keys: u64, rounds: u64) {
    let mut workers = [handle.worker(0), handle.worker(1)];
    for round in 0..rounds {
        let grow = round % 2 == 0;
        for i in 0..keys {
            let key = keyspace.key(i);
            let w = &mut workers[(i % 2) as usize];
            w.remove(&key);
            if grow {
                w.insert(&key, &[0xCD; 150]);
            } else {
                w.insert(&key, &value_for(i, round as u32));
            }
        }
    }
    // Back to the loaded value size, then quiesce: round-robin scans so
    // every worker's slot advances, then drain both limbo lists.
    for i in 0..keys {
        let key = keyspace.key(i);
        let w = &mut workers[(i % 2) as usize];
        w.remove(&key);
        w.insert(&key, &value_for(i, 0));
    }
    for _ in 0..8 {
        for w in workers.iter_mut() {
            w.reclaim_scan();
        }
    }
    for w in workers.iter_mut() {
        w.reclaim_quiesce(16);
        w.reclaim_deregister();
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let keys = arg_u64(&args, "--keys", 20_000);
    let rounds = arg_u64(&args, "--rounds", 3);

    println!(
        "Fig. 6 (reclaim) — MN memory after {rounds} rounds of delete/re-insert churn over {keys} keys\n"
    );
    let mut table = Table::new([
        "dataset",
        "system",
        "reclaim",
        "load_mib",
        "churned_mib",
        "reclaimed_mib",
        "vs_load",
    ]);

    for keyspace in [KeySpace::U64, KeySpace::Email] {
        for system in ["Sphinx", "ART"] {
            for reclaim_on in [false, true] {
                let handle = build(system, reclaim_on);
                load_phase(&handle, keyspace, keys, 8);
                let loaded = handle.cluster().total_live_bytes();
                churn(&handle, keyspace, keys, rounds);
                let after = handle.cluster().total_live_bytes();
                let reclaimed = handle.index_telemetry().counter("mem.reclaimed_bytes");
                table.row([
                    keyspace.name().to_string(),
                    system.to_string(),
                    if reclaim_on { "on" } else { "off" }.to_string(),
                    mib(loaded),
                    mib(after),
                    mib(reclaimed),
                    format!("{:.2}x", after as f64 / loaded as f64),
                ]);
            }
        }
    }
    println!("{}", table.render());
    table.write_csv("fig6_reclaim");
}
