//! Fig. 6 + §V-D — MN-side memory usage across datasets.
//!
//! Loads the same key set into ART, Sphinx (= ART + Inner Node Hash
//! Table) and SMART, and reports each system's memory-node footprint. The
//! paper reports: INHT overhead of 3.3% (u64) / 4.9% (email) over plain
//! ART, and SMART at 2.1–3.0× ART due to Node-256 preallocation.
//!
//! ```text
//! cargo run --release -p bench-harness --bin fig6 -- [--keys 200000]
//! ```

use bench_harness::report::{arg_u64, Table};
use bench_harness::runner::load_phase;
use bench_harness::systems::System;
use ycsb::KeySpace;

fn mib(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / (1 << 20) as f64)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let keys = arg_u64(&args, "--keys", 200_000);

    println!("Fig. 6 — MN-side memory usage after loading {keys} keys\n");
    let mut table = Table::new([
        "dataset",
        "system",
        "art_mib",
        "aux_mib",
        "total_mib",
        "vs_art",
    ]);

    for keyspace in [KeySpace::U64, KeySpace::Email] {
        let mut art_total = 0u64;
        for sys in [System::Art, System::Sphinx, System::Smart] {
            let handle = sys.build(2 << 30, None);
            load_phase(&handle, keyspace, keys, 8);
            let (art_bytes, aux_bytes) = handle.memory_breakdown();
            let total = art_bytes + aux_bytes;
            if sys == System::Art {
                art_total = total;
            }
            let vs_art = total as f64 / art_total as f64;
            table.row([
                keyspace.name().to_string(),
                sys.label().to_string(),
                mib(art_bytes),
                mib(aux_bytes),
                mib(total),
                format!("{vs_art:.2}x"),
            ]);
            if sys == System::Sphinx {
                println!(
                    "  {}: INHT overhead = {:.1}% of ART (paper: {})",
                    keyspace.name(),
                    aux_bytes as f64 / art_bytes as f64 * 100.0,
                    if keyspace == KeySpace::U64 {
                        "3.3%"
                    } else {
                        "4.9%"
                    },
                );
            }
            if sys == System::Smart {
                println!(
                    "  {}: SMART / ART = {:.2}x (paper: 2.1–3.0x)\n",
                    keyspace.name(),
                    vs_art,
                );
            }
        }
    }
    println!("{}", table.render());
    table.write_csv("fig6_memory");
}
