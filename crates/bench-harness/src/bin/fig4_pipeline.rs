//! fig4/fig5 rerun with op pipelining — depth ∈ {1, 8}.
//!
//! Two sections, one CSV (`results/fig4_pipeline.csv`):
//!
//! * **fig4**: YCSB-C throughput for Sphinx and the B+-tree over both
//!   datasets at pipeline depth 1 (legacy blocking) and 8, with per-op
//!   round trips, per-op *doorbells*, and per-phase rts/op columns. The
//!   per-phase columns show where the cross-op fusion lands: logical
//!   round trips per op stay put while doorbells per op collapse (total
//!   doorbells < total ops × legacy doorbells/op).
//! * **fig5**: the scalability sweep (YCSB-A worker ladder) for Sphinx at
//!   both depths — throughput = ops / max(worker virtual time), so the
//!   fused RTT overlap is visible directly in the Mops column.
//!
//! ```text
//! cargo run --release -p bench-harness --bin fig4_pipeline -- \
//!     [--keys 60000] [--ops 2000] [--workers 24]
//! ```

use bench_harness::report::{arg_u64, f3, Table};
use bench_harness::runner::{load_phase, run_phase, RunConfig, RunResult};
use bench_harness::systems::System;
use obs::{OpKind, Phase};
use ycsb::{KeySpace, Workload};

/// Per-phase read round trips per op. At depth 1 the attribution comes
/// from the blocking path's phase spans; at depth >1 from the pipeline's
/// per-tag aggregates (the spans of pipelined ops interleave and are not
/// phase-attributable from wall intervals).
fn phase_rts(r: &RunResult, depth: usize, phase: Phase) -> f64 {
    if depth > 1 {
        let ops = r.telemetry.counter("pipeline.ops");
        if ops == 0 {
            return 0.0;
        }
        let rts = r
            .telemetry
            .counter(&format!("pipeline.rts.{}", phase.name()));
        return rts as f64 / ops as f64;
    }
    let get = r.telemetry.op(OpKind::Get);
    if get.count == 0 {
        return 0.0;
    }
    get.phases[phase.idx()].round_trips as f64 / get.count as f64
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let keys = arg_u64(&args, "--keys", 60_000);
    let ops = arg_u64(&args, "--ops", 2_000);
    let workers = arg_u64(&args, "--workers", 24) as usize;
    let depths = [1usize, node_engine::pipeline::DEFAULT_DEPTH];

    let mut table = Table::new([
        "section",
        "dataset",
        "system",
        "workers",
        "depth",
        "mops",
        "speedup",
        "rts_per_op",
        "doorbells_per_op",
        "inht_rts_op",
        "trav_rts_op",
        "leaf_rts_op",
    ]);

    println!("fig4/fig5 with op pipelining (depths {depths:?})");
    println!("keys={keys}, ops/worker={ops}\n");

    // fig4 section: YCSB-C, both datasets, the two systems with a
    // completion-queue client. (The SMART/ART baselines have no pipelined
    // path — their numbers would repeat fig4.csv unchanged.)
    for keyspace in [KeySpace::U64, KeySpace::Email] {
        for sys in [System::Sphinx, System::BpTree] {
            if sys == System::BpTree && keyspace == KeySpace::Email {
                continue; // fixed-width u64 keys only
            }
            let handle = sys.build_scaled(1 << 30, keys);
            load_phase(&handle, keyspace, keys, 8);
            let mut base_mops = 0.0;
            for depth in depths {
                let r = run_phase(
                    &handle,
                    &RunConfig {
                        keyspace,
                        num_keys: keys,
                        workload: Workload::c(),
                        workers,
                        ops_per_worker: ops,
                        warmup_per_worker: (ops / 5).max(50),
                        seed: 0xF160_0004,
                        pipeline_depth: depth,
                        trace_head_every: 0,
                        trace_tail_k: obs::DEFAULT_TAIL_K,
                        sample_interval_ns: 0,
                        sample_capacity: 0,
                    },
                );
                if depth == 1 {
                    base_mops = r.mops;
                }
                let speedup = r.mops / base_mops;
                println!(
                    "fig4 {} {:<7} depth {depth}: {:.3} Mops ({speedup:.2}x), \
                     rts/op {:.3}, doorbells/op {:.3}",
                    keyspace.name(),
                    sys.label(),
                    r.mops,
                    r.round_trips_per_op,
                    r.doorbells_per_op,
                );
                table.row([
                    "fig4".to_string(),
                    keyspace.name().to_string(),
                    sys.label().to_string(),
                    workers.to_string(),
                    depth.to_string(),
                    f3(r.mops),
                    f3(speedup),
                    f3(r.round_trips_per_op),
                    f3(r.doorbells_per_op),
                    f3(phase_rts(&r, depth, Phase::InhtLookup)),
                    f3(phase_rts(&r, depth, Phase::Traversal)),
                    f3(phase_rts(&r, depth, Phase::LeafRead)),
                ]);
            }
        }
    }
    println!();

    // fig5 section: the YCSB-A scalability ladder for Sphinx, u64.
    let handle = System::Sphinx.build_scaled(1 << 30, keys);
    load_phase(&handle, KeySpace::U64, keys, 8);
    for w in [6usize, 12, 24, 48] {
        let mut base_mops = 0.0;
        for depth in depths {
            let r = run_phase(
                &handle,
                &RunConfig {
                    keyspace: KeySpace::U64,
                    num_keys: keys,
                    workload: Workload::a(),
                    workers: w,
                    ops_per_worker: ops,
                    warmup_per_worker: (ops / 5).max(20),
                    seed: 0xF160_0005,
                    pipeline_depth: depth,
                    trace_head_every: 0,
                    trace_tail_k: obs::DEFAULT_TAIL_K,
                    sample_interval_ns: 0,
                    sample_capacity: 0,
                },
            );
            if depth == 1 {
                base_mops = r.mops;
            }
            let speedup = r.mops / base_mops;
            println!(
                "fig5 {w:>3} workers depth {depth}: {:.3} Mops ({speedup:.2}x), \
                 rts/op {:.3}, doorbells/op {:.3}",
                r.mops, r.round_trips_per_op, r.doorbells_per_op,
            );
            table.row([
                "fig5".to_string(),
                "u64".to_string(),
                "Sphinx".to_string(),
                w.to_string(),
                depth.to_string(),
                f3(r.mops),
                f3(speedup),
                f3(r.round_trips_per_op),
                f3(r.doorbells_per_op),
                f3(phase_rts(&r, depth, Phase::InhtLookup)),
                f3(phase_rts(&r, depth, Phase::Traversal)),
                f3(phase_rts(&r, depth, Phase::LeafRead)),
            ]);
        }
    }

    println!("\n{}", table.render());
    table.write_csv("fig4_pipeline");
    println!("wrote results/fig4_pipeline.csv");
}
