//! Extension — index families head to head on their home turf.
//!
//! The paper's introduction argues that variable-length keys push DM
//! systems toward ART-family indexes; the implicit counterpoint is that a
//! B+-tree (Sherman-style) is a strong competitor for *fixed-width* keys:
//! shallow (fanout 62), internal nodes that cache beautifully, and linked
//! leaves that make scans a chain walk.
//!
//! This experiment runs Sphinx, SMART, ART and the Sherman-lite B+-tree
//! on the u64 dataset (point workloads + a scan-heavy one). The email
//! dataset has no B+-tree row — it *cannot* be represented with fixed
//! 8-byte slots, which is the paper's motivation in one table.
//!
//! ```text
//! cargo run --release -p bench-harness --bin btree_compare -- \
//!     [--keys 60000] [--ops 1500] [--workers 24]
//! ```

use bench_harness::report::{arg_u64, f3, Table};
use bench_harness::runner::{load_phase, run_phase, RunConfig};
use bench_harness::systems::System;
use ycsb::{KeySpace, Workload};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let keys = arg_u64(&args, "--keys", 60_000);
    let ops = arg_u64(&args, "--ops", 1_500);
    let workers = arg_u64(&args, "--workers", 24) as usize;

    println!("Extension — index families on the u64 dataset");
    println!("keys={keys}, {workers} workers, {ops} ops/worker\n");
    let mut table = Table::new([
        "workload",
        "system",
        "mops",
        "avg_lat_us",
        "rts_per_op",
        "bytes_per_op",
    ]);

    let systems = [System::Sphinx, System::Smart, System::Art, System::BpTree];
    for wl_name in ["C", "A", "E"] {
        for sys in systems {
            let handle = sys.build_scaled(1 << 30, keys);
            load_phase(&handle, KeySpace::U64, keys, 8);
            let workload = Workload::by_name(wl_name).expect("workload");
            let ops_here = if wl_name == "E" {
                (ops / 8).max(1)
            } else {
                ops
            };
            let r = run_phase(
                &handle,
                &RunConfig {
                    keyspace: KeySpace::U64,
                    num_keys: keys,
                    workload,
                    workers,
                    ops_per_worker: ops_here,
                    warmup_per_worker: (ops_here / 5).max(50),
                    seed: 0xB7EE_0001,
                    pipeline_depth: RunConfig::depth_from_env(1),
                    trace_head_every: 0,
                    trace_tail_k: obs::DEFAULT_TAIL_K,
                    sample_interval_ns: 0,
                    sample_capacity: 0,
                },
            );
            table.row([
                format!("YCSB-{wl_name}"),
                sys.label().to_string(),
                f3(r.mops),
                f3(r.avg_latency_us),
                f3(r.round_trips_per_op),
                format!("{:.0}", r.bytes_per_op),
            ]);
        }
    }
    println!("{}", table.render());
    table.write_csv("btree_compare");
    println!(
        "email dataset: no B+Tree row — 2–32-byte keys cannot fill fixed 8-byte\n\
         slots; supporting them would mean padding every key to the maximum\n\
         (4x space, lost prefix sharing), the gap ART-family indexes fill."
    );
}
