//! Fig. 5 — scalability: throughput–latency curves under YCSB-A.
//!
//! Sweeps the worker count (6–192, evenly spread over 3 CNs, matching the
//! paper's coroutine workers) and reports the (throughput, avg latency)
//! point per system and dataset. The virtual-time NIC model produces the
//! same hockey-stick saturation the paper attributes to traversal-heavy
//! indexes exhausting the NIC message rate.
//!
//! ```text
//! cargo run --release -p bench-harness --bin fig5 -- \
//!     [--keys 60000] [--total-ops 48000]
//! ```

use bench_harness::report::{arg_u64, ascii_curve, f3, Table};

use bench_harness::runner::{load_phase, run_phase, RunConfig};
use bench_harness::systems::System;
use ycsb::{KeySpace, Workload};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let keys = arg_u64(&args, "--keys", 60_000);
    let total_ops = arg_u64(&args, "--total-ops", 48_000);
    let dataset_filter = args
        .iter()
        .position(|a| a == "--dataset")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "both".to_string());
    let worker_counts = [6usize, 12, 24, 48, 96, 192];

    println!("Fig. 5 — YCSB-A throughput–latency scalability");
    println!("keys={keys}, total measured ops per point={total_ops}\n");

    for keyspace in [KeySpace::U64, KeySpace::Email] {
        if dataset_filter != "both" && dataset_filter != keyspace.name() {
            continue;
        }
        let mut table = Table::new([
            "system",
            "workers",
            "mops",
            "avg_lat_us",
            "p99_lat_us",
            "rts_per_op",
        ]);
        let mut curves: Vec<(&str, Vec<(f64, f64)>)> = Vec::new();
        for sys in System::paper_lineup() {
            // One load per (system, dataset); the sweep reuses the tree.
            let handle = sys.build_scaled(1 << 30, keys);
            load_phase(&handle, keyspace, keys, 8);
            let mut curve = Vec::new();
            for &workers in &worker_counts {
                let ops_per_worker = (total_ops / workers as u64).max(50);
                let cfg = RunConfig {
                    keyspace,
                    num_keys: keys,
                    workload: Workload::a(),
                    workers,
                    ops_per_worker,
                    warmup_per_worker: (ops_per_worker / 5).max(20),
                    seed: 0xF160_0005,
                    pipeline_depth: RunConfig::depth_from_env(1),
                    trace_head_every: 0,
                    trace_tail_k: obs::DEFAULT_TAIL_K,
                    sample_interval_ns: 0,
                    sample_capacity: 0,
                };
                let r = run_phase(&handle, &cfg);
                curve.push((r.mops, r.avg_latency_us));
                table.row([
                    sys.label().to_string(),
                    workers.to_string(),
                    f3(r.mops),
                    f3(r.avg_latency_us),
                    f3(r.p99_latency_us),
                    f3(r.round_trips_per_op),
                ]);
            }
            curves.push((sys.label(), curve));
        }
        println!("dataset: {}", keyspace.name());
        println!("{}", table.render());
        println!("{}", ascii_curve(&curves));
        table.write_csv(&format!("fig5_{}", keyspace.name()));
    }
}
