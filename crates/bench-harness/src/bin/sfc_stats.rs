//! §III-B — Succinct Filter Cache accuracy statistics.
//!
//! Measures, over a read-only workload:
//! * the fraction of lookups whose *first* hash-entry fetch already named
//!   the deepest node (the filter doing its job);
//! * the hash-entry miss rate (filter false positives / staleness — the
//!   paper claims <1%);
//! * the double-collision retry rate detected at leaves (paper: <0.01%);
//! * the raw cuckoo-filter false-positive rate at the same occupancy.
//!
//! ```text
//! cargo run --release -p bench-harness --bin sfc_stats -- \
//!     [--keys 100000] [--ops 50000]
//! ```

use bench_harness::report::{arg_u64, Table};
use bench_harness::runner::load_phase;
use bench_harness::systems::{System, SystemHandle, WorkerClient};
use ycsb::KeySpace;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let keys = arg_u64(&args, "--keys", 100_000);
    let ops = arg_u64(&args, "--ops", 50_000);

    println!("§III-B — Succinct Filter Cache statistics ({keys} keys, {ops} lookups)\n");
    let mut table = Table::new([
        "dataset",
        "filter_first_hit_%",
        "entry_miss_per_op",
        "fp_retry_per_op",
        "raw_filter_fp_%",
    ]);

    for keyspace in [KeySpace::U64, KeySpace::Email] {
        let handle = System::Sphinx.build(1 << 30, None);
        load_phase(&handle, keyspace, keys, 8);
        let mut worker = handle.worker(0);

        // Warm the filter with one pass over a sample.
        for i in (0..keys).step_by(7) {
            worker.get(&keyspace.key(i));
        }
        let (base_op, base_net) = match &worker {
            WorkerClient::Sphinx(c) => (c.op_stats(), c.net_stats()),
            _ => unreachable!(),
        };
        let _ = base_net;
        let mut x = 0x1234_5678u64;
        for _ in 0..ops {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            worker.get(&keyspace.key((x >> 16) % keys));
        }
        let stats = match &worker {
            WorkerClient::Sphinx(c) => c.op_stats().since(&base_op),
            _ => unreachable!(),
        };

        // Raw filter accuracy at the achieved occupancy.
        let raw_fp = match (&worker, &handle) {
            (WorkerClient::Sphinx(c), SystemHandle::Sphinx(_)) => {
                let filter = c.filter_handle().lock();
                let probes = 50_000u64;
                let fps = (0..probes)
                    .filter(|i| filter.contains_quiet(format!("no-such-prefix-{i}").as_bytes()))
                    .count();
                fps as f64 / probes as f64 * 100.0
            }
            _ => unreachable!(),
        };

        table.row([
            keyspace.name().to_string(),
            format!(
                "{:.1}",
                stats.filter_first_hits as f64 / stats.gets as f64 * 100.0
            ),
            format!("{:.4}", stats.entry_misses as f64 / stats.gets as f64),
            format!(
                "{:.6}",
                stats.false_positive_retries as f64 / stats.gets as f64
            ),
            format!("{raw_fp:.3}"),
        ]);
    }
    println!("{}", table.render());
    table.write_csv("sfc_stats");
    println!("paper targets: entry misses <1% of checks, double-collision retries <0.01%");
}
