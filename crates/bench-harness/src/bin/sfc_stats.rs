//! §III-B — Succinct Filter Cache accuracy statistics.
//!
//! Measures, over a read-only workload and for **both** cache variants
//! (the pre-generational cuckoo-only SFC and the generational SFC 2.0:
//! frozen binary-fuse generation + mutable cuckoo delta):
//! * the fraction of lookups whose *first* hash-entry fetch already named
//!   the deepest node (the filter doing its job);
//! * the hash-entry miss rate (filter false positives / staleness — the
//!   paper claims <1%);
//! * the double-collision retry rate detected at leaves (paper: <0.01%);
//! * the raw filter false-positive rate at the same occupancy;
//! * the filter hit rate over the probe ladder (hits / membership probes);
//! * the resident probe-structure cost in bits per cached prefix — the
//!   succinctness claim (frozen fuse ≈9–10 bits/entry at scale vs the
//!   cuckoo's ≥16 bits/slot before load-factor losses);
//! * per-get hash-entry reads during the INHT lookup phase — the quantity
//!   the filter exists to minimise (≈1 on a hit, Θ(L) on a miss).
//!
//! All rates come from the telemetry registry ([`obs::Registry`]) and the
//! index-level SFC counters: the measured window is isolated by
//! snapshotting both before the loop and differencing the monotone
//! counters, and the full registry (with per-phase attribution and the
//! flight recorder) is exported to
//! `results/sfc_stats_telemetry_<dataset>_<variant>.json`.
//!
//! ```text
//! cargo run --release -p bench-harness --bin sfc_stats -- \
//!     [--keys 100000] [--ops 50000]
//! ```

use bench_harness::report::{arg_u64, write_json, Table};
use bench_harness::runner::load_phase;
use bench_harness::systems::{paper_cache_bytes, SystemHandle, WorkerClient};
use dm_sim::{ClusterConfig, DmCluster};
use obs::{OpKind, Phase};
use sphinx::{SphinxConfig, SphinxIndex};
use ycsb::KeySpace;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let keys = arg_u64(&args, "--keys", 100_000);
    let ops = arg_u64(&args, "--ops", 50_000);

    println!("§III-B — Succinct Filter Cache statistics ({keys} keys, {ops} lookups)\n");
    let mut table = Table::new([
        "dataset",
        "variant",
        "filter_first_hit_%",
        "entry_miss_per_op",
        "fp_retry_per_op",
        "raw_filter_fp_%",
        "filter_hit_rate_%",
        "bits_per_entry",
        "inht_reads_per_get",
    ]);

    for keyspace in [KeySpace::U64, KeySpace::Email] {
        for generational in [false, true] {
            let variant = if generational {
                "generational"
            } else {
                "cuckoo-only"
            };
            // Paper-proportioned cache budget (20 MB : 60 M keys), so the
            // cuckoo variant's bits/entry reflects a realistically loaded
            // filter rather than an idle 20 MB allocation.
            let cluster = DmCluster::new(ClusterConfig {
                num_mns: 3,
                num_cns: 3,
                mn_capacity: 1 << 30,
                ..Default::default()
            });
            let config = SphinxConfig {
                cache_bytes: paper_cache_bytes(keys),
                sfc: sphinx::sfc::SfcConfig {
                    generational,
                    ..Default::default()
                },
                ..SphinxConfig::default()
            };
            let index = SphinxIndex::create(&cluster, config).expect("create sphinx");
            let handle = SystemHandle::Sphinx(index.clone());
            load_phase(&handle, keyspace, keys, 8);
            let mut worker = handle.worker(0);

            // Warm the filter with one pass over a sample, then fold the
            // pending delta into a frozen generation so the measured
            // window probes the steady generational state.
            for i in (0..keys).step_by(7) {
                worker.get(&keyspace.key(i));
            }
            if let WorkerClient::Sphinx(c) = &worker {
                c.filter_handle().force_rebuild();
            }
            let base = worker.telemetry();
            let sfc_base = index.sfc_stats();
            let mut x = 0x1234_5678u64;
            for _ in 0..ops {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                worker.get(&keyspace.key((x >> 16) % keys));
            }
            let cur = worker.telemetry();
            let sfc_cur = index.sfc_stats();
            // Registry counters and phase cells are monotone, so the
            // measured window is the difference of the two snapshots.
            let delta = |name: &str| cur.counter(name) - base.counter(name);
            let gets = cur.op(OpKind::Get).count - base.op(OpKind::Get).count;
            let inht_reads = cur.phase(OpKind::Get, Phase::InhtLookup).verbs
                - base.phase(OpKind::Get, Phase::InhtLookup).verbs;
            let probes = sfc_cur.lookups - sfc_base.lookups;
            let hit_rate = (sfc_cur.hits - sfc_base.hits) as f64 / probes.max(1) as f64 * 100.0;

            // Raw filter accuracy and resident cost at the achieved
            // occupancy. `bits_per_entry` counts only the probe
            // structures (fuse fingerprints + delta slots), the quantity
            // the succinctness claim is about.
            let (raw_fp, bits) = match &worker {
                WorkerClient::Sphinx(c) => {
                    let filter = c.filter_handle();
                    let probes = 50_000u64;
                    let fps = (0..probes)
                        .filter(|i| filter.contains_quiet(format!("no-such-prefix-{i}").as_bytes()))
                        .count();
                    let bits = filter.memory_bytes() as f64 * 8.0 / filter.len().max(1) as f64;
                    (fps as f64 / probes as f64 * 100.0, bits)
                }
                _ => unreachable!(),
            };

            table.row([
                keyspace.name().to_string(),
                variant.to_string(),
                format!(
                    "{:.1}",
                    delta("sphinx.filter_first_hits") as f64 / gets as f64 * 100.0
                ),
                format!("{:.4}", delta("sphinx.entry_misses") as f64 / gets as f64),
                format!("{:.6}", delta("sphinx.fp_retries") as f64 / gets as f64),
                format!("{raw_fp:.3}"),
                format!("{hit_rate:.1}"),
                format!("{bits:.1}"),
                format!("{:.3}", inht_reads as f64 / gets as f64),
            ]);
            write_json(
                &format!("sfc_stats_telemetry_{}_{}", keyspace.name(), variant),
                &cur.to_json(),
            );
        }
    }
    println!("{}", table.render());
    table.write_csv("sfc_stats");
    println!("paper targets: entry misses <1% of checks, double-collision retries <0.01%");
}
