//! §III-B — Succinct Filter Cache accuracy statistics.
//!
//! Measures, over a read-only workload:
//! * the fraction of lookups whose *first* hash-entry fetch already named
//!   the deepest node (the filter doing its job);
//! * the hash-entry miss rate (filter false positives / staleness — the
//!   paper claims <1%);
//! * the double-collision retry rate detected at leaves (paper: <0.01%);
//! * the raw cuckoo-filter false-positive rate at the same occupancy;
//! * per-get hash-entry reads during the INHT lookup phase — the quantity
//!   the filter exists to minimise (≈1 on a hit, Θ(L) on a miss).
//!
//! All rates come from the telemetry registry ([`obs::Registry`]): the
//! measured window is isolated by snapshotting the worker's registry
//! before the loop and differencing the monotone counters, and the full
//! registry (with per-phase attribution and the flight recorder) is
//! exported to `results/sfc_stats_telemetry_<dataset>.json`.
//!
//! ```text
//! cargo run --release -p bench-harness --bin sfc_stats -- \
//!     [--keys 100000] [--ops 50000]
//! ```

use bench_harness::report::{arg_u64, write_json, Table};
use bench_harness::runner::load_phase;
use bench_harness::systems::{System, WorkerClient};
use obs::{OpKind, Phase};
use ycsb::KeySpace;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let keys = arg_u64(&args, "--keys", 100_000);
    let ops = arg_u64(&args, "--ops", 50_000);

    println!("§III-B — Succinct Filter Cache statistics ({keys} keys, {ops} lookups)\n");
    let mut table = Table::new([
        "dataset",
        "filter_first_hit_%",
        "entry_miss_per_op",
        "fp_retry_per_op",
        "raw_filter_fp_%",
        "inht_reads_per_get",
    ]);

    for keyspace in [KeySpace::U64, KeySpace::Email] {
        let handle = System::Sphinx.build(1 << 30, None);
        load_phase(&handle, keyspace, keys, 8);
        let mut worker = handle.worker(0);

        // Warm the filter with one pass over a sample.
        for i in (0..keys).step_by(7) {
            worker.get(&keyspace.key(i));
        }
        let base = worker.telemetry();
        let mut x = 0x1234_5678u64;
        for _ in 0..ops {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            worker.get(&keyspace.key((x >> 16) % keys));
        }
        let cur = worker.telemetry();
        // Registry counters and phase cells are monotone, so the measured
        // window is the difference of the two snapshots.
        let delta = |name: &str| cur.counter(name) - base.counter(name);
        let gets = cur.op(OpKind::Get).count - base.op(OpKind::Get).count;
        let inht_reads = cur.phase(OpKind::Get, Phase::InhtLookup).verbs
            - base.phase(OpKind::Get, Phase::InhtLookup).verbs;

        // Raw filter accuracy at the achieved occupancy.
        let raw_fp = match &worker {
            WorkerClient::Sphinx(c) => {
                let filter = c.filter_handle().lock();
                let probes = 50_000u64;
                let fps = (0..probes)
                    .filter(|i| filter.contains_quiet(format!("no-such-prefix-{i}").as_bytes()))
                    .count();
                fps as f64 / probes as f64 * 100.0
            }
            _ => unreachable!(),
        };

        table.row([
            keyspace.name().to_string(),
            format!(
                "{:.1}",
                delta("sphinx.filter_first_hits") as f64 / gets as f64 * 100.0
            ),
            format!("{:.4}", delta("sphinx.entry_misses") as f64 / gets as f64),
            format!("{:.6}", delta("sphinx.fp_retries") as f64 / gets as f64),
            format!("{raw_fp:.3}"),
            format!("{:.3}", inht_reads as f64 / gets as f64),
        ]);
        write_json(
            &format!("sfc_stats_telemetry_{}", keyspace.name()),
            &cur.to_json(),
        );
    }
    println!("{}", table.render());
    table.write_csv("sfc_stats");
    println!("paper targets: entry misses <1% of checks, double-collision retries <0.01%");
}
