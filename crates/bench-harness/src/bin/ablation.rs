//! Ablation — what each Sphinx component buys.
//!
//! Compares, under read-only YCSB-C on both datasets:
//! * **Sphinx** (INHT + Succinct Filter Cache),
//! * **Sphinx-INHT** (hash table only: parallel hash-entry reads for all
//!   prefixes, §III-A without §III-B),
//! * **ART** (neither).
//!
//! The interesting columns are round trips and bytes per operation: the
//! INHT collapses round trips; the SFC collapses the verb count and bytes
//! (Θ(L) → 1 hash-entry reads).
//!
//! ```text
//! cargo run --release -p bench-harness --bin ablation -- \
//!     [--keys 60000] [--ops 2000] [--workers 24]
//! ```

use bench_harness::report::{arg_u64, f3, write_json, Table};
use bench_harness::runner::{load_phase, run_phase, RunConfig};
use bench_harness::systems::System;
use obs::{OpKind, Phase};
use ycsb::{KeySpace, Workload};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let keys = arg_u64(&args, "--keys", 60_000);
    let ops = arg_u64(&args, "--ops", 2_000);
    let workers = arg_u64(&args, "--workers", 24) as usize;

    println!("Ablation — YCSB-C, {keys} keys, {workers} workers\n");
    // The three *_rts columns are per-phase round-trip attribution for
    // point lookups (whole worker lifetime): the SFC collapses InhtLookup
    // from Θ(L) hash-entry reads to ~1, which is the paper's §III-B claim
    // made directly visible.
    let mut table = Table::new([
        "dataset",
        "variant",
        "mops",
        "avg_lat_us",
        "rts_per_op",
        "bytes_per_op",
        "inht_rts",
        "trav_rts",
        "leaf_rts",
    ]);

    for keyspace in [KeySpace::U64, KeySpace::Email] {
        for sys in [System::Sphinx, System::SphinxInhtOnly, System::Art] {
            let handle = sys.build_scaled(1 << 30, keys);
            load_phase(&handle, keyspace, keys, 8);
            let cfg = RunConfig {
                keyspace,
                num_keys: keys,
                workload: Workload::c(),
                workers,
                ops_per_worker: ops,
                warmup_per_worker: (ops / 5).max(50),
                seed: 0xAB1A_7104,
                pipeline_depth: RunConfig::depth_from_env(1),
                trace_head_every: 0,
                trace_tail_k: obs::DEFAULT_TAIL_K,
                sample_interval_ns: 0,
                sample_capacity: 0,
            };
            let r = run_phase(&handle, &cfg);
            let get = r.telemetry.op(OpKind::Get);
            let per = |p: Phase| {
                if get.count == 0 {
                    0.0
                } else {
                    get.phases[p.idx()].round_trips as f64 / get.count as f64
                }
            };
            write_json(
                &format!(
                    "ablation_telemetry_{}_{}",
                    keyspace.name(),
                    sys.label().to_lowercase().replace('+', "_plus_")
                ),
                &r.telemetry.to_json(),
            );
            table.row([
                keyspace.name().to_string(),
                sys.label().to_string(),
                f3(r.mops),
                f3(r.avg_latency_us),
                f3(r.round_trips_per_op),
                format!("{:.0}", r.bytes_per_op),
                f3(per(Phase::InhtLookup)),
                f3(per(Phase::Traversal)),
                f3(per(Phase::LeafRead)),
            ]);
        }
    }
    println!("{}", table.render());
    table.write_csv("ablation");
    println!("per-phase telemetry JSON written to results/ablation_telemetry_*.json");
}
