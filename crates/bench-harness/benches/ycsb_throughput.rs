//! Criterion companion to Fig. 4: virtual-time makespan of a fixed YCSB
//! batch per system. Smaller is better; the `fig4` binary prints the full
//! table with throughput in Mops.
//!
//! Uses `iter_custom` to report the *simulated* (virtual) duration of the
//! measured batch rather than host wall time, which is the quantity the
//! paper's figures are about.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use bench_harness::runner::{load_phase, run_phase, RunConfig};
use bench_harness::systems::System;
use ycsb::{KeySpace, Workload};

const KEYS: u64 = 10_000;

fn bench_workload(c: &mut Criterion, workload_name: &str) {
    let mut group = c.benchmark_group(format!("ycsb_{workload_name}_u64"));
    group.sample_size(10);
    for sys in System::paper_lineup() {
        let handle = sys.build_scaled(512 << 20, KEYS);
        load_phase(&handle, KeySpace::U64, KEYS, 4);
        let workload = Workload::by_name(workload_name).expect("workload");
        let ops = if workload_name == "E" { 30 } else { 300 };
        group.bench_function(sys.label(), |b| {
            b.iter_custom(|iters| {
                let mut virtual_total = Duration::ZERO;
                for i in 0..iters {
                    let r = run_phase(
                        &handle,
                        &RunConfig {
                            keyspace: KeySpace::U64,
                            num_keys: KEYS,
                            workload: workload.clone(),
                            workers: 6,
                            ops_per_worker: ops,
                            warmup_per_worker: 30,
                            seed: 0xBE4C_0000 + i,
                            pipeline_depth: 1,
                            trace_head_every: 0,
                            trace_tail_k: obs::DEFAULT_TAIL_K,
                            sample_interval_ns: 0,
                            sample_capacity: 0,
                        },
                    );
                    let makespan_s = r.total_ops as f64 / (r.mops * 1e6);
                    virtual_total += Duration::from_secs_f64(makespan_s);
                }
                virtual_total
            })
        });
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_workload(c, "A");
    bench_workload(c, "C");
    bench_workload(c, "E");
}

criterion_group! {
    name = ycsb;
    config = Criterion::default().measurement_time(Duration::from_secs(10));
    targets = benches
}
criterion_main!(ycsb);
