//! Criterion companion to §III-B: raw Succinct-Filter-Cache operation
//! costs at increasing occupancy (the CN-side CPU price of the design —
//! the network-side effect is measured by `sfc_stats` and `ablation`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use cuckoo::CuckooFilter;

fn filled_filter(capacity: usize, load_pct: usize) -> CuckooFilter {
    let mut f = CuckooFilter::with_capacity_and_seed(capacity, 42);
    let n = capacity * load_pct / 100;
    for i in 0..n as u64 {
        f.insert(&i.to_le_bytes());
    }
    f
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("succinct_filter_cache");
    for load in [25usize, 50, 90] {
        group.bench_function(BenchmarkId::new("contains_hit", load), |b| {
            let mut f = filled_filter(1 << 16, load);
            let n = ((1usize << 16) * load / 100) as u64;
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 1) % n;
                std::hint::black_box(f.contains(&i.to_le_bytes()))
            })
        });
        group.bench_function(BenchmarkId::new("contains_miss", load), |b| {
            let f = filled_filter(1 << 16, load);
            let mut i = 1u64 << 40;
            b.iter(|| {
                i += 1;
                std::hint::black_box(f.contains_quiet(&i.to_le_bytes()))
            })
        });
        group.bench_function(BenchmarkId::new("insert_with_eviction", load), |b| {
            let mut f = filled_filter(1 << 12, load);
            let mut i = 1u64 << 50;
            b.iter(|| {
                i += 1;
                f.insert(&i.to_le_bytes());
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = filter;
    config = Criterion::default().measurement_time(Duration::from_secs(5));
    targets = benches
}
criterion_main!(filter);
