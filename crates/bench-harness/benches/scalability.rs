//! Criterion companion to Fig. 5: virtual-time makespan of a fixed YCSB-A
//! batch as the worker count grows. A scalable system's makespan shrinks
//! with more workers; a saturated one's does not — the `fig5` binary
//! prints the full throughput–latency curve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use bench_harness::runner::{load_phase, run_phase, RunConfig};
use bench_harness::systems::System;
use ycsb::{KeySpace, Workload};

const KEYS: u64 = 10_000;
const TOTAL_OPS: u64 = 1_800;

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("ycsb_a_scalability_u64");
    group.sample_size(10);
    for sys in [System::Sphinx, System::Art] {
        let handle = sys.build_scaled(512 << 20, KEYS);
        load_phase(&handle, KeySpace::U64, KEYS, 4);
        for workers in [6usize, 24, 96] {
            group.bench_function(BenchmarkId::new(sys.label(), workers), |b| {
                b.iter_custom(|iters| {
                    let mut virtual_total = Duration::ZERO;
                    for i in 0..iters {
                        let r = run_phase(
                            &handle,
                            &RunConfig {
                                keyspace: KeySpace::U64,
                                num_keys: KEYS,
                                workload: Workload::a(),
                                workers,
                                ops_per_worker: TOTAL_OPS / workers as u64,
                                warmup_per_worker: 20,
                                seed: 0x5CA1_E000 + i,
                                pipeline_depth: 1,
                                trace_head_every: 0,
                                trace_tail_k: obs::DEFAULT_TAIL_K,
                                sample_interval_ns: 0,
                                sample_capacity: 0,
                            },
                        );
                        let makespan_s = r.total_ops as f64 / (r.mops * 1e6);
                        virtual_total += Duration::from_secs_f64(makespan_s);
                    }
                    virtual_total
                })
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = scalability;
    config = Criterion::default().measurement_time(Duration::from_secs(10));
    targets = benches
}
criterion_main!(scalability);
