//! Substrate microbenchmarks: per-verb simulator cost, node
//! encode/decode, and local-ART operations. These bound how much host CPU
//! the simulation itself spends per modeled operation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use art_core::layout::{InnerNode, LeafNode};
use art_core::{LocalArt, NodeKind};
use dm_sim::{ClusterConfig, DmCluster};

fn benches(c: &mut Criterion) {
    // Simulator verb costs.
    let cluster = DmCluster::new(ClusterConfig::default());
    let mut client = cluster.client(0);
    let ptr = client.alloc(0, 4096).expect("alloc");

    let mut group = c.benchmark_group("dm_sim_verbs");
    group.bench_function("read_128", |b| {
        b.iter(|| std::hint::black_box(client.read(ptr, 128).expect("read")))
    });
    group.bench_function("write_128", |b| {
        let data = [7u8; 128];
        b.iter(|| client.write(ptr, &data).expect("write"))
    });
    group.bench_function("cas", |b| b.iter(|| client.cas(ptr, 0, 0).expect("cas")));
    group.finish();

    // Node codecs.
    let mut group = c.benchmark_group("layout_codecs");
    let mut inner = InnerNode::new(NodeKind::Node48, b"prefix");
    for i in 0..40u8 {
        inner.set_child(art_core::layout::Slot::leaf(
            i,
            dm_sim::RemotePtr::new(0, 64),
        ));
    }
    let inner_bytes = inner.encode();
    group.bench_function("inner48_encode", |b| {
        b.iter(|| std::hint::black_box(inner.encode()))
    });
    group.bench_function("inner48_decode", |b| {
        b.iter(|| std::hint::black_box(InnerNode::decode(&inner_bytes).expect("decode")))
    });
    let leaf = LeafNode::new(b"someemail@example.org".to_vec(), vec![9u8; 64]);
    let leaf_bytes = leaf.encode();
    group.bench_function("leaf_encode", |b| {
        b.iter(|| std::hint::black_box(leaf.encode()))
    });
    group.bench_function("leaf_decode_checksum", |b| {
        b.iter(|| std::hint::black_box(LeafNode::decode(&leaf_bytes).expect("decode")))
    });
    group.finish();

    // Local ART reference ops.
    let mut group = c.benchmark_group("local_art");
    let mut art = LocalArt::new();
    for i in 0..50_000u64 {
        art.insert(art_core::key::u64_key(i.wrapping_mul(0x9E37)).to_vec(), i);
    }
    let mut i = 0u64;
    group.bench_function("get_50k", |b| {
        b.iter(|| {
            i = (i + 1) % 50_000;
            std::hint::black_box(art.get(&art_core::key::u64_key(i.wrapping_mul(0x9E37))))
        })
    });
    group.bench_function("insert_remove", |b| {
        b.iter(|| {
            art.insert(b"bench-key".to_vec(), 1);
            art.remove(b"bench-key");
        })
    });
    group.finish();
}

criterion_group! {
    name = micro;
    config = Criterion::default().measurement_time(Duration::from_secs(5));
    targets = benches
}
criterion_main!(micro);
