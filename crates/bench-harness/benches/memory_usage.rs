//! Criterion companion to Fig. 6: cost of loading a key batch into each
//! system (wall time of the build+load pipeline), with the resulting
//! MN-side memory printed once per system — the `fig6` binary emits the
//! full memory table.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use bench_harness::runner::load_phase;
use bench_harness::systems::System;
use ycsb::KeySpace;

const KEYS: u64 = 5_000;

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("load_5k_u64");
    group.sample_size(10);
    for sys in [System::Art, System::Sphinx, System::Smart] {
        let printed = AtomicBool::new(false);
        group.bench_function(sys.label(), |b| {
            b.iter(|| {
                let handle = sys.build_scaled(512 << 20, KEYS);
                load_phase(&handle, KeySpace::U64, KEYS, 4);
                if !printed.swap(true, Ordering::Relaxed) {
                    let (art, aux) = handle.memory_breakdown();
                    eprintln!(
                        "[fig6] {}: art={} KiB aux={} KiB (see `fig6` binary for the table)",
                        sys.label(),
                        art / 1024,
                        aux / 1024
                    );
                }
                handle
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = memory;
    config = Criterion::default().measurement_time(Duration::from_secs(12));
    targets = benches
}
criterion_main!(memory);
