//! Per-key compositional linearizability checking.
//!
//! Linearizability is *local* (Herlihy & Wing): a history over a map object
//! is linearizable iff each per-key projection is linearizable against a
//! single-register model. Decomposition keeps the search tractable — the
//! per-key concurrency level is bounded by the worker count, not by the
//! history length.
//!
//! The per-key search is the Wing–Gong linearization search in Lowe's
//! iterative formulation (the one Porcupine/Knossos use): a time-ordered
//! entry list of call/return events, an undo stack, and a memoization set
//! over `(linearized-set, model-state)` configurations so re-explored
//! states cut off immediately.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

use crate::history::{Event, History, Key, Op, Ret, PENDING_TS};

/// Budget knobs for the search.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Search-loop iterations allowed per key before the checker gives up
    /// with [`Outcome::ResourceExhausted`]. The default is far above what
    /// well-behaved histories need (they are near-linear in ops × worker
    /// count); a blown budget usually *is* the signal — pathological
    /// ambiguity from a broken protocol.
    pub max_steps_per_key: u64,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            max_steps_per_key: 20_000_000,
        }
    }
}

/// A non-linearizable per-key projection, with a human-readable report.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The offending key.
    pub key: Key,
    /// Pretty-printed projection: every operation touching the key, in
    /// invocation order, with client, interval, and response.
    pub report: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.report)
    }
}

/// The checker's verdict on a history.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// A linearization witness exists for every key.
    Linearizable {
        /// Distinct keys checked.
        keys: usize,
        /// Operations in the history (before per-key decomposition).
        ops: usize,
    },
    /// Some key's projection admits no linearization order.
    Violation(Violation),
    /// The search budget ran out before a verdict (treat as failure in CI).
    ResourceExhausted {
        /// The key whose search blew the budget.
        key: Key,
        /// Steps spent when the checker gave up.
        steps: u64,
    },
}

impl Outcome {
    /// Whether the history was proven linearizable.
    pub fn is_linearizable(&self) -> bool {
        matches!(self, Outcome::Linearizable { .. })
    }
}

/// One per-key register operation (timestamps inherited from the source
/// event; `multi_get`/`scan` components share their parent's interval).
#[derive(Debug, Clone, Copy)]
struct RegOp {
    invoke: u64,
    response: u64,
    kind: RegKind,
    /// Index of the source [`Event`] (for reporting).
    src: usize,
}

#[derive(Debug, Clone, Copy)]
enum RegKind {
    /// Completed read: model state must equal `expect` (0 = absent).
    Get {
        expect: u32,
    },
    /// Completed upsert.
    Insert {
        val: u32,
    },
    /// Completed conditional write; `ok` must equal "key present".
    Update {
        val: u32,
        ok: bool,
    },
    /// Completed conditional delete; `ok` must equal "key present".
    Delete {
        ok: bool,
    },
    /// Invoked, never returned: effect unconstrained, may linearize
    /// anywhere at/after the invocation.
    PendingInsert {
        val: u32,
    },
    PendingUpdate {
        val: u32,
    },
    PendingDelete,
}

impl RegKind {
    /// Applies the op to the model state; `None` means the recorded return
    /// contradicts this state (so the op cannot linearize here).
    fn step(&self, state: u32) -> Option<u32> {
        match *self {
            RegKind::Get { expect } => (state == expect).then_some(state),
            RegKind::Insert { val } | RegKind::PendingInsert { val } => Some(val),
            RegKind::Update { val, ok } => {
                if (state != 0) != ok {
                    None
                } else if ok {
                    Some(val)
                } else {
                    Some(state)
                }
            }
            RegKind::PendingUpdate { val } => Some(if state != 0 { val } else { state }),
            RegKind::Delete { ok } => ((state != 0) == ok).then_some(0),
            RegKind::PendingDelete => Some(0),
        }
    }
}

/// Interns values to dense ids; 0 is reserved for "absent".
#[derive(Default)]
struct Interner<'h> {
    ids: HashMap<&'h [u8], u32>,
}

impl<'h> Interner<'h> {
    fn id(&mut self, v: &'h [u8]) -> u32 {
        let next = self.ids.len() as u32 + 1;
        *self.ids.entry(v).or_insert(next)
    }
}

fn decompose<'h>(h: &'h History) -> Result<BTreeMap<&'h Key, Vec<RegOp>>, Violation> {
    let mut interner = Interner::default();
    let mut per_key: BTreeMap<&'h Key, Vec<RegOp>> = BTreeMap::new();
    for e in &h.events {
        let mut push = |key: &'h Key, kind: RegKind| {
            per_key.entry(key).or_default().push(RegOp {
                invoke: e.invoke_ts,
                response: e.response_ts,
                kind,
                src: e.op_id,
            });
        };
        // Wrong-shaped returns are protocol bugs in their own right;
        // surface them as violations rather than panicking mid-check.
        let malformed = |key: &Key| Violation {
            key: key.clone(),
            report: format!(
                "op #{} [client {}] {}: response {} does not match the operation",
                e.op_id, e.client, e.op, e.ret
            ),
        };
        match (&e.op, &e.ret) {
            // Pending reads constrain nothing: linearized-with-any-return
            // and dropped are equally consistent. Skip them.
            (Op::Get { .. }, Ret::Pending)
            | (Op::MultiGet { .. }, Ret::Pending)
            | (Op::Scan { .. }, Ret::Pending)
            | (Op::ScanN { .. }, Ret::Pending) => {}
            (Op::Get { key }, Ret::Got(v)) => {
                let expect = v.as_deref().map_or(0, |v| interner.id(v));
                push(key, RegKind::Get { expect });
            }
            (Op::Insert { key, value }, Ret::Inserted) => {
                let val = interner.id(value);
                push(key, RegKind::Insert { val });
            }
            (Op::Insert { key, value }, Ret::Pending) => {
                let val = interner.id(value);
                push(key, RegKind::PendingInsert { val });
            }
            (Op::Update { key, value }, Ret::Updated(ok)) => {
                let val = interner.id(value);
                push(key, RegKind::Update { val, ok: *ok });
            }
            (Op::Update { key, value }, Ret::Pending) => {
                let val = interner.id(value);
                push(key, RegKind::PendingUpdate { val });
            }
            (Op::Delete { key }, Ret::Deleted(ok)) => push(key, RegKind::Delete { ok: *ok }),
            (Op::Delete { key }, Ret::Pending) => push(key, RegKind::PendingDelete),
            (Op::MultiGet { keys }, Ret::MultiGot(vals)) => {
                if keys.len() != vals.len() {
                    let first = keys.first().cloned().unwrap_or_default();
                    return Err(malformed(&first));
                }
                for (key, v) in keys.iter().zip(vals) {
                    let expect = v.as_deref().map_or(0, |v| interner.id(v));
                    push(key, RegKind::Get { expect });
                }
            }
            // Scans decompose into one read per *returned* pair: every
            // returned value must be individually linearizable. A live key
            // a scan failed to return produces no event — the per-key
            // contract deliberately stops short of atomic snapshots (see
            // docs/TESTING.md).
            (Op::Scan { .. }, Ret::Scanned(pairs)) | (Op::ScanN { .. }, Ret::Scanned(pairs)) => {
                for (key, v) in pairs {
                    let expect = interner.id(v);
                    push(key, RegKind::Get { expect });
                }
            }
            _ => {
                let key = match &e.op {
                    Op::Get { key }
                    | Op::Insert { key, .. }
                    | Op::Update { key, .. }
                    | Op::Delete { key } => key.clone(),
                    Op::MultiGet { keys } => keys.first().cloned().unwrap_or_default(),
                    Op::Scan { low, .. } | Op::ScanN { low, .. } => low.clone(),
                };
                return Err(malformed(&key));
            }
        }
    }
    Ok(per_key)
}

enum KeyVerdict {
    Ok,
    Violation,
    Exhausted(u64),
}

const NONE: u32 = u32::MAX;

/// The iterative Wing–Gong search over one key's projection.
fn check_key(ops: &[RegOp], budget: u64) -> KeyVerdict {
    let n = ops.len();
    if n == 0 {
        return KeyVerdict::Ok;
    }
    // Entry ids: 2*i = call of op i, 2*i+1 = its return (pending returns
    // sit at virtual time ∞). Sorted by (time, calls-before-returns) so
    // ops whose intervals merely touch still count as concurrent.
    let mut order: Vec<u32> = (0..2 * n as u32).collect();
    order.sort_by_key(|&eid| {
        let op = (eid / 2) as usize;
        let is_ret = eid % 2 == 1;
        let ts = if is_ret {
            ops[op].response
        } else {
            ops[op].invoke
        };
        (ts, is_ret, op)
    });
    // Doubly-linked list threaded through the sorted order.
    let mut next = vec![NONE; 2 * n];
    let mut prev = vec![NONE; 2 * n];
    let mut head = order[0];
    for w in order.windows(2) {
        next[w[0] as usize] = w[1];
        prev[w[1] as usize] = w[0];
    }

    let words = n.div_ceil(64);
    let mut linearized = vec![0u64; words];
    let mut cache: HashSet<(Box<[u64]>, u32)> = HashSet::new();
    // Undo stack of committed linearizations: (op, state before it).
    let mut stack: Vec<(u32, u32)> = Vec::new();
    let mut state: u32 = 0;
    let mut entry = head;
    let mut steps: u64 = 0;

    // Dancing-links lift/unlift of an op's call+return pair.
    macro_rules! unlink {
        ($eid:expr) => {{
            let e = $eid as usize;
            let (p, nx) = (prev[e], next[e]);
            if p == NONE {
                head = nx;
            } else {
                next[p as usize] = nx;
            }
            if nx != NONE {
                prev[nx as usize] = p;
            }
        }};
    }
    macro_rules! relink {
        ($eid:expr) => {{
            let e = $eid as usize;
            let (p, nx) = (prev[e], next[e]);
            if p == NONE {
                head = $eid;
            } else {
                next[p as usize] = $eid;
            }
            if nx != NONE {
                prev[nx as usize] = $eid;
            }
        }};
    }

    loop {
        if head == NONE {
            return KeyVerdict::Ok; // every op linearized
        }
        steps += 1;
        if steps > budget {
            return KeyVerdict::Exhausted(steps);
        }
        debug_assert_ne!(entry, NONE, "walked off the entry list");
        let op = (entry / 2) as usize;
        if entry.is_multiple_of(2) {
            // Call entry: try to linearize this op next.
            if let Some(new_state) = ops[op].kind.step(state) {
                linearized[op / 64] |= 1u64 << (op % 64);
                let config = (linearized.clone().into_boxed_slice(), new_state);
                if cache.insert(config) {
                    stack.push((op as u32, state));
                    state = new_state;
                    // Lift: call first, then return (relink reverses).
                    unlink!(entry);
                    unlink!(entry + 1);
                    entry = head;
                    continue;
                }
                linearized[op / 64] &= !(1u64 << (op % 64));
            }
            entry = next[entry as usize];
        } else {
            // Return entry: the window is exhausted — some op that returned
            // by now must have linearized and none could. Backtrack.
            let Some((op, prev_state)) = stack.pop() else {
                return KeyVerdict::Violation;
            };
            state = prev_state;
            linearized[op as usize / 64] &= !(1u64 << (op as usize % 64));
            let call = op * 2;
            relink!(call + 1);
            relink!(call);
            entry = next[call as usize];
        }
    }
}

fn build_report(h: &History, key: &Key, ops: &[RegOp]) -> String {
    use std::fmt::Write as _;
    let mut lines: Vec<&RegOp> = ops.iter().collect();
    lines.sort_by_key(|o| (o.invoke, o.src));
    let mut out = String::new();
    let _ = write!(out, "key ");
    for b in key.iter().take(24) {
        let _ = write!(out, "{b:02x}");
    }
    let _ = writeln!(
        out,
        ": no linearization order exists for its {} operations:",
        lines.len()
    );
    let mut seen: HashSet<usize> = HashSet::new();
    for o in lines {
        if !seen.insert(o.src) {
            continue; // multi_get/scan contribute one line per source op
        }
        let e: &Event = &h.events[o.src];
        let resp = if e.response_ts == PENDING_TS {
            "∞".to_string()
        } else {
            e.response_ts.to_string()
        };
        let _ = writeln!(
            out,
            "  [client {:>2}] #{:<6} @[{}, {}] {} -> {}",
            e.client, e.op_id, e.invoke_ts, resp, e.op, e.ret
        );
    }
    out
}

/// Checks a history against the sequential map model.
///
/// Returns [`Outcome::Violation`] for the first key (in byte order) whose
/// projection admits no linearization order, [`Outcome::ResourceExhausted`]
/// if a key's search blows the budget, and [`Outcome::Linearizable`]
/// otherwise.
pub fn check_history(h: &History, cfg: &CheckConfig) -> Outcome {
    let per_key = match decompose(h) {
        Ok(m) => m,
        Err(v) => return Outcome::Violation(v),
    };
    for (key, ops) in &per_key {
        match check_key(ops, cfg.max_steps_per_key) {
            KeyVerdict::Ok => {}
            KeyVerdict::Violation => {
                return Outcome::Violation(Violation {
                    key: (*key).clone(),
                    report: build_report(h, key, ops),
                })
            }
            KeyVerdict::Exhausted(steps) => {
                return Outcome::ResourceExhausted {
                    key: (*key).clone(),
                    steps,
                }
            }
        }
    }
    Outcome::Linearizable {
        keys: per_key.len(),
        ops: h.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryRecorder;

    fn k(s: &str) -> Vec<u8> {
        s.as_bytes().to_vec()
    }

    /// Records `(client, invoke, response, op, ret)` tuples directly.
    fn history(ops: &[(u32, u64, u64, Op, Ret)]) -> History {
        let rec = HistoryRecorder::new();
        let ids: Vec<_> = ops
            .iter()
            .map(|(c, inv, _, op, _)| rec.invoke(*c, op.clone(), *inv))
            .collect();
        for (id, (_, _, resp, _, ret)) in ids.into_iter().zip(ops) {
            if *ret != Ret::Pending {
                rec.respond(id, ret.clone(), *resp);
            }
        }
        rec.finish()
    }

    fn check(ops: &[(u32, u64, u64, Op, Ret)]) -> Outcome {
        check_history(&history(ops), &CheckConfig::default())
    }

    #[test]
    fn sequential_history_is_linearizable() {
        let out = check(&[
            (0, 0, 1, Op::Get { key: k("a") }, Ret::Got(None)),
            (
                0,
                2,
                3,
                Op::Insert {
                    key: k("a"),
                    value: k("v1"),
                },
                Ret::Inserted,
            ),
            (0, 4, 5, Op::Get { key: k("a") }, Ret::Got(Some(k("v1")))),
            (
                0,
                6,
                7,
                Op::Update {
                    key: k("a"),
                    value: k("v2"),
                },
                Ret::Updated(true),
            ),
            (0, 8, 9, Op::Delete { key: k("a") }, Ret::Deleted(true)),
            (0, 10, 11, Op::Get { key: k("a") }, Ret::Got(None)),
            (0, 12, 13, Op::Delete { key: k("a") }, Ret::Deleted(false)),
        ]);
        assert!(out.is_linearizable(), "{out:?}");
    }

    #[test]
    fn value_never_written_is_a_violation() {
        let out = check(&[
            (
                0,
                0,
                1,
                Op::Insert {
                    key: k("a"),
                    value: k("v1"),
                },
                Ret::Inserted,
            ),
            (1, 2, 3, Op::Get { key: k("a") }, Ret::Got(Some(k("xx")))),
        ]);
        let Outcome::Violation(v) = out else {
            panic!("expected violation, got {out:?}");
        };
        assert_eq!(v.key, k("a"));
        assert!(v.report.contains("get"), "{}", v.report);
    }

    #[test]
    fn stale_read_after_delete_is_a_violation() {
        let out = check(&[
            (
                0,
                0,
                1,
                Op::Insert {
                    key: k("a"),
                    value: k("v1"),
                },
                Ret::Inserted,
            ),
            (0, 2, 3, Op::Delete { key: k("a") }, Ret::Deleted(true)),
            (1, 4, 5, Op::Get { key: k("a") }, Ret::Got(Some(k("v1")))),
        ]);
        assert!(matches!(out, Outcome::Violation(_)), "{out:?}");
    }

    #[test]
    fn concurrent_writes_allow_either_order() {
        // Two overlapping inserts; a later read may see either one.
        for winner in ["v1", "v2"] {
            let out = check(&[
                (
                    0,
                    0,
                    5,
                    Op::Insert {
                        key: k("a"),
                        value: k("v1"),
                    },
                    Ret::Inserted,
                ),
                (
                    1,
                    1,
                    4,
                    Op::Insert {
                        key: k("a"),
                        value: k("v2"),
                    },
                    Ret::Inserted,
                ),
                (2, 6, 7, Op::Get { key: k("a") }, Ret::Got(Some(k(winner)))),
            ]);
            assert!(out.is_linearizable(), "winner {winner}: {out:?}");
        }
        // But a value from outside the race is still a violation.
        let out = check(&[
            (
                0,
                0,
                5,
                Op::Insert {
                    key: k("a"),
                    value: k("v1"),
                },
                Ret::Inserted,
            ),
            (2, 6, 7, Op::Get { key: k("a") }, Ret::Got(Some(k("v2")))),
        ]);
        assert!(matches!(out, Outcome::Violation(_)), "{out:?}");
    }

    #[test]
    fn non_overlapping_order_is_enforced() {
        // insert(v1) fully precedes insert(v2): a later read of v1 is stale.
        let out = check(&[
            (
                0,
                0,
                1,
                Op::Insert {
                    key: k("a"),
                    value: k("v1"),
                },
                Ret::Inserted,
            ),
            (
                1,
                2,
                3,
                Op::Insert {
                    key: k("a"),
                    value: k("v2"),
                },
                Ret::Inserted,
            ),
            (2, 4, 5, Op::Get { key: k("a") }, Ret::Got(Some(k("v1")))),
        ]);
        assert!(matches!(out, Outcome::Violation(_)), "{out:?}");
    }

    #[test]
    fn pending_insert_may_or_may_not_be_observed() {
        // Observed:
        let out = check(&[
            (
                0,
                0,
                0,
                Op::Insert {
                    key: k("a"),
                    value: k("v1"),
                },
                Ret::Pending,
            ),
            (1, 1, 2, Op::Get { key: k("a") }, Ret::Got(Some(k("v1")))),
        ]);
        assert!(out.is_linearizable(), "{out:?}");
        // Not observed:
        let out = check(&[
            (
                0,
                0,
                0,
                Op::Insert {
                    key: k("a"),
                    value: k("v1"),
                },
                Ret::Pending,
            ),
            (1, 1, 2, Op::Get { key: k("a") }, Ret::Got(None)),
        ]);
        assert!(out.is_linearizable(), "{out:?}");
        // Observed, then gone without a delete: violation.
        let out = check(&[
            (
                0,
                0,
                0,
                Op::Insert {
                    key: k("a"),
                    value: k("v1"),
                },
                Ret::Pending,
            ),
            (1, 1, 2, Op::Get { key: k("a") }, Ret::Got(Some(k("v1")))),
            (1, 3, 4, Op::Get { key: k("a") }, Ret::Got(None)),
        ]);
        assert!(matches!(out, Outcome::Violation(_)), "{out:?}");
    }

    #[test]
    fn update_on_absent_key_must_report_absent() {
        let out = check(&[(
            0,
            0,
            1,
            Op::Update {
                key: k("a"),
                value: k("v"),
            },
            Ret::Updated(true),
        )]);
        assert!(matches!(out, Outcome::Violation(_)), "{out:?}");
        let out = check(&[(
            0,
            0,
            1,
            Op::Update {
                key: k("a"),
                value: k("v"),
            },
            Ret::Updated(false),
        )]);
        assert!(out.is_linearizable(), "{out:?}");
    }

    #[test]
    fn multi_get_components_check_per_key() {
        let out = check(&[
            (
                0,
                0,
                1,
                Op::Insert {
                    key: k("a"),
                    value: k("va"),
                },
                Ret::Inserted,
            ),
            (
                0,
                2,
                3,
                Op::Insert {
                    key: k("b"),
                    value: k("vb"),
                },
                Ret::Inserted,
            ),
            (
                1,
                4,
                5,
                Op::MultiGet {
                    keys: vec![k("a"), k("b"), k("c")],
                },
                Ret::MultiGot(vec![Some(k("va")), Some(k("vb")), None]),
            ),
        ]);
        assert!(out.is_linearizable(), "{out:?}");
        // One stale component poisons the whole multi_get.
        let out = check(&[
            (
                0,
                0,
                1,
                Op::Insert {
                    key: k("a"),
                    value: k("va"),
                },
                Ret::Inserted,
            ),
            (
                1,
                2,
                3,
                Op::MultiGet {
                    keys: vec![k("a"), k("b")],
                },
                Ret::MultiGot(vec![None, None]),
            ),
        ]);
        assert!(matches!(out, Outcome::Violation(_)), "{out:?}");
    }

    #[test]
    fn scan_pairs_check_as_reads() {
        let out = check(&[
            (
                0,
                0,
                1,
                Op::Insert {
                    key: k("a"),
                    value: k("va"),
                },
                Ret::Inserted,
            ),
            (
                1,
                2,
                3,
                Op::Scan {
                    low: k("a"),
                    high: k("z"),
                },
                Ret::Scanned(vec![(k("a"), k("stale"))]),
            ),
        ]);
        assert!(matches!(out, Outcome::Violation(_)), "{out:?}");
    }

    #[test]
    fn malformed_multi_get_is_reported() {
        let out = check(&[(
            0,
            0,
            1,
            Op::MultiGet {
                keys: vec![k("a"), k("b")],
            },
            Ret::MultiGot(vec![None]),
        )]);
        assert!(matches!(out, Outcome::Violation(_)), "{out:?}");
    }

    /// A 10k+-op interleaved-but-consistent history must verify quickly
    /// and well inside the default budget (the CI smoke bar).
    #[test]
    fn large_concurrent_history_verifies() {
        let rec = HistoryRecorder::new();
        let keys: Vec<Vec<u8>> = (0..8u8).map(|i| vec![b'k', i]).collect();
        // A deterministic round-robin over 3 "clients" whose ops overlap
        // pairwise (invoke before the previous response) but are applied
        // in issue order against the model.
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let mut x: u64 = 0x9e3779b97f4a7c15;
        for i in 0..12_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let client = (i % 3) as u32;
            let key = keys[(x as usize) % keys.len()].clone();
            let inv = i;
            let resp = i + 2; // overlaps the next op's invoke at i+1
            match x % 5 {
                0 | 1 => {
                    let cur = model.get(&key).cloned();
                    let id = rec.invoke(client, Op::Get { key }, inv);
                    rec.respond(id, Ret::Got(cur), resp);
                }
                2 => {
                    let value = x.to_le_bytes().to_vec();
                    model.insert(key.clone(), value.clone());
                    let id = rec.invoke(client, Op::Insert { key, value }, inv);
                    rec.respond(id, Ret::Inserted, resp);
                }
                3 => {
                    let value = x.to_le_bytes().to_vec();
                    let ok = model.contains_key(&key);
                    if ok {
                        model.insert(key.clone(), value.clone());
                    }
                    let id = rec.invoke(client, Op::Update { key, value }, inv);
                    rec.respond(id, Ret::Updated(ok), resp);
                }
                _ => {
                    let ok = model.remove(&key).is_some();
                    let id = rec.invoke(client, Op::Delete { key }, inv);
                    rec.respond(id, Ret::Deleted(ok), resp);
                }
            }
        }
        let h = rec.finish();
        assert!(h.len() >= 10_000);
        let out = check_history(&h, &CheckConfig::default());
        assert!(out.is_linearizable(), "{out:?}");
    }
}
