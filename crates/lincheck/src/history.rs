//! Operation histories: invoke/response events with virtual timestamps.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Keys are arbitrary byte strings.
pub type Key = Vec<u8>;
/// Values are arbitrary byte strings.
pub type Value = Vec<u8>;

/// The response timestamp of an operation that never returned.
pub const PENDING_TS: u64 = u64::MAX;

/// A map operation, as invoked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Point lookup.
    Get {
        /// Key looked up.
        key: Key,
    },
    /// Upsert.
    Insert {
        /// Key written.
        key: Key,
        /// Value written.
        value: Value,
    },
    /// Write iff present.
    Update {
        /// Key written.
        key: Key,
        /// Value written.
        value: Value,
    },
    /// Remove iff present.
    Delete {
        /// Key removed.
        key: Key,
    },
    /// Batched point lookups.
    MultiGet {
        /// Keys looked up, in request order.
        keys: Vec<Key>,
    },
    /// Inclusive range scan `low <= k <= high`.
    Scan {
        /// Lower bound (inclusive).
        low: Key,
        /// Upper bound (inclusive).
        high: Key,
    },
    /// Bounded scan: first `limit` keys at or after `low`.
    ScanN {
        /// Lower bound (inclusive).
        low: Key,
        /// Maximum entries returned.
        limit: usize,
    },
}

/// An operation's response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ret {
    /// `Get` response.
    Got(Option<Value>),
    /// `Insert` response (upsert: always succeeds).
    Inserted,
    /// `Update` response: whether the key was present.
    Updated(bool),
    /// `Delete` response: whether the key was present.
    Deleted(bool),
    /// `MultiGet` response, parallel to the request's key list.
    MultiGot(Vec<Option<Value>>),
    /// `Scan`/`ScanN` response: returned pairs in key order.
    Scanned(Vec<(Key, Value)>),
    /// The operation never returned (crash, hang, or run cut short).
    Pending,
}

/// Identifies one recorded operation within its recorder/history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpId(pub(crate) usize);

/// One operation's full record: who, when, what, and what came back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Position in the history (also the [`OpId`]).
    pub op_id: usize,
    /// Logical client (thread/worker) that issued the operation.
    pub client: u32,
    /// Virtual time at invocation.
    pub invoke_ts: u64,
    /// Virtual time at response ([`PENDING_TS`] if none).
    pub response_ts: u64,
    /// The operation.
    pub op: Op,
    /// Its response.
    pub ret: Ret,
}

/// A finished, immutable history of events (in invocation order).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct History {
    /// Recorded events, indexed by [`Event::op_id`].
    pub events: Vec<Event>,
}

impl History {
    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether any operation was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A canonical byte serialization of the whole history. Two runs that
    /// produced byte-identical canonical forms performed identical
    /// operations with identical results at identical virtual times — the
    /// replay-fidelity witness the schedule tests assert on.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.events.len() * 48);
        let put_bytes = |out: &mut Vec<u8>, b: &[u8]| {
            out.extend_from_slice(&(b.len() as u64).to_le_bytes());
            out.extend_from_slice(b);
        };
        for e in &self.events {
            out.extend_from_slice(&(e.op_id as u64).to_le_bytes());
            out.extend_from_slice(&e.client.to_le_bytes());
            out.extend_from_slice(&e.invoke_ts.to_le_bytes());
            out.extend_from_slice(&e.response_ts.to_le_bytes());
            match &e.op {
                Op::Get { key } => {
                    out.push(0);
                    put_bytes(&mut out, key);
                }
                Op::Insert { key, value } => {
                    out.push(1);
                    put_bytes(&mut out, key);
                    put_bytes(&mut out, value);
                }
                Op::Update { key, value } => {
                    out.push(2);
                    put_bytes(&mut out, key);
                    put_bytes(&mut out, value);
                }
                Op::Delete { key } => {
                    out.push(3);
                    put_bytes(&mut out, key);
                }
                Op::MultiGet { keys } => {
                    out.push(4);
                    out.extend_from_slice(&(keys.len() as u64).to_le_bytes());
                    for k in keys {
                        put_bytes(&mut out, k);
                    }
                }
                Op::Scan { low, high } => {
                    out.push(5);
                    put_bytes(&mut out, low);
                    put_bytes(&mut out, high);
                }
                Op::ScanN { low, limit } => {
                    out.push(6);
                    put_bytes(&mut out, low);
                    out.extend_from_slice(&(*limit as u64).to_le_bytes());
                }
            }
            match &e.ret {
                Ret::Got(v) => {
                    out.push(0);
                    match v {
                        None => out.push(0),
                        Some(v) => {
                            out.push(1);
                            put_bytes(&mut out, v);
                        }
                    }
                }
                Ret::Inserted => out.push(1),
                Ret::Updated(ok) => {
                    out.push(2);
                    out.push(*ok as u8);
                }
                Ret::Deleted(ok) => {
                    out.push(3);
                    out.push(*ok as u8);
                }
                Ret::MultiGot(vs) => {
                    out.push(4);
                    out.extend_from_slice(&(vs.len() as u64).to_le_bytes());
                    for v in vs {
                        match v {
                            None => out.push(0),
                            Some(v) => {
                                out.push(1);
                                put_bytes(&mut out, v);
                            }
                        }
                    }
                }
                Ret::Scanned(pairs) => {
                    out.push(5);
                    out.extend_from_slice(&(pairs.len() as u64).to_le_bytes());
                    for (k, v) in pairs {
                        put_bytes(&mut out, k);
                        put_bytes(&mut out, v);
                    }
                }
                Ret::Pending => out.push(6),
            }
        }
        out
    }

    /// FNV-1a digest of [`canonical_bytes`](Self::canonical_bytes) — a
    /// compact fingerprint for "same (seed, trace) replays byte-identical
    /// histories" assertions and failure-report filenames.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.canonical_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

fn fmt_bytes(f: &mut fmt::Formatter<'_>, b: &[u8]) -> fmt::Result {
    if b.len() > 16 {
        for x in &b[..16] {
            write!(f, "{x:02x}")?;
        }
        write!(f, "..(+{})", b.len() - 16)
    } else {
        for x in b {
            write!(f, "{x:02x}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Get { key } => {
                write!(f, "get(")?;
                fmt_bytes(f, key)?;
                write!(f, ")")
            }
            Op::Insert { key, value } => {
                write!(f, "insert(")?;
                fmt_bytes(f, key)?;
                write!(f, ", ")?;
                fmt_bytes(f, value)?;
                write!(f, ")")
            }
            Op::Update { key, value } => {
                write!(f, "update(")?;
                fmt_bytes(f, key)?;
                write!(f, ", ")?;
                fmt_bytes(f, value)?;
                write!(f, ")")
            }
            Op::Delete { key } => {
                write!(f, "delete(")?;
                fmt_bytes(f, key)?;
                write!(f, ")")
            }
            Op::MultiGet { keys } => write!(f, "multi_get({} keys)", keys.len()),
            Op::Scan { low, high } => {
                write!(f, "scan(")?;
                fmt_bytes(f, low)?;
                write!(f, "..=")?;
                fmt_bytes(f, high)?;
                write!(f, ")")
            }
            Op::ScanN { low, limit } => {
                write!(f, "scan_n(")?;
                fmt_bytes(f, low)?;
                write!(f, ", {limit})")
            }
        }
    }
}

impl fmt::Display for Ret {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ret::Got(None) => write!(f, "None"),
            Ret::Got(Some(v)) => {
                write!(f, "Some(")?;
                fmt_bytes(f, v)?;
                write!(f, ")")
            }
            Ret::Inserted => write!(f, "ok"),
            Ret::Updated(ok) => write!(f, "updated={ok}"),
            Ret::Deleted(ok) => write!(f, "deleted={ok}"),
            Ret::MultiGot(vs) => write!(f, "{} values", vs.len()),
            Ret::Scanned(pairs) => write!(f, "{} pairs", pairs.len()),
            Ret::Pending => write!(f, "<pending>"),
        }
    }
}

/// A thread-safe recorder workers share (behind an `Arc`) while the run is
/// in progress.
///
/// Timestamps: pass explicit virtual times from the deterministic
/// scheduler's step counter when one is attached, or use the `_now`
/// variants, which draw from the recorder's own strictly monotonic clock.
/// Mixing is fine as long as the caller keeps the combined order a valid
/// real-time witness (the schedule drivers set the scheduler's base step
/// past every preload timestamp for exactly this reason).
#[derive(Debug, Default)]
pub struct HistoryRecorder {
    events: Mutex<Vec<Event>>,
    clock: AtomicU64,
}

impl HistoryRecorder {
    /// An empty recorder with its clock at zero.
    pub fn new() -> Self {
        HistoryRecorder::default()
    }

    /// Draws the next timestamp from the recorder's internal clock.
    pub fn next_ts(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::SeqCst)
    }

    /// The next timestamp the internal clock would hand out.
    pub fn clock(&self) -> u64 {
        self.clock.load(Ordering::SeqCst)
    }

    /// Advances the internal clock to at least `ts` (used to re-sync after
    /// stamping a phase with external scheduler steps).
    pub fn sync_clock(&self, ts: u64) {
        self.clock.fetch_max(ts, Ordering::SeqCst);
    }

    /// Records an invocation at virtual time `ts`; the returned id must be
    /// passed to [`respond`](Self::respond) when the operation completes.
    /// An operation never responded to stays [`Ret::Pending`].
    pub fn invoke(&self, client: u32, op: Op, ts: u64) -> OpId {
        let mut ev = self.events.lock().expect("recorder poisoned");
        let id = ev.len();
        ev.push(Event {
            op_id: id,
            client,
            invoke_ts: ts,
            response_ts: PENDING_TS,
            op,
            ret: Ret::Pending,
        });
        OpId(id)
    }

    /// [`invoke`](Self::invoke) stamped with the internal clock.
    pub fn invoke_now(&self, client: u32, op: Op) -> OpId {
        let ts = self.next_ts();
        self.invoke(client, op, ts)
    }

    /// Records the response to a previously invoked operation.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown, already responded, or `ts` precedes
    /// the invocation (a corrupt timestamp source would silently break the
    /// checker's real-time order, so it fails loudly here).
    pub fn respond(&self, id: OpId, ret: Ret, ts: u64) {
        let mut ev = self.events.lock().expect("recorder poisoned");
        let e = &mut ev[id.0];
        assert_eq!(e.ret, Ret::Pending, "operation {} responded twice", id.0);
        assert!(
            ts >= e.invoke_ts,
            "response ts {ts} precedes invoke ts {} for op {}",
            e.invoke_ts,
            id.0
        );
        e.response_ts = ts;
        e.ret = ret;
    }

    /// [`respond`](Self::respond) stamped with the internal clock.
    pub fn respond_now(&self, id: OpId, ret: Ret) {
        let ts = self.next_ts();
        self.respond(id, ret, ts);
    }

    /// Number of operations recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("recorder poisoned").len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Consumes the recorder and yields the immutable history.
    pub fn finish(self) -> History {
        History {
            events: self.events.into_inner().expect("recorder poisoned"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_orders_and_stamps() {
        let rec = HistoryRecorder::new();
        let a = rec.invoke_now(0, Op::Get { key: b"a".to_vec() });
        let b = rec.invoke_now(1, Op::Delete { key: b"a".to_vec() });
        rec.respond_now(a, Ret::Got(None));
        // b never responds → pending.
        let _ = b;
        let h = rec.finish();
        assert_eq!(h.len(), 2);
        assert!(h.events[0].invoke_ts < h.events[0].response_ts);
        assert_eq!(h.events[1].response_ts, PENDING_TS);
        assert_eq!(h.events[1].ret, Ret::Pending);
    }

    #[test]
    #[should_panic(expected = "responded twice")]
    fn double_respond_panics() {
        let rec = HistoryRecorder::new();
        let a = rec.invoke_now(0, Op::Get { key: b"a".to_vec() });
        rec.respond_now(a, Ret::Got(None));
        rec.respond_now(a, Ret::Got(None));
    }

    #[test]
    fn canonical_bytes_distinguish_histories() {
        let mk = |val: &[u8]| {
            let rec = HistoryRecorder::new();
            let a = rec.invoke_now(
                0,
                Op::Insert {
                    key: b"k".to_vec(),
                    value: val.to_vec(),
                },
            );
            rec.respond_now(a, Ret::Inserted);
            rec.finish()
        };
        let h1 = mk(b"v1");
        let h2 = mk(b"v1");
        let h3 = mk(b"v2");
        assert_eq!(h1.canonical_bytes(), h2.canonical_bytes());
        assert_eq!(h1.digest(), h2.digest());
        assert_ne!(h1.canonical_bytes(), h3.canonical_bytes());
        assert_ne!(h1.digest(), h3.digest());
    }

    #[test]
    fn display_truncates_long_bytes() {
        let op = Op::Get {
            key: vec![0xab; 40],
        };
        let s = op.to_string();
        assert!(s.contains("..(+24)"), "{s}");
    }
}
