//! # lincheck — linearizability checking for the index stack
//!
//! Records concurrent operation histories (invoke/response events stamped
//! with virtual time from the simulator) and decides whether each history is
//! linearizable with respect to a sequential map model.
//!
//! The pipeline:
//!
//! 1. **Record** — every worker wraps its index calls with
//!    [`HistoryRecorder::invoke`] / [`HistoryRecorder::respond`]. Timestamps
//!    come from the deterministic scheduler's step counter (or, unscheduled,
//!    from the recorder's own monotonic clock — any valid real-time order
//!    witness works).
//! 2. **Decompose** — map operations are compositional per key: a history is
//!    linearizable iff its per-key projections are (Herlihy & Wing's locality
//!    theorem). `multi_get` and `scan` decompose into one read event per
//!    *returned* key sharing the parent's interval — which checks exactly
//!    "every returned value is individually linearizable" (an absent key
//!    omitted by a scan produces no event; that weaker-than-atomic-snapshot
//!    contract is deliberate and documented in `docs/TESTING.md`).
//! 3. **Search** — per key, a Wing–Gong linearization search (the iterative
//!    Lowe-style formulation with an entry list, undo stack, and a
//!    memoization set over *(linearized-set, model-state)* configurations)
//!    finds a witness order or proves none exists. Pending operations
//!    (invoked, never returned) may linearize with unconstrained effect or
//!    be dropped.
//!
//! The sequential model is a map: `get` returns the current value, `insert`
//! upserts, `update` writes iff present and returns whether it did,
//! `delete` removes iff present and returns whether it did.
//!
//! ## Example
//!
//! ```
//! use lincheck::{check_history, CheckConfig, HistoryRecorder, Op, Outcome, Ret};
//!
//! let rec = HistoryRecorder::new();
//! let id = rec.invoke_now(0, Op::Insert { key: b"k".to_vec(), value: b"v".to_vec() });
//! rec.respond_now(id, Ret::Inserted);
//! let id = rec.invoke_now(1, Op::Get { key: b"k".to_vec() });
//! rec.respond_now(id, Ret::Got(Some(b"v".to_vec())));
//! let outcome = check_history(&rec.finish(), &CheckConfig::default());
//! assert!(matches!(outcome, Outcome::Linearizable { .. }));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checker;
mod history;

pub use checker::{check_history, CheckConfig, Outcome, Violation};
pub use history::{Event, History, HistoryRecorder, Key, Op, OpId, Ret, Value, PENDING_TS};
