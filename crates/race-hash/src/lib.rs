//! # race-hash — one-sided extendible hashing on disaggregated memory
//!
//! A RACE-style hash table (Zuo et al., USENIX ATC'21) storing 8-byte
//! entries, used by Sphinx as the **Inner Node Hash Table** (§III-A).
//! Design points reproduced from RACE:
//!
//! * **One round-trip search.** Clients cache the directory locally; a
//!   lookup computes the bucket-pair address from the cache and reads the
//!   128-byte pair with a single one-sided READ.
//! * **Lock-free entry writes.** Inserting/removing/replacing an entry is
//!   a single 8-byte CAS, as the Sphinx paper requires ("a write operation
//!   only affects an 8-byte hash entry").
//! * **Extendible resizing.** Segments carry a local depth; when a bucket
//!   pair fills, the segment splits under a segment lock, the directory is
//!   updated (under a meta lock that serializes directory/global-depth
//!   changes), and clients with stale caches detect the move via the
//!   *suffix check*: every bucket header records its segment's local depth
//!   and hash suffix, and a mismatch with the key's hash tells the client
//!   to refresh its directory cache and retry.
//!
//! The table is *value-agnostic*: entries are any non-zero `u64` words
//! (zero means "empty slot"). Sphinx stores its 8-byte hash entries; the
//! tests here use arbitrary words.
//!
//! ## Example
//!
//! ```
//! use dm_sim::{ClusterConfig, DmCluster};
//! use race_hash::{RaceTable, TableConfig};
//!
//! # fn main() -> Result<(), race_hash::RaceError> {
//! let cluster = DmCluster::new(ClusterConfig::default());
//! let mut client = cluster.client(0);
//! let meta = RaceTable::create(&mut client, 0, &TableConfig::default())?;
//! let mut table = RaceTable::open(&mut client, meta)?;
//! // The closure is the split oracle: given an entry word it returns the
//! // entry's key hash (here the word encodes it directly).
//! table.insert(&mut client, 0xFEED_u64, 42, |_c, _w| Ok(0xFEED))?;
//! let hits = table.search(&mut client, 0xFEED_u64)?;
//! assert_eq!(hits[0].word, 42);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod layout;
mod table;

pub use layout::{BucketHeader, DirEntry, TableConfig};
pub use table::{FoundEntry, RaceCounters, RaceError, RaceTable, TableStats};
