//! The client-side table handle and the one-sided protocol.

use std::error::Error;
use std::fmt;

use dm_sim::{DmClient, DmError, RemotePtr, RetryPolicy, Transport};

use crate::layout::{
    bucket_offset, pair_index, BucketHeader, DirEntry, TableConfig, BUCKETS_PER_SEGMENT,
    BUCKET_BYTES, DIR_OFFSET, ENTRIES_PER_BUCKET, META_LOCK_OFFSET, META_VERSION_OFFSET,
    SEGMENT_BYTES,
};

/// Errors from table operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RaceError {
    /// Substrate error.
    Dm(DmError),
    /// A segment reached the maximum directory depth and cannot split.
    TableFull {
        /// The depth at which growth stopped.
        depth: u8,
    },
    /// The retry budget was exhausted (should not happen absent bugs).
    RetriesExhausted {
        /// Which operation gave up.
        op: &'static str,
    },
    /// An on-MN structure failed validation.
    Corrupt {
        /// What failed.
        what: &'static str,
    },
}

impl fmt::Display for RaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaceError::Dm(e) => write!(f, "substrate error: {e}"),
            RaceError::TableFull { depth } => {
                write!(f, "table cannot grow beyond depth {depth}")
            }
            RaceError::RetriesExhausted { op } => write!(f, "{op} exhausted its retry budget"),
            RaceError::Corrupt { what } => write!(f, "corrupt table structure: {what}"),
        }
    }
}

impl Error for RaceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RaceError::Dm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DmError> for RaceError {
    fn from(e: DmError) -> Self {
        RaceError::Dm(e)
    }
}

/// Structural statistics from [`RaceTable::stats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableStats {
    /// Live (non-zero) entry words.
    pub entries: usize,
    /// Distinct segments reachable from the directory.
    pub segments: usize,
    /// Current global depth.
    pub global_depth: u8,
    /// Entries divided by total slot capacity.
    pub load_factor: f64,
}

/// Per-handle operation counters: how often this client's directory cache
/// went stale, how often entry CASes lost races, and how many segment
/// splits it performed. Plain counters (no I/O) — read them with
/// [`RaceTable::counters`] and feed them into telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RaceCounters {
    /// `search` calls issued.
    pub searches: u64,
    /// Bucket reads whose suffix check failed (stale directory cache),
    /// forcing a refresh + retry.
    pub stale_retries: u64,
    /// Entry CASes lost to a concurrent writer.
    pub cas_races: u64,
    /// Segment splits performed by this handle.
    pub splits: u64,
    /// Directory refreshes (open, stale recovery, and split bookkeeping).
    pub refreshes: u64,
}

/// An entry found by [`RaceTable::search`]: the word plus the address of
/// the slot holding it (for subsequent CAS replace/delete).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FoundEntry {
    /// The entry word.
    pub word: u64,
    /// Remote address of the 8-byte slot.
    pub slot: RemotePtr,
}

/// A snapshot of one bucket pair.
struct PairView {
    base: RemotePtr,
    header: BucketHeader,
    /// 16 words: two buckets of (header + 7 entries).
    words: [u64; 16],
}

impl PairView {
    fn parse(base: RemotePtr, bytes: &[u8]) -> PairView {
        let mut words = [0u64; 16];
        for (i, w) in words.iter_mut().enumerate() {
            *w = u64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
        }
        PairView {
            base,
            header: BucketHeader::decode(words[0]),
            words,
        }
    }

    /// Slot indexes (into `words`) that hold entries, skipping headers.
    fn entry_indexes() -> impl Iterator<Item = usize> {
        (1..=ENTRIES_PER_BUCKET).chain(9..9 + ENTRIES_PER_BUCKET)
    }

    fn slot_ptr(&self, idx: usize) -> RemotePtr {
        self.base
            .checked_add(8 * idx as u64)
            .expect("slot in range")
    }

    fn find_word(&self, word: u64) -> Option<usize> {
        Self::entry_indexes().find(|&i| self.words[i] == word)
    }

    fn first_empty(&self) -> Option<usize> {
        Self::entry_indexes().find(|&i| self.words[i] == 0)
    }

    fn entries(&self) -> Vec<FoundEntry> {
        Self::entry_indexes()
            .filter(|&i| self.words[i] != 0)
            .map(|i| FoundEntry {
                word: self.words[i],
                slot: self.slot_ptr(i),
            })
            .collect()
    }
}

/// A per-client handle onto a RACE table living on one memory node.
///
/// The handle carries the client's **directory cache**; create one handle
/// per worker from the shared meta pointer with [`RaceTable::open`].
#[derive(Debug, Clone)]
pub struct RaceTable {
    meta: RemotePtr,
    max_depth: u8,
    global_depth: u8,
    /// Cached directory words (2^global_depth of them).
    dir: Vec<u64>,
    /// Shared bounded-retry budget (see [`dm_sim::RetryPolicy`]). The
    /// table previously capped retries at 100_000; it now shares the
    /// workspace-wide `op_retries` budget.
    retry: RetryPolicy,
    counters: RaceCounters,
}

impl RaceTable {
    /// Creates a new table on memory node `mn_id` and returns its meta
    /// pointer (share it with other clients, who call [`RaceTable::open`]).
    ///
    /// # Errors
    ///
    /// Propagates allocation failures from the substrate.
    pub fn create(
        client: &mut DmClient,
        mn_id: u16,
        config: &TableConfig,
    ) -> Result<RemotePtr, RaceError> {
        assert!(
            config.max_depth <= 16,
            "max_depth must be <= 16 (directory bits)"
        );
        assert!(config.initial_depth <= config.max_depth);
        let meta = client.alloc(mn_id, config.meta_bytes())?;
        let word0 = config.initial_depth as u64 | ((config.max_depth as u64) << 8);
        client.write_u64(meta, word0)?;
        for suffix in 0..(1u64 << config.initial_depth) {
            let seg = alloc_segment(client, mn_id, config.initial_depth, suffix)?;
            let entry = DirEntry {
                segment: seg,
                local_depth: config.initial_depth,
            };
            client.write_u64(meta.checked_add(DIR_OFFSET + 8 * suffix)?, entry.encode())?;
        }
        Ok(meta)
    }

    /// Opens an existing table, fetching the directory into the handle's
    /// cache.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors.
    pub fn open(client: &mut DmClient, meta: RemotePtr) -> Result<Self, RaceError> {
        let mut table = RaceTable {
            meta,
            max_depth: 0,
            global_depth: 0,
            dir: Vec::new(),
            retry: RetryPolicy::default(),
            counters: RaceCounters::default(),
        };
        table.refresh(client)?;
        Ok(table)
    }

    /// The meta pointer this handle is attached to.
    pub fn meta_ptr(&self) -> RemotePtr {
        self.meta
    }

    /// Current cached global depth.
    pub fn global_depth(&self) -> u8 {
        self.global_depth
    }

    /// This handle's cumulative operation counters.
    pub fn counters(&self) -> RaceCounters {
        self.counters
    }

    /// Size of the client-side directory cache in bytes (the paper's
    /// "local directory cache, typically 2–5% of the succinct filter
    /// cache size").
    pub fn dir_cache_bytes(&self) -> usize {
        self.dir.len() * 8
    }

    /// Re-fetches the directory cache from the memory node.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors.
    pub fn refresh(&mut self, client: &mut DmClient) -> Result<(), RaceError> {
        self.counters.refreshes += 1;
        for _ in 0..self.retry.op_retries {
            let w0 = client.read_u64(self.meta)?;
            let gd = (w0 & 0xFF) as u8;
            let maxd = ((w0 >> 8) & 0xFF) as u8;
            let bytes = client.read(self.meta.checked_add(DIR_OFFSET)?, 8 << gd)?;
            // The directory may have doubled between the two reads; loop
            // until we observe a stable depth.
            let w0_after = client.read_u64(self.meta)?;
            if (w0_after & 0xFF) as u8 != gd {
                continue;
            }
            self.global_depth = gd;
            self.max_depth = maxd;
            self.dir = bytes
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
                .collect();
            return Ok(());
        }
        Err(RaceError::RetriesExhausted { op: "refresh" })
    }

    fn locate(&self, hash: u64) -> Result<DirEntry, RaceError> {
        let idx = (hash & ((1u64 << self.global_depth) - 1)) as usize;
        DirEntry::decode(self.dir[idx]).ok_or(RaceError::Corrupt {
            what: "empty directory slot",
        })
    }

    /// Remote address of the bucket pair `hash` maps to, per the cached
    /// directory. Lets callers batch many pair reads into one doorbell
    /// round trip (Sphinx's "parallel hash reads", §III-A); validate each
    /// result with [`RaceTable::parse_pair`].
    ///
    /// # Errors
    ///
    /// [`RaceError::Corrupt`] on an empty directory slot.
    pub fn bucket_pair_ptr(&self, hash: u64) -> Result<RemotePtr, RaceError> {
        let de = self.locate(hash)?;
        let pair = pair_index(hash);
        Ok(de.segment.checked_add(bucket_offset(pair * 2))?)
    }

    /// Bytes of one bucket pair (what to read at
    /// [`RaceTable::bucket_pair_ptr`]).
    pub fn pair_len() -> usize {
        2 * BUCKET_BYTES as usize
    }

    /// Parses bytes read from [`RaceTable::bucket_pair_ptr`]. Returns
    /// `None` when the suffix check fails (stale directory cache: call
    /// [`RaceTable::refresh`] and retry).
    pub fn parse_pair(base: RemotePtr, bytes: &[u8], hash: u64) -> Option<Vec<FoundEntry>> {
        let pv = PairView::parse(base, bytes);
        pv.header.matches(hash).then(|| pv.entries())
    }

    fn read_pair(&self, client: &mut DmClient, hash: u64) -> Result<PairView, RaceError> {
        let de = self.locate(hash)?;
        let pair = pair_index(hash);
        let base = de.segment.checked_add(bucket_offset(pair * 2))?;
        let bytes = client.read(base, 2 * BUCKET_BYTES as usize)?;
        Ok(PairView::parse(base, &bytes))
    }

    /// Looks up all entries stored under `hash`'s bucket pair.
    ///
    /// Completes in **one round trip** when the directory cache is fresh.
    /// The caller filters the returned words (e.g. by fingerprint).
    ///
    /// # Errors
    ///
    /// [`RaceError::RetriesExhausted`] if the suffix check keeps failing.
    pub fn search(
        &mut self,
        client: &mut DmClient,
        hash: u64,
    ) -> Result<Vec<FoundEntry>, RaceError> {
        self.counters.searches += 1;
        for _ in 0..self.retry.op_retries {
            let pv = self.read_pair(client, hash)?;
            if pv.header.matches(hash) {
                return Ok(pv.entries());
            }
            self.counters.stale_retries += 1;
            client.backoff(&self.retry);
            self.refresh(client)?;
        }
        Err(RaceError::RetriesExhausted { op: "search" })
    }

    /// Inserts `word` under `hash`. Duplicate words are deduplicated.
    ///
    /// `entry_hash` is the **split oracle**: given an entry word it must
    /// return a value agreeing with the entry's original key hash on the
    /// low 42 bits (used only when this insert must split a segment; for
    /// the Inner Node Hash Table the oracle reads the referenced node's
    /// full-prefix hash).
    ///
    /// # Errors
    ///
    /// [`RaceError::TableFull`] when growth hits `max_depth`.
    ///
    /// # Panics
    ///
    /// Panics if `word` is zero (reserved for empty slots).
    pub fn insert<F>(
        &mut self,
        client: &mut DmClient,
        hash: u64,
        word: u64,
        mut entry_hash: F,
    ) -> Result<(), RaceError>
    where
        F: FnMut(&mut DmClient, u64) -> Result<u64, RaceError>,
    {
        assert!(word != 0, "entry word 0 is reserved for empty slots");
        for _ in 0..self.retry.op_retries {
            let pv = self.read_pair(client, hash)?;
            if !pv.header.matches(hash) {
                self.counters.stale_retries += 1;
                client.advance_clock(self.retry.backoff_ns);
                self.refresh(client)?;
                continue;
            }
            if pv.find_word(word).is_some() {
                return Ok(());
            }
            let Some(idx) = pv.first_empty() else {
                self.split(client, hash, &mut entry_hash)?;
                continue;
            };
            let slot = pv.slot_ptr(idx);
            // CAS the entry in and re-read the bucket header in the same
            // doorbell batch: if a split slid under us, the header changed
            // and we may sit in the wrong segment.
            let (prev, hdr_bytes) = client.cas_and_read(slot, 0, word, pv.base, 8)?;
            if prev != 0 {
                self.counters.cas_races += 1;
                continue; // slot raced away; retry
            }
            let hdr_now = BucketHeader::decode(u64::from_le_bytes(
                hdr_bytes.as_slice().try_into().expect("8 bytes"),
            ));
            if hdr_now.matches(hash) {
                return Ok(());
            }
            // A concurrent split moved our key's range: undo and retry.
            // (If the splitter already migrated our word, the undo CAS
            // fails harmlessly and the retry finds the word resident.)
            self.counters.stale_retries += 1;
            client.cas(slot, word, 0)?;
            client.backoff(&self.retry);
            self.refresh(client)?;
        }
        Err(RaceError::RetriesExhausted { op: "insert" })
    }

    /// Removes the entry `word` stored under `hash`.
    ///
    /// Returns whether an entry was removed.
    ///
    /// # Errors
    ///
    /// [`RaceError::RetriesExhausted`] on persistent interference.
    pub fn remove(
        &mut self,
        client: &mut DmClient,
        hash: u64,
        word: u64,
    ) -> Result<bool, RaceError> {
        self.replace_word(client, hash, word, 0, "remove")
    }

    /// Atomically replaces entry `old` with `new` (the hash-entry update
    /// after a node type switch, §IV Insert).
    ///
    /// Returns whether the replacement happened (`false` if `old` is no
    /// longer present).
    ///
    /// # Errors
    ///
    /// [`RaceError::RetriesExhausted`] on persistent interference.
    ///
    /// # Panics
    ///
    /// Panics if `new` is zero (use [`RaceTable::remove`]).
    pub fn replace(
        &mut self,
        client: &mut DmClient,
        hash: u64,
        old: u64,
        new: u64,
    ) -> Result<bool, RaceError> {
        assert!(new != 0, "replacement word 0 is reserved; use remove");
        self.replace_word(client, hash, old, new, "replace")
    }

    fn replace_word(
        &mut self,
        client: &mut DmClient,
        hash: u64,
        old: u64,
        new: u64,
        op: &'static str,
    ) -> Result<bool, RaceError> {
        for _ in 0..self.retry.op_retries {
            let pv = self.read_pair(client, hash)?;
            if !pv.header.matches(hash) {
                self.counters.stale_retries += 1;
                client.advance_clock(self.retry.backoff_ns);
                self.refresh(client)?;
                continue;
            }
            let Some(idx) = pv.find_word(old) else {
                return Ok(false);
            };
            let prev = client.cas(pv.slot_ptr(idx), old, new)?;
            if prev == old {
                return Ok(true);
            }
            // Lost a race (concurrent delete/replace/migration): retry.
            self.counters.cas_races += 1;
            client.backoff(&self.retry);
        }
        Err(RaceError::RetriesExhausted { op })
    }

    /// Splits the segment owning `hash`. Called by `insert` when a bucket
    /// pair is full.
    fn split<F>(
        &mut self,
        client: &mut DmClient,
        hash: u64,
        entry_hash: &mut F,
    ) -> Result<(), RaceError>
    where
        F: FnMut(&mut DmClient, u64) -> Result<u64, RaceError>,
    {
        self.counters.splits += 1;
        self.refresh(client)?;
        let de = self.locate(hash)?;
        let seg = de.segment;

        // 1. Segment lock. If somebody else is splitting, wait for them and
        //    let the caller retry.
        let prev = client.cas(seg, 0, 1)?;
        if prev != 0 {
            for _ in 0..self.retry.op_retries {
                client.advance_clock(self.retry.backoff_ns * 10);
                std::thread::yield_now();
                if client.read_u64(seg)? == 0 {
                    return Ok(());
                }
            }
            return Err(RaceError::RetriesExhausted {
                op: "split lock wait",
            });
        }

        let result = self.split_locked(client, seg, hash, entry_hash);
        // 6. Unlock (even on failure paths).
        client.write_u64(seg, 0)?;
        result
    }

    fn split_locked<F>(
        &mut self,
        client: &mut DmClient,
        seg: RemotePtr,
        hash: u64,
        entry_hash: &mut F,
    ) -> Result<(), RaceError>
    where
        F: FnMut(&mut DmClient, u64) -> Result<u64, RaceError>,
    {
        // Authoritative depth/suffix from a bucket header.
        let hdr = BucketHeader::decode(client.read_u64(seg.checked_add(bucket_offset(0))?)?);
        if !hdr.matches(hash) {
            // Someone split this range before we took the lock; retry at
            // the caller with a fresh directory.
            return Ok(());
        }
        let d = hdr.local_depth;
        if d >= self.max_depth {
            return Err(RaceError::TableFull { depth: d });
        }
        let old_suffix = hdr.suffix;
        let new_suffix = old_suffix | (1u64 << d);

        // 2. New segment, invisible for now (buckets get their final
        //    headers when the image is written in phase 4).
        let new_seg = client.alloc(seg.mn_id(), SEGMENT_BYTES)?;

        // 3. Phase B: bump every old bucket header to (d+1, old_suffix) in
        //    one doorbell batch. From here on, writers of relocating keys
        //    fail the suffix check and undo themselves.
        let hdr_word = BucketHeader {
            local_depth: d + 1,
            suffix: old_suffix,
        }
        .encode();
        let mut bumps = Vec::with_capacity(BUCKETS_PER_SEGMENT);
        for b in 0..BUCKETS_PER_SEGMENT {
            bumps.push((
                seg.checked_add(bucket_offset(b))?,
                hdr_word.to_le_bytes().to_vec(),
            ));
        }
        client.write_many(bumps)?;

        // 4. Phase C: snapshot the segment, migrate relocating entries into
        //    a local image of the new segment, zeroing them in the old one.
        let snapshot = client.read(seg, SEGMENT_BYTES)?;
        let mut image = vec![0u8; SEGMENT_BYTES];
        let new_hdr = BucketHeader {
            local_depth: d + 1,
            suffix: new_suffix,
        }
        .encode();
        for b in 0..BUCKETS_PER_SEGMENT {
            let off = bucket_offset(b) as usize;
            image[off..off + 8].copy_from_slice(&new_hdr.to_le_bytes());
        }
        for b in 0..BUCKETS_PER_SEGMENT {
            for e in 1..=ENTRIES_PER_BUCKET {
                let off = bucket_offset(b) as usize + 8 * e;
                let mut word =
                    u64::from_le_bytes(snapshot[off..off + 8].try_into().expect("8 bytes"));
                // Per-slot migration loop: handles racing deletes/replaces.
                loop {
                    if word == 0 {
                        break;
                    }
                    let h = entry_hash(client, word)?;
                    if h & (1u64 << d) == 0 {
                        break; // stays in the old segment
                    }
                    let prev = client.cas(seg.checked_add(off as u64)?, word, 0)?;
                    if prev == word {
                        place_in_image(&mut image, h, word);
                        break;
                    }
                    word = prev; // entry changed under us; reconsider
                }
            }
        }
        // Write the complete new-segment image in one round trip.
        client.write(new_seg, &image)?;

        // 5. Phase D: publish via the directory, under the meta lock.
        loop {
            if client.cas(self.meta.checked_add(META_LOCK_OFFSET)?, 0, 1)? == 0 {
                break;
            }
            client.advance_clock(self.retry.backoff_ns * 10);
            std::thread::yield_now();
        }
        let w0 = client.read_u64(self.meta)?;
        let mut gd = (w0 & 0xFF) as u8;
        if d + 1 > gd {
            // Directory doubling: mirror the lower half into the upper.
            debug_assert_eq!(d, gd);
            let lower = client.read(self.meta.checked_add(DIR_OFFSET)?, 8 << gd)?;
            client.write(self.meta.checked_add(DIR_OFFSET + (8 << gd))?, &lower)?;
            gd += 1;
            let new_w0 = (gd as u64) | (w0 & !0xFF);
            client.write_u64(self.meta, new_w0)?;
        }
        // Point every directory slot of the two suffixes at the right
        // segment with the new depth, in one batch.
        let old_de = DirEntry {
            segment: seg,
            local_depth: d + 1,
        }
        .encode();
        let new_de = DirEntry {
            segment: new_seg,
            local_depth: d + 1,
        }
        .encode();
        let mut publishes = Vec::new();
        let mask = (1u64 << (d + 1)) - 1;
        for idx in 0..(1u64 << gd) {
            let word = if idx & mask == new_suffix {
                new_de
            } else if idx & mask == old_suffix {
                old_de
            } else {
                continue;
            };
            publishes.push((
                self.meta.checked_add(DIR_OFFSET + 8 * idx)?,
                word.to_le_bytes().to_vec(),
            ));
        }
        client.write_many(publishes)?;
        client.faa(self.meta.checked_add(META_VERSION_OFFSET)?, 1)?;
        client.write_u64(self.meta.checked_add(META_LOCK_OFFSET)?, 0)?;

        self.refresh(client)?;
        Ok(())
    }

    /// Structural statistics: live entries, distinct segments, and load
    /// factor (entries / capacity). One directory refresh plus one read
    /// per distinct segment.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors.
    pub fn stats(&mut self, client: &mut DmClient) -> Result<TableStats, RaceError> {
        self.refresh(client)?;
        let mut segs: Vec<RemotePtr> = self
            .dir
            .iter()
            .filter_map(|&w| DirEntry::decode(w))
            .map(|de| de.segment)
            .collect();
        segs.sort_unstable_by_key(|p| p.to_raw());
        segs.dedup();
        let mut entries = 0usize;
        for seg in &segs {
            let bytes = client.read(*seg, SEGMENT_BYTES)?;
            for b in 0..BUCKETS_PER_SEGMENT {
                for e in 1..=ENTRIES_PER_BUCKET {
                    let off = bucket_offset(b) as usize + 8 * e;
                    if u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8 bytes")) != 0 {
                        entries += 1;
                    }
                }
            }
        }
        let capacity = segs.len() * BUCKETS_PER_SEGMENT * ENTRIES_PER_BUCKET;
        Ok(TableStats {
            entries,
            segments: segs.len(),
            global_depth: self.global_depth,
            load_factor: entries as f64 / capacity.max(1) as f64,
        })
    }

    /// Total MN-side bytes the table occupies: meta block plus every
    /// distinct segment (for the paper's memory-overhead accounting).
    ///
    /// # Errors
    ///
    /// Propagates substrate errors.
    pub fn memory_bytes(&mut self, client: &mut DmClient) -> Result<u64, RaceError> {
        self.refresh(client)?;
        let mut segs: Vec<u64> = self
            .dir
            .iter()
            .filter_map(|&w| DirEntry::decode(w))
            .map(|de| de.segment.to_raw())
            .collect();
        segs.sort_unstable();
        segs.dedup();
        let meta_bytes = dm_sim::size_class(DIR_OFFSET + (8u64 << self.max_depth));
        Ok(meta_bytes + segs.len() as u64 * dm_sim::size_class(SEGMENT_BYTES as u64))
    }
}

/// Places `word` into the local image of a fresh segment (no concurrency:
/// the segment is unpublished).
fn place_in_image(image: &mut [u8], hash: u64, word: u64) {
    let pair = pair_index(hash);
    for b in [pair * 2, pair * 2 + 1] {
        for e in 1..=ENTRIES_PER_BUCKET {
            let off = bucket_offset(b) as usize + 8 * e;
            let cur = u64::from_le_bytes(image[off..off + 8].try_into().expect("8 bytes"));
            if cur == 0 {
                image[off..off + 8].copy_from_slice(&word.to_le_bytes());
                return;
            }
        }
    }
    // Both buckets of the pair full in the fresh segment: can only happen
    // if >14 relocating entries share a pair, which the old segment could
    // not have held either. Treat as corruption in debug builds.
    debug_assert!(false, "bucket pair overflow during split migration");
}

fn alloc_segment(
    client: &mut DmClient,
    mn_id: u16,
    depth: u8,
    suffix: u64,
) -> Result<RemotePtr, RaceError> {
    let seg = client.alloc(mn_id, SEGMENT_BYTES)?;
    let mut image = vec![0u8; SEGMENT_BYTES];
    let hdr = BucketHeader {
        local_depth: depth,
        suffix,
    }
    .encode();
    for b in 0..BUCKETS_PER_SEGMENT {
        let off = bucket_offset(b) as usize;
        image[off..off + 8].copy_from_slice(&hdr.to_le_bytes());
    }
    client.write(seg, &image)?;
    Ok(seg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_sim::{ClusterConfig, DmCluster};

    fn cluster() -> DmCluster {
        DmCluster::new(ClusterConfig {
            num_mns: 1,
            num_cns: 1,
            mn_capacity: 64 << 20,
            ..Default::default()
        })
    }

    /// Test oracle: our test entries are `hash | TAG` with TAG above bit 42,
    /// so the low 42 bits of the word *are* the hash.
    const TAG: u64 = 1 << 43;

    fn test_word(hash: u64) -> u64 {
        (hash & ((1 << 42) - 1)) | TAG
    }

    fn oracle(_c: &mut DmClient, word: u64) -> Result<u64, RaceError> {
        Ok(word & ((1 << 42) - 1))
    }

    fn mix(i: u64) -> u64 {
        let mut x = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    #[test]
    fn create_open_insert_search() {
        let c = cluster();
        let mut cl = c.client(0);
        let meta = RaceTable::create(&mut cl, 0, &TableConfig::default()).unwrap();
        let mut t = RaceTable::open(&mut cl, meta).unwrap();
        let h = mix(1);
        t.insert(&mut cl, h, test_word(h), oracle).unwrap();
        let found = t.search(&mut cl, h).unwrap();
        assert!(found.iter().any(|e| e.word == test_word(h)));
    }

    #[test]
    fn search_miss_returns_empty_or_unrelated() {
        let c = cluster();
        let mut cl = c.client(0);
        let meta = RaceTable::create(&mut cl, 0, &TableConfig::default()).unwrap();
        let mut t = RaceTable::open(&mut cl, meta).unwrap();
        let found = t.search(&mut cl, mix(42)).unwrap();
        assert!(found.is_empty());
    }

    #[test]
    fn search_costs_one_round_trip_when_fresh() {
        let c = cluster();
        let mut cl = c.client(0);
        let meta = RaceTable::create(&mut cl, 0, &TableConfig::default()).unwrap();
        let mut t = RaceTable::open(&mut cl, meta).unwrap();
        let h = mix(7);
        t.insert(&mut cl, h, test_word(h), oracle).unwrap();
        let before = cl.stats().round_trips;
        t.search(&mut cl, h).unwrap();
        assert_eq!(cl.stats().round_trips - before, 1);
    }

    #[test]
    fn insert_is_idempotent() {
        let c = cluster();
        let mut cl = c.client(0);
        let meta = RaceTable::create(&mut cl, 0, &TableConfig::default()).unwrap();
        let mut t = RaceTable::open(&mut cl, meta).unwrap();
        let h = mix(5);
        t.insert(&mut cl, h, test_word(h), oracle).unwrap();
        t.insert(&mut cl, h, test_word(h), oracle).unwrap();
        let found = t.search(&mut cl, h).unwrap();
        assert_eq!(found.iter().filter(|e| e.word == test_word(h)).count(), 1);
    }

    #[test]
    fn remove_and_replace() {
        let c = cluster();
        let mut cl = c.client(0);
        let meta = RaceTable::create(&mut cl, 0, &TableConfig::default()).unwrap();
        let mut t = RaceTable::open(&mut cl, meta).unwrap();
        let h = mix(9);
        let w = test_word(h);
        t.insert(&mut cl, h, w, oracle).unwrap();
        assert!(t.replace(&mut cl, h, w, w | 1 << 50).unwrap());
        assert!(
            !t.replace(&mut cl, h, w, w | 1 << 51).unwrap(),
            "old word gone"
        );
        assert!(t.remove(&mut cl, h, w | 1 << 50).unwrap());
        assert!(!t.remove(&mut cl, h, w | 1 << 50).unwrap());
        assert!(t.search(&mut cl, h).unwrap().is_empty());
    }

    #[test]
    fn grows_through_many_splits_without_losing_entries() {
        let c = cluster();
        let mut cl = c.client(0);
        let cfg = TableConfig {
            initial_depth: 1,
            max_depth: 10,
        };
        let meta = RaceTable::create(&mut cl, 0, &cfg).unwrap();
        let mut t = RaceTable::open(&mut cl, meta).unwrap();
        let n = 4000u64;
        for i in 0..n {
            let h = mix(i);
            t.insert(&mut cl, h, test_word(h), oracle).unwrap();
        }
        assert!(t.global_depth() > 1, "table must have grown");
        for i in 0..n {
            let h = mix(i);
            let found = t.search(&mut cl, h).unwrap();
            assert!(
                found.iter().any(|e| e.word == test_word(h)),
                "entry {i} lost after splits (gd={})",
                t.global_depth()
            );
        }
    }

    #[test]
    fn stale_handle_recovers_after_peer_growth() {
        let c = cluster();
        let mut cl = c.client(0);
        let cfg = TableConfig {
            initial_depth: 1,
            max_depth: 10,
        };
        let meta = RaceTable::create(&mut cl, 0, &cfg).unwrap();
        let mut writer = RaceTable::open(&mut cl, meta).unwrap();
        let mut reader_cl = c.client(0);
        let mut reader = RaceTable::open(&mut reader_cl, meta).unwrap();
        // Writer grows the table far beyond the reader's cached directory.
        for i in 0..4000u64 {
            let h = mix(i);
            writer.insert(&mut cl, h, test_word(h), oracle).unwrap();
        }
        // Reader still has global_depth 1 cached; every lookup must
        // self-heal via the suffix check.
        assert_eq!(reader.global_depth(), 1);
        for i in (0..4000u64).step_by(97) {
            let h = mix(i);
            let found = reader.search(&mut reader_cl, h).unwrap();
            assert!(
                found.iter().any(|e| e.word == test_word(h)),
                "stale reader lost {i}"
            );
        }
        assert!(reader.global_depth() > 1, "reader should have refreshed");
    }

    #[test]
    fn table_full_surfaces() {
        let c = cluster();
        let mut cl = c.client(0);
        let cfg = TableConfig {
            initial_depth: 0,
            max_depth: 1,
        };
        let meta = RaceTable::create(&mut cl, 0, &cfg).unwrap();
        let mut t = RaceTable::open(&mut cl, meta).unwrap();
        let mut err = None;
        for i in 0..10_000u64 {
            let h = mix(i);
            if let Err(e) = t.insert(&mut cl, h, test_word(h), oracle) {
                err = Some(e);
                break;
            }
        }
        assert!(
            matches!(err, Some(RaceError::TableFull { .. })),
            "got {err:?}"
        );
    }

    #[test]
    fn concurrent_inserts_from_many_clients() {
        let c = cluster();
        let mut cl = c.client(0);
        let cfg = TableConfig {
            initial_depth: 1,
            max_depth: 12,
        };
        let meta = RaceTable::create(&mut cl, 0, &cfg).unwrap();
        let threads = 4;
        let per = 800u64;
        std::thread::scope(|s| {
            for tid in 0..threads {
                let c = c.clone();
                s.spawn(move || {
                    let mut cl = c.client(0);
                    let mut t = RaceTable::open(&mut cl, meta).unwrap();
                    for i in 0..per {
                        let h = mix(tid * per + i);
                        t.insert(&mut cl, h, test_word(h), oracle).unwrap();
                    }
                });
            }
        });
        let mut t = RaceTable::open(&mut cl, meta).unwrap();
        for i in 0..threads * per {
            let h = mix(i);
            let found = t.search(&mut cl, h).unwrap();
            assert!(found.iter().any(|e| e.word == test_word(h)), "lost {i}");
        }
    }

    #[test]
    fn stats_count_live_entries() {
        let c = cluster();
        let mut cl = c.client(0);
        let cfg = TableConfig {
            initial_depth: 1,
            max_depth: 10,
        };
        let meta = RaceTable::create(&mut cl, 0, &cfg).unwrap();
        let mut t = RaceTable::open(&mut cl, meta).unwrap();
        for i in 0..500u64 {
            let h = mix(i);
            t.insert(&mut cl, h, test_word(h), oracle).unwrap();
        }
        for i in 0..100u64 {
            let h = mix(i);
            t.remove(&mut cl, h, test_word(h)).unwrap();
        }
        let stats = t.stats(&mut cl).unwrap();
        assert_eq!(stats.entries, 400);
        assert!(stats.segments >= 2);
        assert!(stats.load_factor > 0.0 && stats.load_factor < 1.0);
    }

    #[test]
    fn memory_bytes_grows_with_splits() {
        let c = cluster();
        let mut cl = c.client(0);
        let cfg = TableConfig {
            initial_depth: 1,
            max_depth: 10,
        };
        let meta = RaceTable::create(&mut cl, 0, &cfg).unwrap();
        let mut t = RaceTable::open(&mut cl, meta).unwrap();
        let before = t.memory_bytes(&mut cl).unwrap();
        for i in 0..3000u64 {
            let h = mix(i);
            t.insert(&mut cl, h, test_word(h), oracle).unwrap();
        }
        let after = t.memory_bytes(&mut cl).unwrap();
        assert!(after > before, "{after} <= {before}");
    }
}
