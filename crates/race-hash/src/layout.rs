//! On-MN layout of the RACE table.
//!
//! ```text
//! meta block:
//!   word 0    global depth
//!   word 1    meta lock (serializes directory & global-depth updates)
//!   word 2    version (bumped on every directory change)
//!   offset 64 directory: 2^max_depth words (DirEntry)
//!
//! segment (4032 bytes = one 4032-byte size class):
//!   word 0    segment lock
//!   word 1    reserved
//!   offset 64 62 buckets × 64 bytes  (= 31 bucket pairs)
//!
//! bucket (64 bytes):
//!   word 0    BucketHeader: local_depth(8) | suffix(48)
//!   words 1–7 entries (0 = empty)
//! ```

use dm_sim::RemotePtr;

/// Buckets per segment (62 = 31 pairs; the segment fits a 4032-byte
/// allocation class exactly).
pub const BUCKETS_PER_SEGMENT: usize = 62;
/// Bucket pairs per segment.
pub const PAIRS_PER_SEGMENT: usize = BUCKETS_PER_SEGMENT / 2;
/// Entry words per bucket (word 0 is the header).
pub const ENTRIES_PER_BUCKET: usize = 7;
/// Bytes per bucket.
pub const BUCKET_BYTES: u64 = 64;
/// Bytes of segment header (lock + reserved, padded).
pub const SEGMENT_HEADER_BYTES: u64 = 64;
/// Total segment size in bytes.
pub const SEGMENT_BYTES: usize =
    SEGMENT_HEADER_BYTES as usize + BUCKETS_PER_SEGMENT * BUCKET_BYTES as usize;

/// Offset of the directory inside the meta block.
pub const DIR_OFFSET: u64 = 64;
/// Offset of the meta lock word.
pub const META_LOCK_OFFSET: u64 = 8;
/// Offset of the version word.
pub const META_VERSION_OFFSET: u64 = 16;

/// Sizing parameters for a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableConfig {
    /// log2 of the number of segments at creation.
    pub initial_depth: u8,
    /// Maximum global depth the preallocated directory can reach.
    pub max_depth: u8,
}

impl Default for TableConfig {
    fn default() -> Self {
        TableConfig {
            initial_depth: 2,
            max_depth: 16,
        }
    }
}

impl TableConfig {
    /// Bytes of the meta block (header + full directory).
    pub fn meta_bytes(&self) -> usize {
        DIR_OFFSET as usize + 8 * (1usize << self.max_depth)
    }

    /// Entry capacity of one segment.
    pub fn segment_capacity() -> usize {
        BUCKETS_PER_SEGMENT * ENTRIES_PER_BUCKET
    }
}

/// A bucket's header word: the segment's local depth and the hash suffix
/// every key in this segment shares. Clients compare
/// `hash & ((1 << local_depth) - 1)` with `suffix` to detect stale
/// directory caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketHeader {
    /// Local depth of the owning segment.
    pub local_depth: u8,
    /// The `local_depth` low bits of every key hash stored here.
    pub suffix: u64,
}

impl BucketHeader {
    /// Encodes to the header word.
    pub fn encode(&self) -> u64 {
        debug_assert!(self.suffix < (1 << 48));
        (self.local_depth as u64) | (self.suffix << 8)
    }

    /// Decodes a header word.
    pub fn decode(word: u64) -> BucketHeader {
        BucketHeader {
            local_depth: (word & 0xFF) as u8,
            suffix: word >> 8,
        }
    }

    /// Whether `hash` belongs in a bucket with this header.
    pub fn matches(&self, hash: u64) -> bool {
        hash & ((1u64 << self.local_depth) - 1) == self.suffix
    }
}

/// One directory slot: segment address plus its local depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirEntry {
    /// Address of the segment.
    pub segment: RemotePtr,
    /// Local depth of the segment (advisory; buckets carry the truth).
    pub local_depth: u8,
}

impl DirEntry {
    /// Encodes to the directory word.
    pub fn encode(&self) -> u64 {
        self.segment.to_packed48() | ((self.local_depth as u64) << 48)
    }

    /// Decodes a directory word; `None` for an empty slot.
    pub fn decode(word: u64) -> Option<DirEntry> {
        if word == 0 {
            return None;
        }
        Some(DirEntry {
            segment: RemotePtr::from_packed48(word & ((1 << 48) - 1)),
            local_depth: ((word >> 48) & 0xFF) as u8,
        })
    }
}

/// Byte offset of bucket `idx` within a segment.
pub(crate) fn bucket_offset(idx: usize) -> u64 {
    SEGMENT_HEADER_BYTES + idx as u64 * BUCKET_BYTES
}

/// Which bucket pair a hash falls into.
///
/// Uses bits 20–39: above the directory bits (`max_depth` ≤ 16) so the
/// pair choice is independent of the segment choice, yet within the low
/// 42 bits so a split oracle that can only recover a 42-bit key hash (the
/// inner-node header's full-prefix hash) still recomputes the same pair.
pub(crate) fn pair_index(hash: u64) -> usize {
    (((hash >> 20) & 0xF_FFFF) % PAIRS_PER_SEGMENT as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_fits_its_size_class() {
        assert_eq!(SEGMENT_BYTES, 4032);
        assert_eq!(SEGMENT_BYTES % 64, 0);
    }

    #[test]
    fn bucket_header_roundtrip_and_match() {
        let h = BucketHeader {
            local_depth: 5,
            suffix: 0b10110,
        };
        assert_eq!(BucketHeader::decode(h.encode()), h);
        assert!(h.matches(0b10110));
        assert!(h.matches(0xFF_F600 | 0b10110)); // any high bits
        assert!(!h.matches(0b00110));
    }

    #[test]
    fn zero_depth_header_matches_everything() {
        let h = BucketHeader {
            local_depth: 0,
            suffix: 0,
        };
        for hash in [0u64, 1, u64::MAX, 0xDEAD] {
            assert!(h.matches(hash));
        }
    }

    #[test]
    fn dir_entry_roundtrip() {
        let e = DirEntry {
            segment: RemotePtr::new(1, 4096),
            local_depth: 7,
        };
        assert_eq!(DirEntry::decode(e.encode()), Some(e));
        assert_eq!(DirEntry::decode(0), None);
    }

    #[test]
    fn pair_index_in_range_and_spread() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            let p = pair_index(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            assert!(p < PAIRS_PER_SEGMENT);
            seen.insert(p);
        }
        assert_eq!(seen.len(), PAIRS_PER_SEGMENT, "all pairs should be hit");
    }

    #[test]
    fn meta_bytes_scale_with_max_depth() {
        let small = TableConfig {
            initial_depth: 1,
            max_depth: 4,
        };
        assert_eq!(small.meta_bytes(), 64 + 8 * 16);
    }
}
