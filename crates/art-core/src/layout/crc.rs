//! CRC-32 (IEEE 802.3) used by leaf-node checksums.

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// Computes the IEEE CRC-32 of `bytes`.
///
/// # Examples
///
/// ```
/// use art_core::layout::crc32;
///
/// assert_eq!(crc32(b"123456789"), 0xCBF43926);
/// assert_eq!(crc32(b""), 0);
/// ```
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Incremental CRC-32 over several slices (avoids concatenation).
pub(crate) fn crc32_parts(parts: &[&[u8]]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for part in parts {
        for &b in *part {
            c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn parts_equal_whole() {
        let whole = crc32(b"hello world");
        let parts = crc32_parts(&[b"hello", b" ", b"world"]);
        assert_eq!(whole, parts);
    }

    #[test]
    fn single_bit_flip_detected() {
        let a = crc32(b"sphinx leaf payload");
        let b = crc32(b"sphinx leaf pbyload");
        assert_ne!(a, b);
    }
}
