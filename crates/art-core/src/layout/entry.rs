//! Inner Node Hash Table entries (8 bytes, Fig. 3).

use crate::local::NodeKind;

/// One Inner Node Hash Table entry: maps a full inner-node prefix to the
/// node's address plus lightweight metadata, in a single 8-byte word so it
/// can be read and updated with one atomic verb.
///
/// ```text
/// bits 0..48   packed48 node address
/// bits 48..50  node type tag
/// bits 50..62  12-bit prefix fingerprint fp₂
/// bit  62      valid
/// bit  63      reserved
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashEntry {
    /// 12-bit fingerprint of the full prefix (never 0).
    pub fp: u16,
    /// Adaptive type of the referenced inner node (lets the client read
    /// exactly the right number of bytes).
    pub kind: NodeKind,
    /// Address of the inner node.
    pub addr: dm_sim::RemotePtr,
}

impl HashEntry {
    /// Encodes the entry with the valid bit set.
    pub fn encode(&self) -> u64 {
        let kind_tag = match self.kind {
            NodeKind::Node4 => 0u64,
            NodeKind::Node16 => 1,
            NodeKind::Node48 => 2,
            NodeKind::Node256 => 3,
        };
        debug_assert!(self.fp < (1 << 12) && self.fp != 0);
        self.addr.to_packed48() | (kind_tag << 48) | ((self.fp as u64) << 50) | (1 << 62)
    }

    /// Decodes an entry word; `None` if the valid bit is clear.
    pub fn decode(word: u64) -> Option<HashEntry> {
        if word & (1 << 62) == 0 {
            return None;
        }
        let kind = match (word >> 48) & 0b11 {
            0 => NodeKind::Node4,
            1 => NodeKind::Node16,
            2 => NodeKind::Node48,
            _ => NodeKind::Node256,
        };
        Some(HashEntry {
            fp: ((word >> 50) & 0xFFF) as u16,
            kind,
            addr: dm_sim::RemotePtr::from_packed48(word & ((1 << 48) - 1)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_sim::RemotePtr;

    #[test]
    fn roundtrip_all_kinds() {
        for kind in [
            NodeKind::Node4,
            NodeKind::Node16,
            NodeKind::Node48,
            NodeKind::Node256,
        ] {
            let e = HashEntry {
                fp: 0xABC,
                kind,
                addr: RemotePtr::new(3, 0x1_0000),
            };
            assert_eq!(HashEntry::decode(e.encode()), Some(e));
        }
    }

    #[test]
    fn zero_word_is_empty() {
        assert_eq!(HashEntry::decode(0), None);
    }

    #[test]
    fn max_fp_fits() {
        let e = HashEntry {
            fp: 0xFFF,
            kind: NodeKind::Node4,
            addr: RemotePtr::new(0, 64),
        };
        assert_eq!(HashEntry::decode(e.encode()).unwrap().fp, 0xFFF);
    }
}
