//! Inner-node header words (control word + full-prefix hash word).

use crate::layout::LayoutError;
use crate::local::NodeKind;

/// Node status, stored in the low byte of the control word.
///
/// * `Idle` — normal state.
/// * `Locked` — a writer holds the node-grained lock (readers of *leaf*
///   nodes instead rely on checksums; inner-node readers may proceed and
///   validate via version/prefix hash).
/// * `Invalid` — the node was retired by a node-type switch; any reader
///   that fetched it through a stale hash entry must retry (§III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(u8)]
pub enum NodeStatus {
    /// Normal state.
    #[default]
    Idle = 0,
    /// Write-locked.
    Locked = 1,
    /// Retired by a node type switch; readers must retry.
    Invalid = 2,
}

impl NodeStatus {
    /// Decodes a status tag.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::UnknownStatus`] for tags other than 0–2.
    pub fn try_from_u8(tag: u8) -> Result<Self, LayoutError> {
        match tag {
            0 => Ok(NodeStatus::Idle),
            1 => Ok(NodeStatus::Locked),
            2 => Ok(NodeStatus::Invalid),
            _ => Err(LayoutError::UnknownStatus { tag }),
        }
    }
}

fn kind_tag(kind: NodeKind) -> u8 {
    match kind {
        NodeKind::Node4 => 0,
        NodeKind::Node16 => 1,
        NodeKind::Node48 => 2,
        NodeKind::Node256 => 3,
    }
}

fn kind_from_tag(tag: u8) -> Result<NodeKind, LayoutError> {
    match tag {
        0 => Ok(NodeKind::Node4),
        1 => Ok(NodeKind::Node16),
        2 => Ok(NodeKind::Node48),
        3 => Ok(NodeKind::Node256),
        _ => Err(LayoutError::UnknownNodeType { tag }),
    }
}

/// Decoded inner-node header (the first two 8-byte words of Fig. 3).
///
/// Control word bit layout:
///
/// ```text
/// bits 0..8    status
/// bits 8..16   node type tag
/// bits 16..32  prefix_len (length in bytes of the node's full prefix)
/// bits 32..48  version (incremented on every structural change)
/// bits 48..64  reserved
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InnerHeader {
    /// Current node status.
    pub status: NodeStatus,
    /// Adaptive node type.
    pub kind: NodeKind,
    /// Length of the node's full prefix in bytes.
    pub prefix_len: u16,
    /// Structural version counter.
    pub version: u16,
    /// 42-bit hash of the full prefix (false-positive rejection, §III-B).
    pub prefix_hash42: u64,
}

impl InnerHeader {
    /// Builds an `Idle`, version-0 header for a node of `kind` whose full
    /// prefix is `prefix`.
    pub fn new(kind: NodeKind, prefix: &[u8]) -> Self {
        InnerHeader {
            status: NodeStatus::Idle,
            kind,
            prefix_len: prefix.len() as u16,
            version: 0,
            prefix_hash42: crate::hash::prefix_hash42(prefix),
        }
    }

    /// Encodes the control word (word 0).
    pub fn encode_control(&self) -> u64 {
        (self.status as u64)
            | ((kind_tag(self.kind) as u64) << 8)
            | ((self.prefix_len as u64) << 16)
            | ((self.version as u64) << 32)
    }

    /// Encodes the hash word (word 1).
    pub fn encode_hash(&self) -> u64 {
        self.prefix_hash42 & ((1 << 42) - 1)
    }

    /// Decodes both header words.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::UnknownStatus`] / [`LayoutError::UnknownNodeType`]
    /// on corrupt tags.
    pub fn decode(control: u64, hash: u64) -> Result<Self, LayoutError> {
        Ok(InnerHeader {
            status: NodeStatus::try_from_u8((control & 0xFF) as u8)?,
            kind: kind_from_tag(((control >> 8) & 0xFF) as u8)?,
            prefix_len: ((control >> 16) & 0xFFFF) as u16,
            version: ((control >> 32) & 0xFFFF) as u16,
            prefix_hash42: hash & ((1 << 42) - 1),
        })
    }

    /// The control word with only the status replaced — the "expected" /
    /// "new" pair for lock CAS operations.
    pub fn control_with_status(&self, status: NodeStatus) -> u64 {
        let mut h = *self;
        h.status = status;
        h.encode_control()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = InnerHeader {
            status: NodeStatus::Locked,
            kind: NodeKind::Node48,
            prefix_len: 17,
            version: 42,
            prefix_hash42: 0x3FF_FFFF_FFFF,
        };
        let d = InnerHeader::decode(h.encode_control(), h.encode_hash()).unwrap();
        assert_eq!(d, h);
    }

    #[test]
    fn new_header_hashes_prefix() {
        let h = InnerHeader::new(NodeKind::Node4, b"lyr");
        assert_eq!(h.prefix_len, 3);
        assert_eq!(h.prefix_hash42, crate::hash::prefix_hash42(b"lyr"));
        assert_eq!(h.status, NodeStatus::Idle);
    }

    #[test]
    fn bad_tags_rejected() {
        assert!(matches!(
            InnerHeader::decode(0xFF, 0),
            Err(LayoutError::UnknownStatus { tag: 0xFF })
        ));
        assert!(matches!(
            InnerHeader::decode(9 << 8, 0),
            Err(LayoutError::UnknownNodeType { tag: 9 })
        ));
    }

    #[test]
    fn lock_cas_words_differ_only_in_status() {
        let h = InnerHeader::new(NodeKind::Node16, b"abc");
        let idle = h.control_with_status(NodeStatus::Idle);
        let locked = h.control_with_status(NodeStatus::Locked);
        assert_eq!(idle ^ locked, 1); // only the status bit differs
    }

    #[test]
    fn status_tags_roundtrip() {
        for s in [NodeStatus::Idle, NodeStatus::Locked, NodeStatus::Invalid] {
            assert_eq!(NodeStatus::try_from_u8(s as u8).unwrap(), s);
        }
    }
}
