//! Leaf-node encoding with checksum protection.

use crate::layout::crc::crc32_parts;
use crate::layout::header::NodeStatus;
use crate::layout::LayoutError;

/// A decoded leaf node.
///
/// On-MN layout (64-byte aligned, `LeafLen` in 64-byte units per §IV):
///
/// ```text
/// word 0: status(8) | leaf_len_units(8) | key_len(16) | checksum(32)
/// word 1: val_len(32) | version(32)
/// 16.. : key bytes, value bytes, zero padding
/// ```
///
/// The checksum covers `key_len`, `val_len`, key and value — **not** the
/// status byte — so writers can lock/unlock without re-checksumming and
/// readers detect torn reads from concurrent in-place updates (§III-C).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeafNode {
    /// Leaf status (`Idle`, `Locked` during in-place update, `Invalid`
    /// after deletion).
    pub status: NodeStatus,
    /// The stored key.
    pub key: Vec<u8>,
    /// The stored value.
    pub value: Vec<u8>,
    /// Update version counter.
    pub version: u32,
    /// Allocated size in 64-byte units (the `LeafLen` field). At least the
    /// minimal size for the content; an in-place update may leave it
    /// larger than minimal.
    units: u8,
}

impl LeafNode {
    /// Creates an `Idle`, version-0 leaf sized minimally for its content.
    pub fn new(key: Vec<u8>, value: Vec<u8>) -> Self {
        let units = (Self::encoded_size(key.len(), value.len()) / 64) as u8;
        LeafNode {
            status: NodeStatus::Idle,
            key,
            value,
            version: 0,
            units,
        }
    }

    /// Encoded size in bytes for a key/value pair: header plus payload,
    /// rounded up to a multiple of 64.
    pub fn encoded_size(key_len: usize, val_len: usize) -> usize {
        (16 + key_len + val_len).div_ceil(64) * 64
    }

    /// Size of this leaf in 64-byte units (the `LeafLen` field).
    pub fn len_units(&self) -> u8 {
        self.units
    }

    /// Fixes the allocated size to `units` 64-byte units (in-place updates
    /// keep the original allocation).
    ///
    /// # Panics
    ///
    /// Panics if the content needs more than `units` units.
    pub fn set_len_units(&mut self, units: u8) {
        let need = Self::encoded_size(self.key.len(), self.value.len());
        assert!(
            need <= units as usize * 64,
            "leaf content exceeds {units} units"
        );
        self.units = units;
    }

    /// Capacity in bytes available for the value without reallocating
    /// (i.e. the in-place-update budget of §IV's Update operation).
    pub fn value_capacity(&self) -> usize {
        self.len_units() as usize * 64 - 16 - self.key.len()
    }

    /// Whether a new value of `val_len` bytes fits in place.
    pub fn fits_in_place(&self, val_len: usize) -> bool {
        val_len <= self.value_capacity()
    }

    fn checksum(&self) -> u32 {
        crc32_parts(&[
            &(self.key.len() as u32).to_le_bytes(),
            &(self.value.len() as u32).to_le_bytes(),
            &self.key,
            &self.value,
        ])
    }

    /// Serializes the leaf to its on-MN byte layout.
    ///
    /// # Panics
    ///
    /// Panics if the key exceeds 64 KiB or the leaf exceeds 255 64-byte
    /// units (the `LeafLen` field width).
    pub fn encode(&self) -> Vec<u8> {
        let size = self.units as usize * 64;
        debug_assert!(size >= Self::encoded_size(self.key.len(), self.value.len()));
        assert!(
            self.key.len() <= u16::MAX as usize,
            "key too long for leaf header"
        );
        let mut out = vec![0u8; size];
        let word0 = (self.status as u64)
            | ((self.len_units() as u64) << 8)
            | ((self.key.len() as u64) << 16)
            | ((self.checksum() as u64) << 32);
        let word1 = (self.value.len() as u64) | ((self.version as u64) << 32);
        out[0..8].copy_from_slice(&word0.to_le_bytes());
        out[8..16].copy_from_slice(&word1.to_le_bytes());
        out[16..16 + self.key.len()].copy_from_slice(&self.key);
        let v0 = 16 + self.key.len();
        out[v0..v0 + self.value.len()].copy_from_slice(&self.value);
        out
    }

    /// Decodes and checksum-verifies a leaf.
    ///
    /// # Errors
    ///
    /// * [`LayoutError::TruncatedNode`] — buffer shorter than the header
    ///   or the payload lengths claim.
    /// * [`LayoutError::ChecksumMismatch`] — torn read or corruption; the
    ///   caller should re-read the leaf.
    /// * [`LayoutError::UnknownStatus`] — corrupt status tag.
    pub fn decode(bytes: &[u8]) -> Result<Self, LayoutError> {
        Self::decode_inner(bytes, true)
    }

    /// Decodes a leaf **without** verifying the checksum (structural checks
    /// still apply). This deliberately serves torn bytes; it exists only so
    /// fault-injection harnesses can model a protocol with validation
    /// switched off (`node_engine::set_leaf_validation`) and prove the
    /// linearizability checker catches the resulting anomalies. Never call
    /// it on a data path.
    pub fn decode_unverified(bytes: &[u8]) -> Result<Self, LayoutError> {
        Self::decode_inner(bytes, false)
    }

    fn decode_inner(bytes: &[u8], verify: bool) -> Result<Self, LayoutError> {
        if bytes.len() < 16 {
            return Err(LayoutError::TruncatedNode {
                need: 16,
                have: bytes.len(),
            });
        }
        let word0 = u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes"));
        let word1 = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
        let status = NodeStatus::try_from_u8((word0 & 0xFF) as u8)?;
        let key_len = ((word0 >> 16) & 0xFFFF) as usize;
        let stored = (word0 >> 32) as u32;
        let val_len = (word1 & 0xFFFF_FFFF) as usize;
        let version = (word1 >> 32) as u32;
        let need = 16 + key_len + val_len;
        if bytes.len() < need {
            return Err(LayoutError::TruncatedNode {
                need,
                have: bytes.len(),
            });
        }
        let units = ((word0 >> 8) & 0xFF) as u8;
        let leaf = LeafNode {
            status,
            key: bytes[16..16 + key_len].to_vec(),
            value: bytes[16 + key_len..need].to_vec(),
            version,
            units: units.max(need.div_ceil(64) as u8),
        };
        let computed = leaf.checksum();
        if verify && computed != stored {
            return Err(LayoutError::ChecksumMismatch { stored, computed });
        }
        Ok(leaf)
    }

    /// The header word a peer must observe to CAS this leaf's status from
    /// `from` to `to` (both words share everything but the status byte).
    pub fn status_cas_words(&self, from: NodeStatus, to: NodeStatus) -> (u64, u64) {
        let base = ((self.len_units() as u64) << 8)
            | ((self.key.len() as u64) << 16)
            | ((self.checksum() as u64) << 32);
        (base | from as u64, base | to as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let leaf = LeafNode::new(b"user42".to_vec(), vec![7u8; 64]);
        let bytes = leaf.encode();
        assert_eq!(bytes.len() % 64, 0);
        assert_eq!(LeafNode::decode(&bytes).unwrap(), leaf);
    }

    #[test]
    fn empty_value_roundtrip() {
        let leaf = LeafNode::new(b"k".to_vec(), Vec::new());
        assert_eq!(LeafNode::decode(&leaf.encode()).unwrap(), leaf);
    }

    #[test]
    fn encoded_size_is_64_aligned_and_minimal() {
        assert_eq!(LeafNode::encoded_size(6, 42), 64);
        assert_eq!(LeafNode::encoded_size(6, 43), 128);
        assert_eq!(LeafNode::encoded_size(0, 0), 64);
    }

    #[test]
    fn corruption_detected() {
        let leaf = LeafNode::new(b"key".to_vec(), b"value".to_vec());
        let mut bytes = leaf.encode();
        bytes[20] ^= 0x01; // flip one key bit
        assert!(matches!(
            LeafNode::decode(&bytes),
            Err(LayoutError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn decode_unverified_serves_torn_bytes() {
        let leaf = LeafNode::new(b"key".to_vec(), b"value".to_vec());
        let mut bytes = leaf.encode();
        bytes[20] ^= 0x01; // flip one payload bit
        assert!(LeafNode::decode(&bytes).is_err());
        let torn = LeafNode::decode_unverified(&bytes).unwrap();
        assert_ne!(torn.value, leaf.value, "torn payload must be served as-is");
        // Structural failures are still rejected.
        assert!(LeafNode::decode_unverified(&bytes[..10]).is_err());
    }

    #[test]
    fn status_change_does_not_break_checksum() {
        let mut leaf = LeafNode::new(b"key".to_vec(), b"value".to_vec());
        leaf.status = NodeStatus::Locked;
        let decoded = LeafNode::decode(&leaf.encode()).unwrap();
        assert_eq!(decoded.status, NodeStatus::Locked);
    }

    #[test]
    fn fits_in_place_budget() {
        let leaf = LeafNode::new(b"12345678".to_vec(), vec![0; 30]);
        // one 64-byte unit: 64 - 16 - 8 = 40 bytes of value capacity
        assert_eq!(leaf.value_capacity(), 40);
        assert!(leaf.fits_in_place(40));
        assert!(!leaf.fits_in_place(41));
    }

    #[test]
    fn cas_words_flip_only_status() {
        let leaf = LeafNode::new(b"a".to_vec(), b"b".to_vec());
        let (from, to) = leaf.status_cas_words(NodeStatus::Idle, NodeStatus::Locked);
        assert_eq!(from ^ to, 1);
        // the "from" word matches the actually encoded word0
        let bytes = leaf.encode();
        let word0 = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
        assert_eq!(word0, from);
    }

    #[test]
    fn truncated_buffer_rejected() {
        let leaf = LeafNode::new(b"key".to_vec(), vec![1; 100]);
        let bytes = leaf.encode();
        assert!(LeafNode::decode(&bytes[..10]).is_err());
        assert!(LeafNode::decode(&bytes[..60]).is_err());
    }

    #[test]
    fn padded_units_survive_roundtrip_and_cas_words() {
        let mut leaf = LeafNode::new(b"k".to_vec(), vec![5u8; 10]); // naturally 1 unit
        leaf.set_len_units(3);
        let bytes = leaf.encode();
        assert_eq!(bytes.len(), 192);
        let d = LeafNode::decode(&bytes).unwrap();
        assert_eq!(d.value, leaf.value);
        assert_eq!(d.len_units(), 3, "allocation size must be preserved");
        // the CAS words computed from the decoded leaf must match the
        // stored word 0 exactly (otherwise a second update livelocks)
        let word0 = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
        let (from, _to) = d.status_cas_words(NodeStatus::Idle, NodeStatus::Locked);
        assert_eq!(word0, from);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn set_len_units_rejects_overflow() {
        let mut leaf = LeafNode::new(b"key".to_vec(), vec![0u8; 200]);
        leaf.set_len_units(1);
    }

    #[test]
    fn version_survives_roundtrip() {
        let mut leaf = LeafNode::new(b"k".to_vec(), b"v".to_vec());
        leaf.version = 0xDEAD_BEEF;
        assert_eq!(
            LeafNode::decode(&leaf.encode()).unwrap().version,
            0xDEAD_BEEF
        );
    }
}
