//! Serialized on-memory-node formats (Fig. 3 of the Sphinx paper).
//!
//! Everything here is pure byte encoding/decoding; the actual remote
//! transfers happen in the `sphinx` and `baselines` crates over `dm-sim`.
//!
//! ## Inner node
//!
//! ```text
//! offset  size  field
//! 0       8     control word: status | node type | prefix_len | version
//! 8       8     full-prefix hash (42 bits) — false-positive rejection
//! 16      8     value slot (leaf whose key == this node's full prefix)
//! 24      8*C   child slots (C = 4/16/48/256 by node type)
//! ```
//!
//! Every control quantity fits in one 8-byte word so it can be read and
//! CAS-ed atomically with a single one-sided verb.
//!
//! ## Leaf node
//!
//! ```text
//! offset  size  field
//! 0       8     status | leaf_len (64 B units) | key_len | checksum
//! 8       8     val_len | version
//! 16      ...   key bytes, value bytes, zero padding to a 64 B multiple
//! ```
//!
//! The CRC-32 checksum covers the lengths, key and value — not the status
//! byte — so a reader can detect torn reads caused by a concurrent
//! in-place update, and a writer can flip the lock bit without
//! re-checksumming.

mod crc;
mod entry;
mod header;
mod inner;
mod leaf;

pub use crc::crc32;
pub use entry::HashEntry;
pub use header::{InnerHeader, NodeStatus};
pub use inner::{InnerNode, SLOTS_OFFSET, VALUE_SLOT_OFFSET};
pub use leaf::LeafNode;

use std::error::Error;
use std::fmt;

/// A child pointer inside an inner node: one 8-byte word.
///
/// ```text
/// bits 0..48   packed48 address (8-bit MN | 40-bit offset)
/// bits 48..56  key byte dispatched on
/// bit  56      occupied
/// bit  57      child is a leaf (vs an inner node)
/// bits 58..60  child node kind (inner children; lets the reader fetch
///              exactly the right number of bytes in one round trip)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slot {
    /// The key byte this child is dispatched on.
    pub key_byte: u8,
    /// Whether the child is a leaf node.
    pub is_leaf: bool,
    /// For inner children, the child's adaptive node kind (ignored for
    /// leaves — set it to `NodeKind::Node4`).
    pub child_kind: crate::local::NodeKind,
    /// Address of the child node.
    pub addr: dm_sim::RemotePtr,
}

impl Slot {
    /// Convenience constructor for a leaf child.
    pub fn leaf(key_byte: u8, addr: dm_sim::RemotePtr) -> Slot {
        Slot {
            key_byte,
            is_leaf: true,
            child_kind: crate::local::NodeKind::Node4,
            addr,
        }
    }

    /// Convenience constructor for an inner child of the given kind.
    pub fn inner(key_byte: u8, kind: crate::local::NodeKind, addr: dm_sim::RemotePtr) -> Slot {
        Slot {
            key_byte,
            is_leaf: false,
            child_kind: kind,
            addr,
        }
    }

    /// Encodes the slot into its 8-byte word (occupied bit set).
    pub fn encode(&self) -> u64 {
        let kind_tag = match self.child_kind {
            crate::local::NodeKind::Node4 => 0u64,
            crate::local::NodeKind::Node16 => 1,
            crate::local::NodeKind::Node48 => 2,
            crate::local::NodeKind::Node256 => 3,
        };
        let mut w = self.addr.to_packed48();
        w |= (self.key_byte as u64) << 48;
        w |= 1 << 56; // occupied
        if self.is_leaf {
            w |= 1 << 57;
        }
        w |= kind_tag << 58;
        w
    }

    /// Decodes a slot word; `None` if the occupied bit is clear.
    pub fn decode(word: u64) -> Option<Slot> {
        if word & (1 << 56) == 0 {
            return None;
        }
        let child_kind = match (word >> 58) & 0b11 {
            0 => crate::local::NodeKind::Node4,
            1 => crate::local::NodeKind::Node16,
            2 => crate::local::NodeKind::Node48,
            _ => crate::local::NodeKind::Node256,
        };
        Some(Slot {
            key_byte: ((word >> 48) & 0xFF) as u8,
            is_leaf: word & (1 << 57) != 0,
            child_kind,
            addr: dm_sim::RemotePtr::from_packed48(word & ((1 << 48) - 1)),
        })
    }
}

/// Errors from decoding on-MN bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LayoutError {
    /// The buffer is shorter than the encoded structure requires.
    TruncatedNode {
        /// Bytes required.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// An unknown node-type tag was found in a header.
    UnknownNodeType {
        /// The offending tag.
        tag: u8,
    },
    /// An unknown status tag was found in a header.
    UnknownStatus {
        /// The offending tag.
        tag: u8,
    },
    /// A leaf checksum did not match (torn read or corruption).
    ChecksumMismatch {
        /// Checksum stored in the leaf.
        stored: u32,
        /// Checksum computed over the payload.
        computed: u32,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::TruncatedNode { need, have } => {
                write!(f, "truncated node: need {need} bytes, have {have}")
            }
            LayoutError::UnknownNodeType { tag } => write!(f, "unknown node type tag {tag}"),
            LayoutError::UnknownStatus { tag } => write!(f, "unknown status tag {tag}"),
            LayoutError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "leaf checksum mismatch: stored {stored:#x}, computed {computed:#x}"
                )
            }
        }
    }
}

impl Error for LayoutError {}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_sim::RemotePtr;

    #[test]
    fn slot_roundtrip() {
        let s = Slot::leaf(0xAB, RemotePtr::new(2, 0x1234));
        let w = s.encode();
        assert_eq!(Slot::decode(w), Some(s));
    }

    #[test]
    fn slot_carries_child_kind() {
        use crate::local::NodeKind;
        for kind in [
            NodeKind::Node4,
            NodeKind::Node16,
            NodeKind::Node48,
            NodeKind::Node256,
        ] {
            let s = Slot::inner(9, kind, RemotePtr::new(0, 128));
            assert_eq!(Slot::decode(s.encode()).unwrap().child_kind, kind);
        }
    }

    #[test]
    fn empty_word_decodes_to_none() {
        assert_eq!(Slot::decode(0), None);
    }

    #[test]
    fn inner_child_slot_roundtrip() {
        let s = Slot::inner(0, crate::local::NodeKind::Node48, RemotePtr::new(0, 64));
        assert_eq!(Slot::decode(s.encode()), Some(s));
    }
}
