//! Whole-inner-node encoding and views.

use crate::layout::header::{InnerHeader, NodeStatus};
use crate::layout::{LayoutError, Slot};
use crate::local::NodeKind;

/// Byte offset of the value slot within an encoded inner node.
pub const VALUE_SLOT_OFFSET: u64 = 16;
/// Byte offset of the first child slot within an encoded inner node.
pub const SLOTS_OFFSET: u64 = 24;

/// A decoded inner node: header, optional value slot, child slots.
///
/// The `slots` vector always has exactly `header.kind.capacity()` entries;
/// unoccupied positions are `None`. For `Node256` the slot at index `i`
/// holds the child dispatched on key byte `i`; smaller node types store
/// children in arbitrary positions and are searched linearly (the client
/// has the whole node in hand after one read, so this costs no extra
/// round trips).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InnerNode {
    /// The two header words.
    pub header: InnerHeader,
    /// Leaf for the key equal to this node's full prefix, if any.
    pub value_slot: Option<Slot>,
    /// Child slots (`capacity()` entries).
    pub slots: Vec<Option<Slot>>,
}

impl InnerNode {
    /// Creates an empty `Idle` node of `kind` for full prefix `prefix`.
    pub fn new(kind: NodeKind, prefix: &[u8]) -> Self {
        InnerNode {
            header: InnerHeader::new(kind, prefix),
            value_slot: None,
            slots: vec![None; kind.capacity()],
        }
    }

    /// Encoded size in bytes of a node of `kind`.
    ///
    /// Node4 = 56 B, Node16 = 152 B, Node48 = 408 B, Node256 = 2072 B —
    /// matching the paper's "40–2056 bytes" inner-node range.
    pub fn byte_size(kind: NodeKind) -> usize {
        SLOTS_OFFSET as usize + 8 * kind.capacity()
    }

    /// Byte offset of child slot `index` (for remote CAS installs).
    pub fn slot_offset(index: usize) -> u64 {
        SLOTS_OFFSET + 8 * index as u64
    }

    /// Number of occupied child slots.
    pub fn child_count(&self) -> usize {
        self.slots.iter().flatten().count()
    }

    /// Whether all child slots are occupied (insert would need a type
    /// switch).
    pub fn is_full(&self) -> bool {
        self.child_count() == self.header.kind.capacity()
    }

    /// Finds the child dispatched on `byte`, with its slot index.
    pub fn find_child(&self, byte: u8) -> Option<(usize, Slot)> {
        match self.header.kind {
            NodeKind::Node256 => self.slots[byte as usize].map(|s| (byte as usize, s)),
            _ => self
                .slots
                .iter()
                .enumerate()
                .find_map(|(i, s)| s.filter(|s| s.key_byte == byte).map(|s| (i, s))),
        }
    }

    /// Finds a free slot index for inserting a child on `byte`.
    ///
    /// Returns `None` when the node is full (the caller must switch node
    /// types). For `Node256` the index is the key byte itself.
    pub fn free_slot(&self, byte: u8) -> Option<usize> {
        match self.header.kind {
            NodeKind::Node256 => self.slots[byte as usize].is_none().then_some(byte as usize),
            _ => self.slots.iter().position(Option::is_none),
        }
    }

    /// Installs a child slot locally (used when building nodes before
    /// writing them out; remote installs CAS the slot word instead).
    ///
    /// # Panics
    ///
    /// Panics if the node is full.
    pub fn set_child(&mut self, slot: Slot) {
        let idx = self.free_slot(slot.key_byte).expect("node has a free slot");
        self.slots[idx] = Some(slot);
    }

    /// Occupied child slots in ascending key-byte order (for scans).
    pub fn children_sorted(&self) -> Vec<Slot> {
        let mut v: Vec<Slot> = self.slots.iter().flatten().copied().collect();
        v.sort_by_key(|s| s.key_byte);
        v
    }

    /// Next node kind for a type switch (Node4→16→48→256).
    ///
    /// Returns `None` for `Node256`, which never overflows.
    pub fn grown_kind(&self) -> Option<NodeKind> {
        match self.header.kind {
            NodeKind::Node4 => Some(NodeKind::Node16),
            NodeKind::Node16 => Some(NodeKind::Node48),
            NodeKind::Node48 => Some(NodeKind::Node256),
            NodeKind::Node256 => None,
        }
    }

    /// Serializes the node to its on-MN byte layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![0u8; Self::byte_size(self.header.kind)];
        out[0..8].copy_from_slice(&self.header.encode_control().to_le_bytes());
        out[8..16].copy_from_slice(&self.header.encode_hash().to_le_bytes());
        let vs = self.value_slot.map_or(0, |s| s.encode());
        out[16..24].copy_from_slice(&vs.to_le_bytes());
        for (i, slot) in self.slots.iter().enumerate() {
            let w = slot.map_or(0, |s| s.encode());
            let off = SLOTS_OFFSET as usize + 8 * i;
            out[off..off + 8].copy_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Decodes a node from `bytes` (which may be longer than the node).
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::TruncatedNode`] when `bytes` is too short for
    /// the node type named in the header, and propagates header tag errors.
    pub fn decode(bytes: &[u8]) -> Result<Self, LayoutError> {
        if bytes.len() < SLOTS_OFFSET as usize {
            return Err(LayoutError::TruncatedNode {
                need: SLOTS_OFFSET as usize,
                have: bytes.len(),
            });
        }
        let word = |i: usize| -> u64 {
            u64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().expect("8 bytes"))
        };
        let header = InnerHeader::decode(word(0), word(1))?;
        let need = Self::byte_size(header.kind);
        if bytes.len() < need {
            return Err(LayoutError::TruncatedNode {
                need,
                have: bytes.len(),
            });
        }
        let value_slot = Slot::decode(word(2));
        let slots = (0..header.kind.capacity())
            .map(|i| Slot::decode(word(3 + i)))
            .collect();
        Ok(InnerNode {
            header,
            value_slot,
            slots,
        })
    }

    /// Copies header (with `kind` upgraded and version bumped), value slot
    /// and children into a fresh node of the next type — the node-type
    /// switch of §III-C.
    ///
    /// # Panics
    ///
    /// Panics if called on a `Node256`.
    pub fn grow(&self) -> InnerNode {
        let kind = self.grown_kind().expect("Node256 cannot grow");
        let mut node = InnerNode {
            header: InnerHeader {
                status: NodeStatus::Idle,
                kind,
                prefix_len: self.header.prefix_len,
                version: self.header.version.wrapping_add(1),
                prefix_hash42: self.header.prefix_hash42,
            },
            value_slot: self.value_slot,
            slots: vec![None; kind.capacity()],
        };
        for slot in self.slots.iter().flatten() {
            node.set_child(*slot);
        }
        node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_sim::RemotePtr;

    fn slot(b: u8, leaf: bool) -> Slot {
        let addr = RemotePtr::new(1, 64 * (b as u64 + 1));
        if leaf {
            Slot::leaf(b, addr)
        } else {
            Slot::inner(b, NodeKind::Node16, addr)
        }
    }

    #[test]
    fn sizes_match_paper_range() {
        assert_eq!(InnerNode::byte_size(NodeKind::Node4), 56);
        assert_eq!(InnerNode::byte_size(NodeKind::Node16), 152);
        assert_eq!(InnerNode::byte_size(NodeKind::Node48), 408);
        assert_eq!(InnerNode::byte_size(NodeKind::Node256), 2072);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut n = InnerNode::new(NodeKind::Node16, b"lyr");
        n.set_child(slot(b'i', false));
        n.set_child(slot(b'e', true));
        n.value_slot = Some(slot(0, true));
        let bytes = n.encode();
        assert_eq!(bytes.len(), 152);
        let d = InnerNode::decode(&bytes).unwrap();
        assert_eq!(d, n);
    }

    #[test]
    fn decode_tolerates_trailing_bytes() {
        let n = InnerNode::new(NodeKind::Node4, b"x");
        let mut bytes = n.encode();
        bytes.extend_from_slice(&[0xAA; 100]);
        assert_eq!(InnerNode::decode(&bytes).unwrap(), n);
    }

    #[test]
    fn truncated_rejected() {
        let n = InnerNode::new(NodeKind::Node256, b"x");
        let bytes = n.encode();
        assert!(matches!(
            InnerNode::decode(&bytes[..100]),
            Err(LayoutError::TruncatedNode { .. })
        ));
    }

    #[test]
    fn find_child_linear_and_indexed() {
        let mut n4 = InnerNode::new(NodeKind::Node4, b"");
        n4.set_child(slot(7, true));
        assert_eq!(n4.find_child(7).unwrap().1.key_byte, 7);
        assert!(n4.find_child(8).is_none());

        let mut n256 = InnerNode::new(NodeKind::Node256, b"");
        n256.set_child(slot(200, false));
        let (idx, s) = n256.find_child(200).unwrap();
        assert_eq!(idx, 200);
        assert_eq!(s.key_byte, 200);
    }

    #[test]
    fn grow_preserves_children_and_bumps_version() {
        let mut n = InnerNode::new(NodeKind::Node4, b"ab");
        for b in 0..4 {
            n.set_child(slot(b, true));
        }
        assert!(n.is_full());
        let g = n.grow();
        assert_eq!(g.header.kind, NodeKind::Node16);
        assert_eq!(g.header.version, 1);
        assert_eq!(g.child_count(), 4);
        for b in 0..4 {
            assert!(g.find_child(b).is_some());
        }
    }

    #[test]
    fn children_sorted_orders_by_key_byte() {
        let mut n = InnerNode::new(NodeKind::Node16, b"");
        for b in [9u8, 3, 200, 40] {
            n.set_child(slot(b, true));
        }
        let order: Vec<u8> = n.children_sorted().iter().map(|s| s.key_byte).collect();
        assert_eq!(order, vec![3, 9, 40, 200]);
    }

    #[test]
    fn node256_free_slot_is_key_byte() {
        let n = InnerNode::new(NodeKind::Node256, b"");
        assert_eq!(n.free_slot(123), Some(123));
    }

    #[test]
    fn slot_offset_matches_encoding() {
        let mut n = InnerNode::new(NodeKind::Node4, b"");
        n.set_child(slot(5, true));
        let idx = n.find_child(5).unwrap().0;
        let bytes = n.encode();
        let off = InnerNode::slot_offset(idx) as usize;
        let w = u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
        assert_eq!(Slot::decode(w), Some(slot(5, true)));
    }
}
