//! A local (single-process) Adaptive Radix Tree.
//!
//! Implements the structure of Leis et al. (ICDE'13): four adaptive inner
//! node types (Node4/16/48/256) and path compression. Inner nodes store
//! their *full* prefix (see the crate docs for why), and an inner node may
//! itself hold a value when a stored key terminates exactly at its prefix —
//! this is how variable-length keys where one key is a prefix of another
//! are supported without terminator bytes.

use std::fmt;

use crate::key::common_prefix_len;

/// Which adaptive node type an inner node currently uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NodeKind {
    /// Up to 4 children, sorted array.
    Node4,
    /// Up to 16 children, sorted array.
    Node16,
    /// Up to 48 children, byte-indexed indirection.
    Node48,
    /// Direct 256-way dispatch.
    Node256,
}

impl NodeKind {
    /// Maximum child count for this node type.
    pub fn capacity(self) -> usize {
        match self {
            NodeKind::Node4 => 4,
            NodeKind::Node16 => 16,
            NodeKind::Node48 => 48,
            NodeKind::Node256 => 256,
        }
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeKind::Node4 => "Node4",
            NodeKind::Node16 => "Node16",
            NodeKind::Node48 => "Node48",
            NodeKind::Node256 => "Node256",
        };
        f.write_str(s)
    }
}

struct Leaf<V> {
    key: Vec<u8>,
    value: V,
}

struct Inner<V> {
    /// Full prefix from the root (every key in this subtree starts with it).
    prefix: Vec<u8>,
    /// Value for the key equal to `prefix`, if stored.
    value: Option<V>,
    children: Children<V>,
}

enum Node<V> {
    Leaf(Leaf<V>),
    Inner(Inner<V>),
}

type Slot<V> = Option<Box<Node<V>>>;

struct SmallNode<V, const N: usize> {
    keys: [u8; N],
    slots: [Slot<V>; N],
    n: u8,
}

impl<V, const N: usize> SmallNode<V, N> {
    fn new() -> Self {
        SmallNode {
            keys: [0; N],
            slots: std::array::from_fn(|_| None),
            n: 0,
        }
    }

    fn position(&self, byte: u8) -> Option<usize> {
        self.keys[..self.n as usize].iter().position(|&k| k == byte)
    }

    /// Inserts keeping `keys[..n]` sorted. Caller guarantees space and
    /// absence of the byte.
    fn insert(&mut self, byte: u8, node: Box<Node<V>>) {
        let n = self.n as usize;
        debug_assert!(n < N);
        let pos = self.keys[..n].iter().position(|&k| k > byte).unwrap_or(n);
        for i in (pos..n).rev() {
            self.keys[i + 1] = self.keys[i];
            self.slots[i + 1] = self.slots[i].take();
        }
        self.keys[pos] = byte;
        self.slots[pos] = Some(node);
        self.n += 1;
    }

    fn remove(&mut self, byte: u8) -> Slot<V> {
        let pos = self.position(byte)?;
        let n = self.n as usize;
        let out = self.slots[pos].take();
        for i in pos..n - 1 {
            self.keys[i] = self.keys[i + 1];
            self.slots[i] = self.slots[i + 1].take();
        }
        self.n -= 1;
        out
    }
}

struct Node48<V> {
    /// `index[b]` is the slot holding byte `b`, or `EMPTY48`.
    index: Box<[u8; 256]>,
    slots: Vec<Slot<V>>,
    n: u8,
}

const EMPTY48: u8 = 0xFF;

impl<V> Node48<V> {
    fn new() -> Self {
        Node48 {
            index: Box::new([EMPTY48; 256]),
            slots: (0..48).map(|_| None).collect(),
            n: 0,
        }
    }

    fn insert(&mut self, byte: u8, node: Box<Node<V>>) {
        debug_assert_eq!(self.index[byte as usize], EMPTY48);
        let free = self
            .slots
            .iter()
            .position(Option::is_none)
            .expect("Node48 has space");
        self.slots[free] = Some(node);
        self.index[byte as usize] = free as u8;
        self.n += 1;
    }

    fn remove(&mut self, byte: u8) -> Slot<V> {
        let idx = self.index[byte as usize];
        if idx == EMPTY48 {
            return None;
        }
        self.index[byte as usize] = EMPTY48;
        self.n -= 1;
        self.slots[idx as usize].take()
    }
}

struct Node256<V> {
    slots: Vec<Slot<V>>,
    n: u16,
}

impl<V> Node256<V> {
    fn new() -> Self {
        Node256 {
            slots: (0..256).map(|_| None).collect(),
            n: 0,
        }
    }
}

enum Children<V> {
    N4(SmallNode<V, 4>),
    N16(SmallNode<V, 16>),
    N48(Node48<V>),
    N256(Node256<V>),
}

impl<V> Children<V> {
    fn new() -> Self {
        Children::N4(SmallNode::new())
    }

    fn kind(&self) -> NodeKind {
        match self {
            Children::N4(_) => NodeKind::Node4,
            Children::N16(_) => NodeKind::Node16,
            Children::N48(_) => NodeKind::Node48,
            Children::N256(_) => NodeKind::Node256,
        }
    }

    fn len(&self) -> usize {
        match self {
            Children::N4(c) => c.n as usize,
            Children::N16(c) => c.n as usize,
            Children::N48(c) => c.n as usize,
            Children::N256(c) => c.n as usize,
        }
    }

    fn is_full(&self) -> bool {
        self.len() == self.kind().capacity()
    }

    fn get(&self, byte: u8) -> Option<&Node<V>> {
        match self {
            Children::N4(c) => c.position(byte).and_then(|i| c.slots[i].as_deref()),
            Children::N16(c) => c.position(byte).and_then(|i| c.slots[i].as_deref()),
            Children::N48(c) => {
                let idx = c.index[byte as usize];
                if idx == EMPTY48 {
                    None
                } else {
                    c.slots[idx as usize].as_deref()
                }
            }
            Children::N256(c) => c.slots[byte as usize].as_deref(),
        }
    }

    fn get_mut(&mut self, byte: u8) -> Option<&mut Box<Node<V>>> {
        match self {
            Children::N4(c) => c.position(byte).and_then(|i| c.slots[i].as_mut()),
            Children::N16(c) => c.position(byte).and_then(|i| c.slots[i].as_mut()),
            Children::N48(c) => {
                let idx = c.index[byte as usize];
                if idx == EMPTY48 {
                    None
                } else {
                    c.slots[idx as usize].as_mut()
                }
            }
            Children::N256(c) => c.slots[byte as usize].as_mut(),
        }
    }

    /// Inserts a child; grows the node type when full.
    ///
    /// The caller must ensure `byte` is not already present.
    fn insert(&mut self, byte: u8, node: Box<Node<V>>) {
        if self.is_full() {
            self.grow();
        }
        match self {
            Children::N4(c) => c.insert(byte, node),
            Children::N16(c) => c.insert(byte, node),
            Children::N48(c) => c.insert(byte, node),
            Children::N256(c) => {
                debug_assert!(c.slots[byte as usize].is_none());
                c.slots[byte as usize] = Some(node);
                c.n += 1;
            }
        }
    }

    fn remove(&mut self, byte: u8) -> Slot<V> {
        let out = match self {
            Children::N4(c) => c.remove(byte),
            Children::N16(c) => c.remove(byte),
            Children::N48(c) => c.remove(byte),
            Children::N256(c) => {
                let out = c.slots[byte as usize].take();
                if out.is_some() {
                    c.n -= 1;
                }
                out
            }
        };
        if out.is_some() {
            self.maybe_shrink();
        }
        out
    }

    fn grow(&mut self) {
        let drained: Vec<(u8, Box<Node<V>>)> = self.drain();
        *self = match self.kind() {
            NodeKind::Node4 => Children::N16(SmallNode::new()),
            NodeKind::Node16 => Children::N48(Node48::new()),
            NodeKind::Node48 => Children::N256(Node256::new()),
            NodeKind::Node256 => unreachable!("Node256 never grows"),
        };
        for (b, n) in drained {
            self.insert(b, n);
        }
    }

    fn maybe_shrink(&mut self) {
        let target = match (self.kind(), self.len()) {
            (NodeKind::Node256, n) if n <= 40 => NodeKind::Node48,
            (NodeKind::Node48, n) if n <= 12 => NodeKind::Node16,
            (NodeKind::Node16, n) if n <= 3 => NodeKind::Node4,
            _ => return,
        };
        let drained: Vec<(u8, Box<Node<V>>)> = self.drain();
        *self = match target {
            NodeKind::Node4 => Children::N4(SmallNode::new()),
            NodeKind::Node16 => Children::N16(SmallNode::new()),
            NodeKind::Node48 => Children::N48(Node48::new()),
            NodeKind::Node256 => unreachable!(),
        };
        for (b, n) in drained {
            self.insert(b, n);
        }
    }

    fn drain(&mut self) -> Vec<(u8, Box<Node<V>>)> {
        let mut out = Vec::with_capacity(self.len());
        match self {
            Children::N4(c) => {
                for i in 0..c.n as usize {
                    out.push((c.keys[i], c.slots[i].take().expect("occupied")));
                }
                c.n = 0;
            }
            Children::N16(c) => {
                for i in 0..c.n as usize {
                    out.push((c.keys[i], c.slots[i].take().expect("occupied")));
                }
                c.n = 0;
            }
            Children::N48(c) => {
                for b in 0..=255u8 {
                    let idx = c.index[b as usize];
                    if idx != EMPTY48 {
                        out.push((b, c.slots[idx as usize].take().expect("occupied")));
                        c.index[b as usize] = EMPTY48;
                    }
                }
                c.n = 0;
            }
            Children::N256(c) => {
                for b in 0..=255u8 {
                    if let Some(n) = c.slots[b as usize].take() {
                        out.push((b, n));
                    }
                }
                c.n = 0;
            }
        }
        out
    }

    /// Children in ascending byte order.
    fn iter(&self) -> ChildIter<'_, V> {
        ChildIter {
            children: self,
            byte: 0,
            done: false,
        }
    }

    fn take_only_child(&mut self) -> Box<Node<V>> {
        debug_assert_eq!(self.len(), 1);
        self.drain().pop().expect("exactly one child").1
    }
}

struct ChildIter<'a, V> {
    children: &'a Children<V>,
    byte: u8,
    done: bool,
}

impl<'a, V> Iterator for ChildIter<'a, V> {
    type Item = (u8, &'a Node<V>);

    fn next(&mut self) -> Option<Self::Item> {
        while !self.done {
            let b = self.byte;
            if self.byte == 255 {
                self.done = true;
            } else {
                self.byte += 1;
            }
            if let Some(n) = self.children.get(b) {
                return Some((b, n));
            }
        }
        None
    }
}

/// Per-kind node counts, used for space accounting and structural tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeCensus {
    /// Number of Node4 inner nodes.
    pub n4: usize,
    /// Number of Node16 inner nodes.
    pub n16: usize,
    /// Number of Node48 inner nodes.
    pub n48: usize,
    /// Number of Node256 inner nodes.
    pub n256: usize,
    /// Number of leaves (stored key-value pairs living in leaf nodes).
    pub leaves: usize,
    /// Number of values stored *inside* inner nodes (key == node prefix).
    pub inner_values: usize,
}

impl NodeCensus {
    /// Total number of inner nodes.
    pub fn inner_nodes(&self) -> usize {
        self.n4 + self.n16 + self.n48 + self.n256
    }

    /// Estimates the MN-side bytes this tree occupies in the remote
    /// layout (`art_core::layout` node sizes plus 64-byte-aligned leaves),
    /// before allocator size-class rounding. `avg_key_len`/`value_len`
    /// size the leaves; values are per the paper's 64-byte payloads.
    ///
    /// Used to cross-validate the simulator's allocation accounting and
    /// to extrapolate Fig. 6 numbers to other scales.
    pub fn remote_bytes_estimate(&self, avg_key_len: usize, value_len: usize) -> u64 {
        use crate::layout::{InnerNode, LeafNode};
        let inner = self.n4 as u64 * InnerNode::byte_size(NodeKind::Node4) as u64
            + self.n16 as u64 * InnerNode::byte_size(NodeKind::Node16) as u64
            + self.n48 as u64 * InnerNode::byte_size(NodeKind::Node48) as u64
            + self.n256 as u64 * InnerNode::byte_size(NodeKind::Node256) as u64;
        let leaf = LeafNode::encoded_size(avg_key_len, value_len) as u64;
        inner + (self.leaves + self.inner_values) as u64 * leaf
    }
}

/// A local Adaptive Radix Tree mapping byte-string keys to values.
///
/// # Examples
///
/// ```
/// use art_core::LocalArt;
///
/// let mut art = LocalArt::new();
/// assert_eq!(art.insert(b"key".to_vec(), 7), None);
/// assert_eq!(art.insert(b"key".to_vec(), 8), Some(7));
/// assert_eq!(art.get(b"key"), Some(&8));
/// assert_eq!(art.remove(b"key"), Some(8));
/// assert!(art.is_empty());
/// ```
pub struct LocalArt<V> {
    root: Slot<V>,
    len: usize,
}

impl<V> Default for LocalArt<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: fmt::Debug> fmt::Debug for LocalArt<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LocalArt")
            .field("len", &self.len)
            .finish_non_exhaustive()
    }
}

impl<V> LocalArt<V> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        LocalArt { root: None, len: 0 }
    }

    /// Number of stored key-value pairs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Looks up a key.
    pub fn get(&self, key: &[u8]) -> Option<&V> {
        let mut node = self.root.as_deref()?;
        loop {
            match node {
                Node::Leaf(l) => return (l.key == key).then_some(&l.value),
                Node::Inner(inner) => {
                    if !key.starts_with(&inner.prefix) {
                        return None;
                    }
                    if key.len() == inner.prefix.len() {
                        return inner.value.as_ref();
                    }
                    node = inner.children.get(key[inner.prefix.len()])?;
                }
            }
        }
    }

    /// Whether a key is present.
    pub fn contains_key(&self, key: &[u8]) -> bool {
        self.get(key).is_some()
    }

    /// Looks up a key, returning a mutable reference to its value.
    pub fn get_mut(&mut self, key: &[u8]) -> Option<&mut V> {
        let mut node = self.root.as_deref_mut()?;
        loop {
            match node {
                Node::Leaf(l) => return (l.key == key).then_some(&mut l.value),
                Node::Inner(inner) => {
                    if !key.starts_with(&inner.prefix) {
                        return None;
                    }
                    if key.len() == inner.prefix.len() {
                        return inner.value.as_mut();
                    }
                    node = inner.children.get_mut(key[inner.prefix.len()])?;
                }
            }
        }
    }

    /// The smallest stored entry, if any.
    pub fn first(&self) -> Option<(&[u8], &V)> {
        self.iter().next()
    }

    /// The largest stored entry, if any.
    pub fn last(&self) -> Option<(&[u8], &V)> {
        // Walk the rightmost spine directly (iterating everything would be
        // O(n)).
        let mut node = self.root.as_deref()?;
        loop {
            match node {
                Node::Leaf(l) => return Some((l.key.as_slice(), &l.value)),
                Node::Inner(inner) => match inner.children.iter().last() {
                    Some((_, child)) => node = child,
                    None => {
                        let v = inner.value.as_ref()?;
                        return Some((inner.prefix.as_slice(), v));
                    }
                },
            }
        }
    }

    /// All entries whose key starts with `prefix`, in ascending order.
    ///
    /// # Examples
    ///
    /// ```
    /// use art_core::LocalArt;
    ///
    /// let mut art = LocalArt::new();
    /// for w in ["car", "cart", "cat", "dog"] {
    ///     art.insert(w.as_bytes().to_vec(), ());
    /// }
    /// let hits: Vec<&[u8]> = art.prefix_iter(b"ca").map(|(k, _)| k).collect();
    /// assert_eq!(hits, vec![b"car".as_slice(), b"cart", b"cat"]);
    /// ```
    pub fn prefix_iter<'a>(&'a self, prefix: &'a [u8]) -> PrefixIter<'a, V> {
        PrefixIter {
            inner: self.range(prefix, UNBOUNDED),
            prefix,
        }
    }

    /// Inserts a key-value pair, returning the previous value if the key
    /// was already present.
    ///
    /// # Panics
    ///
    /// Panics if `key` exceeds [`crate::key::MAX_KEY_LEN`].
    pub fn insert(&mut self, key: Vec<u8>, value: V) -> Option<V> {
        assert!(key.len() <= crate::key::MAX_KEY_LEN, "key too long");
        let old = match &mut self.root {
            None => {
                self.root = Some(Box::new(Node::Leaf(Leaf { key, value })));
                None
            }
            Some(node) => insert_rec(node, key, value),
        };
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes a key, returning its value if present.
    pub fn remove(&mut self, key: &[u8]) -> Option<V> {
        let out = remove_rec(&mut self.root, key);
        if out.is_some() {
            self.len -= 1;
        }
        out
    }

    /// All entries with `start <= key <= end`, in ascending key order.
    pub fn range<'a>(&'a self, start: &'a [u8], end: &'a [u8]) -> Range<'a, V> {
        let mut stack = Vec::new();
        if let Some(root) = self.root.as_deref() {
            stack.push(Frame::Node(root));
        }
        Range { stack, start, end }
    }

    /// All entries in ascending key order.
    pub fn iter(&self) -> Range<'_, V> {
        const EMPTY: &[u8] = &[];
        // end = [0xFF; MAX] is awkward; instead use an inclusive "all" range
        // by making `end` empty mean "no upper bound".
        let mut stack = Vec::new();
        if let Some(root) = self.root.as_deref() {
            stack.push(Frame::Node(root));
        }
        Range {
            stack,
            start: EMPTY,
            end: UNBOUNDED,
        }
    }

    /// Counts nodes of each kind (structure inspection).
    pub fn census(&self) -> NodeCensus {
        let mut c = NodeCensus::default();
        fn walk<V>(node: &Node<V>, c: &mut NodeCensus) {
            match node {
                Node::Leaf(_) => c.leaves += 1,
                Node::Inner(inner) => {
                    match inner.children.kind() {
                        NodeKind::Node4 => c.n4 += 1,
                        NodeKind::Node16 => c.n16 += 1,
                        NodeKind::Node48 => c.n48 += 1,
                        NodeKind::Node256 => c.n256 += 1,
                    }
                    if inner.value.is_some() {
                        c.inner_values += 1;
                    }
                    for (_, child) in inner.children.iter() {
                        walk(child, c);
                    }
                }
            }
        }
        if let Some(root) = self.root.as_deref() {
            walk(root, &mut c);
        }
        c
    }

    /// Visits every inner node's full prefix (used to seed hash tables and
    /// filters from an existing tree).
    pub fn visit_inner_prefixes<F: FnMut(&[u8])>(&self, mut f: F) {
        fn walk<V, F: FnMut(&[u8])>(node: &Node<V>, f: &mut F) {
            if let Node::Inner(inner) = node {
                f(&inner.prefix);
                for (_, child) in inner.children.iter() {
                    walk(child, f);
                }
            }
        }
        if let Some(root) = self.root.as_deref() {
            walk(root, &mut f);
        }
    }
}

impl<V> FromIterator<(Vec<u8>, V)> for LocalArt<V> {
    fn from_iter<T: IntoIterator<Item = (Vec<u8>, V)>>(iter: T) -> Self {
        let mut art = LocalArt::new();
        art.extend(iter);
        art
    }
}

impl<V> Extend<(Vec<u8>, V)> for LocalArt<V> {
    fn extend<T: IntoIterator<Item = (Vec<u8>, V)>>(&mut self, iter: T) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

fn insert_rec<V>(node: &mut Box<Node<V>>, key: Vec<u8>, value: V) -> Option<V> {
    match node.as_mut() {
        Node::Leaf(l) => {
            if l.key == key {
                return Some(std::mem::replace(&mut l.value, value));
            }
            let cpl = common_prefix_len(&l.key, &key);
            let new_prefix = key[..cpl].to_vec();
            let old = std::mem::replace(
                node,
                Box::new(Node::Inner(Inner {
                    prefix: new_prefix,
                    value: None,
                    children: Children::new(),
                })),
            );
            let Node::Inner(inner) = node.as_mut() else {
                unreachable!()
            };
            let Node::Leaf(old_leaf) = *old else {
                unreachable!()
            };
            if cpl == old_leaf.key.len() {
                // old key terminates exactly at the new inner node
                inner.value = Some(old_leaf.value);
            } else {
                let b = old_leaf.key[cpl];
                inner.children.insert(b, Box::new(Node::Leaf(old_leaf)));
            }
            if cpl == key.len() {
                inner.value = Some(value);
            } else {
                let b = key[cpl];
                inner
                    .children
                    .insert(b, Box::new(Node::Leaf(Leaf { key, value })));
            }
            None
        }
        Node::Inner(inner) => {
            let cpl = common_prefix_len(&inner.prefix, &key);
            if cpl < inner.prefix.len() {
                // Split: introduce a new inner node above this one.
                let new_prefix = key[..cpl].to_vec();
                let old = std::mem::replace(
                    node,
                    Box::new(Node::Inner(Inner {
                        prefix: new_prefix,
                        value: None,
                        children: Children::new(),
                    })),
                );
                let Node::Inner(new_inner) = node.as_mut() else {
                    unreachable!()
                };
                let old_dispatch = match old.as_ref() {
                    Node::Inner(i) => i.prefix[cpl],
                    Node::Leaf(_) => unreachable!("old node is an inner"),
                };
                new_inner.children.insert(old_dispatch, old);
                if cpl == key.len() {
                    new_inner.value = Some(value);
                } else {
                    let b = key[cpl];
                    new_inner
                        .children
                        .insert(b, Box::new(Node::Leaf(Leaf { key, value })));
                }
                None
            } else if key.len() == inner.prefix.len() {
                // Key terminates exactly at this node.
                inner.value.replace(value)
            } else {
                let b = key[inner.prefix.len()];
                if let Some(child) = inner.children.get_mut(b) {
                    insert_rec(child, key, value)
                } else {
                    inner
                        .children
                        .insert(b, Box::new(Node::Leaf(Leaf { key, value })));
                    None
                }
            }
        }
    }
}

fn remove_rec<V>(slot: &mut Slot<V>, key: &[u8]) -> Option<V> {
    match slot.as_deref()? {
        Node::Leaf(l) => {
            if l.key != key {
                return None;
            }
            let boxed = slot.take().expect("slot occupied");
            let Node::Leaf(l) = *boxed else {
                unreachable!()
            };
            Some(l.value)
        }
        Node::Inner(_) => {
            let mut boxed = slot.take().expect("slot occupied");
            let removed = {
                let Node::Inner(inner) = boxed.as_mut() else {
                    unreachable!()
                };
                if !key.starts_with(&inner.prefix) {
                    None
                } else if key.len() == inner.prefix.len() {
                    inner.value.take()
                } else {
                    let b = key[inner.prefix.len()];
                    // Recurse through a temporary slot so child deletion is
                    // uniform.
                    match inner.children.get_mut(b) {
                        None => None,
                        Some(_) => {
                            let mut child_slot = inner.children.remove(b);
                            let r = remove_rec(&mut child_slot, key);
                            if let Some(child) = child_slot {
                                inner.children.insert(b, child);
                            }
                            r
                        }
                    }
                }
            };
            if removed.is_some() {
                let Node::Inner(inner) = boxed.as_mut() else {
                    unreachable!()
                };
                match (inner.children.len(), inner.value.is_some()) {
                    (0, false) => {
                        // Empty inner: delete it entirely.
                        return removed;
                    }
                    (0, true) => {
                        // Collapse to a leaf for the prefix key.
                        let value = inner.value.take().expect("checked");
                        let key = std::mem::take(&mut inner.prefix);
                        *slot = Some(Box::new(Node::Leaf(Leaf { key, value })));
                        return removed;
                    }
                    (1, false) => {
                        // Path compression: splice out this inner node.
                        let child = inner.children.take_only_child();
                        *slot = Some(child);
                        return removed;
                    }
                    _ => {}
                }
            }
            *slot = Some(boxed);
            removed
        }
    }
}

/// Sentinel meaning "no upper bound" for [`LocalArt::iter`].
const UNBOUNDED: &[u8] = &[0xFF; 64];

enum Frame<'a, V> {
    Node(&'a Node<V>),
    Entry(&'a [u8], &'a V),
}

/// Iterator over entries sharing a key prefix, created by
/// [`LocalArt::prefix_iter`].
pub struct PrefixIter<'a, V> {
    inner: Range<'a, V>,
    prefix: &'a [u8],
}

impl<'a, V> Iterator for PrefixIter<'a, V> {
    type Item = (&'a [u8], &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let (k, v) = self.inner.next()?;
        k.starts_with(self.prefix).then_some((k, v))
    }
}

/// Iterator over entries in a key range, in ascending key order.
///
/// Created by [`LocalArt::range`] and [`LocalArt::iter`].
pub struct Range<'a, V> {
    stack: Vec<Frame<'a, V>>,
    start: &'a [u8],
    end: &'a [u8],
}

impl<'a, V> Range<'a, V> {
    fn key_in_range(&self, key: &[u8]) -> bool {
        key >= self.start && (self.end == UNBOUNDED || key <= self.end)
    }

    /// Whether a subtree whose keys all start with `prefix` can contain
    /// in-range keys.
    fn subtree_viable(&self, prefix: &[u8]) -> bool {
        // All keys in the subtree start with `prefix`, so they are >= prefix.
        if self.end != UNBOUNDED && prefix > self.end {
            return false;
        }
        // If prefix < start and start does not begin with prefix, every key
        // in the subtree compares below start.
        if prefix < self.start && !self.start.starts_with(prefix) {
            return false;
        }
        true
    }
}

impl<'a, V> Iterator for Range<'a, V> {
    type Item = (&'a [u8], &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some(frame) = self.stack.pop() {
            match frame {
                Frame::Entry(k, v) => return Some((k, v)),
                Frame::Node(Node::Leaf(l)) => {
                    if self.key_in_range(&l.key) {
                        return Some((l.key.as_slice(), &l.value));
                    }
                }
                Frame::Node(Node::Inner(inner)) => {
                    if !self.subtree_viable(&inner.prefix) {
                        continue;
                    }
                    // Push children in reverse byte order so the smallest
                    // pops first; the inner value (key == prefix) sorts
                    // before all children.
                    let children: Vec<_> = inner.children.iter().collect();
                    for (_, child) in children.into_iter().rev() {
                        self.stack.push(Frame::Node(child));
                    }
                    if let Some(v) = &inner.value {
                        if self.key_in_range(&inner.prefix) {
                            self.stack.push(Frame::Entry(inner.prefix.as_slice(), v));
                        }
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Vec<u8> {
        s.as_bytes().to_vec()
    }

    #[test]
    fn insert_get_basic() {
        let mut art = LocalArt::new();
        assert_eq!(art.insert(k("lyrics"), 1), None);
        assert_eq!(art.insert(k("lyre"), 2), None);
        assert_eq!(art.insert(k("lyceum"), 3), None);
        assert_eq!(art.get(b"lyrics"), Some(&1));
        assert_eq!(art.get(b"lyre"), Some(&2));
        assert_eq!(art.get(b"lyceum"), Some(&3));
        assert_eq!(art.get(b"lyr"), None);
        assert_eq!(art.get(b"lyrical"), None);
        assert_eq!(art.len(), 3);
    }

    #[test]
    fn overwrite_returns_old() {
        let mut art = LocalArt::new();
        art.insert(k("a"), 1);
        assert_eq!(art.insert(k("a"), 2), Some(1));
        assert_eq!(art.len(), 1);
    }

    #[test]
    fn key_that_is_prefix_of_another() {
        let mut art = LocalArt::new();
        art.insert(k("lyr"), 10);
        art.insert(k("lyrics"), 20);
        assert_eq!(art.get(b"lyr"), Some(&10));
        assert_eq!(art.get(b"lyrics"), Some(&20));
        // and the other insertion order
        let mut art2 = LocalArt::new();
        art2.insert(k("lyrics"), 20);
        art2.insert(k("lyr"), 10);
        assert_eq!(art2.get(b"lyr"), Some(&10));
        assert_eq!(art2.get(b"lyrics"), Some(&20));
    }

    #[test]
    fn empty_key_is_storable() {
        let mut art = LocalArt::new();
        art.insert(Vec::new(), 0);
        art.insert(k("x"), 1);
        assert_eq!(art.get(b""), Some(&0));
        assert_eq!(art.remove(b""), Some(0));
        assert_eq!(art.get(b"x"), Some(&1));
    }

    #[test]
    fn node_type_growth() {
        let mut art = LocalArt::new();
        for b in 0..=255u8 {
            art.insert(vec![b, b], b as u32);
        }
        let census = art.census();
        assert_eq!(census.n256, 1);
        assert_eq!(census.leaves, 256);
        for b in 0..=255u8 {
            assert_eq!(art.get(&[b, b]), Some(&(b as u32)));
        }
    }

    #[test]
    fn node_type_shrink_on_remove() {
        let mut art = LocalArt::new();
        for b in 0..=255u8 {
            art.insert(vec![b, b], b as u32);
        }
        for b in 5..=255u8 {
            assert_eq!(art.remove(&[b, b]), Some(b as u32));
        }
        let census = art.census();
        assert_eq!(census.n4 + census.n16, 1, "should have shrunk: {census:?}");
        for b in 0..5u8 {
            assert_eq!(art.get(&[b, b]), Some(&(b as u32)));
        }
    }

    #[test]
    fn path_compression_splices_single_child_nodes() {
        let mut art = LocalArt::new();
        art.insert(k("compress"), 1);
        art.insert(k("compute"), 2);
        art.insert(k("companion"), 3);
        // root inner prefix should be "comp"
        let census = art.census();
        assert_eq!(census.inner_nodes(), 1);
        art.remove(b"companion");
        art.remove(b"compute");
        // single leaf should remain; inner collapsed
        assert_eq!(art.census().inner_nodes(), 0);
        assert_eq!(art.get(b"compress"), Some(&1));
    }

    #[test]
    fn remove_restores_exact_state() {
        let mut art = LocalArt::new();
        art.insert(k("ab"), 1);
        art.insert(k("abc"), 2);
        art.insert(k("abd"), 3);
        assert_eq!(art.remove(b"ab"), Some(1));
        assert_eq!(art.remove(b"ab"), None);
        assert_eq!(art.get(b"abc"), Some(&2));
        assert_eq!(art.get(b"abd"), Some(&3));
        assert_eq!(art.len(), 2);
    }

    #[test]
    fn remove_missing_returns_none() {
        let mut art = LocalArt::new();
        art.insert(k("hello"), 1);
        assert_eq!(art.remove(b"help"), None);
        assert_eq!(art.remove(b"hell"), None);
        assert_eq!(art.remove(b"helloo"), None);
        assert_eq!(art.len(), 1);
    }

    #[test]
    fn range_scan_ordered_inclusive() {
        let mut art = LocalArt::new();
        for w in ["apple", "banana", "cherry", "date", "elderberry"] {
            art.insert(k(w), w.len());
        }
        let hits: Vec<&[u8]> = art.range(b"banana", b"date").map(|(k, _)| k).collect();
        assert_eq!(hits, vec![b"banana".as_slice(), b"cherry", b"date"]);
    }

    #[test]
    fn range_scan_includes_inner_values_in_order() {
        let mut art = LocalArt::new();
        art.insert(k("a"), 1);
        art.insert(k("ab"), 2);
        art.insert(k("abc"), 3);
        art.insert(k("b"), 4);
        let all: Vec<(&[u8], &i32)> = art.iter().collect();
        let keys: Vec<&[u8]> = all.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![b"a".as_slice(), b"ab", b"abc", b"b"]);
    }

    #[test]
    fn range_prunes_but_does_not_miss() {
        let mut art = LocalArt::new();
        for i in 0..1000u64 {
            art.insert(crate::key::u64_key(i * 7).to_vec(), i);
        }
        let start = crate::key::u64_key(100);
        let end = crate::key::u64_key(2000);
        let hits: Vec<u64> = art
            .range(&start, &end)
            .map(|(k, _)| crate::key::key_u64(k).unwrap())
            .collect();
        let expected: Vec<u64> = (0..1000)
            .map(|i| i * 7)
            .filter(|v| (100..=2000).contains(v))
            .collect();
        assert_eq!(hits, expected);
    }

    #[test]
    fn iter_yields_everything_sorted() {
        let mut art = LocalArt::new();
        let words = ["zebra", "yak", "xerus", "wolf", "vole", "urchin"];
        for w in words {
            art.insert(k(w), ());
        }
        let got: Vec<Vec<u8>> = art.iter().map(|(k, _)| k.to_vec()).collect();
        let mut want: Vec<Vec<u8>> = words.iter().map(|w| k(w)).collect();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn census_counts_inner_values() {
        let mut art = LocalArt::new();
        art.insert(k("pre"), 1);
        art.insert(k("prefix"), 2);
        art.insert(k("present"), 3);
        let c = art.census();
        assert_eq!(c.inner_values, 1);
        assert_eq!(c.leaves, 2);
    }

    #[test]
    fn visit_inner_prefixes_sees_split_points() {
        let mut art = LocalArt::new();
        art.insert(k("lyrics"), 1);
        art.insert(k("lyre"), 2);
        let mut prefixes = Vec::new();
        art.visit_inner_prefixes(|p| prefixes.push(p.to_vec()));
        assert_eq!(prefixes, vec![k("lyr")]);
    }

    #[test]
    fn from_iterator_and_extend() {
        let art: LocalArt<u32> = vec![(k("a"), 1), (k("b"), 2)].into_iter().collect();
        assert_eq!(art.len(), 2);
        let mut art2 = LocalArt::new();
        art2.extend(vec![(k("c"), 3)]);
        assert_eq!(art2.get(b"c"), Some(&3));
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut art = LocalArt::new();
        art.insert(k("x"), 1);
        art.insert(k("xy"), 2); // x becomes an inner value
        *art.get_mut(b"x").unwrap() += 10;
        *art.get_mut(b"xy").unwrap() += 10;
        assert_eq!(art.get(b"x"), Some(&11));
        assert_eq!(art.get(b"xy"), Some(&12));
        assert!(art.get_mut(b"zz").is_none());
    }

    #[test]
    fn first_and_last() {
        let mut art = LocalArt::new();
        assert!(art.first().is_none() && art.last().is_none());
        for w in ["m", "a", "z", "aa"] {
            art.insert(k(w), w.len());
        }
        assert_eq!(art.first().unwrap().0, b"a");
        assert_eq!(art.last().unwrap().0, b"z");
        art.remove(b"z");
        assert_eq!(art.last().unwrap().0, b"m");
    }

    #[test]
    fn last_when_rightmost_terminates_at_inner() {
        let mut art = LocalArt::new();
        art.insert(k("ab"), 1);
        art.insert(k("abc"), 2);
        art.remove(b"abc");
        assert_eq!(art.last().unwrap().0, b"ab");
    }

    #[test]
    fn prefix_iter_bounds() {
        let mut art = LocalArt::new();
        for w in ["ca", "car", "cart", "cat", "cb", "d"] {
            art.insert(k(w), ());
        }
        let hits: Vec<&[u8]> = art.prefix_iter(b"ca").map(|(key, _)| key).collect();
        assert_eq!(hits, vec![b"ca".as_slice(), b"car", b"cart", b"cat"]);
        assert_eq!(art.prefix_iter(b"zz").count(), 0);
        assert_eq!(art.prefix_iter(b"").count(), 6);
    }

    #[test]
    fn dense_u64_workout_against_btreemap() {
        use std::collections::BTreeMap;
        let mut art = LocalArt::new();
        let mut oracle = BTreeMap::new();
        let mut x: u64 = 0x9E3779B97F4A7C15;
        for i in 0..5000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = crate::key::u64_key(x % 2500).to_vec();
            art.insert(key.clone(), i);
            oracle.insert(key, i);
            if i % 3 == 0 {
                let victim = crate::key::u64_key(x % 1000).to_vec();
                assert_eq!(art.remove(&victim), oracle.remove(&victim), "at step {i}");
            }
        }
        assert_eq!(art.len(), oracle.len());
        let got: Vec<_> = art.iter().map(|(k, v)| (k.to_vec(), *v)).collect();
        let want: Vec<_> = oracle.iter().map(|(k, v)| (k.clone(), *v)).collect();
        assert_eq!(got, want);
    }
}
