//! Hash functions shared across the index stack.
//!
//! Sphinx hashes *inner-node full prefixes* in three places with three
//! different widths:
//!
//! * a 64-bit hash ([`fnv1a64`]) drives consistent-hash placement and the
//!   Inner Node Hash Table bucket choice;
//! * a 42-bit **full prefix hash** ([`prefix_hash42`]) lives in the inner
//!   node header (Fig. 3) and lets clients reject unmatched nodes;
//! * a 12-bit fingerprint **fp₂** ([`fp12`]) lives in hash entries and in
//!   the succinct filter cache.
//!
//! The fingerprints are carved from independent regions of a single
//! avalanche-mixed 64-bit hash, so a collision in one does not imply a
//! collision in another.

/// FNV-1a 64-bit hash.
///
/// # Examples
///
/// ```
/// use art_core::hash::fnv1a64;
///
/// assert_ne!(fnv1a64(b"lyr"), fnv1a64(b"lyre"));
/// assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
/// ```
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Finalizing mixer (Murmur3/SplitMix style) applied on top of FNV to get
/// good high bits.
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^ (x >> 33)
}

/// Full 64-bit mixed hash of a prefix — the "primary" hash.
pub fn prefix_hash64(prefix: &[u8]) -> u64 {
    mix64(fnv1a64(prefix))
}

/// The 42-bit full-prefix hash stored in inner-node headers (Fig. 3).
pub fn prefix_hash42(prefix: &[u8]) -> u64 {
    prefix_hash64(prefix) & ((1 << 42) - 1)
}

/// The 12-bit fingerprint fp₂ stored in hash entries and the succinct
/// filter cache. Never zero (zero is reserved for "empty slot").
pub fn fp12(prefix: &[u8]) -> u16 {
    let fp = ((prefix_hash64(prefix) >> 42) & 0xFFF) as u16;
    if fp == 0 {
        1
    } else {
        fp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn fnv_known_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn fp12_in_range_and_never_zero() {
        for i in 0..5000u32 {
            let fp = fp12(&i.to_le_bytes());
            assert!((1..4096).contains(&fp));
        }
    }

    #[test]
    fn hash42_fits_42_bits() {
        for i in 0..1000u32 {
            assert!(prefix_hash42(&i.to_le_bytes()) < (1 << 42));
        }
    }

    #[test]
    fn hashes_are_well_distributed() {
        let mut set = HashSet::new();
        for i in 0..10_000u32 {
            set.insert(prefix_hash64(&i.to_le_bytes()));
        }
        assert_eq!(
            set.len(),
            10_000,
            "64-bit hash should have no collisions here"
        );
    }

    #[test]
    fn fp_and_hash42_are_independent_regions() {
        // Find no pair where both collide among distinct short inputs (a
        // smoke test of the double-collision being "extremely rare").
        let n = 2000u32;
        let items: Vec<(u64, u16)> = (0..n)
            .map(|i| (prefix_hash42(&i.to_le_bytes()), fp12(&i.to_le_bytes())))
            .collect();
        for i in 0..items.len() {
            for j in (i + 1)..items.len() {
                assert!(
                    !(items[i].0 == items[j].0 && items[i].1 == items[j].1),
                    "double collision between {i} and {j}"
                );
            }
        }
    }
}
