//! # art-core — adaptive radix tree building blocks
//!
//! Two halves:
//!
//! 1. [`LocalArt`]: a complete in-memory Adaptive Radix Tree (Leis et al.,
//!    ICDE'13) with Node4/16/48/256 adaptive inner nodes, path compression,
//!    insert/get/remove/range-scan. Used as the correctness oracle in tests
//!    and as the structural model for the remote trees.
//! 2. [`layout`]: the serialized on-memory-node formats of Fig. 3 of the
//!    Sphinx paper — inner-node headers with status/type/prefix-hash,
//!    8-byte atomic child slots, and checksum-protected leaf nodes. These
//!    encodings are *pure* (bytes in, bytes out) and shared between the
//!    Sphinx index and the SMART/ART baselines, which move the bytes over
//!    the `dm-sim` substrate.
//!
//! One deliberate simplification relative to textbook ART: inner nodes here
//! record their **full prefix** (all bytes from the root) rather than a
//! compressed fragment plus depth. The structure and adaptivity are
//! identical, and the full prefix is exactly the quantity Sphinx's Inner
//! Node Hash Table and Succinct Filter Cache key on.
//!
//! ## Example
//!
//! ```
//! use art_core::LocalArt;
//!
//! let mut art = LocalArt::new();
//! art.insert(b"lyrics".to_vec(), 1);
//! art.insert(b"lyre".to_vec(), 2);
//! assert_eq!(art.get(b"lyrics"), Some(&1));
//! let hits: Vec<_> = art.range(b"lyr", b"lyrz").collect();
//! assert_eq!(hits.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hash;
pub mod key;
pub mod layout;
mod local;

pub use local::{LocalArt, NodeCensus, NodeKind, PrefixIter, Range};
