//! Key utilities for byte-string keys.
//!
//! All indexes in this workspace operate on raw byte keys compared
//! lexicographically. Fixed-width integer keys must be big-endian encoded
//! so that byte order equals numeric order ([`u64_key`]).

/// Length of the longest common prefix of two byte strings.
///
/// # Examples
///
/// ```
/// use art_core::key::common_prefix_len;
///
/// assert_eq!(common_prefix_len(b"lyrics", b"lyre"), 3);
/// assert_eq!(common_prefix_len(b"abc", b"abc"), 3);
/// assert_eq!(common_prefix_len(b"", b"xyz"), 0);
/// ```
pub fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

/// Encodes a `u64` as an 8-byte big-endian key so that lexicographic byte
/// order matches numeric order.
///
/// # Examples
///
/// ```
/// use art_core::key::u64_key;
///
/// assert!(u64_key(1) < u64_key(256));
/// assert_eq!(u64_key(0x0102030405060708).to_vec(),
///            vec![1, 2, 3, 4, 5, 6, 7, 8]);
/// ```
pub fn u64_key(v: u64) -> [u8; 8] {
    v.to_be_bytes()
}

/// Decodes a key produced by [`u64_key`].
///
/// Returns `None` if `key` is not exactly 8 bytes.
pub fn key_u64(key: &[u8]) -> Option<u64> {
    key.try_into().ok().map(u64::from_be_bytes)
}

/// Maximum supported key length in bytes.
///
/// The paper's datasets use 8-byte integers and 2–32-byte emails; 4 KiB is
/// far beyond anything an ART-on-DM deployment would index, and it keeps
/// the `prefix_len` field of the node header comfortably in 16 bits.
pub const MAX_KEY_LEN: usize = 4096;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_prefix_is_symmetric() {
        assert_eq!(common_prefix_len(b"foo", b"foobar"), 3);
        assert_eq!(common_prefix_len(b"foobar", b"foo"), 3);
    }

    #[test]
    fn u64_key_roundtrip_and_order() {
        for v in [0u64, 1, 255, 256, u64::MAX, 0xDEAD_BEEF] {
            assert_eq!(key_u64(&u64_key(v)), Some(v));
        }
        let mut keys: Vec<[u8; 8]> = [5u64, 1, 1000, 42].iter().map(|&v| u64_key(v)).collect();
        keys.sort();
        let nums: Vec<u64> = keys.iter().map(|k| key_u64(k).unwrap()).collect();
        assert_eq!(nums, vec![1, 5, 42, 1000]);
    }

    #[test]
    fn key_u64_rejects_wrong_width() {
        assert_eq!(key_u64(b"short"), None);
        assert_eq!(key_u64(b"muchtoolong"), None);
    }
}
