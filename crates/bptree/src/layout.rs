//! On-MN node layout of the B-link tree.
//!
//! ```text
//! node (1024 bytes):
//!   word 0      lock(1) | level(7) | count(16) | version(32) | rsvd(8)
//!   word 1      right-sibling pointer (raw RemotePtr, 0 = none)
//!   word 2      high key (u64::MAX = +∞)
//!   24..1016    entries
//!   1016..1024  trailing version (seqlock tail check)
//!
//! internal entry (16 B): separator key | child raw pointer
//!   child i covers [sep_i, sep_{i+1}) — sep_0 is 0 for the leftmost path
//! leaf entry (72 B): key | 64-byte value
//! ```

use dm_sim::RemotePtr;

/// Node size in bytes.
pub const NODE_BYTES: usize = 1024;
/// Fixed value payload per leaf entry.
pub const VALUE_LEN: usize = 64;
/// Byte offset of the entry area.
pub const ENTRIES_OFFSET: usize = 24;
/// Byte offset of the trailing version word.
pub const TAIL_OFFSET: usize = NODE_BYTES - 8;
/// Max entries in an internal node.
pub const INTERNAL_CAP: usize = (TAIL_OFFSET - ENTRIES_OFFSET) / 16; // 62
/// Max entries in a leaf.
pub const LEAF_CAP: usize = (TAIL_OFFSET - ENTRIES_OFFSET) / (8 + VALUE_LEN); // 13

/// Decoded node header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeHeader {
    /// Write lock bit.
    pub locked: bool,
    /// Tree level: 0 = leaf.
    pub level: u8,
    /// Live entry count.
    pub count: u16,
    /// Version, bumped by every write (seqlock).
    pub version: u32,
}

impl NodeHeader {
    /// Encodes the header word.
    pub fn encode(&self) -> u64 {
        (self.locked as u64)
            | ((self.level as u64 & 0x7F) << 1)
            | ((self.count as u64) << 8)
            | ((self.version as u64) << 24)
    }

    /// Decodes a header word.
    pub fn decode(word: u64) -> NodeHeader {
        NodeHeader {
            locked: word & 1 != 0,
            level: ((word >> 1) & 0x7F) as u8,
            count: ((word >> 8) & 0xFFFF) as u16,
            version: ((word >> 24) & 0xFFFF_FFFF) as u32,
        }
    }
}

/// A decoded B-link node (leaf or internal, by `header.level`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BpNode {
    /// Header fields.
    pub header: NodeHeader,
    /// Right sibling (null = rightmost).
    pub right: RemotePtr,
    /// Upper bound (exclusive) of keys in this node; `u64::MAX` = +∞.
    pub high_key: u64,
    /// Internal: `(separator, child)`; leaves keep `children` empty.
    pub seps: Vec<(u64, RemotePtr)>,
    /// Leaf: `(key, value)`; internal nodes keep this empty.
    pub entries: Vec<(u64, [u8; VALUE_LEN])>,
}

impl BpNode {
    /// A fresh empty leaf covering everything up to `high_key`.
    pub fn new_leaf(high_key: u64) -> Self {
        BpNode {
            header: NodeHeader {
                locked: false,
                level: 0,
                count: 0,
                version: 0,
            },
            right: RemotePtr::NULL,
            high_key,
            seps: Vec::new(),
            entries: Vec::new(),
        }
    }

    /// A fresh internal node at `level` (≥1).
    pub fn new_internal(level: u8, high_key: u64) -> Self {
        BpNode {
            header: NodeHeader {
                locked: false,
                level,
                count: 0,
                version: 0,
            },
            right: RemotePtr::NULL,
            high_key,
            seps: Vec::new(),
            entries: Vec::new(),
        }
    }

    /// Whether this is a leaf.
    pub fn is_leaf(&self) -> bool {
        self.header.level == 0
    }

    /// Whether the node is at capacity.
    pub fn is_full(&self) -> bool {
        if self.is_leaf() {
            self.entries.len() >= LEAF_CAP
        } else {
            self.seps.len() >= INTERNAL_CAP
        }
    }

    /// Child covering `key` (internal nodes): the last separator ≤ key.
    ///
    /// # Panics
    ///
    /// Panics on a leaf or an empty internal node.
    pub fn child_for(&self, key: u64) -> RemotePtr {
        assert!(!self.is_leaf() && !self.seps.is_empty());
        match self.seps.binary_search_by_key(&key, |(s, _)| *s) {
            Ok(i) => self.seps[i].1,
            Err(0) => self.seps[0].1, // key below first separator: leftmost
            Err(i) => self.seps[i - 1].1,
        }
    }

    /// Serializes to the fixed 1024-byte on-MN image.
    ///
    /// # Panics
    ///
    /// Panics if the node exceeds capacity.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![0u8; NODE_BYTES];
        let mut h = self.header;
        h.count = if self.is_leaf() {
            self.entries.len()
        } else {
            self.seps.len()
        } as u16;
        out[0..8].copy_from_slice(&h.encode().to_le_bytes());
        out[8..16].copy_from_slice(&self.right.to_raw().to_le_bytes());
        out[16..24].copy_from_slice(&self.high_key.to_le_bytes());
        if self.is_leaf() {
            assert!(self.entries.len() <= LEAF_CAP, "leaf overflow");
            for (i, (k, v)) in self.entries.iter().enumerate() {
                let off = ENTRIES_OFFSET + i * (8 + VALUE_LEN);
                out[off..off + 8].copy_from_slice(&k.to_le_bytes());
                out[off + 8..off + 8 + VALUE_LEN].copy_from_slice(v);
            }
        } else {
            assert!(self.seps.len() <= INTERNAL_CAP, "internal overflow");
            for (i, (s, c)) in self.seps.iter().enumerate() {
                let off = ENTRIES_OFFSET + i * 16;
                out[off..off + 8].copy_from_slice(&s.to_le_bytes());
                out[off + 8..off + 16].copy_from_slice(&c.to_raw().to_le_bytes());
            }
        }
        out[TAIL_OFFSET..].copy_from_slice(&(h.version as u64).to_le_bytes());
        out
    }

    /// Decodes a node image; `None` on a torn read (header/tail version
    /// mismatch or locked snapshot — the seqlock check).
    pub fn decode(bytes: &[u8]) -> Option<BpNode> {
        if bytes.len() < NODE_BYTES {
            return None;
        }
        let word = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().expect("8 bytes"));
        let header = NodeHeader::decode(word(0));
        let tail = word(TAIL_OFFSET) as u32;
        if header.locked || header.version != tail {
            return None;
        }
        let right = RemotePtr::from_raw(word(8));
        let high_key = word(16);
        let mut node = if header.level == 0 {
            let mut n = BpNode::new_leaf(high_key);
            for i in 0..header.count as usize {
                let off = ENTRIES_OFFSET + i * (8 + VALUE_LEN);
                let k = word(off);
                let mut v = [0u8; VALUE_LEN];
                v.copy_from_slice(&bytes[off + 8..off + 8 + VALUE_LEN]);
                n.entries.push((k, v));
            }
            n
        } else {
            let mut n = BpNode::new_internal(header.level, high_key);
            for i in 0..header.count as usize {
                let off = ENTRIES_OFFSET + i * 16;
                n.seps.push((word(off), RemotePtr::from_raw(word(off + 8))));
            }
            n
        };
        node.header = header;
        node.right = right;
        Some(node)
    }

    /// Pads/truncates an arbitrary byte slice into a leaf value.
    pub fn value_from(bytes: &[u8]) -> [u8; VALUE_LEN] {
        let mut v = [0u8; VALUE_LEN];
        let n = bytes.len().min(VALUE_LEN);
        v[..n].copy_from_slice(&bytes[..n]);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities() {
        assert_eq!(INTERNAL_CAP, 62);
        assert_eq!(LEAF_CAP, 13);
    }

    #[test]
    fn header_roundtrip() {
        let h = NodeHeader {
            locked: true,
            level: 3,
            count: 61,
            version: 0xDEAD_BEEF,
        };
        assert_eq!(NodeHeader::decode(h.encode()), h);
    }

    #[test]
    fn leaf_roundtrip() {
        let mut n = BpNode::new_leaf(1000);
        for i in 0..LEAF_CAP as u64 {
            n.entries
                .push((i * 10, BpNode::value_from(&i.to_le_bytes())));
        }
        n.right = RemotePtr::new(1, 2048);
        let decoded = BpNode::decode(&n.encode()).expect("consistent");
        assert_eq!(decoded.entries.len(), LEAF_CAP);
        assert_eq!(decoded.right, n.right);
        assert_eq!(decoded.high_key, 1000);
        assert_eq!(decoded.entries[3].0, 30);
    }

    #[test]
    fn internal_roundtrip_and_routing() {
        let mut n = BpNode::new_internal(1, u64::MAX);
        for i in 0..5u64 {
            n.seps.push((i * 100, RemotePtr::new(0, 1024 * (i + 1))));
        }
        let d = BpNode::decode(&n.encode()).expect("consistent");
        assert_eq!(d.child_for(0), RemotePtr::new(0, 1024));
        assert_eq!(d.child_for(99), RemotePtr::new(0, 1024));
        assert_eq!(d.child_for(100), RemotePtr::new(0, 2048));
        assert_eq!(d.child_for(101), RemotePtr::new(0, 2048));
        assert_eq!(d.child_for(10_000), RemotePtr::new(0, 5 * 1024));
    }

    #[test]
    fn torn_reads_rejected() {
        let n = BpNode::new_leaf(u64::MAX);
        let mut bytes = n.encode();
        // Tail version mismatch.
        bytes[TAIL_OFFSET] ^= 1;
        assert!(BpNode::decode(&bytes).is_none());
        // Locked snapshot.
        let mut locked = n.clone();
        locked.header.locked = true;
        assert!(BpNode::decode(&locked.encode()).is_none());
    }

    #[test]
    fn value_from_pads_and_truncates() {
        assert_eq!(&BpNode::value_from(b"ab")[..2], b"ab");
        assert_eq!(BpNode::value_from(b"ab")[2], 0);
        let long = vec![7u8; 100];
        assert_eq!(BpNode::value_from(&long), [7u8; VALUE_LEN]);
    }
}
