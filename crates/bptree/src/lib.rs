//! # bptree — a Sherman-lite B+-tree on disaggregated memory
//!
//! The index family the Sphinx paper's introduction contrasts with:
//! B+-trees (Sherman, USENIX SIGMOD'22) are excellent on DM for
//! **fixed-width** keys — shallow trees (fanout 62), linked leaves for
//! cheap scans, cache-friendly internal nodes — but cannot represent
//! variable-length keys without padding every slot to the maximum, which
//! is exactly the gap ART-family indexes (and Sphinx) fill.
//!
//! This crate exists for the `btree_compare` extension experiment: on the
//! `u64` dataset the B+-tree is a serious competitor; on the `email`
//! dataset it simply does not apply.
//!
//! Design (a deliberately simplified Sherman):
//!
//! * **B-link structure** (Lehman–Yao): every node carries a *high key*
//!   and a right-sibling pointer, so readers racing a split chase right
//!   links instead of taking locks, and stale compute-side caches of
//!   internal nodes can only cause extra right-hops, never wrong answers
//!   (splits move keys right, never left).
//! * **Seqlock node reads**: a whole-node read is validated by comparing
//!   the version embedded in the header with a trailing version word
//!   (plus a lock-bit check) fetched in the same doorbell batch; torn
//!   reads retry.
//! * **Node-grained leaf locks** for writes; **one tree-wide SMO lock**
//!   serializes splits (structure modifications are rare after load; this
//!   trades peak insert scalability for simplicity, and is documented in
//!   the experiment notes).
//! * **Compute-side internal-node cache** with a byte budget (Sherman's
//!   index cache), safe without validation thanks to the B-link property.
//!
//! ## Example
//!
//! ```
//! use dm_sim::{ClusterConfig, DmCluster};
//! use bptree::BpTreeIndex;
//!
//! # fn main() -> Result<(), bptree::BpTreeError> {
//! let cluster = DmCluster::new(ClusterConfig::default());
//! let index = BpTreeIndex::create(&cluster, 64 << 10)?;
//! let mut client = index.client(0)?;
//! client.insert(42, b"answer")?;
//! // Values are fixed 64-byte slots (the point of the comparison):
//! let value = client.get(42)?.expect("present");
//! assert_eq!(&value[..6], b"answer");
//! assert_eq!(value.len(), bptree::VALUE_LEN);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod layout;
mod ops;

pub use layout::{BpNode, NodeHeader, VALUE_LEN};
pub use ops::{BpTreeClient, BpTreeError, BpTreeIndex, BpTreeStats};
