//! Index handle, client, and the B-link operation protocols.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use dm_sim::{
    DmClient, DmCluster, DmError, DoorbellBatch, RemotePtr, RetryPolicy, SqeToken, Transport, Verb,
    VerbResult,
};
use node_engine::{EngineError, OpState, PipelineStats, StepOutcome};
use obs::{OpKind, OpTrace, Tracer};

use crate::layout::{BpNode, NodeHeader, NODE_BYTES, TAIL_OFFSET};

/// Errors from B+-tree operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BpTreeError {
    /// Substrate error.
    Dm(DmError),
    /// Retry budget exhausted.
    RetriesExhausted {
        /// Operation that gave up.
        op: &'static str,
    },
}

impl fmt::Display for BpTreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BpTreeError::Dm(e) => write!(f, "substrate error: {e}"),
            BpTreeError::RetriesExhausted { op } => write!(f, "{op} exhausted its retry budget"),
        }
    }
}

impl Error for BpTreeError {}

impl From<DmError> for BpTreeError {
    fn from(e: DmError) -> Self {
        BpTreeError::Dm(e)
    }
}

impl From<EngineError> for BpTreeError {
    fn from(e: EngineError) -> Self {
        match e {
            EngineError::Dm(e) => BpTreeError::Dm(e),
            EngineError::RetriesExhausted { op } => BpTreeError::RetriesExhausted { op },
            _ => BpTreeError::RetriesExhausted {
                op: "pipelined get",
            },
        }
    }
}

/// Byte-budgeted cache of internal nodes (Sherman's index cache). Safe
/// without validation: a stale internal node can only misdirect rightward
/// misses, which the B-link right-chase repairs.
#[derive(Debug)]
struct InternalCache {
    budget: usize,
    nodes: HashMap<u64, (BpNode, u64)>, // raw ptr -> (node, generation)
    gen: u64,
}

impl InternalCache {
    fn new(budget: usize) -> Self {
        InternalCache {
            budget,
            nodes: HashMap::new(),
            gen: 0,
        }
    }

    fn get(&mut self, ptr: RemotePtr) -> Option<BpNode> {
        self.gen += 1;
        let gen = self.gen;
        self.nodes.get_mut(&ptr.to_raw()).map(|(n, g)| {
            *g = gen;
            n.clone()
        })
    }

    fn put(&mut self, ptr: RemotePtr, node: BpNode) {
        if node.is_leaf() {
            return;
        }
        self.gen += 1;
        self.nodes.insert(ptr.to_raw(), (node, self.gen));
        while self.nodes.len() * NODE_BYTES > self.budget && !self.nodes.is_empty() {
            let victim = *self
                .nodes
                .iter()
                .min_by_key(|(_, (_, g))| *g)
                .map(|(k, _)| k)
                .expect("non-empty");
            self.nodes.remove(&victim);
        }
    }

    fn invalidate(&mut self, ptr: RemotePtr) {
        self.nodes.remove(&ptr.to_raw());
    }

    fn clear(&mut self) {
        self.nodes.clear();
    }
}

/// A Sherman-lite B-link tree on a [`DmCluster`]. Fixed-width `u64` keys,
/// 64-byte values.
#[derive(Clone)]
pub struct BpTreeIndex {
    cluster: DmCluster,
    meta: RemotePtr,
    caches: Arc<Mutex<HashMap<u16, Arc<Mutex<InternalCache>>>>>,
    cache_bytes: usize,
}

impl fmt::Debug for BpTreeIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BpTreeIndex")
            .field("meta", &self.meta)
            .finish_non_exhaustive()
    }
}

impl BpTreeIndex {
    /// Builds the tree: a meta block (SMO lock, root pointer, height) and
    /// one empty root leaf. `cache_bytes` is the per-CN internal-node
    /// cache budget.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors.
    pub fn create(cluster: &DmCluster, cache_bytes: usize) -> Result<Self, BpTreeError> {
        let mut boot = cluster.client(0);
        let meta = boot.alloc(0, 24)?;
        let root = BpNode::new_leaf(u64::MAX);
        let root_ptr = boot.alloc(cluster.place(1), NODE_BYTES)?;
        boot.write(root_ptr, &root.encode())?;
        boot.write_u64(meta.checked_add(8)?, root_ptr.to_raw())?;
        boot.write_u64(meta.checked_add(16)?, 1)?; // height
        Ok(BpTreeIndex {
            cluster: cluster.clone(),
            meta,
            caches: Arc::new(Mutex::new(HashMap::new())),
            cache_bytes,
        })
    }

    /// Creates a worker client on compute node `cn_id` (workers of one CN
    /// share its internal-node cache).
    ///
    /// # Errors
    ///
    /// Propagates substrate errors.
    ///
    /// # Panics
    ///
    /// Panics if `cn_id` is out of range for the cluster.
    pub fn client(&self, cn_id: u16) -> Result<BpTreeClient, BpTreeError> {
        let cache = self
            .caches
            .lock()
            .entry(cn_id)
            .or_insert_with(|| Arc::new(Mutex::new(InternalCache::new(self.cache_bytes))))
            .clone();
        #[cfg_attr(not(feature = "telemetry"), allow(unused_mut))]
        let mut client = BpTreeClient {
            dm: self.cluster.client(cn_id),
            meta: self.meta,
            cache,
            root_hint: None,
            retry: RetryPolicy::default(),
            pipeline: PipelineStats::default(),
            tracer: Tracer::new(),
            trace_scratch: Vec::new(),
        };
        #[cfg(feature = "telemetry")]
        client.dm.trace_set_enabled(client.tracer.is_active());
        Ok(client)
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &DmCluster {
        &self.cluster
    }

    /// Total MN-side bytes (all allocations belong to the tree).
    pub fn memory_bytes(&self) -> u64 {
        self.cluster.total_live_bytes()
    }

    /// Structural statistics via a full leaf-chain walk (diagnostics).
    ///
    /// # Errors
    ///
    /// Propagates substrate errors.
    pub fn stats(&self) -> Result<BpTreeStats, BpTreeError> {
        let mut client = self.client(0)?;
        let height = client.dm.read_u64(self.meta.checked_add(16)?)?;
        // Walk to the leftmost leaf, then along the chain.
        let (_, mut leaf) = client.descend(0)?;
        let mut leaves = 1usize;
        let mut entries = leaf.entries.len();
        while !leaf.right.is_null() {
            leaf = client.read_node(leaf.right)?;
            leaves += 1;
            entries += leaf.entries.len();
        }
        Ok(BpTreeStats {
            height: height as usize,
            leaves,
            entries,
            leaf_occupancy: entries as f64 / (leaves * crate::layout::LEAF_CAP) as f64,
        })
    }
}

/// Structural statistics from [`BpTreeIndex::stats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BpTreeStats {
    /// Tree height in levels (1 = a single leaf).
    pub height: usize,
    /// Leaf count.
    pub leaves: usize,
    /// Live entries.
    pub entries: usize,
    /// Entries / leaf capacity.
    pub leaf_occupancy: f64,
}

/// A per-worker B+-tree client.
#[derive(Debug)]
pub struct BpTreeClient {
    dm: DmClient,
    meta: RemotePtr,
    cache: Arc<Mutex<InternalCache>>,
    /// Cached root pointer; stale roots are safe (B-link right-chase).
    root_hint: Option<RemotePtr>,
    /// Shared bounded-retry budget (see [`dm_sim::RetryPolicy`]).
    retry: RetryPolicy,
    /// Cumulative pipelined-execution counters (see
    /// [`BpTreeClient::get_many_pipelined`]).
    pipeline: PipelineStats,
    /// Causal-trace sampler for the pipelined lookup path (inert without
    /// the `telemetry` feature).
    tracer: Tracer,
    /// Reusable buffer for transport-event windows.
    #[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
    trace_scratch: Vec<dm_sim::trace::TransportEvent>,
}

impl BpTreeClient {
    /// Network statistics.
    pub fn net_stats(&self) -> dm_sim::ClientStats {
        self.dm.stats()
    }

    /// Virtual clock, nanoseconds.
    pub fn clock_ns(&self) -> u64 {
        self.dm.clock_ns()
    }

    /// Resets the virtual clock (benchmark phase barrier).
    pub fn set_clock_ns(&mut self, ns: u64) {
        self.dm.set_clock_ns(ns);
    }

    /// Attaches a deterministic-schedule participant handle to this
    /// worker's transport (see [`dm_sim::Schedule`]).
    pub fn attach_schedule(&mut self, handle: dm_sim::ScheduleHandle) {
        self.dm.attach_schedule(handle);
    }

    /// Consumes one scheduling step and returns its number (a virtual
    /// timestamp); `None` when no schedule is attached.
    pub fn schedule_tick(&mut self) -> Option<u64> {
        self.dm.schedule_tick()
    }

    fn backoff(&mut self) {
        self.dm.backoff(&self.retry);
    }

    fn root(&mut self, refresh: bool) -> Result<RemotePtr, BpTreeError> {
        if refresh || self.root_hint.is_none() {
            let raw = self.dm.read_u64(self.meta.checked_add(8)?)?;
            self.root_hint = Some(RemotePtr::from_raw(raw));
        }
        Ok(self.root_hint.expect("just set"))
    }

    /// Consistent (seqlock-validated) read of one node.
    fn read_node(&mut self, ptr: RemotePtr) -> Result<BpNode, BpTreeError> {
        for _ in 0..self.retry.op_retries {
            let bytes = self.dm.read(ptr, NODE_BYTES)?;
            if let Some(node) = BpNode::decode(&bytes) {
                return Ok(node);
            }
            self.backoff();
        }
        Err(BpTreeError::RetriesExhausted { op: "node read" })
    }

    /// Publishes `node` at `ptr`, releasing its write lock: tail version
    /// first, body second, header last — all one doorbell batch — so
    /// seqlock readers can never accept a torn image.
    fn write_node(&mut self, ptr: RemotePtr, node: &BpNode) -> Result<(), BpTreeError> {
        let image = node.encode();
        self.dm.write_many(vec![
            (
                ptr.checked_add(TAIL_OFFSET as u64)?,
                image[TAIL_OFFSET..].to_vec(),
            ),
            (ptr.checked_add(8)?, image[8..TAIL_OFFSET].to_vec()),
            (ptr, image[0..8].to_vec()),
        ])?;
        self.cache.lock().invalidate(ptr);
        Ok(())
    }

    /// Descends to the leaf owning `key`, chasing B-link right pointers
    /// past concurrent splits and stale caches. The chase always runs to
    /// completion (right links are finite and only move keys rightward,
    /// so it terminates); heavy chasing merely triggers cache hygiene for
    /// subsequent operations.
    fn descend(&mut self, key: u64) -> Result<(RemotePtr, BpNode), BpTreeError> {
        let mut chases = 0usize;
        let mut ptr = self.root(false)?;
        let mut node = self.fetch(ptr, true)?;
        for _ in 0..self.retry.op_retries {
            // Right-chase while the key is beyond this node's fence.
            while key >= node.high_key && !node.right.is_null() {
                chases += 1;
                ptr = node.right;
                node = self.fetch(ptr, false)?; // fresh: fences moved
            }
            if node.is_leaf() {
                if chases > 8 {
                    // Our hints are badly stale: start clean next time.
                    self.root_hint = None;
                    self.cache.lock().clear();
                }
                return Ok((ptr, node));
            }
            let child = node.child_for(key);
            ptr = child;
            node = self.fetch(ptr, true)?;
        }
        Err(BpTreeError::RetriesExhausted { op: "descend" })
    }

    /// Reads a node, via the internal cache when allowed.
    fn fetch(&mut self, ptr: RemotePtr, use_cache: bool) -> Result<BpNode, BpTreeError> {
        if use_cache {
            if let Some(node) = self.cache.lock().get(ptr) {
                return Ok(node);
            }
        }
        let node = self.read_node(ptr)?;
        self.cache.lock().put(ptr, node.clone());
        Ok(node)
    }

    /// Point lookup.
    ///
    /// # Errors
    ///
    /// [`BpTreeError::RetriesExhausted`] under pathological contention.
    pub fn get(&mut self, key: u64) -> Result<Option<Vec<u8>>, BpTreeError> {
        let (_, leaf) = self.descend(key)?;
        Ok(leaf
            .entries
            .binary_search_by_key(&key, |(k, _)| *k)
            .ok()
            .map(|i| leaf.entries[i].1.to_vec()))
    }

    /// Looks up many keys keeping up to `depth` lookups in flight: each
    /// key runs as a resumable [`node_engine::OpState`] machine mirroring
    /// [`BpTreeClient::get`] (cache-aware descent plus B-link
    /// right-chase), and every scheduling round the whole window's node
    /// reads go out in one fused doorbell. Results align with `keys`.
    /// Keys that exhaust a retry budget mid-machine replay through the
    /// blocking path.
    ///
    /// # Errors
    ///
    /// Same classes as [`BpTreeClient::get`].
    pub fn get_many_pipelined(
        &mut self,
        keys: &[u64],
        depth: usize,
    ) -> Result<Vec<Option<Vec<u8>>>, BpTreeError> {
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        let root = self.root(false)?;
        let mut pstats = PipelineStats::default();
        let lease_now = self.dm.clock_ns();
        let mut leases: Vec<Option<Box<OpTrace>>> = keys
            .iter()
            .map(|_| self.tracer.lease(OpKind::Get, lease_now))
            .collect();
        #[cfg(feature = "telemetry")]
        let mark = self.dm.trace_mark();
        let run = {
            let BpTreeClient {
                dm, cache, retry, ..
            } = self;
            let ops = keys
                .iter()
                .zip(leases.iter_mut())
                .map(|(&key, lease)| BpGetOp {
                    key,
                    cache,
                    retry: *retry,
                    hops: 0,
                    chases: 0,
                    state: BpSt::Start { root },
                    trace: lease.take(),
                });
            node_engine::run_pipelined(dm, ops, depth, &mut pstats)
        };
        self.pipeline.merge(&pstats);
        #[cfg_attr(not(feature = "telemetry"), allow(unused_mut))]
        let mut outs = run.map_err(BpTreeError::from)?;
        #[cfg(feature = "telemetry")]
        if outs.iter().any(|o| o.trace.is_some()) {
            let mut scratch = std::mem::take(&mut self.trace_scratch);
            scratch.clear();
            let complete = self.dm.trace_collect_since(mark, &mut scratch);
            for out in &mut outs {
                if let Some(mut tr) = out.trace.take() {
                    tr.complete = complete;
                    let end = tr.end_ns;
                    self.tracer.finish(tr, end, &scratch);
                }
            }
            self.trace_scratch = scratch;
        }
        // Blocking descents drop badly stale hints after a long chase; do
        // the same once per batch.
        if outs.iter().any(|o| o.chases > 8) {
            self.root_hint = None;
            self.cache.lock().clear();
        }
        outs.into_iter()
            .zip(keys)
            .map(|(out, &key)| match out.result {
                Some(v) => Ok(v),
                None => self.get(key),
            })
            .collect()
    }

    /// Cumulative pipelined-execution counters for this worker.
    pub fn pipeline_stats(&self) -> &PipelineStats {
        &self.pipeline
    }

    /// Configures causal-trace sampling for the pipelined lookup path:
    /// `head_every` = uniform 1-in-N head sample (0 = off), `tail_k` =
    /// slowest/most-retried retention depth (see [`obs::Tracer`]).
    pub fn set_trace_sampling(&mut self, head_every: u64, tail_k: usize) {
        self.tracer.configure(head_every, tail_k);
        #[cfg(feature = "telemetry")]
        self.dm.trace_set_enabled(self.tracer.is_active());
    }

    /// Sets the worker id baked into this client's trace ids.
    pub fn set_trace_worker(&mut self, worker: u32) {
        self.tracer.set_worker(worker);
    }

    /// Drains the retained traces (tail + head samples).
    pub fn take_traces(&mut self) -> Vec<obs::OpTrace> {
        self.tracer.take_traces()
    }

    /// Inserts or overwrites `key` (upsert). Values longer than
    /// [`crate::VALUE_LEN`] are truncated; shorter ones zero-padded.
    ///
    /// # Errors
    ///
    /// [`BpTreeError::RetriesExhausted`] under pathological contention.
    pub fn insert(&mut self, key: u64, value: &[u8]) -> Result<(), BpTreeError> {
        let value = BpNode::value_from(value);
        for _ in 0..self.retry.op_retries {
            let (ptr, leaf) = self.descend(key)?;
            let exists = leaf.entries.binary_search_by_key(&key, |(k, _)| *k).is_ok();
            if !exists && leaf.is_full() {
                self.split_leaf(key)?;
                continue;
            }
            if !self.try_lock(ptr, &leaf)? {
                self.backoff();
                continue;
            }
            let mut fresh = leaf;
            match fresh.entries.binary_search_by_key(&key, |(k, _)| *k) {
                Ok(i) => fresh.entries[i].1 = value,
                Err(i) => fresh.entries.insert(i, (key, value)),
            }
            if fresh.entries.len() > crate::layout::LEAF_CAP {
                // Filled up between our read and lock: unlock and split.
                self.unlock(ptr, &fresh.header)?;
                self.split_leaf(key)?;
                continue;
            }
            fresh.header.version = fresh.header.version.wrapping_add(1);
            fresh.header.locked = false;
            self.write_node(ptr, &fresh)?;
            return Ok(());
        }
        Err(BpTreeError::RetriesExhausted { op: "insert" })
    }

    /// Updates an existing key; returns `false` when absent.
    ///
    /// # Errors
    ///
    /// [`BpTreeError::RetriesExhausted`] under pathological contention.
    pub fn update(&mut self, key: u64, value: &[u8]) -> Result<bool, BpTreeError> {
        let value = BpNode::value_from(value);
        for _ in 0..self.retry.op_retries {
            let (ptr, leaf) = self.descend(key)?;
            let Ok(i) = leaf.entries.binary_search_by_key(&key, |(k, _)| *k) else {
                return Ok(false);
            };
            if !self.try_lock(ptr, &leaf)? {
                self.backoff();
                continue;
            }
            let mut fresh = leaf;
            fresh.entries[i].1 = value;
            fresh.header.version = fresh.header.version.wrapping_add(1);
            fresh.header.locked = false;
            self.write_node(ptr, &fresh)?;
            return Ok(true);
        }
        Err(BpTreeError::RetriesExhausted { op: "update" })
    }

    /// Removes a key; returns whether it was present. Leaves are never
    /// merged (like the ART family here; deletes are rare in the
    /// workloads).
    ///
    /// # Errors
    ///
    /// [`BpTreeError::RetriesExhausted`] under pathological contention.
    pub fn remove(&mut self, key: u64) -> Result<bool, BpTreeError> {
        for _ in 0..self.retry.op_retries {
            let (ptr, leaf) = self.descend(key)?;
            let Ok(i) = leaf.entries.binary_search_by_key(&key, |(k, _)| *k) else {
                return Ok(false);
            };
            if !self.try_lock(ptr, &leaf)? {
                self.backoff();
                continue;
            }
            let mut fresh = leaf;
            fresh.entries.remove(i);
            fresh.header.version = fresh.header.version.wrapping_add(1);
            fresh.header.locked = false;
            self.write_node(ptr, &fresh)?;
            return Ok(true);
        }
        Err(BpTreeError::RetriesExhausted { op: "remove" })
    }

    /// All `(key, value)` with `low <= key <= high`, ascending — a linked
    /// leaf-chain walk, the B+-tree's signature scan.
    ///
    /// # Errors
    ///
    /// [`BpTreeError::RetriesExhausted`] under pathological contention.
    pub fn scan(&mut self, low: u64, high: u64) -> Result<Vec<(u64, Vec<u8>)>, BpTreeError> {
        let mut out = Vec::new();
        if low > high {
            return Ok(out);
        }
        let (_, mut leaf) = self.descend(low)?;
        loop {
            for (k, v) in &leaf.entries {
                if *k >= low && *k <= high {
                    out.push((*k, v.to_vec()));
                }
            }
            if leaf.high_key > high || leaf.right.is_null() {
                return Ok(out);
            }
            leaf = self.read_node(leaf.right)?;
        }
    }

    /// CAS the node's header from its known unlocked form to locked.
    fn try_lock(&mut self, ptr: RemotePtr, node: &BpNode) -> Result<bool, BpTreeError> {
        let mut h = node.header;
        h.count = if node.is_leaf() {
            node.entries.len()
        } else {
            node.seps.len()
        } as u16;
        let expected = h.encode();
        let locked = NodeHeader { locked: true, ..h }.encode();
        Ok(self.dm.cas(ptr, expected, locked)? == expected)
    }

    fn unlock(&mut self, ptr: RemotePtr, header: &NodeHeader) -> Result<(), BpTreeError> {
        let locked = NodeHeader {
            locked: true,
            ..*header
        }
        .encode();
        let idle = NodeHeader {
            locked: false,
            ..*header
        }
        .encode();
        let _ = self.dm.cas(ptr, locked, idle)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Structure modifications (serialized by the tree-wide SMO lock).
    // ------------------------------------------------------------------

    fn smo_lock(&mut self) -> Result<(), BpTreeError> {
        for _ in 0..self.retry.op_retries {
            if self.dm.cas(self.meta, 0, 1)? == 0 {
                return Ok(());
            }
            self.backoff();
        }
        Err(BpTreeError::RetriesExhausted { op: "smo lock" })
    }

    fn smo_unlock(&mut self) -> Result<(), BpTreeError> {
        self.dm.write_u64(self.meta, 0)?;
        Ok(())
    }

    /// Splits the (full) leaf responsible for `key`, updating ancestors as
    /// needed. Holds the SMO lock throughout; holds each modified node's
    /// write lock while rewriting it.
    fn split_leaf(&mut self, key: u64) -> Result<(), BpTreeError> {
        self.smo_lock()?;
        let result = self.split_locked(key);
        self.smo_unlock()?;
        result
    }

    fn split_locked(&mut self, key: u64) -> Result<(), BpTreeError> {
        // Fresh descent recording the path (internal structure only
        // changes under the SMO lock we hold, so the path is stable).
        let root_ptr = self.root(true)?;
        let mut path: Vec<(RemotePtr, BpNode)> = Vec::new();
        let mut ptr = root_ptr;
        let mut node = self.read_node(ptr)?;
        loop {
            while key >= node.high_key && !node.right.is_null() {
                ptr = node.right;
                node = self.read_node(ptr)?;
            }
            if node.is_leaf() {
                break;
            }
            let child = node.child_for(key);
            path.push((ptr, node));
            ptr = child;
            node = self.read_node(ptr)?;
        }
        if !node.is_full() {
            return Ok(()); // someone else already split it
        }

        // Lock the leaf for the duration of its rewrite.
        let mut locked = false;
        for _ in 0..self.retry.op_retries {
            if self.try_lock(ptr, &node)? {
                locked = true;
                break;
            }
            self.backoff();
            node = self.read_node(ptr)?;
            if !node.is_full() {
                return Ok(());
            }
        }
        if !locked {
            return Err(BpTreeError::RetriesExhausted {
                op: "split leaf lock",
            });
        }

        // Split the leaf: upper half moves right (keys never move left,
        // the invariant B-link correctness rests on).
        let mid = node.entries.len() / 2;
        let sep = node.entries[mid].0;
        let mut rightn = BpNode::new_leaf(node.high_key);
        rightn.entries = node.entries.split_off(mid);
        rightn.right = node.right;
        let right_ptr = self.dm.alloc(self.dm.place(sep), NODE_BYTES)?;
        self.dm.write(right_ptr, &rightn.encode())?; // invisible until linked
        node.high_key = sep;
        node.right = right_ptr;
        node.header.version = node.header.version.wrapping_add(1);
        node.header.locked = false;
        self.write_node(ptr, &node)?;

        // Insert (sep → right) into ancestors, splitting upward as needed.
        let mut insert_key = sep;
        let mut insert_child = right_ptr;
        let mut level = 1u8;
        loop {
            match path.pop() {
                Some((pptr, mut parent)) => {
                    let at = parent
                        .seps
                        .binary_search_by_key(&insert_key, |(s, _)| *s)
                        .unwrap_or_else(|i| i);
                    parent.seps.insert(at, (insert_key, insert_child));
                    if parent.seps.len() <= crate::layout::INTERNAL_CAP {
                        parent.header.version = parent.header.version.wrapping_add(1);
                        self.write_node(pptr, &parent)?;
                        return Ok(());
                    }
                    // Split the internal node too.
                    let midp = parent.seps.len() / 2;
                    let psep = parent.seps[midp].0;
                    let mut pright = BpNode::new_internal(parent.header.level, parent.high_key);
                    pright.seps = parent.seps.split_off(midp);
                    pright.right = parent.right;
                    let pright_ptr = self.dm.alloc(self.dm.place(psep), NODE_BYTES)?;
                    self.dm.write(pright_ptr, &pright.encode())?;
                    parent.high_key = psep;
                    parent.right = pright_ptr;
                    parent.header.version = parent.header.version.wrapping_add(1);
                    self.write_node(pptr, &parent)?;
                    insert_key = psep;
                    insert_child = pright_ptr;
                    level = parent.header.level + 1;
                }
                None => {
                    // Split reached the root: grow the tree by one level.
                    let old_root = self.root(true)?;
                    let mut new_root = BpNode::new_internal(level, u64::MAX);
                    new_root.seps.push((0, old_root));
                    new_root.seps.push((insert_key, insert_child));
                    let new_root_ptr = self.dm.alloc(self.dm.place(insert_key), NODE_BYTES)?;
                    self.dm.write(new_root_ptr, &new_root.encode())?;
                    self.dm
                        .write_u64(self.meta.checked_add(8)?, new_root_ptr.to_raw())?;
                    let _ = self.dm.faa(self.meta.checked_add(16)?, 1)?;
                    self.root_hint = Some(new_root_ptr);
                    return Ok(());
                }
            }
        }
    }
}

/// Where a pipelined B+-tree lookup is between round trips.
enum BpSt {
    /// Begin the descent from the (known) root.
    Start {
        /// Root pointer resolved by the driver before the run.
        root: RemotePtr,
    },
    /// Waiting for the node at `ptr`; `attempts` counts torn-read
    /// retries of this node.
    Node { ptr: RemotePtr, attempts: usize },
}

/// The B+-tree point lookup as a resumable state machine: the descent of
/// [`BpTreeClient::descend`] with every remote node read turned into a
/// [`StepOutcome::Submit`]. Cache hits advance CPU-side without a
/// submission. `result: None` in the output means "fall back to the
/// blocking path".
struct BpGetOp<'a> {
    key: u64,
    cache: &'a Mutex<InternalCache>,
    retry: RetryPolicy,
    /// Descent steps consumed (bounded by `op_retries`, as in blocking).
    hops: usize,
    /// B-link right-chases performed (drives cache hygiene).
    chases: usize,
    state: BpSt,
    /// Causal-trace context leased by the driver (`None` when this op was
    /// not sampled).
    trace: Option<Box<OpTrace>>,
}

/// Output of one [`BpGetOp`]: the lookup result (`None` = fall back) and
/// the chase count for cache hygiene.
struct BpGetOut {
    result: Option<Option<Vec<u8>>>,
    chases: usize,
    /// The op's causal trace, carried out for [`Tracer::finish`].
    #[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
    trace: Option<Box<OpTrace>>,
}

impl BpGetOp<'_> {
    /// Stamps the trace's end time and hands it to the output.
    fn take_trace(&mut self, now_ns: u64) -> Option<Box<OpTrace>> {
        let mut tr = self.trace.take()?;
        tr.end_ns = now_ns;
        Some(tr)
    }

    fn fallback(&mut self, now_ns: u64) -> Result<StepOutcome<BpGetOut>, EngineError> {
        if let Some(tr) = self.trace.as_mut() {
            tr.fallback(now_ns);
        }
        Ok(StepOutcome::Done(BpGetOut {
            result: None,
            chases: self.chases,
            trace: self.take_trace(now_ns),
        }))
    }

    /// Moves to `ptr`: serves it from the shared internal-node cache when
    /// allowed, otherwise submits the read.
    fn goto(
        &mut self,
        now_ns: u64,
        ptr: RemotePtr,
        use_cache: bool,
    ) -> Result<StepOutcome<BpGetOut>, EngineError> {
        if use_cache {
            let cached = self.cache.lock().get(ptr);
            if let Some(node) = cached {
                return self.advance(now_ns, node);
            }
        }
        if let Some(tr) = self.trace.as_mut() {
            tr.phase(obs::Phase::Traversal, now_ns);
        }
        self.state = BpSt::Node { ptr, attempts: 0 };
        Ok(StepOutcome::Submit {
            batch: DoorbellBatch::from_iter([Verb::Read {
                ptr,
                len: NODE_BYTES,
            }]),
            tag: 0,
        })
    }

    /// One descent decision from a decoded node: finish at a leaf, chase
    /// right past a concurrent split, or descend to the owning child.
    fn advance(&mut self, now_ns: u64, node: BpNode) -> Result<StepOutcome<BpGetOut>, EngineError> {
        self.hops += 1;
        if self.hops >= self.retry.op_retries {
            return self.fallback(now_ns);
        }
        if self.key >= node.high_key && !node.right.is_null() {
            self.chases += 1;
            return self.goto(now_ns, node.right, false); // fresh: fences moved
        }
        if node.is_leaf() {
            let result = node
                .entries
                .binary_search_by_key(&self.key, |(k, _)| *k)
                .ok()
                .map(|i| node.entries[i].1.to_vec());
            return Ok(StepOutcome::Done(BpGetOut {
                result: Some(result),
                chases: self.chases,
                trace: self.take_trace(now_ns),
            }));
        }
        let child = node.child_for(self.key);
        self.goto(now_ns, child, true)
    }
}

impl OpState for BpGetOp<'_> {
    type Output = BpGetOut;

    fn on_admitted(&mut self, now_ns: u64) {
        if let Some(tr) = self.trace.as_mut() {
            tr.admit(now_ns);
        }
    }

    fn on_submitted(&mut self, token: SqeToken, now_ns: u64) {
        if let Some(tr) = self.trace.as_mut() {
            tr.submitted(token.raw(), now_ns);
        }
    }

    fn step<T: Transport>(
        &mut self,
        t: &mut T,
        completion: Option<Vec<VerbResult>>,
    ) -> Result<StepOutcome<BpGetOut>, EngineError> {
        match std::mem::replace(
            &mut self.state,
            BpSt::Start {
                root: RemotePtr::NULL,
            },
        ) {
            BpSt::Start { root } => {
                debug_assert!(completion.is_none());
                self.goto(t.clock_ns(), root, true)
            }
            BpSt::Node { ptr, attempts } => {
                let bytes = completion
                    .expect("Node state awaits a completion")
                    .pop()
                    .expect("pipelined get submits exactly one read per batch")
                    .into_read();
                match BpNode::decode(&bytes) {
                    Some(node) => {
                        self.cache.lock().put(ptr, node.clone());
                        self.advance(t.clock_ns(), node)
                    }
                    None => {
                        // Torn seqlock read: back off and re-read, bounded
                        // exactly like the blocking `read_node`.
                        if let Some(tr) = self.trace.as_mut() {
                            tr.retry(t.clock_ns());
                        }
                        if attempts + 1 >= self.retry.op_retries {
                            return self.fallback(t.clock_ns());
                        }
                        t.backoff(&self.retry);
                        self.state = BpSt::Node {
                            ptr,
                            attempts: attempts + 1,
                        };
                        Ok(StepOutcome::Submit {
                            batch: DoorbellBatch::from_iter([Verb::Read {
                                ptr,
                                len: NODE_BYTES,
                            }]),
                            tag: 0,
                        })
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_sim::ClusterConfig;

    fn index() -> BpTreeIndex {
        let cluster = DmCluster::new(ClusterConfig {
            mn_capacity: 256 << 20,
            ..ClusterConfig::default()
        });
        BpTreeIndex::create(&cluster, 256 << 10).unwrap()
    }

    #[test]
    fn insert_get_roundtrip() {
        let idx = index();
        let mut c = idx.client(0).unwrap();
        c.insert(42, b"answer").unwrap();
        assert_eq!(&c.get(42).unwrap().unwrap()[..6], b"answer");
        assert_eq!(c.get(43).unwrap(), None);
    }

    #[test]
    fn upsert_and_update() {
        let idx = index();
        let mut c = idx.client(0).unwrap();
        c.insert(7, b"one").unwrap();
        c.insert(7, b"two").unwrap();
        assert_eq!(&c.get(7).unwrap().unwrap()[..3], b"two");
        assert!(c.update(7, b"three").unwrap());
        assert!(!c.update(8, b"x").unwrap());
        assert_eq!(&c.get(7).unwrap().unwrap()[..5], b"three");
    }

    #[test]
    fn grows_through_many_splits() {
        let idx = index();
        let mut c = idx.client(0).unwrap();
        let n = 5_000u64;
        for i in 0..n {
            let key = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            c.insert(key, &i.to_le_bytes()).unwrap();
        }
        for i in 0..n {
            let key = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let v = c.get(key).unwrap().unwrap_or_else(|| panic!("lost {i}"));
            assert_eq!(&v[..8], &i.to_le_bytes());
        }
    }

    #[test]
    fn remove_semantics() {
        let idx = index();
        let mut c = idx.client(0).unwrap();
        for i in 0..100u64 {
            c.insert(i, &i.to_le_bytes()).unwrap();
        }
        assert!(c.remove(50).unwrap());
        assert!(!c.remove(50).unwrap());
        assert_eq!(c.get(50).unwrap(), None);
        assert!(c.get(49).unwrap().is_some());
    }

    #[test]
    fn scan_linked_leaves() {
        let idx = index();
        let mut c = idx.client(0).unwrap();
        for i in 0..500u64 {
            c.insert(i * 3, &i.to_le_bytes()).unwrap();
        }
        let hits = c.scan(30, 90).unwrap();
        let keys: Vec<u64> = hits.iter().map(|(k, _)| *k).collect();
        let want: Vec<u64> = (0..500)
            .map(|i| i * 3)
            .filter(|k| (30..=90).contains(k))
            .collect();
        assert_eq!(keys, want);
        assert!(c.scan(90, 30).unwrap().is_empty());
    }

    #[test]
    fn scan_cost_is_leaf_chain() {
        let idx = index();
        let mut c = idx.client(0).unwrap();
        for i in 0..2_000u64 {
            c.insert(i, b"v").unwrap();
        }
        let before = c.net_stats().round_trips;
        let hits = c.scan(1000, 1129).unwrap();
        let rts = c.net_stats().round_trips - before;
        assert_eq!(hits.len(), 130);
        // Sequential load half-fills leaves (mid-point splits), so 130
        // entries span ~19 leaves, plus a short descent.
        assert!(rts < 32, "scan took {rts} round trips");
    }

    #[test]
    fn concurrent_inserts_disjoint_and_shared() {
        let idx = index();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let idx = idx.clone();
                s.spawn(move || {
                    let mut c = idx.client((t % 3) as u16).unwrap();
                    for i in 0..800u64 {
                        let key = t * 1_000_000 + i * 7;
                        c.insert(key, &key.to_le_bytes()).unwrap();
                    }
                });
            }
        });
        let mut c = idx.client(0).unwrap();
        for t in 0..4u64 {
            for i in (0..800u64).step_by(13) {
                let key = t * 1_000_000 + i * 7;
                let v = c.get(key).unwrap().unwrap_or_else(|| panic!("lost {key}"));
                assert_eq!(&v[..8], &key.to_le_bytes());
            }
        }
    }

    #[test]
    fn concurrent_updates_same_keys_stay_intact() {
        let idx = index();
        {
            let mut c = idx.client(0).unwrap();
            for i in 0..50u64 {
                c.insert(i, &[0u8; 32]).unwrap();
            }
        }
        std::thread::scope(|s| {
            for t in 0..3u8 {
                let idx = idx.clone();
                s.spawn(move || {
                    let mut c = idx.client(t as u16).unwrap();
                    for r in 0..200u64 {
                        let key = (r * 7 + t as u64) % 50;
                        c.update(key, &[t + 1; 32]).unwrap();
                        if let Some(v) = c.get(key).unwrap() {
                            let tag = v[0];
                            assert!(v[..32].iter().all(|&b| b == tag), "torn value {v:?}");
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn stats_reflect_structure() {
        let idx = index();
        let mut c = idx.client(0).unwrap();
        for i in 0..1_000u64 {
            c.insert(i, &i.to_le_bytes()).unwrap();
        }
        let stats = idx.stats().unwrap();
        assert_eq!(stats.entries, 1_000);
        assert!(stats.height >= 2, "1000 entries cannot fit one leaf");
        assert!(stats.leaves >= 77, "13-entry leaves: {}", stats.leaves);
        assert!(stats.leaf_occupancy > 0.3 && stats.leaf_occupancy <= 1.0);
    }

    #[test]
    fn pipelined_get_matches_blocking_and_fuses() {
        let idx = index();
        let mut c = idx.client(0).unwrap();
        let n = 3_000u64;
        for i in 0..n {
            let key = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            c.insert(key, &i.to_le_bytes()).unwrap();
        }
        let keys: Vec<u64> = (0..600u64)
            .map(|i| (i * 5).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let expected: Vec<_> = keys.iter().map(|&k| c.get(k).unwrap()).collect();

        let s0 = c.net_stats();
        let got1 = c.get_many_pipelined(&keys, 1).unwrap();
        let d1 = c.net_stats().since(&s0);
        assert_eq!(got1, expected);
        assert_eq!(d1.doorbells, d1.round_trips, "depth 1 never fuses");

        let s0 = c.net_stats();
        let got8 = c.get_many_pipelined(&keys, 8).unwrap();
        let d8 = c.net_stats().since(&s0);
        assert_eq!(got8, expected);
        assert_eq!(
            d8.round_trips, d1.round_trips,
            "logical round trips are depth-independent"
        );
        assert!(
            d8.doorbells < d1.doorbells,
            "depth 8 must fuse: {} vs {}",
            d8.doorbells,
            d1.doorbells
        );
        assert!(c.pipeline_stats().fused_batches > 0);
    }

    #[test]
    fn stale_root_hint_is_healed_by_blink_chase() {
        let idx = index();
        let mut old = idx.client(0).unwrap();
        old.insert(1, b"seed").unwrap(); // fixes old.root_hint at height 1
        let mut writer = idx.client(1).unwrap();
        for i in 0..3_000u64 {
            writer.insert(i * 11, &i.to_le_bytes()).unwrap(); // grows height
        }
        // The stale client must still find keys anywhere in the range.
        for i in (0..3_000u64).step_by(97) {
            assert!(old.get(i * 11).unwrap().is_some(), "stale-root miss at {i}");
        }
    }
}
