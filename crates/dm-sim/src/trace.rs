//! Transport-level causal event tracing.
//!
//! The virtual clock of a [`DmClient`](crate::DmClient) only ever moves at
//! three sites: a doorbell burst ([`execute`](crate::Transport::execute) /
//! `flush_submitted`), a fused flush, or an explicit backoff
//! ([`advance_clock`](crate::DmClient::advance_clock)). Recording one event
//! per site therefore yields a *complete* account of where an op's
//! wall-clock (virtual) time went: any interval of a client's timeline is
//! exactly tiled by the events that moved the clock through it.
//!
//! The `obs` crate's trace layer exploits this: an op's causal trace is the
//! window of transport events between its begin and end timestamps, and the
//! critical-path extractor can assert that its segment decomposition sums
//! *exactly* to the op's end-to-end latency.
//!
//! Event types are always compiled (they are plain data and other crates
//! name them in signatures); the per-client ring and its hot-path hooks
//! only exist under the `trace` cargo feature, and even then every hook is
//! a no-op until [`TransportTrace::set_enabled`] turns the ring on.

/// Most submissions a single [`BurstEvent`] records individually. A fused
/// flush joining more ops than this sets
/// [`BurstEvent::tokens_truncated`]; consumers must then treat every
/// in-flight op as a member of the burst.
pub const MAX_BURST_TOKENS: usize = 16;

/// Most per-MN completion fins recorded per burst (the simulated clusters
/// are far smaller).
pub const MAX_BURST_MNS: usize = 8;

/// One submission's share of a burst: the completion-queue token it was
/// issued and how many verbs it contributed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BurstToken {
    /// Raw completion-queue token (see
    /// [`SqeToken::raw`](crate::transport::SqeToken::raw)).
    pub token: u64,
    /// Verbs this submission contributed to the burst.
    pub verbs: u32,
}

/// One doorbell burst: a batch (or fused set of batches) charged against
/// the NIC model, advancing the client clock from `from_ns` to `to_ns`.
///
/// The interval decomposes exactly: `to_ns - from_ns = delay_ns +
/// service_ns + cpu_ns` (scheduler grant delay, then NIC service including
/// the trailing RTT, then CN-side per-verb compute).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstEvent {
    /// Client clock when the flush was issued.
    pub from_ns: u64,
    /// Client clock after the burst completed (completion + RTT + compute).
    pub to_ns: u64,
    /// Scheduler-imposed grant delay before the wire saw anything (0 when
    /// running without a [`Schedule`](crate::Schedule)).
    pub delay_ns: u64,
    /// NIC service time including the trailing RTT.
    pub service_ns: u64,
    /// CN-side compute charged for the burst (`client_op_ns` × total verbs).
    pub cpu_ns: u64,
    /// Physical doorbells rung (distinct MNs addressed).
    pub doorbells: u32,
    /// Total verbs across every member submission.
    pub verbs: u32,
    /// Deterministic schedule step that granted this burst, when running
    /// under a [`Schedule`](crate::Schedule).
    pub grant_step: Option<u64>,
    /// Set when more than [`MAX_BURST_TOKENS`] submissions fused into this
    /// burst and the membership list is incomplete.
    pub tokens_truncated: bool,
    tokens: [BurstToken; MAX_BURST_TOKENS],
    tokens_len: u8,
    mns: [(u16, u64); MAX_BURST_MNS],
    mns_len: u8,
}

impl BurstEvent {
    /// A burst covering `[from_ns, to_ns]` with the given charge split.
    pub fn new(from_ns: u64, to_ns: u64, delay_ns: u64, cpu_ns: u64) -> Self {
        let service_ns = (to_ns - from_ns).saturating_sub(delay_ns + cpu_ns);
        BurstEvent {
            from_ns,
            to_ns,
            delay_ns,
            service_ns,
            cpu_ns,
            doorbells: 0,
            verbs: 0,
            grant_step: None,
            tokens_truncated: false,
            tokens: [BurstToken::default(); MAX_BURST_TOKENS],
            tokens_len: 0,
            mns: [(0, 0); MAX_BURST_MNS],
            mns_len: 0,
        }
    }

    /// Records a member submission; sets
    /// [`tokens_truncated`](Self::tokens_truncated) once full.
    pub fn push_token(&mut self, token: u64, verbs: u32) {
        if (self.tokens_len as usize) < MAX_BURST_TOKENS {
            self.tokens[self.tokens_len as usize] = BurstToken { token, verbs };
            self.tokens_len += 1;
        } else {
            self.tokens_truncated = true;
        }
    }

    /// Records one MN's completion fin (virtual time its NIC finished
    /// serving this burst's messages). Silently drops past
    /// [`MAX_BURST_MNS`].
    pub fn push_mn_fin(&mut self, mn: u16, fin_ns: u64) {
        if (self.mns_len as usize) < MAX_BURST_MNS {
            self.mns[self.mns_len as usize] = (mn, fin_ns);
            self.mns_len += 1;
        }
    }

    /// Member submissions recorded for this burst.
    pub fn tokens(&self) -> &[BurstToken] {
        &self.tokens[..self.tokens_len as usize]
    }

    /// Per-MN `(mn_id, fin_ns)` completion times.
    pub fn mn_fins(&self) -> &[(u16, u64)] {
        &self.mns[..self.mns_len as usize]
    }
}

/// One clock-moving transport event on a client's virtual timeline.
// The size gap between the fixed-capacity `Burst` and the two-word
// `Advance` is deliberate: events live in a bounded preallocated ring
// and are copied out in bulk; boxing the burst would put an allocation
// on the NIC recording path, exactly what the fixed arrays avoid.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportEvent {
    /// A doorbell burst (single batch or fused flush).
    Burst(BurstEvent),
    /// An explicit clock advance outside any burst — retry backoff, gate
    /// padding. Pure queueing from any in-flight op's perspective.
    Advance {
        /// Clock before the advance.
        from_ns: u64,
        /// Clock after the advance.
        to_ns: u64,
    },
}

impl TransportEvent {
    /// Interval start on the client's virtual timeline.
    pub fn from_ns(&self) -> u64 {
        match self {
            TransportEvent::Burst(b) => b.from_ns,
            TransportEvent::Advance { from_ns, .. } => *from_ns,
        }
    }

    /// Interval end on the client's virtual timeline.
    pub fn to_ns(&self) -> u64 {
        match self {
            TransportEvent::Burst(b) => b.to_ns,
            TransportEvent::Advance { to_ns, .. } => *to_ns,
        }
    }
}

/// Bounded per-client ring of [`TransportEvent`]s.
///
/// Sequence numbers are monotonic for the life of the client; the ring
/// retains the most recent [`TransportTrace::CAPACITY`] events and counts
/// the rest as dropped. Pushing while disabled is a no-op, so an untraced
/// run's hot path costs one branch.
#[derive(Debug, Default)]
pub struct TransportTrace {
    enabled: bool,
    base_seq: u64,
    dropped: u64,
    events: std::collections::VecDeque<TransportEvent>,
}

impl TransportTrace {
    /// Events retained; older ones are dropped (and counted).
    pub const CAPACITY: usize = 4096;

    /// Turns the ring on or off. Turning it off clears retained events.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
        if !on {
            self.base_seq = self.next_seq();
            self.events.clear();
        }
    }

    /// Whether pushes are currently recorded.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event (no-op while disabled).
    pub fn push(&mut self, ev: TransportEvent) {
        if !self.enabled {
            return;
        }
        if self.events.len() == Self::CAPACITY {
            self.events.pop_front();
            self.base_seq += 1;
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    /// The sequence number the next push will get — take one before an op
    /// begins and pass it to [`collect_since`](Self::collect_since) at the
    /// end to harvest the op's window.
    pub fn next_seq(&self) -> u64 {
        self.base_seq + self.events.len() as u64
    }

    /// Appends every retained event with sequence ≥ `mark` to `out`.
    /// Returns `true` if the window is complete (nothing after `mark` was
    /// dropped).
    pub fn collect_since(&self, mark: u64, out: &mut Vec<TransportEvent>) -> bool {
        let start = mark.max(self.base_seq);
        out.extend(
            self.events
                .iter()
                .skip((start - self.base_seq) as usize)
                .copied(),
        );
        mark >= self.base_seq
    }

    /// Events evicted by capacity since the ring was created.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drops retained events (keeping sequence numbers monotonic) — called
    /// on clock resets, after which old windows are meaningless.
    pub fn clear(&mut self) {
        self.base_seq = self.next_seq();
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_interval_decomposes_exactly() {
        let mut b = BurstEvent::new(100, 1_600, 200, 400);
        assert_eq!(b.service_ns, 900);
        assert_eq!(b.delay_ns + b.service_ns + b.cpu_ns, b.to_ns - b.from_ns);
        b.push_token(7, 2);
        b.push_mn_fin(1, 900);
        assert_eq!(b.tokens(), &[BurstToken { token: 7, verbs: 2 }]);
        assert_eq!(b.mn_fins(), &[(1, 900)]);
    }

    #[test]
    fn token_overflow_sets_truncated() {
        let mut b = BurstEvent::new(0, 10, 0, 0);
        for i in 0..MAX_BURST_TOKENS as u64 + 3 {
            b.push_token(i, 1);
        }
        assert_eq!(b.tokens().len(), MAX_BURST_TOKENS);
        assert!(b.tokens_truncated);
    }

    #[test]
    fn ring_marks_and_windows() {
        let mut t = TransportTrace::default();
        t.push(TransportEvent::Advance {
            from_ns: 0,
            to_ns: 1,
        });
        assert_eq!(t.next_seq(), 0, "disabled pushes are no-ops");
        t.set_enabled(true);
        t.push(TransportEvent::Advance {
            from_ns: 0,
            to_ns: 1,
        });
        let mark = t.next_seq();
        t.push(TransportEvent::Advance {
            from_ns: 1,
            to_ns: 5,
        });
        let mut out = Vec::new();
        assert!(t.collect_since(mark, &mut out));
        assert_eq!(
            out,
            vec![TransportEvent::Advance {
                from_ns: 1,
                to_ns: 5
            }]
        );
    }

    #[test]
    fn ring_caps_and_counts_drops() {
        let mut t = TransportTrace::default();
        t.set_enabled(true);
        for i in 0..TransportTrace::CAPACITY as u64 + 10 {
            t.push(TransportEvent::Advance {
                from_ns: i,
                to_ns: i + 1,
            });
        }
        assert_eq!(t.dropped(), 10);
        let mut out = Vec::new();
        assert!(!t.collect_since(0, &mut out), "window must report the gap");
        assert_eq!(out.len(), TransportTrace::CAPACITY);
        t.clear();
        assert_eq!(t.next_seq(), TransportTrace::CAPACITY as u64 + 10);
        let mut out2 = Vec::new();
        t.collect_since(t.next_seq(), &mut out2);
        assert!(out2.is_empty());
    }
}
