//! Per-client statistics: verbs, round trips, bytes, latency histogram.

/// A fixed-bucket log-scale latency histogram (nanoseconds).
///
/// Quarter-octave buckets (four per power of two) from 1 ns to ~1 s give
/// tail quantiles ~19% worst-case resolution — enough to read p99 curves
/// without storing samples.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u64,
    max_ns: u64,
}

const OCTAVES: usize = 31;
const SUB: usize = 4;
const NUM_BUCKETS: usize = OCTAVES * SUB;

/// Bucket index for a sample: octave = floor(log2), sub-bucket by the two
/// bits below the leading one.
fn bucket_index(ns: u64) -> usize {
    let ns = ns.max(1);
    let octave = (63 - ns.leading_zeros()) as usize;
    let sub = if octave >= 2 {
        ((ns >> (octave - 2)) & 0b11) as usize
    } else {
        0
    };
    (octave * SUB + sub).min(NUM_BUCKETS - 1)
}

/// Upper bound of a bucket in nanoseconds.
fn bucket_upper(idx: usize) -> u64 {
    let octave = idx / SUB;
    let sub = (idx % SUB) as u64;
    if octave >= 62 {
        return u64::MAX;
    }
    // Buckets span [2^o + sub*2^(o-2), 2^o + (sub+1)*2^(o-2)).
    if octave >= 2 {
        (1u64 << octave) + (sub + 1) * (1u64 << (octave - 2))
    } else {
        1u64 << (octave + 1)
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }

    /// Records one latency sample. The running sum saturates instead of
    /// overflowing, so pathological samples (e.g. `u64::MAX`) degrade the
    /// mean gracefully rather than panicking.
    pub fn record(&mut self, ns: u64) {
        self.buckets[bucket_index(ns)] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in nanoseconds (0 if empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Maximum recorded latency in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Approximate quantile (by bucket upper bound), `q` in `[0, 1]`.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper(i).min(self.max_ns.max(1));
            }
        }
        self.max_ns
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// Counters describing the network work a client has performed, broken
/// down per one-sided verb.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Round trips performed (a doorbell batch to `k` distinct MNs counts
    /// `k` parallel round trips but only advances the clock by the slowest).
    pub round_trips: u64,
    /// Physical doorbells rung at the NIC. Equal to `round_trips` for
    /// blocking execution; lower when a completion-queue flush fuses the
    /// submissions of several independent operations into one doorbell per
    /// target MN (each batch still accounts its own logical `round_trips`).
    pub doorbells: u64,
    /// READ verbs issued.
    pub reads: u64,
    /// WRITE verbs issued.
    pub writes: u64,
    /// CAS verbs issued.
    pub cas: u64,
    /// FAA verbs issued.
    pub faa: u64,
    /// FREE verbs issued (batched reclamation frees; the allocation fast
    /// path's [`DmClient::free`](crate::DmClient::free) is not a verb and
    /// is not counted here).
    pub frees: u64,
    /// Payload bytes read from remote memory.
    pub bytes_read: u64,
    /// Payload bytes written to remote memory (CAS/FAA count as 8).
    pub bytes_written: u64,
}

impl ClientStats {
    /// Total verbs issued across all kinds.
    pub fn verbs(&self) -> u64 {
        self.reads + self.writes + self.cas + self.faa + self.frees
    }

    /// Total bytes moved in either direction.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Adds another client's counters into this one (summing a worker
    /// fleet's views for a cluster-wide conservation check).
    pub fn merge(&mut self, other: &ClientStats) {
        self.round_trips += other.round_trips;
        self.doorbells += other.doorbells;
        self.reads += other.reads;
        self.writes += other.writes;
        self.cas += other.cas;
        self.faa += other.faa;
        self.frees += other.frees;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
    }

    /// Difference between two snapshots (`self` after, `earlier` before).
    pub fn since(&self, earlier: &ClientStats) -> ClientStats {
        ClientStats {
            round_trips: self.round_trips - earlier.round_trips,
            doorbells: self.doorbells - earlier.doorbells,
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            cas: self.cas - earlier.cas,
            faa: self.faa - earlier.faa,
            frees: self.frees - earlier.frees,
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_mean_and_max() {
        let mut h = LatencyHistogram::new();
        h.record(100);
        h.record(300);
        assert_eq!(h.count(), 2);
        assert_eq!(h.mean_ns(), 200);
        assert_eq!(h.max_ns(), 300);
    }

    #[test]
    fn histogram_quantiles_monotone_and_tight() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(i * 10);
        }
        assert!(h.quantile_ns(0.5) <= h.quantile_ns(0.99));
        assert!(h.quantile_ns(0.99) <= h.quantile_ns(1.0).max(h.max_ns()));
        // Quarter-octave resolution: p50 of uniform 10..10000 is ~5000;
        // the reported bound must be within ~25%.
        let p50 = h.quantile_ns(0.5);
        assert!((4500..6500).contains(&p50), "p50 bound too loose: {p50}");
        let p99 = h.quantile_ns(0.99);
        assert!((9000..12500).contains(&p99), "p99 bound too loose: {p99}");
    }

    #[test]
    fn bucket_index_is_monotone() {
        let mut prev = 0;
        for ns in [1u64, 2, 3, 4, 5, 7, 8, 100, 1000, 16_384, 1 << 30] {
            let idx = super::bucket_index(ns);
            assert!(idx >= prev, "index not monotone at {ns}");
            prev = idx;
            assert!(
                super::bucket_upper(idx) >= ns,
                "upper bound below sample {ns}"
            );
        }
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(50);
        b.record(150);
        b.record(250);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.mean_ns(), 150);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.mean_ns(), 0);
        assert_eq!(h.quantile_ns(0.99), 0);
    }

    #[test]
    fn stats_since() {
        let a = ClientStats {
            round_trips: 10,
            doorbells: 8,
            reads: 12,
            writes: 5,
            cas: 2,
            faa: 1,
            frees: 2,
            bytes_read: 100,
            bytes_written: 50,
        };
        let b = ClientStats {
            round_trips: 4,
            doorbells: 3,
            reads: 3,
            writes: 1,
            cas: 1,
            faa: 0,
            frees: 1,
            bytes_read: 40,
            bytes_written: 20,
        };
        let d = a.since(&b);
        assert_eq!(d.round_trips, 6);
        assert_eq!(d.doorbells, 5);
        assert_eq!(d.bytes_total(), 90);
        assert_eq!((d.reads, d.writes, d.cas, d.faa, d.frees), (9, 4, 1, 1, 1));
        assert_eq!(d.verbs(), 16);
        assert_eq!(a.verbs(), 22);
    }

    #[test]
    fn samples_at_or_above_top_bucket_collapse_together() {
        // The histogram spans ~1 ns .. ~1 s; anything larger clamps into
        // the last bucket. Mean/max stay exact, quantiles saturate at the
        // top bucket's bound.
        let mut h = LatencyHistogram::new();
        h.record(1 << 40);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max_ns(), u64::MAX);
        // Both samples share one bucket, so every quantile reports the
        // same (clamped) bound.
        let q_lo = h.quantile_ns(0.01);
        let q_hi = h.quantile_ns(1.0);
        assert_eq!(q_lo, q_hi);
        assert!(q_hi <= h.max_ns());
        assert!(
            q_hi >= 1 << 31,
            "top bucket bound unexpectedly small: {q_hi}"
        );
    }

    #[test]
    fn quantile_zero_returns_smallest_bound() {
        let mut h = LatencyHistogram::new();
        h.record(1000);
        h.record(2000);
        let q0 = h.quantile_ns(0.0);
        assert!(q0 > 0);
        assert!(q0 <= h.quantile_ns(0.5));
        assert!(q0 <= h.max_ns());
        // Empty histogram still reports 0 for every quantile.
        assert_eq!(LatencyHistogram::new().quantile_ns(0.0), 0);
    }

    #[test]
    fn merge_of_unequal_counts_keeps_quantiles_monotone() {
        // 1000 fast samples merged with 10 slow ones: quantiles must stay
        // monotone in q, p50 must stay in the fast cluster, and p999 must
        // reach the slow cluster.
        let mut fast = LatencyHistogram::new();
        for i in 0..1000u64 {
            fast.record(1_000 + i);
        }
        let mut slow = LatencyHistogram::new();
        for _ in 0..10 {
            slow.record(1_000_000);
        }
        fast.merge(&slow);
        assert_eq!(fast.count(), 1010);
        let grid = [0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0];
        let mut prev = 0;
        for q in grid {
            let v = fast.quantile_ns(q);
            assert!(v >= prev, "quantile not monotone at q={q}: {v} < {prev}");
            prev = v;
        }
        assert!(fast.quantile_ns(0.5) < 4_000, "p50 pulled off fast cluster");
        assert!(
            fast.quantile_ns(0.999) >= 1_000_000,
            "p999 missed slow cluster"
        );
        assert_eq!(fast.max_ns(), 1_000_000);
    }
}
