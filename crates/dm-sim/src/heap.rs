//! Memory-node heaps: word-atomic byte-addressable pools.
//!
//! A [`MemoryNode`] stores its pool as `Box<[AtomicU64]>`. Byte-granular
//! reads and writes are assembled from relaxed word operations, so:
//!
//! * concurrent unsynchronized accesses can observe *torn* data across
//!   8-byte boundaries — exactly the guarantee (or lack thereof) one-sided
//!   RDMA gives, which is why Sphinx leaf nodes carry checksums;
//! * accesses to a single aligned 8-byte word are atomic, matching RDMA
//!   CAS/FAA and the paper's reliance on 8-byte control words (Fig. 3).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::addr::RemotePtr;
use crate::alloc::{AllocStats, SegregatedAllocator};
use crate::error::DmError;
use crate::mn_stats::{MnAccounting, MnStats};
use crate::net::{NetConfig, Nic};

use parking_lot::Mutex;

/// One memory node (MN): a large byte pool plus its NIC model and allocator.
///
/// All verb-level access goes through [`DmClient`](crate::DmClient); the
/// methods here are the "remote side" primitives.
#[derive(Debug)]
pub struct MemoryNode {
    id: u16,
    words: Box<[AtomicU64]>,
    nic: Nic,
    allocator: Mutex<SegregatedAllocator>,
    accounting: MnAccounting,
}

impl MemoryNode {
    /// Creates a memory node with a pool of `capacity` bytes (rounded up to
    /// a multiple of 8).
    pub fn new(id: u16, capacity: usize, net: &NetConfig) -> Self {
        let words = capacity.div_ceil(8);
        let mut v = Vec::with_capacity(words);
        v.resize_with(words, || AtomicU64::new(0));
        let words = v.into_boxed_slice();
        let accounting = MnAccounting::new((words.len() * 8) as u64);
        MemoryNode {
            id,
            words,
            nic: Nic::new(net.clone()),
            allocator: Mutex::new(SegregatedAllocator::new(capacity as u64)),
            accounting,
        }
    }

    /// This node's id.
    pub fn id(&self) -> u16 {
        self.id
    }

    /// Pool capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.words.len() * 8
    }

    /// The NIC model attached to this node.
    pub fn nic(&self) -> &Nic {
        &self.nic
    }

    /// The server-side accounting cell (updated from the client choke
    /// points in `DmClient`).
    pub(crate) fn accounting(&self) -> &MnAccounting {
        &self.accounting
    }

    /// Snapshot of this node's server-side load accounting. Monotone for
    /// the cluster's lifetime (not reset between benchmark phases); window
    /// with [`MnStats::since`].
    pub fn mn_stats(&self) -> MnStats {
        self.accounting.snapshot(self.id)
    }

    /// Snapshot of allocation statistics (used for the paper's Fig. 6
    /// memory-usage accounting).
    pub fn alloc_stats(&self) -> AllocStats {
        self.allocator.lock().stats()
    }

    /// Live block counts per size class (class size, block count), sorted
    /// by class size. Surfaced through telemetry so churn workloads can see
    /// which classes the reclaimer is (or is not) recycling.
    pub fn live_by_class(&self) -> Vec<(u64, u64)> {
        self.allocator.lock().live_by_class()
    }

    fn check_range(&self, offset: u64, len: usize) -> Result<(), DmError> {
        let end = offset
            .checked_add(len as u64)
            .ok_or(DmError::InvalidAddress {
                mn_id: self.id,
                offset,
            })?;
        if end > self.capacity() as u64 {
            return Err(DmError::InvalidAddress {
                mn_id: self.id,
                offset,
            });
        }
        Ok(())
    }

    /// Reads `buf.len()` bytes starting at `offset` into `buf`.
    ///
    /// Reads are word-atomic but not range-atomic: a concurrent writer can
    /// produce a torn view across word boundaries.
    ///
    /// # Errors
    ///
    /// Returns [`DmError::InvalidAddress`] if the range exceeds the pool.
    pub fn read_bytes(&self, offset: u64, buf: &mut [u8]) -> Result<(), DmError> {
        self.check_range(offset, buf.len())?;
        let mut pos = 0usize;
        let mut off = offset;
        while pos < buf.len() {
            let word_idx = (off / 8) as usize;
            let in_word = (off % 8) as usize;
            let take = (8 - in_word).min(buf.len() - pos);
            let w = self.words[word_idx].load(Ordering::Acquire).to_le_bytes();
            buf[pos..pos + take].copy_from_slice(&w[in_word..in_word + take]);
            pos += take;
            off += take as u64;
        }
        Ok(())
    }

    /// Writes `data` starting at `offset`.
    ///
    /// Word-aligned 8-byte chunks are stored atomically; partial words use a
    /// CAS loop so concurrent writers to *different* bytes of the same word
    /// do not clobber each other. Cross-word writes are not atomic.
    ///
    /// # Errors
    ///
    /// Returns [`DmError::InvalidAddress`] if the range exceeds the pool.
    pub fn write_bytes(&self, offset: u64, data: &[u8]) -> Result<(), DmError> {
        self.check_range(offset, data.len())?;
        let mut pos = 0usize;
        let mut off = offset;
        while pos < data.len() {
            let word_idx = (off / 8) as usize;
            let in_word = (off % 8) as usize;
            let take = (8 - in_word).min(data.len() - pos);
            let cell = &self.words[word_idx];
            if take == 8 {
                let mut w = [0u8; 8];
                w.copy_from_slice(&data[pos..pos + 8]);
                cell.store(u64::from_le_bytes(w), Ordering::Release);
            } else {
                let mut cur = cell.load(Ordering::Relaxed);
                loop {
                    let mut w = cur.to_le_bytes();
                    w[in_word..in_word + take].copy_from_slice(&data[pos..pos + take]);
                    match cell.compare_exchange_weak(
                        cur,
                        u64::from_le_bytes(w),
                        Ordering::Release,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => break,
                        Err(now) => cur = now,
                    }
                }
            }
            pos += take;
            off += take as u64;
        }
        Ok(())
    }

    fn word_cell(&self, offset: u64) -> Result<&AtomicU64, DmError> {
        if !offset.is_multiple_of(8) {
            return Err(DmError::MisalignedAtomic { offset });
        }
        self.check_range(offset, 8)?;
        Ok(&self.words[(offset / 8) as usize])
    }

    /// Atomically loads the 8-byte word at `offset` (must be 8-aligned).
    ///
    /// # Errors
    ///
    /// Returns [`DmError::MisalignedAtomic`] or [`DmError::InvalidAddress`].
    pub fn load_u64(&self, offset: u64) -> Result<u64, DmError> {
        Ok(self.word_cell(offset)?.load(Ordering::Acquire))
    }

    /// Atomically stores the 8-byte word at `offset` (must be 8-aligned).
    ///
    /// # Errors
    ///
    /// Returns [`DmError::MisalignedAtomic`] or [`DmError::InvalidAddress`].
    pub fn store_u64(&self, offset: u64, value: u64) -> Result<(), DmError> {
        self.word_cell(offset)?.store(value, Ordering::Release);
        Ok(())
    }

    /// RDMA compare-and-swap: atomically replaces the word at `offset` with
    /// `new` if it equals `expected`. Returns the *previous* value (the RDMA
    /// CAS convention — the caller checks success by comparing with
    /// `expected`).
    ///
    /// # Errors
    ///
    /// Returns [`DmError::MisalignedAtomic`] or [`DmError::InvalidAddress`].
    pub fn cas_u64(&self, offset: u64, expected: u64, new: u64) -> Result<u64, DmError> {
        let cell = self.word_cell(offset)?;
        match cell.compare_exchange(expected, new, Ordering::AcqRel, Ordering::Acquire) {
            Ok(prev) => Ok(prev),
            Err(prev) => Ok(prev),
        }
    }

    /// RDMA fetch-and-add: atomically adds `delta` (wrapping) to the word at
    /// `offset`, returning the previous value.
    ///
    /// # Errors
    ///
    /// Returns [`DmError::MisalignedAtomic`] or [`DmError::InvalidAddress`].
    pub fn faa_u64(&self, offset: u64, delta: u64) -> Result<u64, DmError> {
        Ok(self.word_cell(offset)?.fetch_add(delta, Ordering::AcqRel))
    }

    /// Allocates `size` bytes on this node, returning a pointer to the
    /// start. The returned region is 8-byte aligned and zeroed.
    ///
    /// # Errors
    ///
    /// Returns [`DmError::OutOfMemory`] when the pool is exhausted.
    pub fn alloc(&self, size: usize) -> Result<RemotePtr, DmError> {
        let off = self
            .allocator
            .lock()
            .alloc(size as u64)
            .ok_or(DmError::OutOfMemory {
                mn_id: self.id,
                requested: size,
            })?;
        // Zero the region so recycled blocks don't leak stale contents
        // (a fresh RDMA-registered region is zeroed too).
        let zero = vec![0u8; size];
        self.write_bytes(off, &zero)?;
        Ok(RemotePtr::new(self.id, off))
    }

    /// Releases a region previously returned by [`MemoryNode::alloc`].
    ///
    /// # Errors
    ///
    /// Returns [`DmError::InvalidFree`] if `ptr` is not a live allocation on
    /// this node.
    pub fn free(&self, ptr: RemotePtr) -> Result<(), DmError> {
        if ptr.mn_id() != self.id || ptr.is_null() {
            return Err(DmError::InvalidFree { ptr: ptr.to_raw() });
        }
        self.allocator
            .lock()
            .free(ptr.offset())
            .then_some(())
            .ok_or(DmError::InvalidFree { ptr: ptr.to_raw() })
    }

    /// Releases a region through the *reclamation* path: identical to
    /// [`MemoryNode::free`] but the returned bytes are also attributed to
    /// [`AllocStats::reclaimed_bytes`]. Used by the batched `Free` verb the
    /// epoch reclaimer issues.
    ///
    /// # Errors
    ///
    /// Returns [`DmError::InvalidFree`] if `ptr` is not a live allocation on
    /// this node.
    pub fn free_reclaimed(&self, ptr: RemotePtr) -> Result<(), DmError> {
        if ptr.mn_id() != self.id || ptr.is_null() {
            return Err(DmError::InvalidFree { ptr: ptr.to_raw() });
        }
        self.allocator
            .lock()
            .free_reclaimed(ptr.offset())
            .then_some(())
            .ok_or(DmError::InvalidFree { ptr: ptr.to_raw() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> MemoryNode {
        MemoryNode::new(0, 1 << 20, &NetConfig::default())
    }

    #[test]
    fn read_write_roundtrip_unaligned() {
        let mn = node();
        let data: Vec<u8> = (0..100).collect();
        mn.write_bytes(3, &data).unwrap();
        let mut back = vec![0u8; 100];
        mn.read_bytes(3, &mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn partial_word_writes_do_not_clobber_neighbors() {
        let mn = node();
        mn.write_bytes(0, &[0xFF; 8]).unwrap();
        mn.write_bytes(2, &[0xAA; 3]).unwrap();
        let mut back = [0u8; 8];
        mn.read_bytes(0, &mut back).unwrap();
        assert_eq!(back, [0xFF, 0xFF, 0xAA, 0xAA, 0xAA, 0xFF, 0xFF, 0xFF]);
    }

    #[test]
    fn cas_returns_previous_value() {
        let mn = node();
        mn.store_u64(64, 7).unwrap();
        assert_eq!(mn.cas_u64(64, 7, 9).unwrap(), 7);
        assert_eq!(mn.load_u64(64).unwrap(), 9);
        // failed CAS: returns current value, leaves memory untouched
        assert_eq!(mn.cas_u64(64, 7, 11).unwrap(), 9);
        assert_eq!(mn.load_u64(64).unwrap(), 9);
    }

    #[test]
    fn faa_accumulates() {
        let mn = node();
        assert_eq!(mn.faa_u64(128, 5).unwrap(), 0);
        assert_eq!(mn.faa_u64(128, 3).unwrap(), 5);
        assert_eq!(mn.load_u64(128).unwrap(), 8);
    }

    #[test]
    fn misaligned_atomics_rejected() {
        let mn = node();
        assert!(matches!(
            mn.load_u64(4),
            Err(DmError::MisalignedAtomic { .. })
        ));
        assert!(matches!(
            mn.cas_u64(1, 0, 1),
            Err(DmError::MisalignedAtomic { .. })
        ));
    }

    #[test]
    fn out_of_range_access_rejected() {
        let mn = node();
        let cap = mn.capacity() as u64;
        let mut b = [0u8; 16];
        assert!(mn.read_bytes(cap - 8, &mut b).is_err());
        assert!(mn.store_u64(cap, 1).is_err());
    }

    #[test]
    fn alloc_is_zeroed_and_aligned() {
        let mn = node();
        let p = mn.alloc(100).unwrap();
        assert_eq!(p.offset() % 8, 0);
        let mut b = vec![1u8; 100];
        mn.read_bytes(p.offset(), &mut b).unwrap();
        assert!(b.iter().all(|&x| x == 0));
    }

    #[test]
    fn alloc_free_recycles_and_rezeros() {
        let mn = node();
        let p = mn.alloc(64).unwrap();
        mn.write_bytes(p.offset(), &[0xAB; 64]).unwrap();
        mn.free(p).unwrap();
        let q = mn.alloc(64).unwrap();
        let mut b = [1u8; 64];
        mn.read_bytes(q.offset(), &mut b).unwrap();
        assert!(b.iter().all(|&x| x == 0));
    }

    #[test]
    fn double_free_rejected() {
        let mn = node();
        let p = mn.alloc(64).unwrap();
        mn.free(p).unwrap();
        assert!(matches!(mn.free(p), Err(DmError::InvalidFree { .. })));
    }

    #[test]
    fn concurrent_faa_is_atomic() {
        let mn = std::sync::Arc::new(node());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let mn = mn.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        mn.faa_u64(256, 1).unwrap();
                    }
                });
            }
        });
        assert_eq!(mn.load_u64(256).unwrap(), 4000);
    }
}
