//! The remote-access engine interface: verbs + batching + instrumentation.
//!
//! [`Transport`] is the single seam between index structures and the
//! substrate. Index crates (`sphinx`, `baselines`, `bptree`, `race-hash`)
//! never build [`DoorbellBatch`]es themselves; they call the provided
//! combinators here, so every round trip flows through one choke point
//! where the per-client [`ClientStats`] counters and the cluster's
//! [`FaultHook`] live. Porting the stack to a different fabric (real RDMA,
//! CXL) means implementing this trait once, not touching five crates.
//!
//! ## Completion-queue execution
//!
//! The trait follows the io_uring idiom: [`submit`](Transport::submit)
//! enqueues a batch without blocking and returns an [`SqeToken`];
//! [`flush_submitted`](Transport::flush_submitted) rings the doorbell for
//! everything pending, fusing same-MN verbs from *different* submissions
//! into one physical message burst; [`poll`](Transport::poll) /
//! [`wait`](Transport::wait) reap per-token completions. The classic
//! blocking [`execute`](Transport::execute) is a submit+wait shim over
//! this queue, so straight-line callers keep working unchanged while
//! pipelined callers (see `node-engine`'s op scheduler) keep several
//! operations in flight per worker.

use crate::addr::RemotePtr;
use crate::client::{DoorbellBatch, Verb, VerbResult};
use crate::error::DmError;
use crate::stats::ClientStats;

/// Shared bounded-retry configuration for every remote protocol loop.
///
/// Before this existed each index crate hard-coded its own constants
/// (`OP_RETRY_LIMIT`, `IO_RETRY_LIMIT`, `RETRY_LIMIT`, `SPIN_NS`).
/// The defaults preserve those values:
///
/// * [`op_retries`](RetryPolicy::op_retries) = 200 000 — full-operation
///   loops (lookup through the hash table, lock acquisition, insert
///   descent). The bound only exists to turn livelock into a reported
///   error; healthy contention resolves within tens of iterations.
/// * [`io_retries`](RetryPolicy::io_retries) = 64 — single-node validated
///   reads (torn checksum / seqlock retries). A torn read means a writer
///   was mid-flight, so a handful of retries always suffices; 64 is deep
///   paranoia.
/// * [`backoff_ns`](RetryPolicy::backoff_ns) = 200 — virtual nanoseconds
///   charged per retry (plus an OS `yield_now`, see
///   [`Transport::backoff`]), modelling CN-side pause before re-polling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempt bound for full-operation retry loops.
    pub op_retries: usize,
    /// Attempt bound for single-node validated-read loops.
    pub io_retries: usize,
    /// Virtual time charged by one [`Transport::backoff`] call.
    pub backoff_ns: u64,
}

impl RetryPolicy {
    /// The documented defaults (see the type-level docs).
    pub const fn new() -> Self {
        RetryPolicy {
            op_retries: 200_000,
            io_retries: 64,
            backoff_ns: 200,
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::new()
    }
}

/// A fault-injection hook applied to every READ result at the
/// [`Transport::execute`] choke point (installed cluster-wide via
/// [`DmCluster::set_fault_hook`](crate::DmCluster::set_fault_hook)).
///
/// The hook corrupts only the *returned* bytes — remote memory stays
/// intact — so an injected fault behaves exactly like a torn RDMA read:
/// transient, and gone on retry. Tests use this to prove the validated
/// read paths (checksums, seqlocks) catch arbitrary word tears.
pub trait FaultHook: Send + Sync {
    /// May mutate `data`, the bytes about to be returned for a READ of
    /// `ptr`. Called after memory effects are applied, before the result
    /// reaches the caller.
    fn corrupt_read(&self, ptr: RemotePtr, data: &mut [u8]);
}

/// A ticket identifying one submitted doorbell batch on a transport's
/// submission queue. Redeem it with [`Transport::poll`] or
/// [`Transport::wait`]; tokens are not transferable between transports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SqeToken(u64);

impl SqeToken {
    /// The token's raw sequence number — stable within one transport's
    /// lifetime. Trace events identify burst members by this value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Submission/completion queue state backing the io_uring-style half of
/// [`Transport`].
///
/// An implementation embeds one `CqState` and hands it out via
/// [`Transport::cq`]; the provided [`submit`](Transport::submit) /
/// [`poll`](Transport::poll) / [`wait`](Transport::wait) methods do the
/// bookkeeping, and the implementation's
/// [`flush_submitted`](Transport::flush_submitted) moves entries from the
/// submission side to the completion side, attaching each batch's results
/// or error.
#[derive(Debug, Default)]
pub struct CqState {
    next_token: u64,
    sq: Vec<(SqeToken, DoorbellBatch)>,
    cq: Vec<(SqeToken, Result<Vec<VerbResult>, DmError>)>,
}

impl CqState {
    /// Creates an empty submission/completion queue.
    pub fn new() -> Self {
        CqState::default()
    }

    /// Enqueues a batch on the submission queue and mints its token.
    pub fn enqueue(&mut self, batch: DoorbellBatch) -> SqeToken {
        let token = SqeToken(self.next_token);
        self.next_token += 1;
        self.sq.push((token, batch));
        token
    }

    /// Drains the submission queue, in submission order. The flusher must
    /// [`complete`](CqState::complete) every drained token.
    pub fn take_submitted(&mut self) -> Vec<(SqeToken, DoorbellBatch)> {
        std::mem::take(&mut self.sq)
    }

    /// Posts a completion (results or the batch's error) for `token`.
    pub fn complete(&mut self, token: SqeToken, result: Result<Vec<VerbResult>, DmError>) {
        self.cq.push((token, result));
    }

    /// Reaps the completion for `token` if it has been posted.
    pub fn reap(&mut self, token: SqeToken) -> Option<Result<Vec<VerbResult>, DmError>> {
        let idx = self.cq.iter().position(|(t, _)| *t == token)?;
        Some(self.cq.swap_remove(idx).1)
    }

    /// Number of batches submitted but not yet flushed.
    pub fn submitted_len(&self) -> usize {
        self.sq.len()
    }

    /// Number of completions posted but not yet reaped.
    pub fn completed_len(&self) -> usize {
        self.cq.len()
    }
}

/// One-sided remote access with doorbell batching and unified counters.
///
/// [`DmClient`](crate::DmClient) is the simulator-backed implementation.
/// All the batch-building combinators are provided methods layered on
/// [`execute`](Transport::execute) — itself a provided submit+wait shim
/// over the completion queue — so an implementation only supplies the
/// required primitives ([`cq`](Transport::cq),
/// [`flush_submitted`](Transport::flush_submitted), and the
/// clock/placement/allocation hooks) and inherits identical batching
/// semantics and accounting.
pub trait Transport {
    /// The transport's submission/completion queue state.
    fn cq(&mut self) -> &mut CqState;

    /// Rings the doorbell for every submitted-but-unflushed batch and
    /// posts each batch's completion (results in verb order, or the
    /// batch's error) to the completion queue.
    ///
    /// Verbs from *different* submissions that target the same MN must be
    /// fused into one physical message burst — charged one per-message
    /// cost each but sharing a single round trip — while each submission
    /// still accounts its own logical [`ClientStats::round_trips`].
    /// Memory effects apply in submission order, verb order within a
    /// batch.
    fn flush_submitted(&mut self);

    /// Enqueues a doorbell batch without blocking; the network is not
    /// touched until the next [`flush_submitted`](Transport::flush_submitted)
    /// (or a [`wait`](Transport::wait) that triggers one).
    fn submit(&mut self, batch: DoorbellBatch) -> SqeToken {
        self.cq().enqueue(batch)
    }

    /// Reaps the completion for `token` if already flushed; `None` while
    /// the batch still sits on the submission queue.
    fn poll(&mut self, token: SqeToken) -> Option<Result<Vec<VerbResult>, DmError>> {
        self.cq().reap(token)
    }

    /// Blocks (in virtual time) until the completion for `token` is
    /// available: reaps it if posted, otherwise flushes the submission
    /// queue and reaps.
    ///
    /// # Errors
    ///
    /// Returns the error the batch completed with (addressing/alignment
    /// faults; effects of verbs preceding the failed one are retained).
    ///
    /// # Panics
    ///
    /// Panics if `token` was never submitted on this transport or was
    /// already reaped.
    fn wait(&mut self, token: SqeToken) -> Result<Vec<VerbResult>, DmError> {
        if let Some(done) = self.cq().reap(token) {
            return done;
        }
        self.flush_submitted();
        self.cq()
            .reap(token)
            .expect("waited on an SqeToken that was never submitted (or already reaped)")
    }

    /// Executes a doorbell batch: verbs to the same MN share one round
    /// trip, verbs to `k` MNs cost `k` parallel round trips, and memory
    /// effects apply **in verb order** (a READ after a CAS in one batch
    /// observes the post-CAS state). Results are returned in verb order.
    ///
    /// This is a submit+wait shim over the completion queue: the batch is
    /// enqueued and the queue immediately flushed, so anything else
    /// already sitting on the submission queue is flushed (and possibly
    /// fused) along with it.
    ///
    /// # Errors
    ///
    /// Returns the first addressing/alignment error; effects of preceding
    /// verbs are retained.
    fn execute(&mut self, batch: DoorbellBatch) -> Result<Vec<VerbResult>, DmError> {
        if batch.is_empty() {
            return Ok(Vec::new());
        }
        let token = self.submit(batch);
        self.wait(token)
    }

    /// Cumulative per-client network counters (round trips, verbs, bytes).
    fn stats(&self) -> ClientStats;

    /// Current virtual time in nanoseconds.
    fn clock_ns(&self) -> u64;

    /// Advances the virtual clock by `ns` (models CN-side compute).
    fn advance_clock(&mut self, ns: u64);

    /// Consistent-hash placement: which MN owns an object with this hash.
    fn place(&self, hash: u64) -> u16;

    /// Number of memory nodes reachable through this transport.
    fn num_mns(&self) -> u16;

    /// Allocates `size` bytes on memory node `mn_id` (off the critical
    /// path: charged no network time, like leased slabs in FaRM/Sherman).
    ///
    /// # Errors
    ///
    /// Returns [`DmError::OutOfMemory`] or [`DmError::UnknownMemoryNode`].
    fn alloc(&mut self, mn_id: u16, size: usize) -> Result<RemotePtr, DmError>;

    /// Frees a previously allocated region.
    ///
    /// # Errors
    ///
    /// Returns [`DmError::InvalidFree`] or [`DmError::UnknownMemoryNode`].
    fn free(&mut self, ptr: RemotePtr) -> Result<(), DmError>;

    /// Allocates on the MN chosen by consistent hashing of `hash`.
    ///
    /// # Errors
    ///
    /// Returns [`DmError::OutOfMemory`].
    fn alloc_placed(&mut self, hash: u64, size: usize) -> Result<RemotePtr, DmError> {
        let mn = self.place(hash);
        self.alloc(mn, size)
    }

    /// Reads `len` bytes at `ptr` in one round trip.
    ///
    /// # Errors
    ///
    /// Returns [`DmError::InvalidAddress`] for out-of-pool access.
    fn read(&mut self, ptr: RemotePtr, len: usize) -> Result<Vec<u8>, DmError> {
        let mut res = self.execute([Verb::Read { ptr, len }].into_iter().collect())?;
        Ok(res.pop().expect("one result").into_read())
    }

    /// Writes `data` at `ptr` in one round trip.
    ///
    /// # Errors
    ///
    /// Returns [`DmError::InvalidAddress`] for out-of-pool access.
    fn write(&mut self, ptr: RemotePtr, data: &[u8]) -> Result<(), DmError> {
        self.execute(
            [Verb::Write {
                ptr,
                data: data.to_vec(),
            }]
            .into_iter()
            .collect(),
        )?;
        Ok(())
    }

    /// Reads the 8-byte word at `ptr` (one round trip).
    ///
    /// # Errors
    ///
    /// Returns [`DmError::InvalidAddress`] for out-of-pool access.
    fn read_u64(&mut self, ptr: RemotePtr) -> Result<u64, DmError> {
        let bytes = self.read(ptr, 8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Writes the 8-byte word at `ptr` (one round trip).
    ///
    /// # Errors
    ///
    /// Returns [`DmError::InvalidAddress`] for out-of-pool access.
    fn write_u64(&mut self, ptr: RemotePtr, value: u64) -> Result<(), DmError> {
        self.write(ptr, &value.to_le_bytes())
    }

    /// CAS on the word at `ptr`; returns the previous value (success ⇔ it
    /// equals `expected`).
    ///
    /// # Errors
    ///
    /// Returns [`DmError::MisalignedAtomic`] or [`DmError::InvalidAddress`].
    fn cas(&mut self, ptr: RemotePtr, expected: u64, new: u64) -> Result<u64, DmError> {
        let mut res = self.execute([Verb::Cas { ptr, expected, new }].into_iter().collect())?;
        Ok(res.pop().expect("one result").into_cas())
    }

    /// FAA on the word at `ptr`; returns the previous value.
    ///
    /// # Errors
    ///
    /// Returns [`DmError::MisalignedAtomic`] or [`DmError::InvalidAddress`].
    fn faa(&mut self, ptr: RemotePtr, delta: u64) -> Result<u64, DmError> {
        let mut res = self.execute([Verb::Faa { ptr, delta }].into_iter().collect())?;
        match res.pop().expect("one result") {
            VerbResult::Faa(v) => Ok(v),
            other => panic!("expected Faa result, got {other:?}"),
        }
    }

    /// Doorbell-batched reads: all targets on one MN share a single round
    /// trip (the INHT's parallel hash-entry fetch, scan leaf runs,
    /// multi-get lanes). Results are in input order.
    ///
    /// # Errors
    ///
    /// Returns [`DmError::InvalidAddress`] for out-of-pool access.
    fn read_many(&mut self, reads: &[(RemotePtr, usize)]) -> Result<Vec<Vec<u8>>, DmError> {
        let batch: DoorbellBatch = reads
            .iter()
            .map(|&(ptr, len)| Verb::Read { ptr, len })
            .collect();
        Ok(self
            .execute(batch)?
            .into_iter()
            .map(VerbResult::into_read)
            .collect())
    }

    /// Doorbell-batched writes (e.g. publishing a split's leaf + inner
    /// node together, or a seqlock node's tail/body/header trio).
    ///
    /// # Errors
    ///
    /// Returns [`DmError::InvalidAddress`] for out-of-pool access.
    fn write_many(&mut self, writes: Vec<(RemotePtr, Vec<u8>)>) -> Result<(), DmError> {
        let batch: DoorbellBatch = writes
            .into_iter()
            .map(|(ptr, data)| Verb::Write { ptr, data })
            .collect();
        self.execute(batch)?;
        Ok(())
    }

    /// One CAS piggybacked with one read in a single batch. Verbs apply in
    /// order, so the read observes the post-CAS state — the guarded-install
    /// and lock-acquire building block (§IV). Returns the CAS's previous
    /// value and the read bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DmError::MisalignedAtomic`] or [`DmError::InvalidAddress`].
    fn cas_and_read(
        &mut self,
        cas_ptr: RemotePtr,
        expected: u64,
        new: u64,
        read_ptr: RemotePtr,
        read_len: usize,
    ) -> Result<(u64, Vec<u8>), DmError> {
        let batch: DoorbellBatch = [
            Verb::Cas {
                ptr: cas_ptr,
                expected,
                new,
            },
            Verb::Read {
                ptr: read_ptr,
                len: read_len,
            },
        ]
        .into_iter()
        .collect();
        let mut res = self.execute(batch)?;
        let bytes = res.pop().expect("read result").into_read();
        let prev = res.pop().expect("cas result").into_cas();
        Ok((prev, bytes))
    }

    /// Doorbell-batched FAAs; returns previous values in input order (used
    /// by RACE segment splits to bump every bucket header's version in one
    /// round trip).
    ///
    /// # Errors
    ///
    /// Returns [`DmError::MisalignedAtomic`] or [`DmError::InvalidAddress`].
    fn faa_many(&mut self, targets: &[(RemotePtr, u64)]) -> Result<Vec<u64>, DmError> {
        let batch: DoorbellBatch = targets
            .iter()
            .map(|&(ptr, delta)| Verb::Faa { ptr, delta })
            .collect();
        self.execute(batch)?
            .into_iter()
            .map(|r| match r {
                VerbResult::Faa(v) => Ok(v),
                other => panic!("expected Faa result, got {other:?}"),
            })
            .collect()
    }

    /// Doorbell-batched frees through the *reclamation* path: pointers on
    /// one MN share a single round trip, and the released bytes are
    /// attributed to [`AllocStats::reclaimed_bytes`](crate::AllocStats).
    /// The epoch reclaimer drains a quiesced limbo batch with one call.
    ///
    /// Unlike [`free`](Transport::free) (the allocation fast path, off the
    /// critical path and charged no network time), these frees travel as
    /// verbs and pay the network cost model.
    ///
    /// # Errors
    ///
    /// Returns [`DmError::InvalidFree`] on a dead/unknown pointer; frees
    /// preceding the failed one are retained.
    fn free_many(&mut self, ptrs: &[RemotePtr]) -> Result<(), DmError> {
        let batch: DoorbellBatch = ptrs.iter().map(|&ptr| Verb::Free { ptr }).collect();
        self.execute(batch)?;
        Ok(())
    }

    /// Contention backoff: charges [`RetryPolicy::backoff_ns`] of virtual
    /// time and yields the OS thread so the conflicting (simulated) peer
    /// can make progress.
    fn backoff(&mut self, policy: &RetryPolicy) {
        self.advance_clock(policy.backoff_ns);
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterConfig, DmCluster};
    use crate::DmClient;

    fn client() -> (DmCluster, DmClient) {
        let c = DmCluster::new(ClusterConfig {
            num_mns: 2,
            num_cns: 1,
            mn_capacity: 1 << 20,
            ..Default::default()
        });
        let cl = c.client(0);
        (c, cl)
    }

    /// The combinators must preserve the doorbell accounting: same-MN
    /// batches are one round trip through any Transport.
    #[test]
    fn read_many_same_mn_is_one_round_trip() {
        let (_c, mut t) = client();
        let a = Transport::alloc(&mut t, 0, 64).unwrap();
        let b = Transport::alloc(&mut t, 0, 64).unwrap();
        Transport::write(&mut t, a, b"aaaa").unwrap();
        Transport::write(&mut t, b, b"bbbb").unwrap();
        let before = Transport::stats(&t).round_trips;
        let got = t.read_many(&[(a, 4), (b, 4)]).unwrap();
        assert_eq!(got, vec![b"aaaa".to_vec(), b"bbbb".to_vec()]);
        assert_eq!(Transport::stats(&t).round_trips - before, 1);
    }

    #[test]
    fn read_many_two_mns_is_two_round_trips() {
        let (_c, mut t) = client();
        let a = Transport::alloc(&mut t, 0, 64).unwrap();
        let b = Transport::alloc(&mut t, 1, 64).unwrap();
        let before = Transport::stats(&t).round_trips;
        t.read_many(&[(a, 8), (b, 8)]).unwrap();
        assert_eq!(Transport::stats(&t).round_trips - before, 2);
    }

    #[test]
    fn cas_and_read_observes_post_cas_state() {
        let (_c, mut t) = client();
        let p = Transport::alloc(&mut t, 0, 8).unwrap();
        Transport::write_u64(&mut t, p, 5).unwrap();
        let before = Transport::stats(&t).round_trips;
        let (prev, bytes) = t.cas_and_read(p, 5, 9, p, 8).unwrap();
        assert_eq!(Transport::stats(&t).round_trips - before, 1);
        assert_eq!(prev, 5);
        assert_eq!(u64::from_le_bytes(bytes.try_into().unwrap()), 9);
        // A losing CAS leaves the word alone and the read proves it.
        let (prev, bytes) = t.cas_and_read(p, 5, 11, p, 8).unwrap();
        assert_eq!(prev, 9);
        assert_eq!(u64::from_le_bytes(bytes.try_into().unwrap()), 9);
    }

    #[test]
    fn write_many_and_faa_many_batch() {
        let (_c, mut t) = client();
        let a = Transport::alloc(&mut t, 0, 8).unwrap();
        let b = Transport::alloc(&mut t, 0, 8).unwrap();
        let before = Transport::stats(&t).round_trips;
        t.write_many(vec![
            (a, 1u64.to_le_bytes().to_vec()),
            (b, 2u64.to_le_bytes().to_vec()),
        ])
        .unwrap();
        let prevs = t.faa_many(&[(a, 10), (b, 10)]).unwrap();
        assert_eq!(Transport::stats(&t).round_trips - before, 2);
        assert_eq!(prevs, vec![1, 2]);
        assert_eq!(Transport::read_u64(&mut t, a).unwrap(), 11);
        assert_eq!(Transport::read_u64(&mut t, b).unwrap(), 12);
    }

    #[test]
    fn free_many_batches_and_attributes_reclaimed_bytes() {
        let (c, mut t) = client();
        let a = Transport::alloc(&mut t, 0, 64).unwrap();
        let b = Transport::alloc(&mut t, 0, 64).unwrap();
        let live = c.mn(0).unwrap().alloc_stats().live_bytes;
        let before = Transport::stats(&t).round_trips;
        t.free_many(&[a, b]).unwrap();
        assert_eq!(Transport::stats(&t).round_trips - before, 1);
        assert_eq!(Transport::stats(&t).frees, 2);
        let stats = c.mn(0).unwrap().alloc_stats();
        assert_eq!(stats.live_bytes, live - 128);
        assert_eq!(stats.reclaimed_bytes, 128);
        // The fast-path free is not attributed to reclamation.
        let d = Transport::alloc(&mut t, 0, 64).unwrap();
        Transport::free(&mut t, d).unwrap();
        assert_eq!(c.mn(0).unwrap().alloc_stats().reclaimed_bytes, 128);
    }

    #[test]
    fn free_many_rejects_dead_pointer() {
        let (_c, mut t) = client();
        let a = Transport::alloc(&mut t, 0, 64).unwrap();
        Transport::free(&mut t, a).unwrap();
        assert!(matches!(
            t.free_many(&[a]),
            Err(DmError::InvalidFree { .. })
        ));
    }

    #[test]
    fn backoff_charges_policy_time() {
        let (_c, mut t) = client();
        let policy = RetryPolicy::default();
        let t0 = Transport::clock_ns(&t);
        t.backoff(&policy);
        assert_eq!(Transport::clock_ns(&t) - t0, policy.backoff_ns);
    }

    #[test]
    fn default_policy_matches_documented_constants() {
        let p = RetryPolicy::default();
        assert_eq!(
            (p.op_retries, p.io_retries, p.backoff_ns),
            (200_000, 64, 200)
        );
    }
}
