//! Cluster assembly: memory nodes, compute-node NICs, placement ring.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::client::DmClient;
use crate::error::DmError;
use crate::heap::MemoryNode;
use crate::net::{NetConfig, Nic};
use crate::ring::HashRing;
use crate::transport::FaultHook;

/// Topology and cost parameters for a simulated DM cluster.
///
/// The defaults mirror the paper's testbed: 3 machines, each hosting one CN
/// and one MN, interconnected at 100 Gbps with ~2 µs RTT.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of memory nodes.
    pub num_mns: u16,
    /// Number of compute nodes (each has its own NIC shared by its workers).
    pub num_cns: u16,
    /// Byte capacity of each memory node's pool.
    pub mn_capacity: usize,
    /// Network cost model.
    pub net: NetConfig,
    /// Virtual nodes per MN on the consistent-hashing ring.
    pub vnodes: u32,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            num_mns: 3,
            num_cns: 3,
            mn_capacity: 256 << 20, // 256 MiB per MN
            net: NetConfig::default(),
            vnodes: 64,
        }
    }
}

/// Cluster-wide [`FaultHook`] slot: installed once, observed by every
/// client at the READ choke point in `DmClient::execute`.
#[derive(Default)]
pub(crate) struct FaultSlot(Mutex<Option<Arc<dyn FaultHook>>>);

impl FaultSlot {
    pub(crate) fn get(&self) -> Option<Arc<dyn FaultHook>> {
        self.0.lock().clone()
    }

    fn set(&self, hook: Option<Arc<dyn FaultHook>>) {
        *self.0.lock() = hook;
    }
}

impl fmt::Debug for FaultSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = if self.0.lock().is_some() {
            "installed"
        } else {
            "empty"
        };
        write!(f, "FaultSlot({state})")
    }
}

#[derive(Debug)]
pub(crate) struct ClusterInner {
    pub(crate) mns: Vec<MemoryNode>,
    pub(crate) cn_nics: Vec<Nic>,
    pub(crate) ring: HashRing,
    pub(crate) config: ClusterConfig,
    pub(crate) fault_hook: FaultSlot,
    pub(crate) fault_injections: AtomicU64,
}

impl ClusterInner {
    /// Records one READ whose bytes were actually altered by the installed
    /// [`FaultHook`] (called from the `DmClient::execute` choke point).
    pub(crate) fn note_fault_injection(&self) {
        self.fault_injections.fetch_add(1, Ordering::Relaxed);
    }
}

/// A simulated disaggregated-memory cluster.
///
/// Cheap to clone (it is an `Arc` handle); clone it into worker threads and
/// create one [`DmClient`] per worker.
///
/// # Examples
///
/// ```
/// use dm_sim::{DmCluster, ClusterConfig};
///
/// let cluster = DmCluster::new(ClusterConfig { num_mns: 2, ..Default::default() });
/// assert_eq!(cluster.num_mns(), 2);
/// let mn = cluster.place(42);
/// assert!(mn < 2);
/// ```
#[derive(Debug, Clone)]
pub struct DmCluster {
    inner: Arc<ClusterInner>,
}

impl DmCluster {
    /// Builds a cluster from the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `num_mns` or `num_cns` is zero.
    pub fn new(config: ClusterConfig) -> Self {
        assert!(config.num_mns > 0, "cluster needs at least one memory node");
        assert!(
            config.num_cns > 0,
            "cluster needs at least one compute node"
        );
        let mns = (0..config.num_mns)
            .map(|id| MemoryNode::new(id, config.mn_capacity, &config.net))
            .collect();
        let cn_nics = (0..config.num_cns)
            .map(|_| Nic::new(config.net.clone()))
            .collect();
        let ring = HashRing::new(config.num_mns, config.vnodes);
        DmCluster {
            inner: Arc::new(ClusterInner {
                mns,
                cn_nics,
                ring,
                config,
                fault_hook: FaultSlot::default(),
                fault_injections: AtomicU64::new(0),
            }),
        }
    }

    /// Creates a client attached to compute node `cn_id`'s NIC.
    ///
    /// # Panics
    ///
    /// Panics if `cn_id` is out of range.
    pub fn client(&self, cn_id: u16) -> DmClient {
        assert!(
            (cn_id as usize) < self.inner.cn_nics.len(),
            "cn_id {cn_id} out of range (cluster has {} CNs)",
            self.inner.cn_nics.len()
        );
        DmClient::new(self.inner.clone(), cn_id)
    }

    /// Number of memory nodes.
    pub fn num_mns(&self) -> u16 {
        self.inner.config.num_mns
    }

    /// Number of compute nodes.
    pub fn num_cns(&self) -> u16 {
        self.inner.config.num_cns
    }

    /// Consistent-hash placement: which MN owns an object with this hash.
    pub fn place(&self, hash: u64) -> u16 {
        self.inner.ring.place(hash)
    }

    /// Direct access to a memory node (for server-side setup and
    /// memory-usage accounting, not for data-path access).
    ///
    /// # Errors
    ///
    /// Returns [`DmError::UnknownMemoryNode`] for an out-of-range id.
    pub fn mn(&self, mn_id: u16) -> Result<&MemoryNode, DmError> {
        self.inner
            .mns
            .get(mn_id as usize)
            .ok_or(DmError::UnknownMemoryNode { mn_id })
    }

    /// Total live bytes across all MN pools (Fig. 6 accounting).
    pub fn total_live_bytes(&self) -> u64 {
        self.inner
            .mns
            .iter()
            .map(|m| m.alloc_stats().live_bytes)
            .sum()
    }

    /// Sum of messages processed by all MN NICs.
    pub fn total_mn_msgs(&self) -> u64 {
        self.inner.mns.iter().map(|m| m.nic().total_msgs()).sum()
    }

    /// Resets every NIC's queue state and counters (between benchmark
    /// phases, so the load phase does not pollute run-phase clocks).
    pub fn reset_network(&self) {
        for mn in &self.inner.mns {
            mn.nic().reset();
        }
        for nic in &self.inner.cn_nics {
            nic.reset();
        }
    }

    /// The cluster's configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.inner.config
    }

    /// Installs (or, with `None`, removes) the cluster-wide fault-injection
    /// hook. Every subsequent READ issued by any client — existing or newly
    /// created — passes its result bytes through the hook at the
    /// [`Transport::execute`](crate::Transport::execute) choke point.
    /// Remote memory is never altered, so injected faults are transient.
    pub fn set_fault_hook(&self, hook: Option<Arc<dyn FaultHook>>) {
        self.inner.fault_hook.set(hook);
    }

    /// Number of READs whose result bytes were actually corrupted by the
    /// installed [`FaultHook`] since the cluster was created. Hook
    /// invocations that leave the buffer unchanged are not counted, so a
    /// test can assert "N corruptions injected, N recoveries observed".
    pub fn fault_injections(&self) -> u64 {
        self.inner.fault_injections.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cluster_shape() {
        let c = DmCluster::new(ClusterConfig::default());
        assert_eq!(c.num_mns(), 3);
        assert_eq!(c.num_cns(), 3);
        assert!(c.mn(0).is_ok());
        assert!(c.mn(9).is_err());
    }

    #[test]
    fn placement_covers_all_mns() {
        let c = DmCluster::new(ClusterConfig {
            num_mns: 4,
            ..Default::default()
        });
        let mut seen = [false; 4];
        for i in 0..1000u64 {
            seen[c.place(i) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn client_for_unknown_cn_panics() {
        let c = DmCluster::new(ClusterConfig::default());
        let _ = c.client(99);
    }

    #[test]
    fn fault_injections_count_only_actual_corruptions() {
        use crate::addr::RemotePtr;

        struct FlipEveryOther(AtomicU64);
        impl FaultHook for FlipEveryOther {
            fn corrupt_read(&self, _ptr: RemotePtr, data: &mut [u8]) {
                if self.0.fetch_add(1, Ordering::Relaxed).is_multiple_of(2) {
                    if let Some(b) = data.first_mut() {
                        *b ^= 0xFF;
                    }
                }
            }
        }

        let c = DmCluster::new(ClusterConfig::default());
        let mut cl = c.client(0);
        let p = cl.alloc(0, 8).unwrap();
        cl.write(p, &[7u8; 8]).unwrap();
        assert_eq!(c.fault_injections(), 0);
        c.set_fault_hook(Some(Arc::new(FlipEveryOther(AtomicU64::new(0)))));
        for _ in 0..10 {
            let _ = cl.read(p, 8).unwrap();
        }
        // The hook ran 10 times but only altered bytes on 5 of them.
        assert_eq!(c.fault_injections(), 5);
        c.set_fault_hook(None);
        let _ = cl.read(p, 8).unwrap();
        assert_eq!(c.fault_injections(), 5);
    }

    #[test]
    fn live_bytes_aggregate() {
        let c = DmCluster::new(ClusterConfig::default());
        c.mn(0).unwrap().alloc(100).unwrap();
        c.mn(1).unwrap().alloc(100).unwrap();
        assert_eq!(c.total_live_bytes(), 256); // two 128-byte classes
    }
}
