//! Cluster assembly: memory nodes, compute-node NICs, placement ring.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::client::DmClient;
use crate::error::DmError;
use crate::heap::MemoryNode;
use crate::mn_stats::{ClusterStats, MnStats};
use crate::net::{NetConfig, Nic};
use crate::ring::HashRing;
use crate::transport::FaultHook;

/// Topology and cost parameters for a simulated DM cluster.
///
/// The defaults mirror the paper's testbed: 3 machines, each hosting one CN
/// and one MN, interconnected at 100 Gbps with ~2 µs RTT.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of memory nodes.
    pub num_mns: u16,
    /// Number of compute nodes (each has its own NIC shared by its workers).
    pub num_cns: u16,
    /// Byte capacity of each memory node's pool.
    pub mn_capacity: usize,
    /// Network cost model.
    pub net: NetConfig,
    /// Virtual nodes per MN on the consistent-hashing ring.
    pub vnodes: u32,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            num_mns: 3,
            num_cns: 3,
            mn_capacity: 256 << 20, // 256 MiB per MN
            net: NetConfig::default(),
            vnodes: 64,
        }
    }
}

/// Cluster-wide [`FaultHook`] slot: installed once, observed by every
/// client at the READ choke point in `DmClient::execute`.
#[derive(Default)]
pub(crate) struct FaultSlot(Mutex<Option<Arc<dyn FaultHook>>>);

impl FaultSlot {
    pub(crate) fn get(&self) -> Option<Arc<dyn FaultHook>> {
        self.0.lock().clone()
    }

    fn set(&self, hook: Option<Arc<dyn FaultHook>>) {
        *self.0.lock() = hook;
    }
}

impl fmt::Debug for FaultSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = if self.0.lock().is_some() {
            "installed"
        } else {
            "empty"
        };
        write!(f, "FaultSlot({state})")
    }
}

#[derive(Debug)]
pub(crate) struct ClusterInner {
    pub(crate) mns: Vec<MemoryNode>,
    pub(crate) cn_nics: Vec<Nic>,
    pub(crate) ring: HashRing,
    pub(crate) config: ClusterConfig,
    pub(crate) fault_hook: FaultSlot,
    pub(crate) fault_injections: AtomicU64,
    pub(crate) dropped_verbs: AtomicU64,
}

impl ClusterInner {
    /// Records one READ whose bytes were actually altered by the installed
    /// [`FaultHook`] (called from the `DmClient::execute` choke point).
    pub(crate) fn note_fault_injection(&self) {
        self.fault_injections.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one verb addressed to a nonexistent MN: no node can absorb
    /// it, so it lands in the cluster-wide dropped counter and the
    /// conservation identity stays balanced.
    pub(crate) fn note_dropped_verb(&self) {
        self.dropped_verbs.fetch_add(1, Ordering::Relaxed);
    }
}

/// A simulated disaggregated-memory cluster.
///
/// Cheap to clone (it is an `Arc` handle); clone it into worker threads and
/// create one [`DmClient`] per worker.
///
/// # Examples
///
/// ```
/// use dm_sim::{DmCluster, ClusterConfig};
///
/// let cluster = DmCluster::new(ClusterConfig { num_mns: 2, ..Default::default() });
/// assert_eq!(cluster.num_mns(), 2);
/// let mn = cluster.place(42);
/// assert!(mn < 2);
/// ```
#[derive(Debug, Clone)]
pub struct DmCluster {
    inner: Arc<ClusterInner>,
}

impl DmCluster {
    /// Builds a cluster from the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `num_mns` or `num_cns` is zero.
    pub fn new(config: ClusterConfig) -> Self {
        assert!(config.num_mns > 0, "cluster needs at least one memory node");
        assert!(
            config.num_cns > 0,
            "cluster needs at least one compute node"
        );
        let mns = (0..config.num_mns)
            .map(|id| MemoryNode::new(id, config.mn_capacity, &config.net))
            .collect();
        let cn_nics = (0..config.num_cns)
            .map(|_| Nic::new(config.net.clone()))
            .collect();
        let ring = HashRing::new(config.num_mns, config.vnodes);
        DmCluster {
            inner: Arc::new(ClusterInner {
                mns,
                cn_nics,
                ring,
                config,
                fault_hook: FaultSlot::default(),
                fault_injections: AtomicU64::new(0),
                dropped_verbs: AtomicU64::new(0),
            }),
        }
    }

    /// Creates a client attached to compute node `cn_id`'s NIC.
    ///
    /// # Panics
    ///
    /// Panics if `cn_id` is out of range.
    pub fn client(&self, cn_id: u16) -> DmClient {
        assert!(
            (cn_id as usize) < self.inner.cn_nics.len(),
            "cn_id {cn_id} out of range (cluster has {} CNs)",
            self.inner.cn_nics.len()
        );
        DmClient::new(self.inner.clone(), cn_id)
    }

    /// Number of memory nodes.
    pub fn num_mns(&self) -> u16 {
        self.inner.config.num_mns
    }

    /// Number of compute nodes.
    pub fn num_cns(&self) -> u16 {
        self.inner.config.num_cns
    }

    /// Consistent-hash placement: which MN owns an object with this hash.
    pub fn place(&self, hash: u64) -> u16 {
        self.inner.ring.place(hash)
    }

    /// Direct access to a memory node (for server-side setup and
    /// memory-usage accounting, not for data-path access).
    ///
    /// # Errors
    ///
    /// Returns [`DmError::UnknownMemoryNode`] for an out-of-range id.
    pub fn mn(&self, mn_id: u16) -> Result<&MemoryNode, DmError> {
        self.inner
            .mns
            .get(mn_id as usize)
            .ok_or(DmError::UnknownMemoryNode { mn_id })
    }

    /// Total live bytes across all MN pools (Fig. 6 accounting).
    pub fn total_live_bytes(&self) -> u64 {
        self.inner
            .mns
            .iter()
            .map(|m| m.alloc_stats().live_bytes)
            .sum()
    }

    /// Sum of messages processed by all MN NICs.
    pub fn total_mn_msgs(&self) -> u64 {
        self.inner.mns.iter().map(|m| m.nic().total_msgs()).sum()
    }

    /// Snapshot of the whole cluster's server-side load accounting: one
    /// [`MnStats`] per node plus the dropped-verb counter. Monotone for
    /// the cluster's lifetime (deliberately *not* cleared by
    /// [`DmCluster::reset_network`]); window with [`ClusterStats::since`]
    /// and verify against the summed client view with
    /// [`ClusterStats::check_conservation`].
    pub fn cluster_stats(&self) -> ClusterStats {
        ClusterStats {
            mns: self.inner.mns.iter().map(MemoryNode::mn_stats).collect(),
            dropped_verbs: self.inner.dropped_verbs.load(Ordering::Relaxed),
        }
    }

    /// One node's server-side accounting snapshot, allocation-free (for
    /// time-series samplers on the hot path).
    ///
    /// # Errors
    ///
    /// Returns [`DmError::UnknownMemoryNode`] for an out-of-range id.
    pub fn mn_stats(&self, mn_id: u16) -> Result<MnStats, DmError> {
        self.mn(mn_id).map(MemoryNode::mn_stats)
    }

    /// Resets every NIC's queue state and counters (between benchmark
    /// phases, so the load phase does not pollute run-phase clocks).
    pub fn reset_network(&self) {
        for mn in &self.inner.mns {
            mn.nic().reset();
        }
        for nic in &self.inner.cn_nics {
            nic.reset();
        }
    }

    /// The cluster's configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.inner.config
    }

    /// Installs (or, with `None`, removes) the cluster-wide fault-injection
    /// hook. Every subsequent READ issued by any client — existing or newly
    /// created — passes its result bytes through the hook at the
    /// [`Transport::execute`](crate::Transport::execute) choke point.
    /// Remote memory is never altered, so injected faults are transient.
    pub fn set_fault_hook(&self, hook: Option<Arc<dyn FaultHook>>) {
        self.inner.fault_hook.set(hook);
    }

    /// Number of READs whose result bytes were actually corrupted by the
    /// installed [`FaultHook`] since the cluster was created. Hook
    /// invocations that leave the buffer unchanged are not counted, so a
    /// test can assert "N corruptions injected, N recoveries observed".
    pub fn fault_injections(&self) -> u64 {
        self.inner.fault_injections.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cluster_shape() {
        let c = DmCluster::new(ClusterConfig::default());
        assert_eq!(c.num_mns(), 3);
        assert_eq!(c.num_cns(), 3);
        assert!(c.mn(0).is_ok());
        assert!(c.mn(9).is_err());
    }

    #[test]
    fn placement_covers_all_mns() {
        let c = DmCluster::new(ClusterConfig {
            num_mns: 4,
            ..Default::default()
        });
        let mut seen = [false; 4];
        for i in 0..1000u64 {
            seen[c.place(i) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn client_for_unknown_cn_panics() {
        let c = DmCluster::new(ClusterConfig::default());
        let _ = c.client(99);
    }

    #[test]
    fn fault_injections_count_only_actual_corruptions() {
        use crate::addr::RemotePtr;

        struct FlipEveryOther(AtomicU64);
        impl FaultHook for FlipEveryOther {
            fn corrupt_read(&self, _ptr: RemotePtr, data: &mut [u8]) {
                if self.0.fetch_add(1, Ordering::Relaxed).is_multiple_of(2) {
                    if let Some(b) = data.first_mut() {
                        *b ^= 0xFF;
                    }
                }
            }
        }

        let c = DmCluster::new(ClusterConfig::default());
        let mut cl = c.client(0);
        let p = cl.alloc(0, 8).unwrap();
        cl.write(p, &[7u8; 8]).unwrap();
        assert_eq!(c.fault_injections(), 0);
        c.set_fault_hook(Some(Arc::new(FlipEveryOther(AtomicU64::new(0)))));
        for _ in 0..10 {
            let _ = cl.read(p, 8).unwrap();
        }
        // The hook ran 10 times but only altered bytes on 5 of them.
        assert_eq!(c.fault_injections(), 5);
        c.set_fault_hook(None);
        let _ = cl.read(p, 8).unwrap();
        assert_eq!(c.fault_injections(), 5);
    }

    #[test]
    fn mn_accounting_conserves_simple_ops() {
        use crate::client::{DoorbellBatch, Verb};

        let c = DmCluster::new(ClusterConfig {
            num_mns: 2,
            num_cns: 1,
            mn_capacity: 1 << 20,
            ..Default::default()
        });
        let base = c.cluster_stats();
        let mut cl = c.client(0);
        let a = cl.alloc(0, 64).unwrap();
        let b = cl.alloc(1, 64).unwrap();
        cl.write(a, &[7u8; 32]).unwrap();
        cl.write_u64(b, 5).unwrap();
        cl.cas(b, 5, 6).unwrap();
        cl.faa(b, 1).unwrap();
        cl.read(a, 32).unwrap();
        let dead = cl.alloc(0, 64).unwrap();
        let mut batch = DoorbellBatch::new();
        batch.push(Verb::Free { ptr: dead });
        batch.push(Verb::Read { ptr: a, len: 8 });
        cl.execute(batch).unwrap();

        let delta = c.cluster_stats().since(&base);
        delta.check_conservation(&cl.stats()).unwrap();
        assert_eq!(delta.dropped_verbs, 0);
        // The per-MN split is also exact: MN 0 saw the writes/reads to
        // `a`, MN 1 the atomics on `b`.
        assert_eq!(delta.mns[0].writes, 1);
        assert_eq!(delta.mns[0].reads, 2);
        assert_eq!(delta.mns[0].frees, 1);
        assert_eq!((delta.mns[1].cas, delta.mns[1].faa), (1, 1));
        assert!(delta.mns[0].service_ns > 0);
    }

    #[test]
    fn mn_accounting_conserves_fused_flush_and_doorbells() {
        use crate::client::{DoorbellBatch, Verb};

        let c = DmCluster::new(ClusterConfig {
            num_mns: 2,
            num_cns: 1,
            mn_capacity: 1 << 20,
            ..Default::default()
        });
        let base = c.cluster_stats();
        let mut cl = c.client(0);
        let a = cl.alloc(0, 8).unwrap();
        let b = cl.alloc(0, 8).unwrap();
        let d = cl.alloc(1, 8).unwrap();
        cl.write_u64(a, 1).unwrap();
        cl.write_u64(b, 2).unwrap();
        cl.write_u64(d, 3).unwrap();
        // Three independent single-verb batches fused into one flush:
        // logically three round trips, physically two doorbells (MN 0
        // shared), and the server side must agree doorbell for doorbell.
        let s0 = cl.stats();
        let mid = c.cluster_stats();
        cl.submit(DoorbellBatch::from_iter([Verb::Read { ptr: a, len: 8 }]));
        cl.submit(DoorbellBatch::from_iter([Verb::Read { ptr: b, len: 8 }]));
        cl.submit(DoorbellBatch::from_iter([Verb::Read { ptr: d, len: 8 }]));
        cl.flush_submitted();
        let fused = c.cluster_stats().since(&mid);
        let fused_client = cl.stats().since(&s0);
        assert_eq!(fused_client.doorbells, 2);
        assert_eq!(fused.total_doorbells(), 2);
        assert_eq!(fused.mns[0].doorbells, 1, "MN 0 shared one doorbell");
        fused.check_conservation(&fused_client).unwrap();
        c.cluster_stats()
            .since(&base)
            .check_conservation(&cl.stats())
            .unwrap();
    }

    #[test]
    fn dropped_verbs_keep_totals_balanced() {
        use crate::addr::RemotePtr;
        use crate::client::{DoorbellBatch, Verb};

        let c = DmCluster::new(ClusterConfig {
            num_mns: 2,
            num_cns: 1,
            mn_capacity: 1 << 20,
            ..Default::default()
        });
        let mut cl = c.client(0);
        let a = cl.alloc(0, 8).unwrap();
        cl.write_u64(a, 9).unwrap();
        let ghost = RemotePtr::new(7, 0);

        // Blocking path: the whole batch is rejected before any NIC is
        // charged; the valid verb still counted on both sides, the ghost
        // one dropped.
        let mut batch = DoorbellBatch::new();
        batch.push(Verb::Read { ptr: a, len: 8 });
        batch.push(Verb::Read { ptr: ghost, len: 8 });
        assert!(matches!(
            cl.execute(batch),
            Err(DmError::UnknownMemoryNode { mn_id: 7 })
        ));
        let snap = c.cluster_stats();
        assert_eq!(snap.dropped_verbs, 1);
        assert_eq!(snap.total_doorbells(), cl.stats().doorbells);
        snap.check_conservation(&cl.stats()).unwrap();

        // Fused path: the invalid batch is rejected, its fused neighbour
        // completes, and the ledger still balances.
        cl.submit(DoorbellBatch::from_iter([Verb::Read { ptr: a, len: 8 }]));
        let bad = cl.submit(DoorbellBatch::from_iter([Verb::Read {
            ptr: ghost,
            len: 8,
        }]));
        cl.flush_submitted();
        assert!(matches!(
            cl.poll(bad).unwrap(),
            Err(DmError::UnknownMemoryNode { mn_id: 7 })
        ));
        let snap = c.cluster_stats();
        assert_eq!(snap.dropped_verbs, 2);
        snap.check_conservation(&cl.stats()).unwrap();
    }

    #[test]
    fn mid_batch_error_conserves_bytes() {
        use crate::client::{DoorbellBatch, Verb};

        let c = DmCluster::new(ClusterConfig {
            num_mns: 1,
            num_cns: 1,
            mn_capacity: 1 << 20,
            ..Default::default()
        });
        let mut cl = c.client(0);
        let a = cl.alloc(0, 8).unwrap();
        let dead = cl.alloc(0, 8).unwrap();
        cl.free(dead).unwrap();
        // Write applies, the double free fails, the trailing read is never
        // applied — bytes must match on both sides of the ledger anyway.
        let mut batch = DoorbellBatch::new();
        batch.push(Verb::Write {
            ptr: a,
            data: vec![1u8; 8],
        });
        batch.push(Verb::Free { ptr: dead });
        batch.push(Verb::Read { ptr: a, len: 8 });
        assert!(cl.execute(batch).is_err());
        let snap = c.cluster_stats();
        assert_eq!(snap.mns[0].bytes_written, 8);
        assert_eq!(snap.mns[0].bytes_read, 0);
        snap.check_conservation(&cl.stats()).unwrap();
    }

    #[test]
    fn heat_sketch_localizes_touches() {
        let c = DmCluster::new(ClusterConfig {
            num_mns: 1,
            num_cns: 1,
            mn_capacity: 1 << 20,
            ..Default::default()
        });
        let mut cl = c.client(0);
        // All traffic lands at the very bottom of the pool: every touch
        // must fall in region 0.
        let p = cl.alloc(0, 64).unwrap();
        for _ in 0..10 {
            cl.read(p, 64).unwrap();
        }
        cl.write(p, &[3u8; 64]).unwrap();
        let mn = c.cluster_stats().mns[0];
        assert_eq!(mn.heat_reads[0], 10);
        assert_eq!(mn.heat_writes[0], 1);
        assert_eq!(mn.heat_reads.iter().sum::<u64>(), 10);
        assert_eq!(mn.heat_writes.iter().sum::<u64>(), 1);
    }

    #[test]
    fn mn_accounting_survives_network_reset() {
        let c = DmCluster::new(ClusterConfig {
            num_mns: 1,
            num_cns: 1,
            mn_capacity: 1 << 20,
            ..Default::default()
        });
        let mut cl = c.client(0);
        let p = cl.alloc(0, 8).unwrap();
        cl.read(p, 8).unwrap();
        let before = c.cluster_stats();
        c.reset_network();
        assert_eq!(
            c.cluster_stats(),
            before,
            "reset_network must not clear server-side accounting"
        );
    }

    #[test]
    fn live_bytes_aggregate() {
        let c = DmCluster::new(ClusterConfig::default());
        c.mn(0).unwrap().alloc(100).unwrap();
        c.mn(1).unwrap().alloc(100).unwrap();
        assert_eq!(c.total_live_bytes(), 256); // two 128-byte classes
    }
}
