//! Error type for the DM substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by the disaggregated-memory substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DmError {
    /// The target memory node has exhausted its pool.
    OutOfMemory {
        /// Memory node whose pool is full.
        mn_id: u16,
        /// Size of the failed allocation in bytes.
        requested: usize,
    },
    /// An access referenced memory outside any allocated pool region.
    InvalidAddress {
        /// Memory node addressed.
        mn_id: u16,
        /// Offending byte offset.
        offset: u64,
    },
    /// An atomic verb (CAS/FAA) was issued on a non-8-byte-aligned address.
    MisalignedAtomic {
        /// Offending byte offset.
        offset: u64,
    },
    /// A verb referenced a memory node id that does not exist.
    UnknownMemoryNode {
        /// Offending memory node id.
        mn_id: u16,
    },
    /// `free` was called on a pointer that is not a live allocation.
    InvalidFree {
        /// Offending pointer (raw form).
        ptr: u64,
    },
}

impl fmt::Display for DmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DmError::OutOfMemory { mn_id, requested } => {
                write!(
                    f,
                    "memory node {mn_id} out of memory ({requested} bytes requested)"
                )
            }
            DmError::InvalidAddress { mn_id, offset } => {
                write!(f, "invalid address {offset:#x} on memory node {mn_id}")
            }
            DmError::MisalignedAtomic { offset } => {
                write!(f, "atomic verb on misaligned address {offset:#x}")
            }
            DmError::UnknownMemoryNode { mn_id } => {
                write!(f, "unknown memory node {mn_id}")
            }
            DmError::InvalidFree { ptr } => {
                write!(f, "free of non-live allocation {ptr:#x}")
            }
        }
    }
}

impl Error for DmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = DmError::OutOfMemory {
            mn_id: 1,
            requested: 64,
        };
        let s = e.to_string();
        assert!(s.starts_with("memory node 1 out of memory"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DmError>();
    }
}
