//! Deterministic schedule control for multi-client simulations.
//!
//! Concurrency bugs in DM protocols hide in rare interleavings, and the OS
//! scheduler samples only a vanishingly thin slice of them. A [`Schedule`]
//! turns a multi-threaded simulation into a **lock-step** execution: every
//! participating client blocks at the [`Transport::execute`] choke point
//! until a seeded scheduler grants it the next step. Because at most one
//! participant is ever running between grants, the whole run — every verb,
//! every allocation, every cache mutation — is a deterministic function of
//! the seed, and any failing run replays byte-identically from its
//! `(seed, trace)`.
//!
//! ## Mechanics
//!
//! Each worker registers once ([`Schedule::register`]) and attaches the
//! returned [`ScheduleHandle`] to its [`DmClient`](crate::DmClient) via
//! [`attach_schedule`](crate::DmClient::attach_schedule). From then on every
//! non-empty doorbell batch performs a *gate*: the client parks until all
//! live participants are parked, the scheduler picks one (seeded RNG in
//! record mode, pinned order in replay mode), and the chosen client applies
//! its batch while the rest stay parked. The granted step may additionally
//! carry:
//!
//! * a **virtual-time delay** — models a verb held at the NIC;
//! * a **torn read** — the step's READ completions pass through the
//!   schedule's tear hook (a [`FaultHook`]), exercising checksum/seqlock
//!   recovery at scheduler-chosen instants;
//! * a **CAS hold** — a step whose batch contains a CAS is deferred in
//!   favour of other ready clients, widening genuine CAS-failure windows
//!   (the CAS semantics themselves are never faked: a protocol may rely on
//!   the returned word having truly been the memory content).
//!
//! Every decision is appended to a [`TraceStep`] trace. Re-running with
//! [`Schedule::replay`] pins the grant order (and fault decisions) to the
//! trace, falling back to deterministic round-robin once the trace is
//! exhausted — the mechanism behind trace-prefix shrinking.
//!
//! ## Rules
//!
//! * Every registered handle must either reach a gate or be dropped;
//!   a registered-but-silent participant parks the whole schedule (the
//!   gate waits for it). Dropping the handle (or the `DmClient` holding
//!   it) deregisters, so a finished or panicked worker never wedges the
//!   run.
//! * Clients must not hold locks shared with other participants across
//!   `execute` calls (none of the workspace index crates do).
//!
//! [`Transport::execute`]: crate::Transport::execute
//! [`FaultHook`]: crate::FaultHook

use std::fmt;
use std::str::FromStr;
use std::sync::{Arc, Condvar, Mutex};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::transport::FaultHook;

/// Tuning for a recorded (seeded) schedule: how often each perturbation
/// fires. All probabilities are percentages in `0..=100`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleConfig {
    /// Seed for every scheduling and fault decision.
    pub seed: u64,
    /// Chance that a granted step charges a virtual-time delay.
    pub delay_pct: u8,
    /// Upper bound (inclusive) on an injected delay, in virtual ns.
    pub max_delay_ns: u64,
    /// Chance that a granted step's READ completions are passed through
    /// the tear hook (no-op unless [`Schedule::set_tear_hook`] installed
    /// one).
    pub tear_pct: u8,
    /// Chance that a step whose batch contains a CAS is deferred in favour
    /// of another ready participant.
    pub cas_hold_pct: u8,
}

impl ScheduleConfig {
    /// Pure interleaving exploration: seeded reordering, no injected
    /// delays, tears, or CAS holds.
    pub fn quiet(seed: u64) -> Self {
        ScheduleConfig {
            seed,
            delay_pct: 0,
            max_delay_ns: 0,
            tear_pct: 0,
            cas_hold_pct: 0,
        }
    }

    /// The full fault matrix at the rates the schedule explorer sweeps:
    /// frequent reorderings plus occasional delays, torn reads, and CAS
    /// holds.
    pub fn adversarial(seed: u64) -> Self {
        ScheduleConfig {
            seed,
            delay_pct: 20,
            max_delay_ns: 50_000,
            tear_pct: 25,
            cas_hold_pct: 30,
        }
    }
}

/// The perturbations attached to one granted step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepDecision {
    /// Virtual time charged before the batch is submitted.
    pub delay_ns: u64,
    /// Whether this step's READ completions pass through the tear hook.
    pub tear: bool,
}

/// One entry of a schedule trace: which participant was granted the step
/// and with which perturbations. The full trace replays a run exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStep {
    /// The granted participant (registration order, starting at 0).
    pub pid: u32,
    /// Injected virtual-time delay.
    pub delay_ns: u64,
    /// Torn-read injection flag.
    pub tear: bool,
}

impl fmt::Display for TraceStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}",
            self.pid,
            self.delay_ns,
            if self.tear { 1 } else { 0 }
        )
    }
}

impl FromStr for TraceStep {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut it = s.trim().split(':');
        let pid = it
            .next()
            .ok_or("missing pid")?
            .parse::<u32>()
            .map_err(|e| format!("bad pid: {e}"))?;
        let delay_ns = it
            .next()
            .ok_or("missing delay")?
            .parse::<u64>()
            .map_err(|e| format!("bad delay: {e}"))?;
        let tear = match it.next().ok_or("missing tear flag")? {
            "0" => false,
            "1" => true,
            other => return Err(format!("bad tear flag {other:?}")),
        };
        if it.next().is_some() {
            return Err("trailing fields".into());
        }
        Ok(TraceStep {
            pid,
            delay_ns,
            tear,
        })
    }
}

/// What a granted participant takes away from the gate.
#[derive(Clone)]
pub(crate) struct GrantedStep {
    /// Global step number — a strictly monotonic virtual timestamp shared
    /// by every participant (history recorders use it).
    pub(crate) step: u64,
    pub(crate) decision: StepDecision,
    /// The tear hook, present only when `decision.tear` is set and a hook
    /// is installed.
    pub(crate) tear_hook: Option<Arc<dyn FaultHook>>,
}

enum Mode {
    Record(SmallRng),
    Replay { steps: Vec<TraceStep>, pos: usize },
}

struct Participant {
    live: bool,
    /// `Some(has_cas)` while parked at the gate.
    waiting: Option<bool>,
}

struct Grant {
    pid: u32,
    step: u64,
    decision: StepDecision,
}

struct State {
    mode: Mode,
    cfg: ScheduleConfig,
    participants: Vec<Participant>,
    n_live: usize,
    n_waiting: usize,
    /// A grant waiting to be picked up by its participant.
    grant: Option<Grant>,
    /// A granted participant is applying its batch; no selection until it
    /// returns through `gate_end`.
    in_flight: bool,
    step: u64,
    last_pid: u32,
    trace: Vec<TraceStep>,
    tear_hook: Option<Arc<dyn FaultHook>>,
}

struct Shared {
    state: Mutex<State>,
    cv: Condvar,
}

/// A deterministic scheduler shared by a set of simulated clients.
///
/// Cheap to clone (an `Arc` handle). See the module docs for the model.
#[derive(Clone)]
pub struct Schedule {
    shared: Arc<Shared>,
}

impl fmt::Debug for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.shared.state.lock().expect("schedule poisoned");
        f.debug_struct("Schedule")
            .field("participants", &st.participants.len())
            .field("live", &st.n_live)
            .field("step", &st.step)
            .finish()
    }
}

impl Schedule {
    /// A recording schedule: decisions drawn from the seeded RNG in
    /// `config`, trace captured for later replay.
    pub fn new(config: ScheduleConfig) -> Self {
        let rng = SmallRng::seed_from_u64(config.seed);
        Schedule::with_mode(Mode::Record(rng), config)
    }

    /// A replaying schedule: grants follow `trace` step by step; once the
    /// trace is exhausted (or names a dead participant), the schedule
    /// continues with deterministic fault-free round-robin so the run can
    /// finish. Used for trace-prefix shrinking and exact reproduction.
    pub fn replay(trace: Vec<TraceStep>) -> Self {
        Schedule::with_mode(
            Mode::Replay {
                steps: trace,
                pos: 0,
            },
            ScheduleConfig::quiet(0),
        )
    }

    fn with_mode(mode: Mode, cfg: ScheduleConfig) -> Self {
        Schedule {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    mode,
                    cfg,
                    participants: Vec::new(),
                    n_live: 0,
                    n_waiting: 0,
                    grant: None,
                    in_flight: false,
                    step: 0,
                    last_pid: 0,
                    trace: Vec::new(),
                    tear_hook: None,
                }),
                cv: Condvar::new(),
            }),
        }
    }

    /// Starts the step counter at `base` so schedule timestamps stay
    /// monotonic with events stamped before the scheduled phase (e.g. a
    /// recorded sequential preload).
    ///
    /// # Panics
    ///
    /// Panics if any step has already been granted.
    pub fn set_base_step(&self, base: u64) {
        let mut st = self.lock();
        assert!(
            st.trace.is_empty(),
            "set_base_step after scheduling started"
        );
        st.step = base;
    }

    /// Installs the hook applied to READ completions of steps whose
    /// [`StepDecision::tear`] fired. The schedule decides *when*; the hook
    /// decides *what* (e.g. tearing only buffers that parse as leaves, the
    /// hazard the leaf checksum exists for).
    pub fn set_tear_hook(&self, hook: Option<Arc<dyn FaultHook>>) {
        self.lock().tear_hook = hook;
    }

    /// Registers a participant. Registration order defines [`TraceStep`]
    /// participant ids, so register in a fixed order (e.g. from the main
    /// thread before spawning workers).
    pub fn register(&self) -> ScheduleHandle {
        let mut st = self.lock();
        let pid = st.participants.len() as u32;
        st.participants.push(Participant {
            live: true,
            waiting: None,
        });
        st.n_live += 1;
        ScheduleHandle {
            shared: self.shared.clone(),
            pid,
        }
    }

    /// The decisions taken so far (the full trace once the run finished).
    pub fn trace(&self) -> Vec<TraceStep> {
        self.lock().trace.clone()
    }

    /// Steps granted so far.
    pub fn steps(&self) -> u64 {
        self.lock().trace.len() as u64
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.shared.state.lock().expect("schedule poisoned")
    }
}

/// A participant's side of a [`Schedule`]. Attach to a
/// [`DmClient`](crate::DmClient) with
/// [`attach_schedule`](crate::DmClient::attach_schedule); dropping the
/// handle (or the client holding it) deregisters the participant.
pub struct ScheduleHandle {
    shared: Arc<Shared>,
    pid: u32,
}

impl fmt::Debug for ScheduleHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ScheduleHandle(pid={})", self.pid)
    }
}

impl ScheduleHandle {
    /// This participant's id in the trace.
    pub fn pid(&self) -> u32 {
        self.pid
    }

    /// Parks until the scheduler grants this participant a step; returns
    /// the grant. Must be paired with [`gate_end`](Self::gate_end) once
    /// the step's effects are applied.
    pub(crate) fn gate_begin(&self, has_cas: bool) -> GrantedStep {
        let mut st = self.shared.state.lock().expect("schedule poisoned");
        debug_assert!(
            st.participants[self.pid as usize].waiting.is_none(),
            "participant {} gated twice",
            self.pid
        );
        st.participants[self.pid as usize].waiting = Some(has_cas);
        st.n_waiting += 1;
        if try_select(&mut st) {
            self.shared.cv.notify_all();
        }
        loop {
            if st.grant.as_ref().is_some_and(|g| g.pid == self.pid) {
                let g = st.grant.take().expect("grant present");
                st.participants[self.pid as usize].waiting = None;
                st.n_waiting -= 1;
                st.in_flight = true;
                let tear_hook = if g.decision.tear {
                    st.tear_hook.clone()
                } else {
                    None
                };
                return GrantedStep {
                    step: g.step,
                    decision: g.decision,
                    tear_hook,
                };
            }
            st = self.shared.cv.wait(st).expect("schedule poisoned");
        }
    }

    /// Marks the granted step's effects applied, allowing the next grant.
    pub(crate) fn gate_end(&self) {
        let mut st = self.shared.state.lock().expect("schedule poisoned");
        st.in_flight = false;
        if try_select(&mut st) {
            self.shared.cv.notify_all();
        }
    }

    /// Consumes one scheduling step with no attached batch and returns its
    /// step number — a strictly monotonic timestamp totally ordered with
    /// every other participant's steps. History recorders use this to
    /// stamp operation invoke/response events deterministically.
    pub fn tick(&self) -> u64 {
        let g = self.gate_begin(false);
        self.gate_end();
        g.step
    }
}

impl Drop for ScheduleHandle {
    fn drop(&mut self) {
        let Ok(mut st) = self.shared.state.lock() else {
            return; // poisoned during panic: workers are going away anyway
        };
        let p = &mut st.participants[self.pid as usize];
        if p.live {
            p.live = false;
            if p.waiting.take().is_some() {
                st.n_waiting -= 1;
            }
            st.n_live -= 1;
        }
        if try_select(&mut st) {
            self.shared.cv.notify_all();
        }
        drop(st);
        // A dropped grant-holder can unblock others even without a new
        // selection (e.g. the last participant leaving).
        self.shared.cv.notify_all();
    }
}

/// Grants the next step if every live participant is parked at the gate.
/// Returns whether a grant was issued (callers then notify).
fn try_select(st: &mut State) -> bool {
    if st.in_flight || st.grant.is_some() || st.n_live == 0 || st.n_waiting < st.n_live {
        return false;
    }
    let waiters: Vec<u32> = st
        .participants
        .iter()
        .enumerate()
        .filter(|(_, p)| p.live && p.waiting.is_some())
        .map(|(i, _)| i as u32)
        .collect();
    debug_assert_eq!(waiters.len(), st.n_live);
    let cfg = st.cfg.clone();
    let (pid, decision) = match &mut st.mode {
        Mode::Record(rng) => {
            let mut idx = rng.gen_range(0..waiters.len());
            // CAS hold: defer a CAS-bearing step behind some other ready
            // participant, widening genuine CAS-failure windows.
            let chosen_has_cas = st.participants[waiters[idx] as usize].waiting == Some(true);
            if waiters.len() > 1
                && chosen_has_cas
                && cfg.cas_hold_pct > 0
                && rng.gen_range(0u32..100) < cfg.cas_hold_pct as u32
            {
                let skip = rng.gen_range(0..waiters.len() - 1);
                idx = (idx + 1 + skip) % waiters.len();
            }
            let delay_ns = if cfg.delay_pct > 0 && rng.gen_range(0u32..100) < cfg.delay_pct as u32 {
                rng.gen_range(0..=cfg.max_delay_ns)
            } else {
                0
            };
            let tear = cfg.tear_pct > 0 && rng.gen_range(0u32..100) < cfg.tear_pct as u32;
            (waiters[idx], StepDecision { delay_ns, tear })
        }
        Mode::Replay { steps, pos } => {
            let mut pinned = None;
            if *pos < steps.len() {
                let s = steps[*pos];
                let alive = st
                    .participants
                    .get(s.pid as usize)
                    .is_some_and(|p| p.live && p.waiting.is_some());
                if alive {
                    *pos += 1;
                    pinned = Some((
                        s.pid,
                        StepDecision {
                            delay_ns: s.delay_ns,
                            tear: s.tear,
                        },
                    ));
                } else {
                    // The trace has diverged (shrinking against a shorter
                    // run): abandon it and finish round-robin.
                    *pos = steps.len();
                }
            }
            pinned.unwrap_or_else(|| {
                // Fault-free cyclic fallback: first waiter after last_pid.
                let pid = *waiters
                    .iter()
                    .find(|&&w| w > st.last_pid)
                    .unwrap_or(&waiters[0]);
                (pid, StepDecision::default())
            })
        }
    };
    st.last_pid = pid;
    st.trace.push(TraceStep {
        pid,
        delay_ns: decision.delay_ns,
        tear: decision.tear,
    });
    let step = st.step;
    st.step += 1;
    st.grant = Some(Grant {
        pid,
        step,
        decision,
    });
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_counters(schedule: &Schedule, workers: usize, steps_each: usize) -> Vec<TraceStep> {
        let handles: Vec<ScheduleHandle> = (0..workers).map(|_| schedule.register()).collect();
        std::thread::scope(|s| {
            for h in handles {
                s.spawn(move || {
                    for _ in 0..steps_each {
                        let g = h.gate_begin(false);
                        let _ = g.step;
                        h.gate_end();
                    }
                });
            }
        });
        schedule.trace()
    }

    #[test]
    fn seeded_schedule_is_deterministic() {
        let a = run_counters(&Schedule::new(ScheduleConfig::adversarial(7)), 3, 50);
        let b = run_counters(&Schedule::new(ScheduleConfig::adversarial(7)), 3, 50);
        let c = run_counters(&Schedule::new(ScheduleConfig::adversarial(8)), 3, 50);
        assert_eq!(a, b, "same seed, same trace");
        assert_ne!(a, c, "different seed, different trace");
        assert_eq!(a.len(), 150);
    }

    #[test]
    fn replay_follows_trace_exactly() {
        let trace = run_counters(&Schedule::new(ScheduleConfig::adversarial(3)), 3, 40);
        let replayed = run_counters(&Schedule::replay(trace.clone()), 3, 40);
        assert_eq!(trace, replayed);
    }

    #[test]
    fn replay_prefix_falls_back_round_robin() {
        let trace = run_counters(&Schedule::new(ScheduleConfig::adversarial(3)), 2, 30);
        let prefix: Vec<TraceStep> = trace[..10].to_vec();
        let replayed = run_counters(&Schedule::replay(prefix.clone()), 2, 30);
        assert_eq!(&replayed[..10], &prefix[..]);
        assert_eq!(replayed.len(), 60);
        // Fallback steps carry no faults.
        assert!(replayed[10..].iter().all(|s| s.delay_ns == 0 && !s.tear));
    }

    #[test]
    fn ticks_are_strictly_monotonic_and_unique() {
        let schedule = Schedule::new(ScheduleConfig::quiet(1));
        let handles: Vec<ScheduleHandle> = (0..3).map(|_| schedule.register()).collect();
        let stamps = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for h in handles {
                // Move each handle in: a finished worker must drop its
                // handle or it parks the gate for everyone else.
                let stamps = &stamps;
                s.spawn(move || {
                    for _ in 0..100 {
                        let t = h.tick();
                        stamps.lock().unwrap().push(t);
                    }
                });
            }
        });
        let mut v = stamps.into_inner().unwrap();
        v.sort_unstable();
        v.dedup();
        assert_eq!(v.len(), 300, "every tick distinct");
    }

    #[test]
    fn dropped_participant_does_not_wedge_the_gate() {
        let schedule = Schedule::new(ScheduleConfig::quiet(2));
        let a = schedule.register();
        let b = schedule.register();
        std::thread::scope(|s| {
            s.spawn(move || {
                a.tick();
                drop(a); // leaves early
            });
            s.spawn(move || {
                for _ in 0..50 {
                    b.tick();
                }
            });
        });
        assert!(schedule.steps() >= 51);
    }

    #[test]
    fn trace_step_round_trips_through_text() {
        let s = TraceStep {
            pid: 3,
            delay_ns: 12_345,
            tear: true,
        };
        assert_eq!(s.to_string().parse::<TraceStep>().unwrap(), s);
        assert!("1:2".parse::<TraceStep>().is_err());
        assert!("1:2:7".parse::<TraceStep>().is_err());
    }

    #[test]
    fn base_step_offsets_timestamps() {
        let schedule = Schedule::new(ScheduleConfig::quiet(0));
        schedule.set_base_step(1000);
        let h = schedule.register();
        assert_eq!(h.tick(), 1000);
        assert_eq!(h.tick(), 1001);
    }
}
