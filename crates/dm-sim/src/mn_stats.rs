//! Server-side (per-memory-node) load accounting.
//!
//! Every verb a [`DmClient`](crate::DmClient) charges to its own
//! [`ClientStats`](crate::ClientStats) is mirrored here on the memory node
//! that served it: verb-kind counters at submission time, payload bytes at
//! effect time, and the NIC queue/service split per physical doorbell. A
//! verb whose target MN does not exist is counted in the cluster-wide
//! dropped counter instead, so the two views always balance:
//!
//! ```text
//! Σ_mn verbs(mn) + dropped  ==  Σ_client verbs(client)
//! ```
//!
//! and, when nothing was dropped, the equality holds *per verb kind*, for
//! payload bytes, and for physical doorbells
//! ([`ClusterStats::check_conservation`]).
//!
//! On top of the scalar counters each MN keeps a coarse **keyspace heat
//! sketch**: its pool is split into [`HEAT_REGIONS`] equal-sized regions
//! and every effect-applied verb bumps the read- or write-touch counter of
//! the region its target offset falls in. The sketch is what an elastic
//! resharding policy needs to decide *what* to migrate off a hot node.
//!
//! Accounting is monotone for the lifetime of the cluster — it is *not*
//! cleared by [`DmCluster::reset_network`](crate::DmCluster::reset_network)
//! — so windowed views are taken with [`MnStats::since`] /
//! [`ClusterStats::since`], exactly like `ClientStats`.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::client::Verb;
use crate::stats::ClientStats;

/// Number of equal-sized heat-sketch regions per memory node.
pub const HEAT_REGIONS: usize = 32;

/// Lock-free accounting cell attached to each
/// [`MemoryNode`](crate::MemoryNode). All counters are relaxed atomics:
/// they are statistics, not synchronization.
#[derive(Debug)]
pub(crate) struct MnAccounting {
    capacity: u64,
    reads: AtomicU64,
    writes: AtomicU64,
    cas: AtomicU64,
    faa: AtomicU64,
    frees: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    doorbells: AtomicU64,
    service_ns: AtomicU64,
    queue_ns: AtomicU64,
    heat_reads: [AtomicU64; HEAT_REGIONS],
    heat_writes: [AtomicU64; HEAT_REGIONS],
}

impl MnAccounting {
    pub(crate) fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "memory node capacity must be nonzero");
        MnAccounting {
            capacity,
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            cas: AtomicU64::new(0),
            faa: AtomicU64::new(0),
            frees: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            doorbells: AtomicU64::new(0),
            service_ns: AtomicU64::new(0),
            queue_ns: AtomicU64::new(0),
            heat_reads: std::array::from_fn(|_| AtomicU64::new(0)),
            heat_writes: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn region(&self, offset: u64) -> usize {
        (((offset as u128 * HEAT_REGIONS as u128) / self.capacity as u128) as usize)
            .min(HEAT_REGIONS - 1)
    }

    /// Counts one verb at submission time (mirror of the client-side
    /// per-kind bump in `DmClient::count_verbs`).
    pub(crate) fn record_verb(&self, verb: &Verb) {
        let cell = match verb {
            Verb::Read { .. } => &self.reads,
            Verb::Write { .. } => &self.writes,
            Verb::Cas { .. } => &self.cas,
            Verb::Faa { .. } => &self.faa,
            Verb::Free { .. } => &self.frees,
        };
        cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one physical doorbell and its NIC queue/service split.
    pub(crate) fn record_doorbell(&self, queue_ns: u64, service_ns: u64) {
        self.doorbells.fetch_add(1, Ordering::Relaxed);
        self.queue_ns.fetch_add(queue_ns, Ordering::Relaxed);
        self.service_ns.fetch_add(service_ns, Ordering::Relaxed);
    }

    /// Counts an effect-applied read: payload bytes plus a heat touch.
    pub(crate) fn record_read_effect(&self, offset: u64, bytes: u64) {
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        self.heat_reads[self.region(offset)].fetch_add(1, Ordering::Relaxed);
    }

    /// Counts an effect-applied write/CAS/FAA: payload bytes plus a heat
    /// touch. `Free` effects pass `bytes = 0` (they move no payload) but
    /// still touch the sketch.
    pub(crate) fn record_write_effect(&self, offset: u64, bytes: u64) {
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        self.heat_writes[self.region(offset)].fetch_add(1, Ordering::Relaxed);
    }

    /// Coherent-enough snapshot (individual counters are exact; the set is
    /// taken without a global lock, which is fine between barriers).
    pub(crate) fn snapshot(&self, mn_id: u16) -> MnStats {
        MnStats {
            mn_id,
            capacity: self.capacity,
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            cas: self.cas.load(Ordering::Relaxed),
            faa: self.faa.load(Ordering::Relaxed),
            frees: self.frees.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            doorbells: self.doorbells.load(Ordering::Relaxed),
            service_ns: self.service_ns.load(Ordering::Relaxed),
            queue_ns: self.queue_ns.load(Ordering::Relaxed),
            heat_reads: std::array::from_fn(|i| self.heat_reads[i].load(Ordering::Relaxed)),
            heat_writes: std::array::from_fn(|i| self.heat_writes[i].load(Ordering::Relaxed)),
        }
    }
}

/// A point-in-time snapshot of one memory node's server-side accounting.
///
/// `Copy` on purpose: a time-series sampler can take one per MN per tick
/// with zero allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MnStats {
    /// The node's id.
    pub mn_id: u16,
    /// The node's pool capacity in bytes (heat-region denominator).
    pub capacity: u64,
    /// READ verbs routed to this node.
    pub reads: u64,
    /// WRITE verbs routed to this node.
    pub writes: u64,
    /// CAS verbs routed to this node.
    pub cas: u64,
    /// FAA verbs routed to this node.
    pub faa: u64,
    /// FREE verbs routed to this node.
    pub frees: u64,
    /// Payload bytes read from this node (effect-applied reads only).
    pub bytes_read: u64,
    /// Payload bytes written to this node (CAS/FAA count as 8).
    pub bytes_written: u64,
    /// Physical doorbells served by this node's NIC.
    pub doorbells: u64,
    /// NIC service time this node spent on those doorbells, ns.
    pub service_ns: u64,
    /// NIC queueing time those doorbells waited behind the backlog, ns.
    pub queue_ns: u64,
    /// Read touches per heat region ([`HEAT_REGIONS`] equal byte slices).
    pub heat_reads: [u64; HEAT_REGIONS],
    /// Write touches per heat region (Free effects count here too).
    pub heat_writes: [u64; HEAT_REGIONS],
}

impl MnStats {
    /// Total verbs routed to this node.
    pub fn verbs(&self) -> u64 {
        self.reads + self.writes + self.cas + self.faa + self.frees
    }

    /// Total payload bytes moved through this node.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// NIC-busy fraction over a window, in parts per million (integer so
    /// exports stay byte-stable). 0 for an empty window.
    pub fn busy_ppm(&self, window_ns: u64) -> u64 {
        if window_ns == 0 {
            return 0;
        }
        (self.service_ns as u128 * 1_000_000 / window_ns as u128) as u64
    }

    /// Mean NIC queueing delay per doorbell, ns (0 if no doorbells).
    pub fn mean_queue_ns(&self) -> u64 {
        self.queue_ns.checked_div(self.doorbells).unwrap_or(0)
    }

    /// Difference between two snapshots (`self` after, `earlier` before).
    ///
    /// # Panics
    ///
    /// Panics if the snapshots are from different nodes.
    pub fn since(&self, earlier: &MnStats) -> MnStats {
        assert_eq!(self.mn_id, earlier.mn_id, "snapshots from different MNs");
        MnStats {
            mn_id: self.mn_id,
            capacity: self.capacity,
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            cas: self.cas - earlier.cas,
            faa: self.faa - earlier.faa,
            frees: self.frees - earlier.frees,
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
            doorbells: self.doorbells - earlier.doorbells,
            service_ns: self.service_ns - earlier.service_ns,
            queue_ns: self.queue_ns - earlier.queue_ns,
            heat_reads: std::array::from_fn(|i| self.heat_reads[i] - earlier.heat_reads[i]),
            heat_writes: std::array::from_fn(|i| self.heat_writes[i] - earlier.heat_writes[i]),
        }
    }
}

/// A snapshot of the whole cluster's server-side accounting: one
/// [`MnStats`] per node plus the dropped-verb counter (verbs addressed to
/// nonexistent nodes, which no MN could absorb).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterStats {
    /// Per-node snapshots, indexed by MN id.
    pub mns: Vec<MnStats>,
    /// Verbs addressed to MNs that do not exist (counted cluster-wide so
    /// totals still balance against the client side).
    pub dropped_verbs: u64,
}

impl ClusterStats {
    /// Total verbs served by all nodes (excluding dropped ones).
    pub fn total_verbs(&self) -> u64 {
        self.mns.iter().map(MnStats::verbs).sum()
    }

    /// Total physical doorbells served by all nodes.
    pub fn total_doorbells(&self) -> u64 {
        self.mns.iter().map(|m| m.doorbells).sum()
    }

    /// Total payload bytes moved through all nodes.
    pub fn total_bytes(&self) -> u64 {
        self.mns.iter().map(MnStats::bytes_total).sum()
    }

    /// Difference between two snapshots (`self` after, `earlier` before).
    ///
    /// # Panics
    ///
    /// Panics if the snapshots cover different cluster shapes.
    pub fn since(&self, earlier: &ClusterStats) -> ClusterStats {
        assert_eq!(
            self.mns.len(),
            earlier.mns.len(),
            "snapshots from different cluster shapes"
        );
        ClusterStats {
            mns: self
                .mns
                .iter()
                .zip(&earlier.mns)
                .map(|(a, b)| a.since(b))
                .collect(),
            dropped_verbs: self.dropped_verbs - earlier.dropped_verbs,
        }
    }

    /// Verifies the conservation invariant against the summed client-side
    /// view of the same window (`clients` = every participating client's
    /// [`ClientStats`] delta, added together).
    ///
    /// With nothing dropped the check is exact per verb kind, for payload
    /// bytes, and for physical doorbells. Dropped verbs never reach an MN
    /// (and never ring a doorbell or move bytes), so in their presence the
    /// per-kind identity degrades to the total-verb identity — still with
    /// no double counting and no leaks.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// identity.
    pub fn check_conservation(&self, clients: &ClientStats) -> Result<(), String> {
        let sum = |f: fn(&MnStats) -> u64| self.mns.iter().map(f).sum::<u64>();
        if self.total_verbs() + self.dropped_verbs != clients.verbs() {
            return Err(format!(
                "verb totals differ: {} served + {} dropped vs {} issued",
                self.total_verbs(),
                self.dropped_verbs,
                clients.verbs()
            ));
        }
        if self.dropped_verbs == 0 {
            type Kind = (&'static str, fn(&MnStats) -> u64, u64);
            let kinds: [Kind; 5] = [
                ("reads", |m| m.reads, clients.reads),
                ("writes", |m| m.writes, clients.writes),
                ("cas", |m| m.cas, clients.cas),
                ("faa", |m| m.faa, clients.faa),
                ("frees", |m| m.frees, clients.frees),
            ];
            for (name, f, client_side) in kinds {
                if sum(f) != client_side {
                    return Err(format!(
                        "{name} differ: {} served vs {} issued",
                        sum(f),
                        client_side
                    ));
                }
            }
        }
        if sum(|m| m.bytes_read) != clients.bytes_read {
            return Err(format!(
                "bytes_read differ: {} served vs {} issued",
                sum(|m| m.bytes_read),
                clients.bytes_read
            ));
        }
        if sum(|m| m.bytes_written) != clients.bytes_written {
            return Err(format!(
                "bytes_written differ: {} served vs {} issued",
                sum(|m| m.bytes_written),
                clients.bytes_written
            ));
        }
        if self.total_doorbells() != clients.doorbells {
            return Err(format!(
                "doorbells differ: {} served vs {} rung",
                self.total_doorbells(),
                clients.doorbells
            ));
        }
        Ok(())
    }
}
