//! Remote pointers: 64-bit handles addressing memory on a specific MN.

use std::fmt;

use crate::error::DmError;

/// Number of low bits used for the byte offset within a memory node.
const OFFSET_BITS: u32 = 48;
const OFFSET_MASK: u64 = (1 << OFFSET_BITS) - 1;

/// A pointer into the memory pool of one memory node.
///
/// Packed into a single `u64` — 16 bits of MN id, 48 bits of byte offset —
/// so it fits in one RDMA-atomic word and in the 48-bit address field of
/// Sphinx hash entries and node slots (Fig. 3 of the paper).
///
/// The all-zero value is reserved as the null pointer; memory-node
/// allocators never hand out offset 0.
///
/// # Examples
///
/// ```
/// use dm_sim::RemotePtr;
///
/// let p = RemotePtr::new(2, 4096);
/// assert_eq!(p.mn_id(), 2);
/// assert_eq!(p.offset(), 4096);
/// assert!(!p.is_null());
/// assert!(RemotePtr::NULL.is_null());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RemotePtr(u64);

impl RemotePtr {
    /// The null remote pointer.
    pub const NULL: RemotePtr = RemotePtr(0);

    /// Creates a pointer to `offset` on memory node `mn_id`.
    ///
    /// # Panics
    ///
    /// Panics if `offset` does not fit in 48 bits.
    pub fn new(mn_id: u16, offset: u64) -> Self {
        assert!(offset <= OFFSET_MASK, "offset {offset:#x} exceeds 48 bits");
        RemotePtr(((mn_id as u64) << OFFSET_BITS) | offset)
    }

    /// Reconstructs a pointer from its raw packed representation.
    pub fn from_raw(raw: u64) -> Self {
        RemotePtr(raw)
    }

    /// The raw packed representation (16-bit MN id | 48-bit offset).
    pub fn to_raw(self) -> u64 {
        self.0
    }

    /// The memory node this pointer refers to.
    pub fn mn_id(self) -> u16 {
        (self.0 >> OFFSET_BITS) as u16
    }

    /// The byte offset within the memory node's pool.
    pub fn offset(self) -> u64 {
        self.0 & OFFSET_MASK
    }

    /// Whether this is the null pointer.
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Packs this pointer into 48 bits (8-bit MN id, 40-bit offset) — the
    /// address width used inside Sphinx hash entries and node slots
    /// (Fig. 3 of the paper).
    ///
    /// # Panics
    ///
    /// Panics if the MN id exceeds 255 or the offset exceeds 2⁴⁰−1
    /// (1 TiB per memory node — beyond any simulated configuration).
    pub fn to_packed48(self) -> u64 {
        let mn = self.mn_id() as u64;
        let off = self.offset();
        assert!(mn < 256, "mn id {mn} does not fit in 8 bits");
        assert!(off < (1 << 40), "offset {off:#x} does not fit in 40 bits");
        (mn << 40) | off
    }

    /// Reverses [`RemotePtr::to_packed48`].
    ///
    /// # Panics
    ///
    /// Panics if `packed` has bits set above bit 47.
    pub fn from_packed48(packed: u64) -> Self {
        assert!(
            packed < (1 << 48),
            "packed pointer {packed:#x} exceeds 48 bits"
        );
        RemotePtr::new((packed >> 40) as u16, packed & ((1 << 40) - 1))
    }

    /// Returns a pointer `delta` bytes past `self` on the same MN.
    ///
    /// # Errors
    ///
    /// Returns [`DmError::InvalidAddress`] if the new offset overflows
    /// 48 bits.
    pub fn checked_add(self, delta: u64) -> Result<Self, DmError> {
        let off = self
            .offset()
            .checked_add(delta)
            .filter(|o| *o <= OFFSET_MASK)
            .ok_or(DmError::InvalidAddress {
                mn_id: self.mn_id(),
                offset: self.offset().wrapping_add(delta),
            })?;
        Ok(RemotePtr::new(self.mn_id(), off))
    }
}

impl fmt::Debug for RemotePtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "RemotePtr(NULL)")
        } else {
            write!(
                f,
                "RemotePtr(mn={}, off={:#x})",
                self.mn_id(),
                self.offset()
            )
        }
    }
}

impl fmt::Display for RemotePtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{:#x}", self.mn_id(), self.offset())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip() {
        let p = RemotePtr::new(0xBEEF, 0x1234_5678_9ABC);
        assert_eq!(p.mn_id(), 0xBEEF);
        assert_eq!(p.offset(), 0x1234_5678_9ABC);
        assert_eq!(RemotePtr::from_raw(p.to_raw()), p);
    }

    #[test]
    fn null_is_mn0_offset0() {
        assert_eq!(RemotePtr::NULL.mn_id(), 0);
        assert_eq!(RemotePtr::NULL.offset(), 0);
        assert!(RemotePtr::default().is_null());
    }

    #[test]
    fn max_offset_fits() {
        let p = RemotePtr::new(1, OFFSET_MASK);
        assert_eq!(p.offset(), OFFSET_MASK);
    }

    #[test]
    #[should_panic(expected = "exceeds 48 bits")]
    fn oversized_offset_panics() {
        let _ = RemotePtr::new(0, OFFSET_MASK + 1);
    }

    #[test]
    fn checked_add_ok_and_overflow() {
        let p = RemotePtr::new(3, 100);
        assert_eq!(p.checked_add(28).unwrap().offset(), 128);
        assert!(RemotePtr::new(3, OFFSET_MASK).checked_add(1).is_err());
    }

    #[test]
    fn packed48_roundtrip() {
        for (mn, off) in [(0u16, 0u64), (255, (1 << 40) - 1), (3, 0x12_3456_7890)] {
            let p = RemotePtr::new(mn, off);
            assert_eq!(RemotePtr::from_packed48(p.to_packed48()), p);
        }
    }

    #[test]
    #[should_panic(expected = "does not fit in 8 bits")]
    fn packed48_rejects_large_mn() {
        let _ = RemotePtr::new(256, 0).to_packed48();
    }

    #[test]
    fn ordering_is_by_mn_then_offset() {
        let a = RemotePtr::new(0, 500);
        let b = RemotePtr::new(1, 4);
        assert!(a < b);
    }
}
