//! # dm-sim — a disaggregated-memory substrate simulator
//!
//! This crate stands in for the RDMA-based disaggregated memory (DM) cluster
//! used by the Sphinx paper (DAC 2025). It provides:
//!
//! * **Memory nodes** ([`MemoryNode`]): byte-addressable remote heaps backed
//!   by `AtomicU64` words, so concurrent one-sided accesses exhibit the same
//!   torn-read/torn-write behaviour as real RDMA, and 8-byte aligned words
//!   can be manipulated atomically (RDMA CAS/FAA semantics).
//! * **One-sided verbs** ([`DmClient`]): `read`, `write`, `cas`, `faa`, plus
//!   [`DoorbellBatch`] for issuing many verbs in a single network round trip
//!   (the doorbell-batching mechanism of Kalia et al., USENIX ATC'16).
//! * **A virtual-time network model** ([`NetConfig`], [`Nic`]): every client
//!   carries its own virtual clock; each round trip charges base RTT,
//!   per-message NIC processing, and per-byte serialization, with NIC
//!   contention modeled as a FIFO server in virtual time. Throughput and
//!   latency measurements are therefore deterministic in *shape* and
//!   independent of how many physical cores the host has.
//! * **Cluster placement** ([`DmCluster`]): consistent hashing of objects
//!   across memory nodes.
//!
//! ## Example
//!
//! ```
//! use dm_sim::{DmCluster, ClusterConfig};
//!
//! # fn main() -> Result<(), dm_sim::DmError> {
//! let cluster = DmCluster::new(ClusterConfig::default());
//! let mut client = cluster.client(0);
//! let ptr = client.alloc(0, 64)?;
//! client.write(ptr, b"hello disaggregated world")?;
//! let back = client.read(ptr, 25)?;
//! assert_eq!(&back, b"hello disaggregated world");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod alloc;
mod client;
mod cluster;
mod error;
mod heap;
mod mn_stats;
mod net;
mod ring;
mod schedule;
mod stats;
pub mod trace;
mod transport;

pub use addr::RemotePtr;
pub use alloc::{size_class, AllocStats};
pub use client::{DmClient, DoorbellBatch, Verb, VerbResult};
pub use cluster::{ClusterConfig, DmCluster};
pub use error::DmError;
pub use heap::MemoryNode;
pub use mn_stats::{ClusterStats, MnStats, HEAT_REGIONS};
pub use net::{NetConfig, Nic, NicCharge};
pub use ring::HashRing;
pub use schedule::{Schedule, ScheduleConfig, ScheduleHandle, StepDecision, TraceStep};
pub use stats::{ClientStats, LatencyHistogram};
pub use transport::{CqState, FaultHook, RetryPolicy, SqeToken, Transport};
