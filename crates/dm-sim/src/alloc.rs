//! A segregated free-list allocator for memory-node pools.
//!
//! Allocation sizes are rounded up to a size class (8/16/32/64 bytes, then
//! multiples of 64 up to 4 KiB, then powers of two). Freed blocks go onto a
//! per-class free list and are recycled before the bump pointer advances.
//! The allocator also keeps the live-byte counters used to reproduce the
//! paper's Fig. 6 (MN-side memory usage).

use std::collections::HashMap;

/// Snapshot of a memory node's allocation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocStats {
    /// Bytes currently live (allocated and not freed), after size-class
    /// rounding — i.e. what the pool actually consumes.
    pub live_bytes: u64,
    /// High-water mark of `live_bytes`.
    pub peak_bytes: u64,
    /// Total number of `alloc` calls served.
    pub allocations: u64,
    /// Total number of `free` calls served.
    pub frees: u64,
    /// Bytes returned through the *reclamation* path (epoch-based batched
    /// frees issued by the `reclaim` crate), a subset of what the `frees`
    /// counter covers. Lets Fig. 6 attribute how much of the pool churn
    /// the reclaimer recovered.
    pub reclaimed_bytes: u64,
}

/// Rounds a request up to its allocation size class — what a block of
/// `size` bytes actually consumes in an MN pool. Public so higher layers
/// can account memory the way the allocator does.
pub fn size_class(size: u64) -> u64 {
    match size {
        0..=8 => 8,
        9..=16 => 16,
        17..=32 => 32,
        33..=4096 => size.div_ceil(64) * 64,
        _ => size.next_power_of_two(),
    }
}

#[derive(Debug)]
pub(crate) struct SegregatedAllocator {
    capacity: u64,
    bump: u64,
    free_lists: HashMap<u64, Vec<u64>>,
    live: HashMap<u64, u64>, // offset -> class size
    stats: AllocStats,
}

impl SegregatedAllocator {
    pub(crate) fn new(capacity: u64) -> Self {
        SegregatedAllocator {
            capacity,
            // Offset 0 is reserved so that RemotePtr::NULL is never a valid
            // allocation; keep the first 64 bytes as a red zone.
            bump: 64,
            free_lists: HashMap::new(),
            live: HashMap::new(),
            stats: AllocStats::default(),
        }
    }

    pub(crate) fn alloc(&mut self, size: u64) -> Option<u64> {
        let class = size_class(size);
        let off = if let Some(off) = self.free_lists.get_mut(&class).and_then(Vec::pop) {
            off
        } else {
            if self.bump + class > self.capacity {
                return None;
            }
            let off = self.bump;
            self.bump += class;
            off
        };
        self.live.insert(off, class);
        self.stats.live_bytes += class;
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.stats.live_bytes);
        self.stats.allocations += 1;
        Some(off)
    }

    pub(crate) fn free(&mut self, offset: u64) -> bool {
        let Some(class) = self.live.remove(&offset) else {
            return false;
        };
        self.free_lists.entry(class).or_default().push(offset);
        self.stats.live_bytes -= class;
        self.stats.frees += 1;
        true
    }

    /// Like [`free`](Self::free), but attributes the returned bytes to the
    /// reclamation path (`AllocStats::reclaimed_bytes`).
    pub(crate) fn free_reclaimed(&mut self, offset: u64) -> bool {
        let class = self.live.get(&offset).copied();
        if !self.free(offset) {
            return false;
        }
        self.stats.reclaimed_bytes += class.unwrap_or(0);
        true
    }

    pub(crate) fn stats(&self) -> AllocStats {
        self.stats
    }

    /// Live block counts per size class, sorted by class size.
    pub(crate) fn live_by_class(&self) -> Vec<(u64, u64)> {
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for class in self.live.values() {
            *counts.entry(*class).or_default() += 1;
        }
        let mut v: Vec<(u64, u64)> = counts.into_iter().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_classes() {
        assert_eq!(size_class(1), 8);
        assert_eq!(size_class(8), 8);
        assert_eq!(size_class(9), 16);
        assert_eq!(size_class(33), 64);
        assert_eq!(size_class(65), 128);
        assert_eq!(size_class(100), 128);
        assert_eq!(size_class(4096), 4096);
        assert_eq!(size_class(4097), 8192);
    }

    #[test]
    fn never_returns_offset_zero() {
        let mut a = SegregatedAllocator::new(1 << 20);
        for _ in 0..100 {
            assert_ne!(a.alloc(8).unwrap(), 0);
        }
    }

    #[test]
    fn recycles_freed_blocks() {
        let mut a = SegregatedAllocator::new(1 << 20);
        let x = a.alloc(64).unwrap();
        a.free(x);
        let y = a.alloc(50).unwrap(); // same class (64)
        assert_eq!(x, y);
    }

    #[test]
    fn live_bytes_track_alloc_free() {
        let mut a = SegregatedAllocator::new(1 << 20);
        let x = a.alloc(100).unwrap(); // class 128
        assert_eq!(a.stats().live_bytes, 128);
        a.free(x);
        assert_eq!(a.stats().live_bytes, 0);
        assert_eq!(a.stats().peak_bytes, 128);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut a = SegregatedAllocator::new(256);
        assert!(a.alloc(128).is_some());
        assert!(a.alloc(128).is_none()); // 64B red zone + 128 > 256 - 128
    }

    #[test]
    fn free_of_unknown_offset_is_rejected() {
        let mut a = SegregatedAllocator::new(1 << 20);
        assert!(!a.free(12345));
    }

    #[test]
    fn reclaimed_bytes_attributed_separately() {
        let mut a = SegregatedAllocator::new(1 << 20);
        let x = a.alloc(100).unwrap(); // class 128
        let y = a.alloc(8).unwrap(); // class 8
        a.free(x);
        assert_eq!(a.stats().reclaimed_bytes, 0);
        assert!(a.free_reclaimed(y));
        assert_eq!(a.stats().reclaimed_bytes, 8);
        assert_eq!(a.stats().frees, 2);
        assert!(!a.free_reclaimed(y)); // double free rejected, no counter bump
        assert_eq!(a.stats().reclaimed_bytes, 8);
    }

    #[test]
    fn live_by_class_counts_blocks() {
        let mut a = SegregatedAllocator::new(1 << 20);
        a.alloc(8).unwrap();
        a.alloc(8).unwrap();
        let x = a.alloc(100).unwrap(); // class 128
        assert_eq!(a.live_by_class(), vec![(8, 2), (128, 1)]);
        a.free(x);
        assert_eq!(a.live_by_class(), vec![(8, 2)]);
    }
}
