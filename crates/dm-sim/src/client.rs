//! Compute-side clients: one-sided verbs, doorbell batching, virtual clock.

use std::sync::Arc;

use crate::addr::RemotePtr;
use crate::cluster::ClusterInner;
use crate::error::DmError;
use crate::schedule::{GrantedStep, ScheduleHandle};
use crate::stats::ClientStats;
#[cfg(feature = "trace")]
use crate::trace::{BurstEvent, TransportEvent, TransportTrace};
use crate::transport::{CqState, FaultHook, SqeToken};

/// A single one-sided RDMA operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verb {
    /// Read `len` bytes at `ptr`.
    Read {
        /// Source address.
        ptr: RemotePtr,
        /// Bytes to read.
        len: usize,
    },
    /// Write `data` at `ptr`.
    Write {
        /// Destination address.
        ptr: RemotePtr,
        /// Payload.
        data: Vec<u8>,
    },
    /// Compare-and-swap the 8-byte word at `ptr`.
    Cas {
        /// Word address (8-byte aligned).
        ptr: RemotePtr,
        /// Expected value.
        expected: u64,
        /// Replacement value.
        new: u64,
    },
    /// Fetch-and-add on the 8-byte word at `ptr`.
    Faa {
        /// Word address (8-byte aligned).
        ptr: RemotePtr,
        /// Addend (wrapping).
        delta: u64,
    },
    /// Release the allocation at `ptr` through the reclamation path.
    ///
    /// Unlike [`DmClient::free`] (the allocation fast path, charged no
    /// network time), a `Free` verb travels like any other one-sided
    /// message — the epoch reclaimer doorbell-batches many of them into
    /// one round trip — and the returned bytes are attributed to
    /// [`AllocStats::reclaimed_bytes`](crate::AllocStats::reclaimed_bytes).
    Free {
        /// Allocation to release.
        ptr: RemotePtr,
    },
}

impl Verb {
    /// The memory node this verb targets (from its pointer's placement).
    pub fn mn_id(&self) -> u16 {
        match self {
            Verb::Read { ptr, .. }
            | Verb::Write { ptr, .. }
            | Verb::Cas { ptr, .. }
            | Verb::Faa { ptr, .. }
            | Verb::Free { ptr } => ptr.mn_id(),
        }
    }

    /// Payload bytes this verb moves over the wire (request + response).
    pub fn wire_bytes(&self) -> u64 {
        match self {
            Verb::Read { len, .. } => *len as u64,
            Verb::Write { data, .. } => data.len() as u64,
            Verb::Cas { .. } => 16, // expected+swap out, old value back
            Verb::Faa { .. } => 16,
            Verb::Free { .. } => 8, // pointer out, ack back
        }
    }
}

/// The outcome of one [`Verb`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerbResult {
    /// Bytes returned by a read.
    Read(Vec<u8>),
    /// A write completed.
    Write,
    /// Previous word value observed by a CAS (success ⇔ it equals the
    /// expected value the caller supplied).
    Cas(u64),
    /// Previous word value returned by an FAA.
    Faa(u64),
    /// A free completed.
    Free,
}

impl VerbResult {
    /// Extracts read data, panicking on other variants.
    ///
    /// # Panics
    ///
    /// Panics if the result is not `Read`.
    pub fn into_read(self) -> Vec<u8> {
        match self {
            VerbResult::Read(v) => v,
            other => panic!("expected Read result, got {other:?}"),
        }
    }

    /// Extracts the previous value of a CAS, panicking on other variants.
    ///
    /// # Panics
    ///
    /// Panics if the result is not `Cas`.
    pub fn into_cas(self) -> u64 {
        match self {
            VerbResult::Cas(v) => v,
            other => panic!("expected Cas result, got {other:?}"),
        }
    }
}

/// A doorbell batch: multiple verbs posted to the NIC together.
///
/// All verbs destined for the same MN share **one network round trip**; a
/// batch spanning `k` MNs performs `k` round trips *in parallel* (the
/// client's clock advances by the slowest one). This is the mechanism
/// Sphinx uses both for parallel hash-entry reads and for piggybacking lock
/// acquisition onto node writes (§IV).
///
/// # Examples
///
/// ```
/// use dm_sim::{DmCluster, ClusterConfig, DoorbellBatch, Verb};
///
/// # fn main() -> Result<(), dm_sim::DmError> {
/// let cluster = DmCluster::new(ClusterConfig::default());
/// let mut client = cluster.client(0);
/// let a = client.alloc(0, 8)?;
/// let b = client.alloc(0, 8)?;
/// let mut batch = DoorbellBatch::new();
/// batch.push(Verb::Write { ptr: a, data: vec![1; 8] });
/// batch.push(Verb::Write { ptr: b, data: vec![2; 8] });
/// let before = client.stats().round_trips;
/// client.execute(batch)?;
/// assert_eq!(client.stats().round_trips - before, 1); // same MN: one RT
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct DoorbellBatch {
    verbs: Vec<Verb>,
}

impl DoorbellBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        DoorbellBatch::default()
    }

    /// Creates an empty batch with capacity for `n` verbs.
    pub fn with_capacity(n: usize) -> Self {
        DoorbellBatch {
            verbs: Vec::with_capacity(n),
        }
    }

    /// Appends a verb to the batch.
    pub fn push(&mut self, verb: Verb) {
        self.verbs.push(verb);
    }

    /// Number of verbs queued.
    pub fn len(&self) -> usize {
        self.verbs.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.verbs.is_empty()
    }

    /// The queued verbs, in submission order.
    pub fn verbs(&self) -> &[Verb] {
        &self.verbs
    }

    /// Number of distinct MNs this batch targets — its logical round-trip
    /// count, and the physical doorbell count when executed unfused.
    pub fn mn_groups(&self) -> usize {
        let mut mns: Vec<u16> = self.verbs.iter().map(Verb::mn_id).collect();
        mns.sort_unstable();
        mns.dedup();
        mns.len()
    }

    /// Total wire bytes the batch moves (requests + responses).
    pub fn wire_bytes(&self) -> u64 {
        self.verbs.iter().map(Verb::wire_bytes).sum()
    }
}

impl Extend<Verb> for DoorbellBatch {
    fn extend<T: IntoIterator<Item = Verb>>(&mut self, iter: T) {
        self.verbs.extend(iter);
    }
}

impl FromIterator<Verb> for DoorbellBatch {
    fn from_iter<T: IntoIterator<Item = Verb>>(iter: T) -> Self {
        DoorbellBatch {
            verbs: Vec::from_iter(iter),
        }
    }
}

/// A compute-side client: issues one-sided verbs against the cluster and
/// tracks its own virtual time and statistics.
///
/// Not `Sync`: create one per worker thread (the intended usage, matching
/// per-coroutine contexts in the paper's systems).
#[derive(Debug)]
pub struct DmClient {
    inner: Arc<ClusterInner>,
    cn_id: u16,
    clock_ns: u64,
    stats: ClientStats,
    schedule: Option<ScheduleHandle>,
    cq: CqState,
    #[cfg(feature = "trace")]
    trace: TransportTrace,
}

impl DmClient {
    pub(crate) fn new(inner: Arc<ClusterInner>, cn_id: u16) -> Self {
        DmClient {
            inner,
            cn_id,
            clock_ns: 0,
            stats: ClientStats::default(),
            schedule: None,
            cq: CqState::new(),
            #[cfg(feature = "trace")]
            trace: TransportTrace::default(),
        }
    }

    /// Attaches a deterministic-schedule participant handle: from now on
    /// every non-empty batch this client executes is one scheduler-granted
    /// step (see [`Schedule`](crate::Schedule)). Dropping the client
    /// deregisters the participant.
    pub fn attach_schedule(&mut self, handle: ScheduleHandle) {
        self.schedule = Some(handle);
    }

    /// Whether a schedule handle is attached.
    pub fn is_scheduled(&self) -> bool {
        self.schedule.is_some()
    }

    /// Consumes one scheduling step with no attached batch and returns its
    /// step number — a virtual timestamp totally ordered against every
    /// other participant's steps (history recorders stamp operation
    /// invoke/response events with it). Returns `None` when no schedule is
    /// attached.
    pub fn schedule_tick(&mut self) -> Option<u64> {
        self.schedule.as_ref().map(|h| h.tick())
    }

    /// The compute node this client runs on.
    pub fn cn_id(&self) -> u16 {
        self.cn_id
    }

    /// Current virtual time in nanoseconds.
    pub fn clock_ns(&self) -> u64 {
        self.clock_ns
    }

    /// Advances the virtual clock by `ns` (models CN-side compute).
    pub fn advance_clock(&mut self, ns: u64) {
        #[cfg(feature = "trace")]
        if ns > 0 && self.trace.enabled() {
            self.trace.push(TransportEvent::Advance {
                from_ns: self.clock_ns,
                to_ns: self.clock_ns + ns,
            });
        }
        self.clock_ns += ns;
    }

    /// Sets the virtual clock (e.g. to re-synchronize workers at a barrier).
    /// Any retained trace events are dropped — windows that straddle a
    /// clock reset are meaningless.
    pub fn set_clock_ns(&mut self, ns: u64) {
        self.clock_ns = ns;
        #[cfg(feature = "trace")]
        self.trace.clear();
    }

    /// Turns transport-event tracing on or off for this client.
    #[cfg(feature = "trace")]
    pub fn trace_set_enabled(&mut self, on: bool) {
        self.trace.set_enabled(on);
    }

    /// The trace sequence number the next transport event will get. Take a
    /// mark before an op begins and pass it to
    /// [`trace_collect_since`](DmClient::trace_collect_since) at the end.
    #[cfg(feature = "trace")]
    pub fn trace_mark(&self) -> u64 {
        self.trace.next_seq()
    }

    /// Appends every retained transport event with sequence ≥ `mark` to
    /// `out`; returns `false` if part of the window was evicted by the
    /// ring's capacity.
    #[cfg(feature = "trace")]
    pub fn trace_collect_since(&self, mark: u64, out: &mut Vec<TransportEvent>) -> bool {
        self.trace.collect_since(mark, out)
    }

    /// Cumulative network statistics.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Consistent-hash placement (same as [`DmCluster::place`](crate::DmCluster::place)).
    pub fn place(&self, hash: u64) -> u16 {
        self.inner.ring.place(hash)
    }

    /// Number of memory nodes in the cluster.
    pub fn num_mns(&self) -> u16 {
        self.inner.config.num_mns
    }

    /// Executes a doorbell batch, advancing the virtual clock by the
    /// slowest of the per-MN round trips. Results are returned in verb
    /// order.
    ///
    /// A submit+wait shim over the completion queue: anything already on
    /// the submission queue is flushed (and possibly fused) along with
    /// this batch.
    ///
    /// # Errors
    ///
    /// Returns the first addressing/alignment error encountered; memory
    /// effects of verbs preceding the failed one are retained (as on real
    /// hardware, where a QP flushes after a failed work request).
    pub fn execute(&mut self, batch: DoorbellBatch) -> Result<Vec<VerbResult>, DmError> {
        if batch.is_empty() {
            return Ok(Vec::new());
        }
        let token = self.submit(batch);
        self.wait(token)
    }

    /// Enqueues a doorbell batch without blocking: the network is not
    /// touched (and the clock does not advance) until the next
    /// [`flush_submitted`](DmClient::flush_submitted) or a
    /// [`wait`](DmClient::wait) that triggers one.
    pub fn submit(&mut self, batch: DoorbellBatch) -> SqeToken {
        self.cq.enqueue(batch)
    }

    /// Reaps the completion for `token` if its batch has been flushed.
    pub fn poll(&mut self, token: SqeToken) -> Option<Result<Vec<VerbResult>, DmError>> {
        self.cq.reap(token)
    }

    /// Blocks (in virtual time) until `token`'s completion is available:
    /// reaps it if posted, otherwise flushes the submission queue first.
    ///
    /// # Errors
    ///
    /// Returns the error the batch completed with.
    ///
    /// # Panics
    ///
    /// Panics if `token` was never submitted on this client or was
    /// already reaped.
    pub fn wait(&mut self, token: SqeToken) -> Result<Vec<VerbResult>, DmError> {
        if let Some(done) = self.cq.reap(token) {
            return done;
        }
        self.flush_submitted();
        self.cq
            .reap(token)
            .expect("waited on an SqeToken that was never submitted (or already reaped)")
    }

    /// Rings the doorbell for every submitted batch and posts the
    /// completions.
    ///
    /// Two regimes:
    ///
    /// * **Scheduled** (a [`ScheduleHandle`] is attached) or a single
    ///   pending batch: each batch runs as its own granted step through
    ///   the legacy blocking path. Under a deterministic schedule every
    ///   in-flight operation therefore stays an independently schedulable
    ///   participant and no cross-op fusion happens — determinism and the
    ///   lincheck interleaving search are unaffected by pipelining.
    /// * **Unscheduled, multiple batches**: the flush *fuses* them — all
    ///   verbs go out in one burst, same-MN verbs from different batches
    ///   share a single round trip (one per-message cost each, summed
    ///   per-byte costs, one RTT), and the clock advances once by the
    ///   slowest MN. Each batch still accounts its own logical
    ///   [`ClientStats::round_trips`]; only [`ClientStats::doorbells`]
    ///   records the smaller physical message-burst count.
    pub fn flush_submitted(&mut self) {
        let pending = self.cq.take_submitted();
        if pending.is_empty() {
            return;
        }
        if pending.len() == 1 || self.schedule.is_some() {
            for (token, batch) in pending {
                let result = self.execute_one(token, batch);
                self.cq.complete(token, result);
            }
        } else {
            self.flush_fused(pending);
        }
    }

    /// The legacy blocking path: one batch, one (possibly scheduler-gated)
    /// charged step. Byte-identical in cost and accounting to the
    /// pre-completion-queue `execute`, which keeps depth-1 pipelining
    /// equivalent to the blocking stack.
    fn execute_one(
        &mut self,
        token: SqeToken,
        batch: DoorbellBatch,
    ) -> Result<Vec<VerbResult>, DmError> {
        if batch.is_empty() {
            return Ok(Vec::new());
        }
        // Under a deterministic schedule the whole batch — cost model and
        // memory effects — is one granted step: park at the gate, run,
        // release. `take` sidesteps the self-borrow; the handle is always
        // restored, and `gate_end` runs on error paths too.
        match self.schedule.take() {
            None => self.execute_granted(token, batch, None),
            Some(handle) => {
                let has_cas = batch.verbs.iter().any(|v| matches!(v, Verb::Cas { .. }));
                let grant = handle.gate_begin(has_cas);
                let result = self.execute_granted(token, batch, Some(&grant));
                handle.gate_end();
                self.schedule = Some(handle);
                result
            }
        }
    }

    /// Per-MN (mn, msgs, bytes) tally of a verb sequence, in first-seen
    /// MN order.
    fn tally(verbs: &[Verb]) -> Vec<(u16, u64, u64)> {
        let mut mn_msgs: Vec<(u16, u64, u64)> = Vec::new();
        for verb in verbs {
            let mn = verb.mn_id();
            let bytes = verb.wire_bytes();
            match mn_msgs.iter_mut().find(|(id, _, _)| *id == mn) {
                Some((_, m, b)) => {
                    *m += 1;
                    *b += bytes;
                }
                None => mn_msgs.push((mn, 1, bytes)),
            }
        }
        mn_msgs
    }

    /// Bumps the per-verb-kind counters for a verb sequence — on this
    /// client *and*, mirrored verb for verb, on the owning memory node's
    /// server-side accounting (a verb addressed to a nonexistent MN lands
    /// in the cluster's dropped counter instead). This single choke point
    /// is what makes `ClusterStats::check_conservation` exact: both sides
    /// of the ledger are written in the same breath.
    fn count_verbs(&mut self, verbs: &[Verb]) {
        for verb in verbs {
            match verb {
                Verb::Read { .. } => self.stats.reads += 1,
                Verb::Write { .. } => self.stats.writes += 1,
                Verb::Cas { .. } => self.stats.cas += 1,
                Verb::Faa { .. } => self.stats.faa += 1,
                Verb::Free { .. } => self.stats.frees += 1,
            }
            match self.inner.mns.get(verb.mn_id() as usize) {
                Some(mn) => mn.accounting().record_verb(verb),
                None => self.inner.note_dropped_verb(),
            }
        }
    }

    fn execute_granted(
        &mut self,
        token: SqeToken,
        batch: DoorbellBatch,
        grant: Option<&GrantedStep>,
    ) -> Result<Vec<VerbResult>, DmError> {
        #[cfg(not(feature = "trace"))]
        let _ = token;
        // An injected delay models the batch being held at the NIC before
        // submission: virtual time passes, then the verbs go out.
        let from_ns = self.clock_ns;
        let delay_ns = grant.map_or(0, |g| g.decision.delay_ns);
        let now = from_ns + delay_ns;
        self.count_verbs(&batch.verbs);
        let mn_msgs = Self::tally(&batch.verbs);

        // Resolve every target before charging any NIC: a batch addressing
        // an unknown MN is rejected whole, so no doorbell rings without a
        // matching client-side doorbell count (conservation).
        let mut targets = Vec::with_capacity(mn_msgs.len());
        for &(mn_id, _, _) in &mn_msgs {
            targets.push(
                self.inner
                    .mns
                    .get(mn_id as usize)
                    .ok_or(DmError::UnknownMemoryNode { mn_id })?,
            );
        }

        // Charge the CN NIC once for the whole batch, each MN NIC for its
        // share, and take the slowest completion.
        let cn_nic = &self.inner.cn_nics[self.cn_id as usize];
        let total_msgs: u64 = mn_msgs.iter().map(|(_, m, _)| m).sum();
        let total_bytes: u64 = mn_msgs.iter().map(|(_, _, b)| b).sum();
        let cn_fin = cn_nic.submit(now, total_msgs, total_bytes);
        let mut completion = cn_fin;
        #[cfg(feature = "trace")]
        let mut fins = [(0u16, 0u64); crate::trace::MAX_BURST_MNS];
        #[cfg(feature = "trace")]
        let mut fins_len = 0usize;
        for (&(mn_id, msgs, bytes), mn) in mn_msgs.iter().zip(&targets) {
            let charge = mn.nic().submit_charged(now, msgs, bytes);
            mn.accounting()
                .record_doorbell(charge.wait_ns, charge.service_ns);
            #[cfg(feature = "trace")]
            if self.trace.enabled() && fins_len < fins.len() {
                fins[fins_len] = (mn_id, charge.fin_ns);
                fins_len += 1;
            }
            #[cfg(not(feature = "trace"))]
            let _ = mn_id;
            completion = completion.max(charge.fin_ns);
        }
        let rtt = self.inner.config.net.rtt_ns;
        let cpu = self.inner.config.net.client_op_ns * batch.verbs.len() as u64;
        self.clock_ns = completion + rtt + cpu;

        self.stats.round_trips += mn_msgs.len() as u64;
        self.stats.doorbells += mn_msgs.len() as u64;

        #[cfg(feature = "trace")]
        if self.trace.enabled() {
            let mut ev = BurstEvent::new(from_ns, self.clock_ns, delay_ns, cpu);
            ev.doorbells = mn_msgs.len() as u32;
            ev.verbs = batch.verbs.len() as u32;
            ev.grant_step = grant.map(|g| g.step);
            ev.push_token(token.raw(), batch.verbs.len() as u32);
            for &(mn, fin) in &fins[..fins_len] {
                ev.push_mn_fin(mn, fin);
            }
            self.trace.push(TransportEvent::Burst(ev));
        }

        // Apply memory effects and collect results. READ completions pass
        // through the cluster-wide fault hook and, on a step whose
        // schedule decision fired, the schedule's tear hook.
        let fault_hook = self.inner.fault_hook.get();
        let tear_hook = grant.and_then(|g| g.tear_hook.clone());
        self.apply_effects(batch, &fault_hook, &tear_hook)
    }

    /// Fused flush of several independent batches (unscheduled path): one
    /// physical doorbell per distinct MN across the union of all verbs,
    /// one RTT, one clock advance — while each batch keeps its own logical
    /// round-trip accounting and its own per-token result.
    fn flush_fused(&mut self, pending: Vec<(SqeToken, DoorbellBatch)>) {
        let now = self.clock_ns;
        // Validate targets up front: a batch addressing an unknown MN is
        // rejected whole (no charge, no effects) so it cannot poison the
        // fused charge for its neighbours.
        let num_mns = self.inner.mns.len();
        let mut tallies: Vec<Option<Vec<(u16, u64, u64)>>> = Vec::with_capacity(pending.len());
        let mut union: Vec<(u16, u64, u64)> = Vec::new();
        let mut total_verbs: u64 = 0;
        for (_, batch) in &pending {
            self.count_verbs(&batch.verbs);
            let tally = Self::tally(&batch.verbs);
            if tally.iter().any(|&(mn, _, _)| mn as usize >= num_mns) {
                tallies.push(None);
                continue;
            }
            for &(mn, msgs, bytes) in &tally {
                match union.iter_mut().find(|(id, _, _)| *id == mn) {
                    Some((_, m, b)) => {
                        *m += msgs;
                        *b += bytes;
                    }
                    None => union.push((mn, msgs, bytes)),
                }
            }
            total_verbs += batch.verbs.len() as u64;
            tallies.push(Some(tally));
        }

        // Charge the fused burst: the CN NIC once for the union, each MN
        // NIC for its fused share (per-message costs add, the RTT is
        // shared), clock to the slowest completion. An all-invalid flush
        // charges nothing.
        if !union.is_empty() {
            let cn_nic = &self.inner.cn_nics[self.cn_id as usize];
            let total_msgs: u64 = union.iter().map(|(_, m, _)| m).sum();
            let total_bytes: u64 = union.iter().map(|(_, _, b)| b).sum();
            let mut completion = cn_nic.submit(now, total_msgs, total_bytes);
            #[cfg(feature = "trace")]
            let mut fins = [(0u16, 0u64); crate::trace::MAX_BURST_MNS];
            #[cfg(feature = "trace")]
            let mut fins_len = 0usize;
            for &(mn_id, msgs, bytes) in &union {
                let mn = &self.inner.mns[mn_id as usize];
                let charge = mn.nic().submit_charged(now, msgs, bytes);
                mn.accounting()
                    .record_doorbell(charge.wait_ns, charge.service_ns);
                #[cfg(feature = "trace")]
                if self.trace.enabled() && fins_len < fins.len() {
                    fins[fins_len] = (mn_id, charge.fin_ns);
                    fins_len += 1;
                }
                completion = completion.max(charge.fin_ns);
            }
            let rtt = self.inner.config.net.rtt_ns;
            let cpu = self.inner.config.net.client_op_ns * total_verbs;
            self.clock_ns = completion + rtt + cpu;
            self.stats.doorbells += union.len() as u64;

            #[cfg(feature = "trace")]
            if self.trace.enabled() {
                let mut ev = BurstEvent::new(now, self.clock_ns, 0, cpu);
                ev.doorbells = union.len() as u32;
                ev.verbs = total_verbs as u32;
                for ((token, batch), tally) in pending.iter().zip(&tallies) {
                    if tally.is_some() {
                        ev.push_token(token.raw(), batch.verbs.len() as u32);
                    }
                }
                for &(mn, fin) in &fins[..fins_len] {
                    ev.push_mn_fin(mn, fin);
                }
                self.trace.push(TransportEvent::Burst(ev));
            }
        }

        // Apply memory effects in submission order, verb order within a
        // batch; each batch completes with its own results or error.
        let fault_hook = self.inner.fault_hook.get();
        for ((token, batch), tally) in pending.into_iter().zip(tallies) {
            let result = match tally {
                None => {
                    let mn_id = batch
                        .verbs
                        .iter()
                        .map(Verb::mn_id)
                        .find(|&mn| mn as usize >= num_mns)
                        .expect("invalid batch has an unknown MN");
                    Err(DmError::UnknownMemoryNode { mn_id })
                }
                Some(tally) => {
                    self.stats.round_trips += tally.len() as u64;
                    self.apply_effects(batch, &fault_hook, &None)
                }
            };
            self.cq.complete(token, result);
        }
    }

    /// Applies a batch's memory effects in verb order and collects the
    /// results. READ completions pass through the cluster-wide fault hook
    /// and (on scheduled steps whose decision fired) the schedule's tear
    /// hook.
    fn apply_effects(
        &mut self,
        batch: DoorbellBatch,
        fault_hook: &Option<Arc<dyn FaultHook>>,
        tear_hook: &Option<Arc<dyn FaultHook>>,
    ) -> Result<Vec<VerbResult>, DmError> {
        let mut results = Vec::with_capacity(batch.verbs.len());
        for verb in batch.verbs {
            let mn =
                self.inner
                    .mns
                    .get(verb.mn_id() as usize)
                    .ok_or(DmError::UnknownMemoryNode {
                        mn_id: verb.mn_id(),
                    })?;
            let res = match verb {
                Verb::Read { ptr, len } => {
                    let mut buf = vec![0u8; len];
                    mn.read_bytes(ptr.offset(), &mut buf)?;
                    if fault_hook.is_some() || tear_hook.is_some() {
                        // Injection accounting: only hooks that actually
                        // altered the bytes count. The pristine copy is
                        // taken only while a hook is installed, so the
                        // fault-free data path is unaffected.
                        let pristine = buf.clone();
                        if let Some(hook) = fault_hook {
                            hook.corrupt_read(ptr, &mut buf);
                        }
                        if let Some(hook) = tear_hook {
                            hook.corrupt_read(ptr, &mut buf);
                        }
                        if buf != pristine {
                            self.inner.note_fault_injection();
                        }
                    }
                    self.stats.bytes_read += len as u64;
                    mn.accounting().record_read_effect(ptr.offset(), len as u64);
                    VerbResult::Read(buf)
                }
                Verb::Write { ptr, data } => {
                    mn.write_bytes(ptr.offset(), &data)?;
                    self.stats.bytes_written += data.len() as u64;
                    mn.accounting()
                        .record_write_effect(ptr.offset(), data.len() as u64);
                    VerbResult::Write
                }
                Verb::Cas { ptr, expected, new } => {
                    let prev = mn.cas_u64(ptr.offset(), expected, new)?;
                    self.stats.bytes_written += 8;
                    mn.accounting().record_write_effect(ptr.offset(), 8);
                    VerbResult::Cas(prev)
                }
                Verb::Faa { ptr, delta } => {
                    let prev = mn.faa_u64(ptr.offset(), delta)?;
                    self.stats.bytes_written += 8;
                    mn.accounting().record_write_effect(ptr.offset(), 8);
                    VerbResult::Faa(prev)
                }
                Verb::Free { ptr } => {
                    mn.free_reclaimed(ptr)?;
                    // A free moves no accounted payload but still touches
                    // the heat sketch (reclamation pressure is load too).
                    mn.accounting().record_write_effect(ptr.offset(), 0);
                    VerbResult::Free
                }
            };
            results.push(res);
        }
        Ok(results)
    }

    /// Submits a single verb through the submit+wait shim and returns its
    /// result — the one execution entry point behind every convenience
    /// method below.
    fn run_one(&mut self, verb: Verb) -> Result<VerbResult, DmError> {
        let token = self.submit(DoorbellBatch::from_iter([verb]));
        let mut res = self.wait(token)?;
        Ok(res.pop().expect("one verb, one result"))
    }

    /// Reads `len` bytes at `ptr` in one round trip.
    ///
    /// # Errors
    ///
    /// Returns [`DmError::InvalidAddress`] for out-of-pool access.
    pub fn read(&mut self, ptr: RemotePtr, len: usize) -> Result<Vec<u8>, DmError> {
        Ok(self.run_one(Verb::Read { ptr, len })?.into_read())
    }

    /// Writes `data` at `ptr` in one round trip.
    ///
    /// # Errors
    ///
    /// Returns [`DmError::InvalidAddress`] for out-of-pool access.
    pub fn write(&mut self, ptr: RemotePtr, data: &[u8]) -> Result<(), DmError> {
        self.run_one(Verb::Write {
            ptr,
            data: data.to_vec(),
        })?;
        Ok(())
    }

    /// Reads the 8-byte word at `ptr` (one round trip).
    ///
    /// # Errors
    ///
    /// Returns [`DmError::InvalidAddress`] for out-of-pool access.
    pub fn read_u64(&mut self, ptr: RemotePtr) -> Result<u64, DmError> {
        let bytes = self.read(ptr, 8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Writes the 8-byte word at `ptr` (one round trip).
    ///
    /// # Errors
    ///
    /// Returns [`DmError::InvalidAddress`] for out-of-pool access.
    pub fn write_u64(&mut self, ptr: RemotePtr, value: u64) -> Result<(), DmError> {
        self.write(ptr, &value.to_le_bytes())
    }

    /// RDMA CAS on the word at `ptr`; returns the previous value.
    ///
    /// # Errors
    ///
    /// Returns [`DmError::MisalignedAtomic`] or [`DmError::InvalidAddress`].
    pub fn cas(&mut self, ptr: RemotePtr, expected: u64, new: u64) -> Result<u64, DmError> {
        Ok(self.run_one(Verb::Cas { ptr, expected, new })?.into_cas())
    }

    /// RDMA FAA on the word at `ptr`; returns the previous value.
    ///
    /// # Errors
    ///
    /// Returns [`DmError::MisalignedAtomic`] or [`DmError::InvalidAddress`].
    pub fn faa(&mut self, ptr: RemotePtr, delta: u64) -> Result<u64, DmError> {
        match self.run_one(Verb::Faa { ptr, delta })? {
            VerbResult::Faa(v) => Ok(v),
            other => panic!("expected Faa result, got {other:?}"),
        }
    }

    /// Allocates `size` bytes on memory node `mn_id`.
    ///
    /// Allocation is charged no network time: real DM systems amortize it
    /// through per-CN memory leases/slabs (e.g. FaRM, Sherman), so it is off
    /// the critical path.
    ///
    /// # Errors
    ///
    /// Returns [`DmError::OutOfMemory`] or [`DmError::UnknownMemoryNode`].
    pub fn alloc(&mut self, mn_id: u16, size: usize) -> Result<RemotePtr, DmError> {
        self.inner
            .mns
            .get(mn_id as usize)
            .ok_or(DmError::UnknownMemoryNode { mn_id })?
            .alloc(size)
    }

    /// Allocates on the MN chosen by consistent hashing of `hash`.
    ///
    /// # Errors
    ///
    /// Returns [`DmError::OutOfMemory`].
    pub fn alloc_placed(&mut self, hash: u64, size: usize) -> Result<RemotePtr, DmError> {
        let mn = self.place(hash);
        self.alloc(mn, size)
    }

    /// Frees a previously allocated region.
    ///
    /// # Errors
    ///
    /// Returns [`DmError::InvalidFree`] or [`DmError::UnknownMemoryNode`].
    pub fn free(&mut self, ptr: RemotePtr) -> Result<(), DmError> {
        self.inner
            .mns
            .get(ptr.mn_id() as usize)
            .ok_or(DmError::UnknownMemoryNode { mn_id: ptr.mn_id() })?
            .free(ptr)
    }
}

/// The simulator-backed [`Transport`](crate::Transport): supplies the
/// required primitives and inherits the batch combinators. The inherent
/// methods above keep working unchanged (they shadow the same-named trait
/// provided methods with identical behaviour).
impl crate::transport::Transport for DmClient {
    fn cq(&mut self) -> &mut CqState {
        &mut self.cq
    }

    fn flush_submitted(&mut self) {
        DmClient::flush_submitted(self);
    }

    fn stats(&self) -> ClientStats {
        DmClient::stats(self)
    }

    fn clock_ns(&self) -> u64 {
        DmClient::clock_ns(self)
    }

    fn advance_clock(&mut self, ns: u64) {
        DmClient::advance_clock(self, ns);
    }

    fn place(&self, hash: u64) -> u16 {
        DmClient::place(self, hash)
    }

    fn num_mns(&self) -> u16 {
        DmClient::num_mns(self)
    }

    fn alloc(&mut self, mn_id: u16, size: usize) -> Result<RemotePtr, DmError> {
        DmClient::alloc(self, mn_id, size)
    }

    fn free(&mut self, ptr: RemotePtr) -> Result<(), DmError> {
        DmClient::free(self, ptr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterConfig, DmCluster};
    use crate::net::NetConfig;

    fn small_cluster() -> DmCluster {
        DmCluster::new(ClusterConfig {
            num_mns: 2,
            num_cns: 1,
            mn_capacity: 1 << 20,
            ..Default::default()
        })
    }

    #[test]
    fn single_read_write() {
        let c = small_cluster();
        let mut cl = c.client(0);
        let p = cl.alloc(0, 64).unwrap();
        cl.write(p, b"sphinx").unwrap();
        assert_eq!(cl.read(p, 6).unwrap(), b"sphinx");
        assert_eq!(cl.stats().round_trips, 2);
        assert_eq!(cl.stats().verbs(), 2);
    }

    #[test]
    fn batch_to_one_mn_is_one_round_trip() {
        let c = small_cluster();
        let mut cl = c.client(0);
        let a = cl.alloc(0, 8).unwrap();
        let b = cl.alloc(0, 8).unwrap();
        let mut batch = DoorbellBatch::new();
        batch.push(Verb::Write {
            ptr: a,
            data: vec![1; 8],
        });
        batch.push(Verb::Write {
            ptr: b,
            data: vec![2; 8],
        });
        batch.push(Verb::Read { ptr: a, len: 8 });
        cl.execute(batch).unwrap();
        assert_eq!(cl.stats().round_trips, 1);
        assert_eq!(cl.stats().verbs(), 3);
    }

    #[test]
    fn batch_to_two_mns_is_two_parallel_round_trips() {
        let c = small_cluster();
        let mut cl = c.client(0);
        let a = cl.alloc(0, 8).unwrap();
        let b = cl.alloc(1, 8).unwrap();
        let t0 = cl.clock_ns();
        let mut batch = DoorbellBatch::new();
        batch.push(Verb::Read { ptr: a, len: 8 });
        batch.push(Verb::Read { ptr: b, len: 8 });
        cl.execute(batch).unwrap();
        let parallel_elapsed = cl.clock_ns() - t0;
        assert_eq!(cl.stats().round_trips, 2);

        // Sequential execution of the same two reads takes ~2x the time.
        let mut cl2 = c.client(0);
        cl2.read(a, 8).unwrap();
        cl2.read(b, 8).unwrap();
        let seq_elapsed = cl2.clock_ns();
        assert!(
            seq_elapsed > parallel_elapsed + NetConfig::default().rtt_ns / 2,
            "sequential {seq_elapsed} should exceed parallel {parallel_elapsed}"
        );
    }

    #[test]
    fn clock_advances_by_at_least_rtt() {
        let c = small_cluster();
        let mut cl = c.client(0);
        let p = cl.alloc(0, 8).unwrap();
        let t0 = cl.clock_ns();
        cl.read(p, 8).unwrap();
        assert!(cl.clock_ns() >= t0 + NetConfig::default().rtt_ns);
    }

    #[test]
    fn cas_through_client() {
        let c = small_cluster();
        let mut cl = c.client(0);
        let p = cl.alloc(0, 8).unwrap();
        cl.write_u64(p, 5).unwrap();
        assert_eq!(cl.cas(p, 5, 6).unwrap(), 5); // success
        assert_eq!(cl.cas(p, 5, 7).unwrap(), 6); // failure returns current
        assert_eq!(cl.read_u64(p).unwrap(), 6);
    }

    #[test]
    fn faa_through_client() {
        let c = small_cluster();
        let mut cl = c.client(0);
        let p = cl.alloc(0, 8).unwrap();
        assert_eq!(cl.faa(p, 10).unwrap(), 0);
        assert_eq!(cl.read_u64(p).unwrap(), 10);
    }

    #[test]
    fn results_in_verb_order() {
        let c = small_cluster();
        let mut cl = c.client(0);
        let p = cl.alloc(0, 16).unwrap();
        let q = p.checked_add(8).unwrap();
        let mut batch = DoorbellBatch::new();
        batch.push(Verb::Write {
            ptr: p,
            data: 1u64.to_le_bytes().to_vec(),
        });
        batch.push(Verb::Write {
            ptr: q,
            data: 2u64.to_le_bytes().to_vec(),
        });
        batch.push(Verb::Read { ptr: p, len: 8 });
        batch.push(Verb::Read { ptr: q, len: 8 });
        let res = cl.execute(batch).unwrap();
        assert_eq!(res[2], VerbResult::Read(1u64.to_le_bytes().to_vec()));
        assert_eq!(res[3], VerbResult::Read(2u64.to_le_bytes().to_vec()));
    }

    #[test]
    fn empty_batch_is_free() {
        let c = small_cluster();
        let mut cl = c.client(0);
        let t0 = cl.clock_ns();
        let res = cl.execute(DoorbellBatch::new()).unwrap();
        assert!(res.is_empty());
        assert_eq!(cl.clock_ns(), t0);
        assert_eq!(cl.stats().round_trips, 0);
    }

    #[test]
    fn contention_inflates_latency() {
        // Two clients hammering the same MN should see higher per-op
        // latency than one client alone (NIC queueing). The per-message
        // service time is set high enough that two clients exceed the NIC's
        // capacity: solo rate = 1/(s+rtt) < capacity 1/s, duo rate = 2/(s+rtt) > 1/s.
        let config = ClusterConfig {
            num_mns: 1,
            num_cns: 1,
            mn_capacity: 1 << 20,
            net: NetConfig {
                rtt_ns: 2000,
                msg_ns: 5000,
                byte_ns_x1000: 80,
                client_op_ns: 0,
            },
            ..Default::default()
        };
        let c = DmCluster::new(config);
        let p = c.mn(0).unwrap().alloc(8).unwrap();

        let mut solo = c.client(0);
        for _ in 0..100 {
            solo.read(p, 8).unwrap();
        }
        let solo_time = solo.clock_ns();

        c.reset_network();
        let mut a = c.client(0);
        let mut b = c.client(0);
        for _ in 0..100 {
            a.read(p, 8).unwrap();
            b.read(p, 8).unwrap();
        }
        assert!(
            a.clock_ns() > solo_time && b.clock_ns() > solo_time,
            "contended clients ({}, {}) should be slower than solo ({})",
            a.clock_ns(),
            b.clock_ns(),
            solo_time
        );
    }

    #[test]
    fn client_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<DmClient>();
    }

    #[test]
    fn submit_is_free_until_flush() {
        let c = small_cluster();
        let mut cl = c.client(0);
        let p = cl.alloc(0, 8).unwrap();
        cl.write_u64(p, 7).unwrap();
        let t0 = cl.clock_ns();
        let s0 = cl.stats();
        let tok = cl.submit(DoorbellBatch::from_iter([Verb::Read { ptr: p, len: 8 }]));
        assert_eq!(cl.clock_ns(), t0, "submit must not advance the clock");
        assert_eq!(cl.stats(), s0, "submit must not touch counters");
        assert!(cl.poll(tok).is_none(), "nothing flushed yet");
        let res = cl.wait(tok).unwrap();
        assert_eq!(res[0], VerbResult::Read(7u64.to_le_bytes().to_vec()));
        assert!(cl.clock_ns() > t0);
        assert!(cl.poll(tok).is_none(), "token reaped exactly once");
    }

    #[test]
    fn fused_flush_is_one_doorbell_two_logical_round_trips() {
        let c = small_cluster();
        let mut cl = c.client(0);
        let a = cl.alloc(0, 8).unwrap();
        let b = cl.alloc(0, 8).unwrap();
        cl.write_u64(a, 1).unwrap();
        cl.write_u64(b, 2).unwrap();
        let s0 = cl.stats();
        let t0 = cl.clock_ns();
        let ta = cl.submit(DoorbellBatch::from_iter([Verb::Read { ptr: a, len: 8 }]));
        let tb = cl.submit(DoorbellBatch::from_iter([Verb::Read { ptr: b, len: 8 }]));
        cl.flush_submitted();
        let fused_elapsed = cl.clock_ns() - t0;
        assert_eq!(
            cl.poll(ta).unwrap().unwrap()[0],
            VerbResult::Read(1u64.to_le_bytes().to_vec())
        );
        assert_eq!(
            cl.poll(tb).unwrap().unwrap()[0],
            VerbResult::Read(2u64.to_le_bytes().to_vec())
        );
        let d = cl.stats().since(&s0);
        assert_eq!(d.round_trips, 2, "each op keeps its logical round trip");
        assert_eq!(d.doorbells, 1, "one fused physical doorbell");
        assert_eq!(d.reads, 2);
        // The fused flush shares one RTT: cheaper than two sequential reads.
        assert!(
            fused_elapsed < 2 * NetConfig::default().rtt_ns,
            "fused flush paid more than one RTT: {fused_elapsed}"
        );
    }

    #[test]
    fn fused_flush_across_two_mns_counts_two_doorbells() {
        let c = small_cluster();
        let mut cl = c.client(0);
        let a = cl.alloc(0, 8).unwrap();
        let b = cl.alloc(1, 8).unwrap();
        let s0 = cl.stats();
        cl.submit(DoorbellBatch::from_iter([Verb::Read { ptr: a, len: 8 }]));
        cl.submit(DoorbellBatch::from_iter([Verb::Read { ptr: b, len: 8 }]));
        cl.flush_submitted();
        let d = cl.stats().since(&s0);
        assert_eq!(d.round_trips, 2);
        assert_eq!(d.doorbells, 2, "distinct MNs cannot share a doorbell");
    }

    #[test]
    fn single_batch_flush_matches_legacy_execute_exactly() {
        // Depth-1 pipelining must be byte-identical to the blocking path:
        // same clock, same stats, same NIC state evolution.
        let c = small_cluster();
        let p = c.mn(0).unwrap().alloc(16).unwrap();
        let mut legacy = c.client(0);
        legacy.write(p, &[9u8; 16]).unwrap();
        legacy.read(p, 16).unwrap();
        c.reset_network();
        let mut cq = c.client(0);
        let t1 = cq.submit(DoorbellBatch::from_iter([Verb::Write {
            ptr: p,
            data: vec![9u8; 16],
        }]));
        cq.wait(t1).unwrap();
        let t2 = cq.submit(DoorbellBatch::from_iter([Verb::Read { ptr: p, len: 16 }]));
        cq.wait(t2).unwrap();
        assert_eq!(cq.clock_ns(), legacy.clock_ns());
        assert_eq!(cq.stats(), legacy.stats());
        assert_eq!(cq.stats().doorbells, cq.stats().round_trips);
    }

    #[test]
    fn failed_batch_poisons_only_its_token() {
        let c = small_cluster();
        let mut cl = c.client(0);
        let a = cl.alloc(0, 8).unwrap();
        cl.write_u64(a, 5).unwrap();
        let dead = cl.alloc(0, 8).unwrap();
        cl.free(dead).unwrap();
        let ok = cl.submit(DoorbellBatch::from_iter([Verb::Read { ptr: a, len: 8 }]));
        let bad = cl.submit(DoorbellBatch::from_iter([Verb::Free { ptr: dead }]));
        cl.flush_submitted();
        assert_eq!(
            cl.wait(ok).unwrap()[0],
            VerbResult::Read(5u64.to_le_bytes().to_vec()),
            "a neighbour's failure must not poison this batch"
        );
        assert!(matches!(cl.wait(bad), Err(DmError::InvalidFree { .. })));
    }

    #[test]
    fn wait_on_last_token_completes_all_pending() {
        let c = small_cluster();
        let mut cl = c.client(0);
        let a = cl.alloc(0, 8).unwrap();
        let b = cl.alloc(0, 8).unwrap();
        cl.write_u64(a, 1).unwrap();
        cl.write_u64(b, 2).unwrap();
        let ta = cl.submit(DoorbellBatch::from_iter([Verb::Read { ptr: a, len: 8 }]));
        let tb = cl.submit(DoorbellBatch::from_iter([Verb::Read { ptr: b, len: 8 }]));
        // Waiting on the later token flushes the whole queue; the earlier
        // completion is then poll-able without further network activity.
        cl.wait(tb).unwrap();
        assert!(cl.poll(ta).is_some());
    }
}
