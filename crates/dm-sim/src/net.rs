//! Virtual-time network and NIC model.
//!
//! Every [`DmClient`](crate::DmClient) carries its own virtual clock
//! (nanoseconds). Issuing a doorbell batch of verbs to one memory node
//! charges the clock:
//!
//! ```text
//! completion = t + backlog(nic, t) + service + rtt_ns
//! service    = n_msgs * msg_ns + bytes * byte_ns
//! ```
//!
//! where `backlog` models the NIC as a **work-conserving fluid queue** in
//! virtual time: the NIC tracks an outstanding-service backlog that drains
//! at line rate as virtual time advances; a batch arriving at time `t`
//! waits out the current backlog, then occupies the NIC for `service`
//! nanoseconds. Under low load the queueing term vanishes; when the
//! aggregate message/byte rate exceeds the NIC's capacity the backlog
//! grows without bound — reproducing the "early saturation of network
//! resources" the paper attributes to traversal-heavy indexes.
//!
//! A fluid queue (rather than a strict FIFO `next_free` pointer) is used
//! deliberately: benchmark workers advance their virtual clocks slightly
//! out of order relative to real scheduling, and a strict FIFO would make
//! late-scheduled arrivals queue behind virtual history. The fluid model
//! charges them only the genuinely outstanding backlog.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// Network/NIC cost parameters.
///
/// Defaults mirror the paper's testbed (ConnectX-6, 2×100 Gbps, ~2 µs RTT):
///
/// * `rtt_ns = 2000` — base round-trip latency;
/// * `msg_ns = 10` — per-message NIC processing (≈100 M msgs/s per NIC);
/// * `byte_ns_x1000 = 80` — 0.08 ns/byte ≈ 100 Gbps serialization;
/// * `client_op_ns = 150` — CN-side CPU cost per verb issued (post/poll).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetConfig {
    /// Base round-trip time in nanoseconds.
    pub rtt_ns: u64,
    /// NIC processing cost per message (request/response pair), ns.
    pub msg_ns: u64,
    /// Serialization cost in thousandths of a nanosecond per byte
    /// (80 = 0.08 ns/B = 100 Gbps).
    pub byte_ns_x1000: u64,
    /// Compute-side CPU cost charged per verb (posting, polling), ns.
    pub client_op_ns: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            rtt_ns: 2_000,
            msg_ns: 10,
            byte_ns_x1000: 80,
            client_op_ns: 150,
        }
    }
}

impl NetConfig {
    /// The default RDMA profile (ConnectX-6-class: 2 µs RTT, ~100 M msgs/s,
    /// 100 Gbps). Same as `NetConfig::default()`.
    pub fn rdma() -> Self {
        NetConfig::default()
    }

    /// A CXL-attached-memory profile (what-if analysis, §II mentions CXL as
    /// the other DM interconnect): ~400 ns round trip, cheap per-request
    /// processing, ~512 Gbps of link bandwidth. With round trips this
    /// cheap, the *number* of round trips matters less and an index's
    /// bandwidth footprint matters relatively more.
    pub fn cxl() -> Self {
        NetConfig {
            rtt_ns: 400,
            msg_ns: 4,
            byte_ns_x1000: 16,
            client_op_ns: 60,
        }
    }

    /// Service time a batch of `msgs` messages moving `bytes` payload bytes
    /// occupies a NIC for, in nanoseconds.
    pub fn service_ns(&self, msgs: u64, bytes: u64) -> u64 {
        msgs * self.msg_ns + bytes * self.byte_ns_x1000 / 1000
    }
}

/// The cost split of one submitted batch: when the NIC finishes it, how
/// long it queued behind the existing backlog, and its own service time.
/// `fin_ns == arrival + wait_ns + service_ns` by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NicCharge {
    /// Virtual time the NIC finishes serving the batch (excluding RTT).
    pub fin_ns: u64,
    /// Time the batch waited behind the outstanding backlog.
    pub wait_ns: u64,
    /// The batch's own service time.
    pub service_ns: u64,
}

/// The fluid-queue state: outstanding service and its reference time.
#[derive(Debug, Default)]
struct Backlog {
    /// Unserved work, in nanoseconds of NIC time.
    outstanding_ns: u64,
    /// Virtual time up to which the backlog has been drained.
    drained_to_ns: u64,
}

/// A NIC modeled as a work-conserving fluid queue in virtual time.
///
/// Shared by all clients that route traffic through it.
#[derive(Debug)]
pub struct Nic {
    config: NetConfig,
    backlog: Mutex<Backlog>,
    msgs: AtomicU64,
    bytes: AtomicU64,
}

impl Nic {
    /// Creates an idle NIC with the given cost parameters.
    pub fn new(config: NetConfig) -> Self {
        Nic {
            config,
            backlog: Mutex::new(Backlog::default()),
            msgs: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Submits a batch arriving at virtual time `now_ns` carrying `msgs`
    /// messages and `bytes` payload bytes. Returns the virtual time at which
    /// the NIC finishes serving the batch (excluding propagation RTT).
    pub fn submit(&self, now_ns: u64, msgs: u64, bytes: u64) -> u64 {
        self.submit_charged(now_ns, msgs, bytes).fin_ns
    }

    /// Like [`Nic::submit`], but also returns the queue/service split of
    /// the charge — the raw material of per-MN load accounting.
    pub fn submit_charged(&self, now_ns: u64, msgs: u64, bytes: u64) -> NicCharge {
        let service = self.config.service_ns(msgs, bytes);
        self.msgs.fetch_add(msgs, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        let mut b = self.backlog.lock();
        // Drain the queue at line rate for the virtual time that has
        // passed. Arrivals slightly in the past (out-of-order worker
        // scheduling) simply skip the drain.
        if now_ns > b.drained_to_ns {
            b.outstanding_ns = b.outstanding_ns.saturating_sub(now_ns - b.drained_to_ns);
            b.drained_to_ns = now_ns;
        }
        let wait = b.outstanding_ns;
        b.outstanding_ns += service;
        NicCharge {
            fin_ns: now_ns + wait + service,
            wait_ns: wait,
            service_ns: service,
        }
    }

    /// Total messages ever submitted.
    pub fn total_msgs(&self) -> u64 {
        self.msgs.load(Ordering::Relaxed)
    }

    /// Total payload bytes ever submitted.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// The NIC's configuration.
    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    /// Resets queue state and counters (between benchmark phases).
    pub fn reset(&self) {
        *self.backlog.lock() = Backlog::default();
        self.msgs.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_time_formula() {
        let c = NetConfig {
            rtt_ns: 2000,
            msg_ns: 10,
            byte_ns_x1000: 80,
            client_op_ns: 0,
        };
        // 5 msgs, 1000 bytes: 50 + 80 = 130 ns
        assert_eq!(c.service_ns(5, 1000), 130);
    }

    #[test]
    fn presets_are_distinct_and_sane() {
        let rdma = NetConfig::rdma();
        let cxl = NetConfig::cxl();
        assert_eq!(rdma, NetConfig::default());
        assert!(
            cxl.rtt_ns < rdma.rtt_ns / 2,
            "CXL round trips are much cheaper"
        );
        assert!(
            cxl.byte_ns_x1000 < rdma.byte_ns_x1000,
            "CXL links are faster"
        );
    }

    #[test]
    fn idle_nic_has_no_queueing() {
        let nic = Nic::new(NetConfig::default());
        let fin = nic.submit(10_000, 1, 8);
        assert_eq!(fin, 10_000 + NetConfig::default().service_ns(1, 8));
    }

    #[test]
    fn back_to_back_batches_queue() {
        let nic = Nic::new(NetConfig::default());
        let s = NetConfig::default().service_ns(1, 8);
        let f1 = nic.submit(0, 1, 8);
        let f2 = nic.submit(0, 1, 8); // arrives while busy -> queues
        assert_eq!(f1, s);
        assert_eq!(f2, 2 * s);
    }

    #[test]
    fn late_arrival_sees_idle_nic() {
        let nic = Nic::new(NetConfig::default());
        let s = NetConfig::default().service_ns(1, 8);
        nic.submit(0, 1, 8);
        let f = nic.submit(1_000_000, 1, 8);
        assert_eq!(f, 1_000_000 + s);
    }

    #[test]
    fn submit_charged_splits_wait_and_service() {
        let nic = Nic::new(NetConfig::default());
        let s = NetConfig::default().service_ns(1, 8);
        let a = nic.submit_charged(0, 1, 8);
        assert_eq!((a.wait_ns, a.service_ns, a.fin_ns), (0, s, s));
        let b = nic.submit_charged(0, 1, 8); // queues behind the first
        assert_eq!((b.wait_ns, b.service_ns, b.fin_ns), (s, s, 2 * s));
        assert_eq!(b.fin_ns, b.wait_ns + b.service_ns);
    }

    #[test]
    fn counters_accumulate() {
        let nic = Nic::new(NetConfig::default());
        nic.submit(0, 3, 100);
        nic.submit(0, 2, 50);
        assert_eq!(nic.total_msgs(), 5);
        assert_eq!(nic.total_bytes(), 150);
        nic.reset();
        assert_eq!(nic.total_msgs(), 0);
    }

    #[test]
    fn concurrent_submissions_conserve_service_time() {
        let nic = std::sync::Arc::new(Nic::new(NetConfig::default()));
        let s = NetConfig::default().service_ns(1, 0);
        let max_fin = std::sync::Arc::new(AtomicU64::new(0));
        std::thread::scope(|sc| {
            for _ in 0..4 {
                let nic = nic.clone();
                let max_fin = max_fin.clone();
                sc.spawn(move || {
                    for _ in 0..500 {
                        let f = nic.submit(0, 1, 0);
                        max_fin.fetch_max(f, Ordering::Relaxed);
                    }
                });
            }
        });
        // FIFO server: 2000 unit batches all arriving at t=0 must finish at
        // exactly 2000 * service.
        assert_eq!(max_fin.load(Ordering::Relaxed), 2000 * s);
    }
}
