//! Consistent hashing ring for placing objects across memory nodes.
//!
//! Sphinx distributes ART nodes evenly across MNs by consistent hashing
//! (§III of the paper). The ring maps a 64-bit object hash to an MN id,
//! using virtual nodes for smoothness.

use std::collections::BTreeMap;

/// A consistent-hashing ring over memory-node ids.
///
/// # Examples
///
/// ```
/// use dm_sim::HashRing;
///
/// let ring = HashRing::new(3, 64);
/// let mn = ring.place(0xDEADBEEF);
/// assert!(mn < 3);
/// // placement is deterministic
/// assert_eq!(mn, ring.place(0xDEADBEEF));
/// ```
#[derive(Debug, Clone)]
pub struct HashRing {
    points: BTreeMap<u64, u16>,
    num_nodes: u16,
}

/// SplitMix64 — a tiny, high-quality 64-bit mixer used for ring points and
/// object placement.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl HashRing {
    /// Builds a ring over `num_nodes` MNs with `vnodes` virtual points per
    /// node.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes` or `vnodes` is zero.
    pub fn new(num_nodes: u16, vnodes: u32) -> Self {
        assert!(num_nodes > 0, "ring needs at least one node");
        assert!(vnodes > 0, "ring needs at least one vnode per node");
        let mut points = BTreeMap::new();
        for mn in 0..num_nodes {
            for v in 0..vnodes {
                let point = splitmix64(((mn as u64) << 32) | v as u64);
                points.insert(point, mn);
            }
        }
        HashRing { points, num_nodes }
    }

    /// Number of memory nodes on the ring.
    pub fn num_nodes(&self) -> u16 {
        self.num_nodes
    }

    /// Maps an object hash to the MN that owns it: the first ring point at
    /// or after `hash`, wrapping around.
    pub fn place(&self, hash: u64) -> u16 {
        let h = splitmix64(hash);
        self.points
            .range(h..)
            .next()
            .or_else(|| self.points.iter().next())
            .map(|(_, &mn)| mn)
            .expect("ring is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_gets_everything() {
        let ring = HashRing::new(1, 16);
        for i in 0..100u64 {
            assert_eq!(ring.place(i), 0);
        }
    }

    #[test]
    fn placement_is_roughly_balanced() {
        let ring = HashRing::new(4, 128);
        let mut counts = [0usize; 4];
        for i in 0..40_000u64 {
            counts[ring.place(i) as usize] += 1;
        }
        for &c in &counts {
            // each node should get 25% +/- 10 points
            assert!((6_000..=14_000).contains(&c), "unbalanced: {counts:?}");
        }
    }

    #[test]
    fn adding_a_node_moves_few_keys() {
        let r3 = HashRing::new(3, 128);
        let r4 = HashRing::new(4, 128);
        let moved = (0..10_000u64)
            .filter(|&i| {
                let a = r3.place(i);
                let b = r4.place(i);
                a != b && b != 3 // moved between old nodes (not to the new one)
            })
            .count();
        // consistent hashing: keys should only move *to* the new node
        assert!(moved < 500, "{moved} keys moved between surviving nodes");
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        let _ = HashRing::new(0, 16);
    }
}
