//! Health/anomaly monitor: pluggable detectors over a run's metrics.
//!
//! [`evaluate_health`] inspects a window's server-side
//! [`ClusterStats`](dm_sim::ClusterStats) and the merged [`Registry`] and
//! runs every detector, producing a [`HealthReport`] of counted,
//! **non-fatal** findings plus a final verdict. Detectors use integer
//! arithmetic only, so the same inputs always produce byte-identical
//! reports. Findings are also stamped into the registry as `health.*`
//! counters ([`HealthReport::stamp`]) so they travel with the normal
//! telemetry export.
//!
//! Current detectors:
//!
//! | detector | fires when |
//! |---|---|
//! | `mn_imbalance` | hottest MN's verb count exceeds `ratio × mean` |
//! | `retry_storm` | op retries per 1000 completed ops exceed threshold |
//! | `sfc_fp_regression` | SFC false positives per 1000 lookups exceed threshold |
//! | `reclaim_stall` | blocks were retired but nothing freed and no epoch ever advanced |

use dm_sim::ClusterStats;

use crate::registry::Registry;

/// Thresholds for the health detectors. All ratios are integers
/// (per-cent ×100 or per-mille) so evaluation is deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthConfig {
    /// `mn_imbalance` fires when `max_verbs * 100 > mean_verbs *
    /// imbalance_ratio_x100` (default 250 = hottest node above 2.5× the
    /// mean).
    pub imbalance_ratio_x100: u64,
    /// Minimum total verbs in the window before imbalance is judged
    /// (tiny windows are all noise).
    pub imbalance_min_verbs: u64,
    /// `retry_storm` fires above this many retries per 1000 completed
    /// ops.
    pub retry_per_mille: u64,
    /// Minimum completed ops before retry rate is judged.
    pub retry_min_ops: u64,
    /// `sfc_fp_regression` fires above this many false positives per
    /// 1000 SFC lookups.
    pub sfc_fp_per_mille: u64,
    /// Minimum SFC lookups before the false-positive rate is judged.
    pub sfc_min_lookups: u64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            imbalance_ratio_x100: 250,
            imbalance_min_verbs: 1_000,
            retry_per_mille: 200,
            retry_min_ops: 100,
            sfc_fp_per_mille: 50,
            sfc_min_lookups: 1_000,
        }
    }
}

/// One tripped detector: what fired, the observed value, and the
/// threshold it crossed (units are detector-specific and spelled out in
/// the message).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthFinding {
    /// Stable detector name (`mn_imbalance`, `retry_storm`,
    /// `sfc_fp_regression`, `reclaim_stall`).
    pub detector: &'static str,
    /// Human-readable description with the numbers inline.
    pub message: String,
    /// The observed value that crossed the threshold.
    pub value: u64,
    /// The configured threshold it crossed.
    pub threshold: u64,
}

/// The health monitor's output: every detector that ran, every finding
/// that fired. Findings are diagnostics, never failures — a degraded
/// verdict is information for the operator (or the resharding policy),
/// not an abort.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HealthReport {
    /// Number of detectors evaluated (a detector skipped for lack of
    /// data — e.g. too few ops — still counts as evaluated).
    pub checks: u64,
    /// Detectors that fired, in fixed evaluation order.
    pub findings: Vec<HealthFinding>,
}

impl HealthReport {
    /// True when no detector fired.
    pub fn healthy(&self) -> bool {
        self.findings.is_empty()
    }

    /// The final verdict string used in reports.
    pub fn verdict(&self) -> &'static str {
        if self.healthy() {
            "healthy"
        } else {
            "degraded"
        }
    }

    /// Whether a specific detector fired.
    pub fn fired(&self, detector: &str) -> bool {
        self.findings.iter().any(|f| f.detector == detector)
    }

    /// Stamps the report into a registry as counted `health.*` events:
    /// `health.checks`, `health.findings`, and one `health.<detector>`
    /// counter per firing.
    pub fn stamp(&self, reg: &mut Registry) {
        reg.add("health.checks", self.checks);
        reg.add("health.findings", self.findings.len() as u64);
        for f in &self.findings {
            // Detector names are a closed set, so the interned keys stay
            // bounded.
            reg.add(
                match f.detector {
                    "mn_imbalance" => "health.mn_imbalance",
                    "retry_storm" => "health.retry_storm",
                    "sfc_fp_regression" => "health.sfc_fp_regression",
                    "reclaim_stall" => "health.reclaim_stall",
                    _ => "health.other",
                },
                1,
            );
        }
    }
}

/// Runs every detector over a window's cluster stats and merged registry.
pub fn evaluate_health(cluster: &ClusterStats, reg: &Registry, cfg: &HealthConfig) -> HealthReport {
    let mut report = HealthReport::default();

    // MN load imbalance: hottest node vs the mean, by verb count.
    report.checks += 1;
    let total_verbs = cluster.total_verbs();
    let n = cluster.mns.len() as u64;
    if n > 1 && total_verbs >= cfg.imbalance_min_verbs {
        let max = cluster.mns.iter().map(|m| m.verbs()).max().unwrap_or(0);
        let mean = total_verbs / n;
        if max * 100 > mean * cfg.imbalance_ratio_x100 {
            let hot = cluster
                .mns
                .iter()
                .max_by_key(|m| m.verbs())
                .map(|m| m.mn_id)
                .unwrap_or(0);
            report.findings.push(HealthFinding {
                detector: "mn_imbalance",
                message: format!(
                    "MN {hot} served {max} verbs vs a {mean} mean \
                     (threshold {}x mean / 100)",
                    cfg.imbalance_ratio_x100
                ),
                value: max,
                threshold: mean * cfg.imbalance_ratio_x100 / 100,
            });
        }
    }

    // Retry storm: total retries across op kinds vs completed ops.
    report.checks += 1;
    let ops = reg.total_ops();
    let retries: u64 = reg.ops.iter().map(|o| o.retries).sum();
    if ops >= cfg.retry_min_ops && retries * 1000 > ops * cfg.retry_per_mille {
        report.findings.push(HealthFinding {
            detector: "retry_storm",
            message: format!(
                "{retries} retries over {ops} ops \
                 (threshold {}/1000)",
                cfg.retry_per_mille
            ),
            value: retries * 1000 / ops,
            threshold: cfg.retry_per_mille,
        });
    }

    // SFC false-positive-rate regression. The flat and `sfc.gen.*` names
    // mirror the same aggregate (see `sfc_telemetry`), so take the max
    // rather than summing — a source emitting both must not double-count.
    report.checks += 1;
    let lookups = reg.counter("sfc.lookups");
    let fps = reg
        .counter("sfc.false_positives")
        .max(reg.counter("sfc.gen.false_positives"));
    if lookups >= cfg.sfc_min_lookups && fps * 1000 > lookups * cfg.sfc_fp_per_mille {
        report.findings.push(HealthFinding {
            detector: "sfc_fp_regression",
            message: format!(
                "{fps} SFC false positives over {lookups} lookups \
                 (threshold {}/1000)",
                cfg.sfc_fp_per_mille
            ),
            value: fps * 1000 / lookups,
            threshold: cfg.sfc_fp_per_mille,
        });
    }

    // Reclaim epoch stall: retirements piled up but the epoch machinery
    // never turned over and nothing was freed.
    report.checks += 1;
    let retired = reg.counter("reclaim.retired_count");
    let freed = reg.counter("reclaim.freed_count");
    let epochs = reg.counter("reclaim.epoch_advances");
    if retired > 0 && freed == 0 && epochs == 0 {
        report.findings.push(HealthFinding {
            detector: "reclaim_stall",
            message: format!("{retired} blocks retired but none freed and no epoch ever advanced"),
            value: retired,
            threshold: 0,
        });
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_sim::{ClusterConfig, DmCluster};

    fn stats_with_load(per_mn: &[u64]) -> ClusterStats {
        let c = DmCluster::new(ClusterConfig {
            num_mns: per_mn.len() as u16,
            num_cns: 1,
            mn_capacity: 1 << 20,
            ..Default::default()
        });
        let mut cl = c.client(0);
        for (mn, &n) in per_mn.iter().enumerate() {
            let p = cl.alloc(mn as u16, 8).unwrap();
            for _ in 0..n {
                cl.read(p, 8).unwrap();
            }
        }
        c.cluster_stats()
    }

    #[test]
    fn imbalance_positive_and_negative() {
        let cfg = HealthConfig::default();
        let hot = stats_with_load(&[3000, 10, 10]);
        let r = evaluate_health(&hot, &Registry::new(), &cfg);
        assert!(r.fired("mn_imbalance"));
        assert_eq!(r.verdict(), "degraded");

        let uniform = stats_with_load(&[1000, 1000, 1000]);
        let r = evaluate_health(&uniform, &Registry::new(), &cfg);
        assert!(!r.fired("mn_imbalance"));
        assert!(r.healthy());
        assert_eq!(r.checks, 4);
    }

    #[test]
    fn tiny_windows_are_not_judged() {
        let hot = stats_with_load(&[30, 0, 0]);
        let r = evaluate_health(&hot, &Registry::new(), &HealthConfig::default());
        assert!(r.healthy(), "below min_verbs no imbalance verdict");
    }

    #[test]
    fn retry_storm_detector() {
        let cluster = stats_with_load(&[1]);
        let mut reg = Registry::new();
        reg.ops[crate::OpKind::Get.idx()].count = 1000;
        reg.ops[crate::OpKind::Get.idx()].retries = 500;
        let r = evaluate_health(&cluster, &reg, &HealthConfig::default());
        assert!(r.fired("retry_storm"));

        reg.ops[crate::OpKind::Get.idx()].retries = 10;
        let r = evaluate_health(&cluster, &reg, &HealthConfig::default());
        assert!(!r.fired("retry_storm"));
    }

    #[test]
    fn sfc_fp_and_reclaim_stall_detectors() {
        let cluster = stats_with_load(&[1]);
        let mut reg = Registry::new();
        reg.add("sfc.lookups", 10_000);
        reg.add("sfc.false_positives", 600);
        reg.add("sfc.gen.false_positives", 600);
        reg.add("reclaim.retired_count", 50);
        let r = evaluate_health(&cluster, &reg, &HealthConfig::default());
        assert!(r.fired("sfc_fp_regression"));
        assert!(r.fired("reclaim_stall"));

        // A healthy reclaimer (epochs advancing, frees landing) clears it.
        reg.add("reclaim.freed_count", 50);
        reg.add("reclaim.epoch_advances", 3);
        let r = evaluate_health(&cluster, &reg, &HealthConfig::default());
        assert!(!r.fired("reclaim_stall"));
    }

    #[test]
    fn stamp_emits_health_counters() {
        let hot = stats_with_load(&[3000, 10, 10]);
        let report = evaluate_health(&hot, &Registry::new(), &HealthConfig::default());
        let mut reg = Registry::new();
        report.stamp(&mut reg);
        assert_eq!(reg.counter("health.checks"), 4);
        assert_eq!(reg.counter("health.findings"), 1);
        assert_eq!(reg.counter("health.mn_imbalance"), 1);
    }
}
