//! # obs — phase-attributed telemetry for the Sphinx reproduction
//!
//! Sphinx's whole argument is a round-trip budget: an SFC hit costs one
//! hash-entry read, a miss costs Θ(L) INHT reads, and the fallback walks
//! root-to-leaf. This crate makes that budget *observable* per operation:
//!
//! * [`Recorder`] — a per-worker span API. Callers bracket each op with
//!   `begin`/`end` and mark transitions with `phase`, passing the client's
//!   cumulative [`ClientStats`](dm_sim::ClientStats) and virtual clock at
//!   each boundary; the recorder attributes the deltas so round trips,
//!   verbs, and bytes sum up per ([`OpKind`], [`Phase`]).
//! * [`Registry`] — the mergeable aggregate: per-op-kind latency
//!   histograms (reusing [`dm_sim::LatencyHistogram`]), the per-phase
//!   attribution table, named domain counters (SFC hit/miss/eviction,
//!   INHT fingerprint collisions, retries, fault injections, lock spins),
//!   and JSON/text export.
//! * [`FlightRecorder`] — a fixed-size top-K keeper of the slowest and
//!   most-retried ops with their full phase breakdowns.
//! * [`Tracer`] — always-on, tail-sampled *causal* tracing. A sampled op
//!   carries an [`OpTrace`] through its state machine, recording every
//!   causal edge (admission, submit, doorbell flush with fusion
//!   membership, per-MN completion, phase transitions, retries, reclaim
//!   pin/unpin); [`critical_path`] decomposes the op's latency into
//!   queueing / fusion-wait / NIC-service / scheduler-stall / CN-compute
//!   segments that sum *exactly* to the end-to-end latency, and
//!   [`export_chrome`] renders retained traces as Perfetto-viewable
//!   Chrome trace-event JSON (schema [`TRACE_SCHEMA`]).
//! * **Cluster metrics plane** — the server-side view. [`Sampler`] rings
//!   capture per-MN gauges at op-boundary intervals on the virtual clock,
//!   [`evaluate_health`] runs anomaly detectors (MN load imbalance, retry
//!   storms, SFC FP-rate regression, reclaim stalls) over a window's
//!   [`ClusterStats`](dm_sim::ClusterStats), and [`MetricsReport`] exports
//!   everything — including the client-vs-server conservation ledger — as
//!   byte-stable [`METRICS_SCHEMA`] JSON plus a sparkline text dashboard.
//!
//! ## Cost model
//!
//! The recorder holds plain counters and two pre-sized arrays; the happy
//! path allocates nothing and never touches the simulation clock or the
//! transport counters (it only *reads* snapshots the caller passes in), so
//! enabling telemetry cannot perturb measured round trips, bytes, or
//! virtual time. Disabling the `telemetry` feature (on by default)
//! compiles every `Recorder` method down to a no-op while the registry and
//! export types remain available, so harness code builds unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod flight;
mod health;
pub mod json;
mod metrics;
mod recorder;
mod registry;
mod sampler;
mod span;
pub mod trace;

pub use flight::{FlightRecorder, DEFAULT_CAPACITY};
pub use health::{evaluate_health, HealthConfig, HealthFinding, HealthReport};
pub use metrics::{sparkline, MetricsReport, METRICS_SCHEMA};
pub use recorder::Recorder;
pub use registry::{
    OpAgg, PipelineAgg, PipelineTagAgg, Registry, PIPELINE_DEPTH_BUCKETS, PIPELINE_DEPTH_LABELS,
    SCHEMA,
};
pub use sampler::Sampler;
pub use span::{OpKind, OpRecord, Phase, PhaseAgg, NUM_OP_KINDS, NUM_PHASES};
pub use trace::{
    critical_path, export_chrome, CriticalPath, OpEvent, OpTrace, TraceId, Tracer, DEFAULT_TAIL_K,
    TRACE_SCHEMA,
};
