//! Fixed-capacity time-series sampling on the virtual clock.
//!
//! A [`Sampler`] is a flat ring buffer of `(timestamp, row)` samples with a
//! column schema fixed at construction. The harness drives it at
//! op-boundary intervals: [`Sampler::due`] is one comparison, and
//! [`Sampler::record`] copies the caller's row into preallocated storage —
//! the steady state issues **zero verbs and zero allocations**, so
//! sampling cannot perturb measured virtual time. When the ring is full
//! the oldest sample is overwritten and counted in
//! [`Sampler::dropped`] — a run is never capped by its own telemetry.

/// A fixed-capacity, fixed-schema ring buffer of `u64` sample rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sampler {
    columns: Vec<String>,
    interval_ns: u64,
    next_due_ns: u64,
    capacity: usize,
    times: Vec<u64>,
    values: Vec<u64>,
    head: usize,
    len: usize,
    dropped: u64,
}

impl Sampler {
    /// Creates a sampler with the given column schema, ring capacity (in
    /// rows), and sampling interval on the virtual clock.
    ///
    /// # Panics
    ///
    /// Panics if `columns` is empty or `capacity` is zero.
    pub fn new(columns: Vec<String>, capacity: usize, interval_ns: u64) -> Self {
        assert!(!columns.is_empty(), "sampler needs at least one column");
        assert!(capacity > 0, "sampler needs a nonzero capacity");
        let width = columns.len();
        Sampler {
            columns,
            interval_ns,
            next_due_ns: 0,
            capacity,
            times: vec![0; capacity],
            values: vec![0; capacity * width],
            head: 0,
            len: 0,
            dropped: 0,
        }
    }

    /// The column names, in row order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Row width (number of columns).
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// The configured sampling interval, ns of virtual time.
    pub fn interval_ns(&self) -> u64 {
        self.interval_ns
    }

    /// Ring capacity in rows.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Retained rows (≤ capacity).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Rows lost to ring wrap-around (or evicted during a merge).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Whether the next sample is due at virtual time `now_ns`. One
    /// comparison — cheap enough for every op boundary.
    pub fn due(&self, now_ns: u64) -> bool {
        now_ns >= self.next_due_ns
    }

    /// Records one row at virtual time `now_ns` and re-arms the interval.
    /// Overwrites (and counts) the oldest row when full.
    ///
    /// # Panics
    ///
    /// Panics if `row` does not match the column schema's width.
    pub fn record(&mut self, now_ns: u64, row: &[u64]) {
        let w = self.width();
        assert_eq!(row.len(), w, "row width must match the column schema");
        if self.len == self.capacity {
            self.dropped += 1;
        } else {
            self.len += 1;
        }
        self.times[self.head] = now_ns;
        self.values[self.head * w..self.head * w + w].copy_from_slice(row);
        self.head = (self.head + 1) % self.capacity;
        self.next_due_ns = now_ns.saturating_add(self.interval_ns);
    }

    /// Iterates the retained samples oldest-first as `(time_ns, row)`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[u64])> + '_ {
        let w = self.width();
        let start = (self.head + self.capacity - self.len) % self.capacity;
        (0..self.len).map(move |i| {
            let idx = (start + i) % self.capacity;
            (self.times[idx], &self.values[idx * w..idx * w + w])
        })
    }

    /// One column's retained values oldest-first (for sparklines).
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn column_values(&self, col: usize) -> Vec<u64> {
        assert!(col < self.width(), "column {col} out of range");
        self.iter().map(|(_, row)| row[col]).collect()
    }

    /// Merges another sampler's rows into this one (e.g. per-worker rings
    /// into a run-wide view): rows are interleaved in timestamp order
    /// (stable — ties keep `self`'s rows first), the newest `capacity`
    /// rows are retained, and everything evicted is counted as dropped.
    ///
    /// # Panics
    ///
    /// Panics if the column schemas differ.
    pub fn merge(&mut self, other: &Sampler) {
        assert_eq!(
            self.columns, other.columns,
            "cannot merge samplers with different schemas"
        );
        let mut rows: Vec<(u64, Vec<u64>)> = self
            .iter()
            .chain(other.iter())
            .map(|(t, r)| (t, r.to_vec()))
            .collect();
        rows.sort_by_key(|&(t, _)| t);
        let evicted = rows.len().saturating_sub(self.capacity);
        self.dropped += other.dropped + evicted as u64;
        let w = self.width();
        self.head = 0;
        self.len = 0;
        for (t, row) in rows.into_iter().skip(evicted) {
            self.times[self.head] = t;
            self.values[self.head * w..self.head * w + w].copy_from_slice(&row);
            self.head = (self.head + 1) % self.capacity;
            self.len += 1;
        }
        self.next_due_ns = self.next_due_ns.max(other.next_due_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cols(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn due_record_rearm() {
        let mut s = Sampler::new(cols(&["a"]), 4, 100);
        assert!(s.due(0), "first sample is due immediately");
        s.record(0, &[1]);
        assert!(!s.due(50));
        assert!(s.due(100));
        s.record(130, &[2]);
        assert!(!s.due(200));
        assert!(s.due(230));
        assert_eq!(s.len(), 2);
        let rows: Vec<_> = s.iter().map(|(t, r)| (t, r[0])).collect();
        assert_eq!(rows, vec![(0, 1), (130, 2)]);
    }

    #[test]
    fn wrap_overwrites_oldest_and_counts_dropped() {
        let mut s = Sampler::new(cols(&["a", "b"]), 3, 0);
        for i in 0..5u64 {
            s.record(i * 10, &[i, i * 2]);
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.dropped(), 2);
        let rows: Vec<_> = s.iter().map(|(t, r)| (t, r[0], r[1])).collect();
        assert_eq!(rows, vec![(20, 2, 4), (30, 3, 6), (40, 4, 8)]);
    }

    #[test]
    fn merge_interleaves_by_time_and_keeps_newest() {
        let mut a = Sampler::new(cols(&["x"]), 4, 0);
        let mut b = Sampler::new(cols(&["x"]), 4, 0);
        a.record(10, &[1]);
        a.record(30, &[3]);
        b.record(20, &[2]);
        b.record(40, &[4]);
        a.merge(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.dropped(), 0);
        let times: Vec<_> = a.iter().map(|(t, _)| t).collect();
        assert_eq!(times, vec![10, 20, 30, 40]);

        // Overflowing merge evicts the oldest rows and counts them.
        let mut c = Sampler::new(cols(&["x"]), 4, 0);
        c.record(5, &[0]);
        c.record(50, &[5]);
        a.merge(&c);
        assert_eq!(a.len(), 4);
        assert_eq!(a.dropped(), 2);
        let times: Vec<_> = a.iter().map(|(t, _)| t).collect();
        assert_eq!(times, vec![20, 30, 40, 50]);
    }

    #[test]
    fn merge_is_deterministic_on_ties() {
        let mut a = Sampler::new(cols(&["x"]), 8, 0);
        let mut b = Sampler::new(cols(&["x"]), 8, 0);
        a.record(10, &[1]);
        b.record(10, &[2]);
        a.merge(&b);
        let vals: Vec<_> = a.iter().map(|(_, r)| r[0]).collect();
        assert_eq!(vals, vec![1, 2], "stable sort keeps self's rows first");
    }

    #[test]
    fn column_values_extracts_in_order() {
        let mut s = Sampler::new(cols(&["a", "b"]), 4, 0);
        s.record(0, &[1, 10]);
        s.record(1, &[2, 20]);
        assert_eq!(s.column_values(1), vec![10, 20]);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_rejected() {
        let mut s = Sampler::new(cols(&["a", "b"]), 2, 0);
        s.record(0, &[1]);
    }
}
