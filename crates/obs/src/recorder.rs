//! The per-worker span recorder.
//!
//! A [`Recorder`] is owned by one client (no locks, no sharing). Callers
//! bracket each operation with [`begin`](Recorder::begin) /
//! [`end`](Recorder::end) and mark phase transitions with
//! [`phase`](Recorder::phase), passing the client's current `ClientStats`
//! and virtual clock at each boundary. The recorder attributes the stats
//! delta of each interval to the phase that was active, so round trips,
//! verbs, and bytes sum up per (op kind, phase) with no tracing.
//!
//! With the `telemetry` feature disabled every method is a no-op and the
//! struct is empty — instrumented code compiles identically but costs
//! nothing and records nothing.

use dm_sim::ClientStats;

use crate::registry::Registry;
use crate::span::{OpKind, Phase};
#[cfg(feature = "telemetry")]
use crate::span::{OpRecord, PhaseAgg, NUM_PHASES};

#[cfg(feature = "telemetry")]
#[derive(Debug, Clone)]
struct SpanState {
    kind: Option<OpKind>,
    start_ns: u64,
    mark: ClientStats,
    mark_ns: u64,
    current: Option<Phase>,
    retries: u32,
    phases: [PhaseAgg; NUM_PHASES],
}

#[cfg(feature = "telemetry")]
impl Default for SpanState {
    fn default() -> Self {
        SpanState {
            kind: None,
            start_ns: 0,
            mark: ClientStats::default(),
            mark_ns: 0,
            current: None,
            retries: 0,
            phases: [PhaseAgg::default(); NUM_PHASES],
        }
    }
}

/// Per-worker telemetry recorder: an active op span plus the registry the
/// completed spans aggregate into.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    #[cfg(feature = "telemetry")]
    registry: Registry,
    #[cfg(feature = "telemetry")]
    span: SpanState,
}

impl Recorder {
    /// Creates an idle recorder with an empty registry.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Whether telemetry is compiled in.
    pub const fn enabled() -> bool {
        cfg!(feature = "telemetry")
    }

    /// Opens a span for one operation. `stats`/`now_ns` are the client's
    /// cumulative counters and virtual clock at op start. An unfinished
    /// previous span (e.g. an op that bailed without `end`) is discarded.
    pub fn begin(&mut self, kind: OpKind, stats: ClientStats, now_ns: u64) {
        #[cfg(feature = "telemetry")]
        {
            self.span.kind = Some(kind);
            self.span.start_ns = now_ns;
            self.span.mark = stats;
            self.span.mark_ns = now_ns;
            self.span.current = None;
            self.span.retries = 0;
            self.span.phases = [PhaseAgg::default(); NUM_PHASES];
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = (kind, stats, now_ns);
    }

    /// Switches the active span to `phase`, attributing the stats delta
    /// since the previous boundary to the phase that was running (or
    /// [`Phase::Other`] before the first transition). No-op outside a span.
    pub fn phase(&mut self, phase: Phase, stats: ClientStats, now_ns: u64) {
        #[cfg(feature = "telemetry")]
        {
            if self.span.kind.is_none() {
                return;
            }
            self.close_interval(stats, now_ns);
            self.span.current = Some(phase);
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = (phase, stats, now_ns);
    }

    /// The phase the active span is currently in (for save/restore around
    /// nested helpers).
    pub fn current_phase(&self) -> Option<Phase> {
        #[cfg(feature = "telemetry")]
        {
            self.span.current
        }
        #[cfg(not(feature = "telemetry"))]
        None
    }

    /// Marks one failed attempt / restart within the active span.
    pub fn retry(&mut self) {
        #[cfg(feature = "telemetry")]
        if self.span.kind.is_some() {
            self.span.retries += 1;
        }
    }

    /// Closes the active span: records end-to-end latency, folds the phase
    /// breakdown into the registry, and offers the op to the flight
    /// recorder. No-op outside a span.
    pub fn end(&mut self, stats: ClientStats, now_ns: u64) {
        self.end_traced(stats, now_ns, None);
    }

    /// Like [`end`](Recorder::end), but links the flight-recorder entry to
    /// a retained causal trace (see [`Tracer::finish`](crate::Tracer::finish)).
    pub fn end_traced(&mut self, stats: ClientStats, now_ns: u64, trace: Option<u64>) {
        #[cfg(feature = "telemetry")]
        {
            let Some(kind) = self.span.kind.take() else {
                return;
            };
            self.close_interval(stats, now_ns);
            let latency_ns = now_ns.saturating_sub(self.span.start_ns);
            let agg = &mut self.registry.ops[kind.idx()];
            agg.count += 1;
            agg.retries += self.span.retries as u64;
            agg.latency.record(latency_ns);
            for (a, b) in agg.phases.iter_mut().zip(&self.span.phases) {
                a.merge(b);
            }
            let record = OpRecord {
                kind,
                latency_ns,
                retries: self.span.retries,
                round_trips: self.span.phases.iter().map(|p| p.round_trips).sum(),
                phases: self.span.phases,
                trace,
            };
            self.registry.flight.offer(&record);
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = (stats, now_ns, trace);
    }

    /// Adds `n` to a named registry counter.
    pub fn add(&mut self, name: &str, n: u64) {
        #[cfg(feature = "telemetry")]
        self.registry.add(name, n);
        #[cfg(not(feature = "telemetry"))]
        let _ = (name, n);
    }

    /// Increments a named registry counter.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Snapshot of the registry accumulated so far (empty when telemetry
    /// is compiled out).
    pub fn registry(&self) -> Registry {
        #[cfg(feature = "telemetry")]
        {
            self.registry.clone()
        }
        #[cfg(not(feature = "telemetry"))]
        Registry::default()
    }

    /// Takes the accumulated registry, leaving an empty one behind.
    pub fn take_registry(&mut self) -> Registry {
        #[cfg(feature = "telemetry")]
        {
            std::mem::take(&mut self.registry)
        }
        #[cfg(not(feature = "telemetry"))]
        Registry::default()
    }

    #[cfg(feature = "telemetry")]
    fn close_interval(&mut self, stats: ClientStats, now_ns: u64) {
        let delta = stats.since(&self.span.mark);
        let dt = now_ns.saturating_sub(self.span.mark_ns);
        // An explicitly entered phase always records its interval — a
        // CN-local phase (e.g. an SFC probe) costs no verbs and no virtual
        // time yet must still show up in the attribution. Only implicit
        // `Other` intervals carrying no work are dropped.
        if self.span.current.is_some() || dt > 0 || delta.verbs() > 0 {
            let target = self.span.current.unwrap_or(Phase::Other);
            self.span.phases[target.idx()].add_interval(&delta, dt);
        }
        self.span.mark = stats;
        self.span.mark_ns = now_ns;
    }
}

#[cfg(all(test, feature = "telemetry"))]
mod tests {
    use super::*;

    fn stats(round_trips: u64, reads: u64, bytes_read: u64) -> ClientStats {
        ClientStats {
            round_trips,
            reads,
            bytes_read,
            ..Default::default()
        }
    }

    #[test]
    fn span_attributes_deltas_to_phases() {
        let mut rec = Recorder::new();
        rec.begin(OpKind::Get, stats(0, 0, 0), 0);
        rec.phase(Phase::SfcProbe, stats(0, 0, 0), 10);
        // SFC probe cost: 1 RT, 1 read, 64 bytes, 1000 ns.
        rec.phase(Phase::InhtLookup, stats(1, 1, 64), 1010);
        // INHT cost: 2 RTs.
        rec.phase(Phase::LeafRead, stats(3, 3, 192), 3010);
        // Leaf read cost: 1 RT, 1 KiB.
        rec.end(stats(4, 4, 1216), 4010);

        let reg = rec.registry();
        let op = reg.op(OpKind::Get);
        assert_eq!(op.count, 1);
        assert_eq!(op.latency.count(), 1);
        assert_eq!(op.latency.max_ns(), 4010);
        let sfc = &op.phases[Phase::SfcProbe.idx()];
        assert_eq!((sfc.round_trips, sfc.verbs, sfc.bytes), (1, 1, 64));
        assert_eq!(sfc.time_ns, 1000);
        let inht = &op.phases[Phase::InhtLookup.idx()];
        assert_eq!(inht.round_trips, 2);
        let leaf = &op.phases[Phase::LeafRead.idx()];
        assert_eq!((leaf.round_trips, leaf.bytes), (1, 1024));
        assert_eq!(op.round_trips(), 4);
    }

    #[test]
    fn retries_counted_and_flight_recorded() {
        let mut rec = Recorder::new();
        rec.begin(OpKind::Insert, stats(0, 0, 0), 0);
        rec.phase(Phase::LockAcquire, stats(0, 0, 0), 0);
        rec.retry();
        rec.retry();
        rec.end(stats(5, 5, 0), 9000);
        let reg = rec.registry();
        assert_eq!(reg.op(OpKind::Insert).retries, 2);
        assert_eq!(reg.flight.most_retried().len(), 1);
        assert_eq!(reg.flight.most_retried()[0].retries, 2);
        assert_eq!(reg.flight.slowest()[0].latency_ns, 9000);
    }

    #[test]
    fn phase_outside_span_is_ignored() {
        let mut rec = Recorder::new();
        rec.phase(Phase::LeafRead, stats(9, 9, 9), 100);
        rec.end(stats(9, 9, 9), 100);
        assert_eq!(rec.registry().total_ops(), 0);
    }

    #[test]
    fn unattributed_work_lands_in_other() {
        let mut rec = Recorder::new();
        rec.begin(OpKind::Get, stats(0, 0, 0), 0);
        // One RT happens before any phase() call.
        rec.end(stats(1, 1, 8), 500);
        let reg = rec.registry();
        let other = &reg.op(OpKind::Get).phases[Phase::Other.idx()];
        assert_eq!(other.round_trips, 1);
    }

    #[test]
    fn counters_flow_into_registry() {
        let mut rec = Recorder::new();
        rec.incr("sfc.probe_hit");
        rec.add("sfc.probe_miss", 3);
        assert_eq!(rec.registry().counter("sfc.probe_hit"), 1);
        assert_eq!(rec.registry().counter("sfc.probe_miss"), 3);
    }
}

#[cfg(all(test, not(feature = "telemetry")))]
mod disabled_tests {
    use super::*;

    #[test]
    fn everything_is_a_no_op() {
        let mut rec = Recorder::new();
        assert!(!Recorder::enabled());
        rec.begin(OpKind::Get, ClientStats::default(), 0);
        rec.phase(Phase::LeafRead, ClientStats::default(), 10);
        rec.retry();
        rec.incr("sfc.probe_hit");
        rec.end(ClientStats::default(), 20);
        let reg = rec.registry();
        assert_eq!(reg.total_ops(), 0);
        assert_eq!(reg.counter("sfc.probe_hit"), 0);
    }
}
