//! The cluster metrics plane's export surface: `sphinx.metrics.v1`.
//!
//! A [`MetricsReport`] bundles one measured window's server-side
//! [`ClusterStats`](dm_sim::ClusterStats), the matching summed client-side
//! [`ClientStats`](dm_sim::ClientStats) (so the conservation identity is
//! checkable by any consumer, not just this process), the optional
//! time-series [`Sampler`] ring, and the [`HealthReport`]. It exports as
//! deterministic, byte-stable JSON ([`MetricsReport::to_json`], schema
//! [`METRICS_SCHEMA`]) — integers only, fixed key order, no floats — and
//! renders as a per-MN table plus a sparkline dashboard
//! ([`MetricsReport::render_text`]).

use dm_sim::{ClientStats, ClusterStats, MnStats};

use crate::health::HealthReport;
use crate::json::JsonWriter;
use crate::sampler::Sampler;

/// Schema identifier stamped into every metrics export; bump on breaking
/// changes so downstream consumers fail loudly.
pub const METRICS_SCHEMA: &str = "sphinx.metrics.v1";

/// One measured window's cluster metrics: per-MN accounting, the client
/// side of the ledger, optional time series, and the health verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsReport {
    /// Server-side per-MN accounting over the window.
    pub cluster: ClusterStats,
    /// Every participating client's [`ClientStats`] delta over the same
    /// window, summed — the other side of the conservation ledger.
    pub client_sum: ClientStats,
    /// The window's virtual-time span (max worker clock), ns.
    pub window_ns: u64,
    /// Time-series samples, when the harness drove a sampler.
    pub samples: Option<Sampler>,
    /// The health monitor's findings and verdict.
    pub health: HealthReport,
}

impl MetricsReport {
    /// Verifies the conservation identity embedded in the report: per-MN
    /// server-side totals vs the summed client-side view.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated identity.
    pub fn conservation(&self) -> Result<(), String> {
        self.cluster.check_conservation(&self.client_sum)
    }

    /// Serializes as deterministic `sphinx.metrics.v1` JSON. Every value
    /// is an integer and maps use fixed key order, so same-seed runs
    /// export byte-identical documents.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.str_field("schema", METRICS_SCHEMA);
        w.u64_field("window_ns", self.window_ns);
        w.u64_field("dropped_verbs", self.cluster.dropped_verbs);

        w.key("mns");
        w.begin_arr();
        for mn in &self.cluster.mns {
            write_mn(&mut w, mn, self.window_ns);
        }
        w.end_arr();

        w.key("clients");
        w.begin_obj();
        w.u64_field("round_trips", self.client_sum.round_trips);
        w.u64_field("doorbells", self.client_sum.doorbells);
        w.u64_field("reads", self.client_sum.reads);
        w.u64_field("writes", self.client_sum.writes);
        w.u64_field("cas", self.client_sum.cas);
        w.u64_field("faa", self.client_sum.faa);
        w.u64_field("frees", self.client_sum.frees);
        w.u64_field("bytes_read", self.client_sum.bytes_read);
        w.u64_field("bytes_written", self.client_sum.bytes_written);
        w.end_obj();

        w.u64_field("conserved", u64::from(self.conservation().is_ok()));

        if let Some(samples) = &self.samples {
            w.key("samples");
            w.begin_obj();
            w.u64_field("interval_ns", samples.interval_ns());
            w.u64_field("dropped", samples.dropped());
            w.key("columns");
            w.begin_arr();
            for col in samples.columns() {
                w.str_val(col);
            }
            w.end_arr();
            w.key("rows");
            w.begin_arr();
            for (t, row) in samples.iter() {
                w.begin_arr();
                w.u64_val(t);
                for &v in row {
                    w.u64_val(v);
                }
                w.end_arr();
            }
            w.end_arr();
            w.end_obj();
        }

        w.key("health");
        w.begin_obj();
        w.str_field("verdict", self.health.verdict());
        w.u64_field("checks", self.health.checks);
        w.key("findings");
        w.begin_arr();
        for f in &self.health.findings {
            w.begin_obj();
            w.str_field("detector", f.detector);
            w.str_field("message", &f.message);
            w.u64_field("value", f.value);
            w.u64_field("threshold", f.threshold);
            w.end_obj();
        }
        w.end_arr();
        w.end_obj();

        w.end_obj();
        w.finish()
    }

    /// Renders the metrics dashboard: a per-MN load table with heat
    /// sparklines, the sampled time series as one sparkline per column,
    /// and the health verdict.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "cluster metrics (window {} us, {} dropped verbs, conservation {}):",
            self.window_ns / 1000,
            self.cluster.dropped_verbs,
            match self.conservation() {
                Ok(()) => "exact".to_string(),
                Err(e) => format!("VIOLATED: {e}"),
            }
        );
        let _ = writeln!(
            out,
            "  {:<3} {:>10} {:>10} {:>12} {:>9} {:>6} {:>9}  heat r/w",
            "mn", "verbs", "doorbells", "bytes", "queue/db", "busy%", "reads"
        );
        for mn in &self.cluster.mns {
            let _ = writeln!(
                out,
                "  {:<3} {:>10} {:>10} {:>12} {:>9} {:>5.1}% {:>9}  {} {}",
                mn.mn_id,
                mn.verbs(),
                mn.doorbells,
                mn.bytes_total(),
                mn.mean_queue_ns(),
                mn.busy_ppm(self.window_ns) as f64 / 10_000.0,
                mn.reads,
                sparkline(&mn.heat_reads),
                sparkline(&mn.heat_writes),
            );
        }
        if let Some(samples) = &self.samples {
            let _ = writeln!(
                out,
                "samples: {} rows @ {} us interval ({} dropped)",
                samples.len(),
                samples.interval_ns() / 1000,
                samples.dropped()
            );
            for (i, col) in samples.columns().iter().enumerate() {
                let vals = samples.column_values(i);
                let (min, max) = (
                    vals.iter().copied().min().unwrap_or(0),
                    vals.iter().copied().max().unwrap_or(0),
                );
                let _ = writeln!(out, "  {:<24} {} [{}..{}]", col, sparkline(&vals), min, max);
            }
        }
        let _ = writeln!(
            out,
            "health: {} ({} checks, {} findings)",
            self.health.verdict(),
            self.health.checks,
            self.health.findings.len()
        );
        for f in &self.health.findings {
            let _ = writeln!(out, "  [{}] {}", f.detector, f.message);
        }
        out
    }
}

fn write_mn(w: &mut JsonWriter, mn: &MnStats, window_ns: u64) {
    w.begin_obj();
    w.u64_field("id", mn.mn_id as u64);
    w.u64_field("verbs", mn.verbs());
    w.u64_field("reads", mn.reads);
    w.u64_field("writes", mn.writes);
    w.u64_field("cas", mn.cas);
    w.u64_field("faa", mn.faa);
    w.u64_field("frees", mn.frees);
    w.u64_field("bytes_read", mn.bytes_read);
    w.u64_field("bytes_written", mn.bytes_written);
    w.u64_field("doorbells", mn.doorbells);
    w.u64_field("service_ns", mn.service_ns);
    w.u64_field("queue_ns", mn.queue_ns);
    w.u64_field("busy_ppm", mn.busy_ppm(window_ns));
    w.key("heat_reads");
    w.begin_arr();
    for &h in &mn.heat_reads {
        w.u64_val(h);
    }
    w.end_arr();
    w.key("heat_writes");
    w.begin_arr();
    for &h in &mn.heat_writes {
        w.u64_val(h);
    }
    w.end_arr();
    w.end_obj();
}

/// Renders a slice of values as a unicode sparkline (8 levels, max-
/// normalized; an all-zero or empty slice renders as baseline blocks).
pub fn sparkline(values: &[u64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().max().unwrap_or(0);
    values
        .iter()
        .map(|&v| {
            if max == 0 {
                LEVELS[0]
            } else {
                LEVELS[((v as u128 * (LEVELS.len() - 1) as u128).div_ceil(max as u128)) as usize]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_sim::{ClusterConfig, DmCluster};

    fn sample_report() -> MetricsReport {
        let c = DmCluster::new(ClusterConfig {
            num_mns: 2,
            num_cns: 1,
            mn_capacity: 1 << 20,
            ..Default::default()
        });
        let mut cl = c.client(0);
        let p = cl.alloc(0, 64).unwrap();
        cl.write(p, &[1u8; 64]).unwrap();
        for _ in 0..5 {
            cl.read(p, 64).unwrap();
        }
        let mut samples = Sampler::new(vec!["verbs".to_string()], 8, 0);
        samples.record(0, &[1]);
        samples.record(10, &[3]);
        MetricsReport {
            cluster: c.cluster_stats(),
            client_sum: cl.stats(),
            window_ns: cl.clock_ns(),
            samples: Some(samples),
            health: HealthReport::default(),
        }
    }

    #[test]
    fn json_is_schema_stamped_parseable_and_deterministic() {
        let r = sample_report();
        let json = r.to_json();
        assert_eq!(json, r.to_json(), "same report, same bytes");
        let parsed = crate::json::parse(&json).expect("valid json");
        assert_eq!(
            parsed.get("schema").and_then(|v| v.as_str()),
            Some(METRICS_SCHEMA)
        );
        assert_eq!(parsed.get("conserved").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(
            parsed.get("mns").and_then(|v| v.as_arr()).map(|a| a.len()),
            Some(2)
        );
        let rows = parsed
            .get("samples")
            .and_then(|s| s.get("rows"))
            .and_then(|v| v.as_arr())
            .expect("rows");
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn conservation_violation_is_reported_not_fatal() {
        let mut r = sample_report();
        r.client_sum.reads += 1;
        assert!(r.conservation().is_err());
        let json = r.to_json();
        let parsed = crate::json::parse(&json).expect("valid json");
        assert_eq!(parsed.get("conserved").and_then(|v| v.as_u64()), Some(0));
        assert!(r.render_text().contains("VIOLATED"));
    }

    #[test]
    fn text_dashboard_has_table_and_sparklines() {
        let text = sample_report().render_text();
        assert!(text.contains("cluster metrics"));
        assert!(text.contains("health: healthy"));
        assert!(text.contains('█'), "heat sparkline present: {text}");
        assert!(text.contains("verbs"));
    }

    #[test]
    fn sparkline_levels() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0, 0]), "▁▁");
        let s = sparkline(&[0, 1, 10]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.ends_with('█'));
        assert!(s.starts_with('▁'));
    }
}
