//! The metrics registry: per-op-kind latency histograms, per-phase network
//! attribution, named counters, and the flight recorder — mergeable across
//! workers and exportable as JSON or text.

use std::collections::BTreeMap;

use dm_sim::LatencyHistogram;

use crate::flight::FlightRecorder;
use crate::json::JsonWriter;
use crate::span::{OpKind, Phase, PhaseAgg, NUM_OP_KINDS, NUM_PHASES};

/// Schema identifier stamped into every JSON export; bump on breaking
/// changes so downstream consumers (CI smoke, plotting) fail loudly.
pub const SCHEMA: &str = "sphinx.telemetry.v1";

/// Aggregated telemetry for one operation kind.
#[derive(Debug, Clone)]
pub struct OpAgg {
    /// Completed operations.
    pub count: u64,
    /// Total failed attempts / restarts across those operations.
    pub retries: u64,
    /// End-to-end virtual latency distribution.
    pub latency: LatencyHistogram,
    /// Per-phase network attribution (indexed by [`Phase::idx`]).
    pub phases: [PhaseAgg; NUM_PHASES],
}

impl Default for OpAgg {
    fn default() -> Self {
        OpAgg {
            count: 0,
            retries: 0,
            latency: LatencyHistogram::new(),
            phases: [PhaseAgg::default(); NUM_PHASES],
        }
    }
}

impl OpAgg {
    /// Merges another aggregate into this one.
    pub fn merge(&mut self, other: &OpAgg) {
        self.count += other.count;
        self.retries += other.retries;
        self.latency.merge(&other.latency);
        for (a, b) in self.phases.iter_mut().zip(&other.phases) {
            a.merge(b);
        }
    }

    /// Total round trips attributed across all phases.
    pub fn round_trips(&self) -> u64 {
        self.phases.iter().map(|p| p.round_trips).sum()
    }
}

/// Number of `≤`-buckets in [`PipelineAgg::depth_hist`] (1, 2, 4, 8, 16,
/// >16) — mirrors `node_engine::pipeline::DEPTH_BUCKETS`.
pub const PIPELINE_DEPTH_BUCKETS: usize = 6;

/// Stable labels for the depth-histogram buckets, in index order.
pub const PIPELINE_DEPTH_LABELS: [&str; PIPELINE_DEPTH_BUCKETS] = ["1", "2", "4", "8", "16", "16+"];

/// Per-tag network aggregates of the pipelined op scheduler (tags are
/// phase names — the `tag` each op attaches to its submissions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineTagAgg {
    /// Batches submitted with this tag.
    pub batches: u64,
    /// Logical round trips (distinct MNs per batch).
    pub round_trips: u64,
    /// Verbs submitted.
    pub verbs: u64,
    /// Wire bytes moved.
    pub bytes: u64,
}

/// First-class pipelined-execution aggregates: the scheduler's depth
/// histogram and per-tag round-trip table, exported structurally in
/// `sphinx.telemetry.v1` (the `pipeline.*` scalar counters remain for
/// backward compatibility).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineAgg {
    /// Ops driven to completion by the pipelined scheduler.
    pub ops: u64,
    /// Flush rounds issued.
    pub flushes: u64,
    /// Batches that shared their flush with at least one other batch.
    pub fused_batches: u64,
    /// Flush rounds with fewer in-flight ops than the configured depth.
    pub stalls: u64,
    /// In-flight ops at each flush, bucketed per
    /// [`PIPELINE_DEPTH_LABELS`].
    pub depth_hist: [u64; PIPELINE_DEPTH_BUCKETS],
    /// Network work grouped by the submitting op's attribution tag.
    pub by_tag: BTreeMap<String, PipelineTagAgg>,
}

impl PipelineAgg {
    /// Merges another run's aggregates into this accumulator.
    pub fn merge(&mut self, other: &PipelineAgg) {
        self.ops += other.ops;
        self.flushes += other.flushes;
        self.fused_batches += other.fused_batches;
        self.stalls += other.stalls;
        for (a, b) in self.depth_hist.iter_mut().zip(&other.depth_hist) {
            *a += b;
        }
        for (tag, agg) in &other.by_tag {
            let mine = self.by_tag.entry(tag.clone()).or_default();
            mine.batches += agg.batches;
            mine.round_trips += agg.round_trips;
            mine.verbs += agg.verbs;
            mine.bytes += agg.bytes;
        }
    }

    /// True when no pipelined run has been recorded.
    pub fn is_empty(&self) -> bool {
        self.flushes == 0 && self.ops == 0
    }
}

/// A mergeable telemetry registry. One per worker (filled through a
/// [`Recorder`](crate::Recorder)); merged into one per run for export.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    /// Per-op-kind aggregates (indexed by [`OpKind::idx`]).
    pub ops: [OpAgg; NUM_OP_KINDS],
    /// Named domain counters (SFC hit/miss, INHT collisions, retries,
    /// fault injections, lock spins, …). Sorted for deterministic export.
    pub counters: BTreeMap<String, u64>,
    /// Top-K slowest / most-retried operations.
    pub flight: FlightRecorder,
    /// Pipelined-scheduler aggregates (depth histogram, per-tag table).
    pub pipeline: PipelineAgg,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds `n` to the named counter.
    pub fn add(&mut self, name: &str, n: u64) {
        if n == 0 {
            return;
        }
        match self.counters.get_mut(name) {
            Some(v) => *v += n,
            None => {
                self.counters.insert(name.to_string(), n);
            }
        }
    }

    /// Increments the named counter by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Reads a named counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Aggregate for one op kind.
    pub fn op(&self, kind: OpKind) -> &OpAgg {
        &self.ops[kind.idx()]
    }

    /// Attribution for one (kind, phase) cell.
    pub fn phase(&self, kind: OpKind, phase: Phase) -> &PhaseAgg {
        &self.ops[kind.idx()].phases[phase.idx()]
    }

    /// Attribution for one phase summed over every op kind.
    pub fn phase_total(&self, phase: Phase) -> PhaseAgg {
        let mut total = PhaseAgg::default();
        for op in &self.ops {
            total.merge(&op.phases[phase.idx()]);
        }
        total
    }

    /// Total completed operations across all kinds.
    pub fn total_ops(&self) -> u64 {
        self.ops.iter().map(|o| o.count).sum()
    }

    /// Merges another registry (e.g. another worker's) into this one.
    pub fn merge(&mut self, other: &Registry) {
        for (a, b) in self.ops.iter_mut().zip(&other.ops) {
            a.merge(b);
        }
        for (name, v) in &other.counters {
            self.add(name, *v);
        }
        self.flight.merge(&other.flight);
        self.pipeline.merge(&other.pipeline);
    }

    /// Serializes the registry as a self-describing JSON document
    /// (schema [`SCHEMA`]). Only op kinds with completed operations and
    /// phases with recorded work are emitted.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.str_field("schema", SCHEMA);

        w.key("ops");
        w.begin_obj();
        for kind in OpKind::ALL {
            let op = self.op(kind);
            if op.count == 0 {
                continue;
            }
            w.key(kind.name());
            w.begin_obj();
            w.u64_field("count", op.count);
            w.u64_field("retries", op.retries);
            w.key("latency_ns");
            w.begin_obj();
            w.u64_field("mean", op.latency.mean_ns());
            w.u64_field("p50", op.latency.quantile_ns(0.50));
            w.u64_field("p99", op.latency.quantile_ns(0.99));
            w.u64_field("max", op.latency.max_ns());
            w.end_obj();
            w.key("phases");
            w.begin_obj();
            for phase in Phase::ALL {
                let agg = &op.phases[phase.idx()];
                if agg.is_empty() {
                    continue;
                }
                w.key(phase.name());
                write_phase_agg(&mut w, agg);
            }
            w.end_obj();
            w.end_obj();
        }
        w.end_obj();

        if !self.pipeline.is_empty() {
            let p = &self.pipeline;
            w.key("pipeline");
            w.begin_obj();
            w.u64_field("ops", p.ops);
            w.u64_field("flushes", p.flushes);
            w.u64_field("fused_batches", p.fused_batches);
            w.u64_field("stalls", p.stalls);
            w.key("depth_hist");
            w.begin_obj();
            for (label, v) in PIPELINE_DEPTH_LABELS.iter().zip(&p.depth_hist) {
                w.u64_field(label, *v);
            }
            w.end_obj();
            w.key("by_tag");
            w.begin_obj();
            for (tag, agg) in &p.by_tag {
                w.key(tag);
                w.begin_obj();
                w.u64_field("batches", agg.batches);
                w.u64_field("round_trips", agg.round_trips);
                w.u64_field("verbs", agg.verbs);
                w.u64_field("bytes", agg.bytes);
                w.end_obj();
            }
            w.end_obj();
            w.end_obj();
        }

        w.key("counters");
        w.begin_obj();
        for (name, v) in &self.counters {
            w.u64_field(name, *v);
        }
        w.end_obj();

        w.key("flight");
        w.begin_obj();
        w.key("slowest");
        write_records(&mut w, self.flight.slowest());
        w.key("most_retried");
        write_records(&mut w, self.flight.most_retried());
        w.end_obj();

        w.end_obj();
        w.finish()
    }

    /// Renders a human-readable telemetry report: one per-phase table per
    /// active op kind, the counter catalogue, and the flight-recorder dump.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for kind in OpKind::ALL {
            let op = self.op(kind);
            if op.count == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{}: {} ops, {} retries, mean {} ns, p99 {} ns",
                kind.name(),
                op.count,
                op.retries,
                op.latency.mean_ns(),
                op.latency.quantile_ns(0.99),
            );
            let _ = writeln!(
                out,
                "  {:<12} {:>9} {:>9} {:>9} {:>10} {:>9}",
                "phase", "rts/op", "dbs/op", "verbs/op", "bytes/op", "time%"
            );
            let total_time: u64 = op.phases.iter().map(|p| p.time_ns).sum();
            for phase in Phase::ALL {
                let agg = &op.phases[phase.idx()];
                if agg.is_empty() {
                    continue;
                }
                let per = |v: u64| v as f64 / op.count as f64;
                let pct = if total_time == 0 {
                    0.0
                } else {
                    100.0 * agg.time_ns as f64 / total_time as f64
                };
                let _ = writeln!(
                    out,
                    "  {:<12} {:>9.3} {:>9.3} {:>9.3} {:>10.1} {:>8.1}%",
                    phase.name(),
                    per(agg.round_trips),
                    per(agg.doorbells),
                    per(agg.verbs),
                    per(agg.bytes),
                    pct,
                );
            }
            let (rts, dbs) = op.phases.iter().fold((0u64, 0u64), |(r, d), p| {
                (r + p.round_trips, d + p.doorbells)
            });
            let _ = writeln!(
                out,
                "  total: {:.3} rts/op, {:.3} doorbells/op",
                rts as f64 / op.count as f64,
                dbs as f64 / op.count as f64,
            );
        }
        if !self.pipeline.is_empty() {
            let p = &self.pipeline;
            let _ = writeln!(
                out,
                "pipeline: {} ops, {} flushes, {} fused batches, {} stalls",
                p.ops, p.flushes, p.fused_batches, p.stalls
            );
            let _ = write!(out, "  depth_hist:");
            for (label, v) in PIPELINE_DEPTH_LABELS.iter().zip(&p.depth_hist) {
                let _ = write!(out, " ≤{label}:{v}");
            }
            let _ = writeln!(out);
            for (tag, agg) in &p.by_tag {
                let _ = writeln!(
                    out,
                    "  tag {:<12} {} batches, {} rts, {} verbs, {} bytes",
                    tag, agg.batches, agg.round_trips, agg.verbs, agg.bytes
                );
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<32} {v}");
            }
        }
        let slow = self.flight.slowest();
        if !slow.is_empty() {
            let _ = writeln!(out, "slowest ops:");
            for rec in slow {
                let hot = rec
                    .phases
                    .iter()
                    .zip(Phase::ALL)
                    .max_by_key(|(agg, _)| agg.time_ns)
                    .map(|(_, p)| p.name())
                    .unwrap_or("-");
                let _ = writeln!(
                    out,
                    "  {:<9} {:>9} ns, {} rts, {} retries, hottest phase {}",
                    rec.kind.name(),
                    rec.latency_ns,
                    rec.round_trips,
                    rec.retries,
                    hot,
                );
            }
        }
        out
    }
}

fn write_phase_agg(w: &mut JsonWriter, agg: &PhaseAgg) {
    w.begin_obj();
    w.u64_field("count", agg.count);
    w.u64_field("round_trips", agg.round_trips);
    w.u64_field("doorbells", agg.doorbells);
    w.u64_field("verbs", agg.verbs);
    w.u64_field("bytes", agg.bytes);
    w.u64_field("time_ns", agg.time_ns);
    w.end_obj();
}

fn write_records(w: &mut JsonWriter, records: &[crate::span::OpRecord]) {
    w.begin_arr();
    for rec in records {
        w.begin_obj();
        w.str_field("kind", rec.kind.name());
        w.u64_field("latency_ns", rec.latency_ns);
        w.u64_field("retries", rec.retries as u64);
        w.u64_field("round_trips", rec.round_trips);
        if let Some(trace) = rec.trace {
            w.u64_field("trace_id", trace);
        }
        w.key("phases");
        w.begin_obj();
        for phase in Phase::ALL {
            let agg = &rec.phases[phase.idx()];
            if agg.is_empty() {
                continue;
            }
            w.key(phase.name());
            write_phase_agg(w, agg);
        }
        w.end_obj();
        w.end_obj();
    }
    w.end_arr();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_merge_and_sorted() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        a.add("sfc.probe_hit", 3);
        b.add("sfc.probe_hit", 2);
        b.incr("sfc.probe_miss");
        a.merge(&b);
        assert_eq!(a.counter("sfc.probe_hit"), 5);
        assert_eq!(a.counter("sfc.probe_miss"), 1);
        assert_eq!(a.counter("absent"), 0);
        let keys: Vec<_> = a.counters.keys().cloned().collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn op_merge_adds_histograms() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        a.ops[OpKind::Get.idx()].count = 1;
        a.ops[OpKind::Get.idx()].latency.record(1000);
        b.ops[OpKind::Get.idx()].count = 2;
        b.ops[OpKind::Get.idx()].latency.record(3000);
        b.ops[OpKind::Get.idx()].latency.record(5000);
        a.merge(&b);
        assert_eq!(a.op(OpKind::Get).count, 3);
        assert_eq!(a.op(OpKind::Get).latency.count(), 3);
        assert_eq!(a.total_ops(), 3);
    }

    #[test]
    fn json_has_schema_and_skips_empty_kinds() {
        let mut r = Registry::new();
        r.ops[OpKind::Get.idx()].count = 1;
        r.ops[OpKind::Get.idx()].latency.record(500);
        r.ops[OpKind::Get.idx()].phases[Phase::SfcProbe.idx()].add_interval(
            &dm_sim::ClientStats {
                round_trips: 1,
                reads: 1,
                ..Default::default()
            },
            100,
        );
        r.incr("sfc.probe_hit");
        let json = r.to_json();
        assert!(json.contains("\"schema\":\"sphinx.telemetry.v1\""));
        assert!(json.contains("\"get\""));
        assert!(!json.contains("\"insert\""));
        assert!(json.contains("\"SfcProbe\""));
        assert!(json.contains("\"sfc.probe_hit\":1"));
        // Round-trips through our own parser.
        let parsed = crate::json::parse(&json).expect("valid json");
        assert_eq!(parsed.get("schema").and_then(|v| v.as_str()), Some(SCHEMA));
    }

    #[test]
    fn text_report_mentions_phases() {
        let mut r = Registry::new();
        r.ops[OpKind::Get.idx()].count = 2;
        r.ops[OpKind::Get.idx()].latency.record(500);
        r.ops[OpKind::Get.idx()].phases[Phase::LeafRead.idx()].add_interval(
            &dm_sim::ClientStats {
                round_trips: 2,
                reads: 2,
                bytes_read: 256,
                ..Default::default()
            },
            200,
        );
        let text = r.render_text();
        assert!(text.contains("get: 2 ops"));
        assert!(text.contains("LeafRead"));
    }
}
