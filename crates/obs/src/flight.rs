//! A fixed-size flight recorder: keeps the K slowest and K most-retried
//! completed operations with their full phase breakdowns, so a benchmark
//! run can be post-mortemed without tracing every op.

use crate::span::OpRecord;

/// Default capacity of each top-K set.
pub const DEFAULT_CAPACITY: usize = 8;

/// Bounded top-K keeper of notable operations.
///
/// `offer` is O(K) in the worst case but its fast path — the common op that
/// is neither slow nor retried — is two comparisons and no allocation.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    capacity: usize,
    slowest: Vec<OpRecord>,
    most_retried: Vec<OpRecord>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(DEFAULT_CAPACITY)
    }
}

impl FlightRecorder {
    /// Creates a recorder keeping `capacity` records per category.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity,
            slowest: Vec::with_capacity(capacity),
            most_retried: Vec::with_capacity(capacity),
        }
    }

    /// Per-category capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Offers a completed op; it is retained only if it ranks within the
    /// top K by latency, or by retries (retried ops only).
    pub fn offer(&mut self, record: &OpRecord) {
        if self.capacity == 0 {
            return;
        }
        if self.slowest.len() < self.capacity || record.latency_ns > self.slowest_floor() {
            Self::insert_by(&mut self.slowest, record.clone(), self.capacity, |r| {
                r.latency_ns
            });
        }
        if record.retries > 0
            && (self.most_retried.len() < self.capacity || record.retries > self.retried_floor())
        {
            Self::insert_by(&mut self.most_retried, record.clone(), self.capacity, |r| {
                r.retries as u64
            });
        }
    }

    fn slowest_floor(&self) -> u64 {
        self.slowest.last().map(|r| r.latency_ns).unwrap_or(0)
    }

    fn retried_floor(&self) -> u32 {
        self.most_retried.last().map(|r| r.retries).unwrap_or(0)
    }

    fn insert_by(
        set: &mut Vec<OpRecord>,
        record: OpRecord,
        cap: usize,
        key: impl Fn(&OpRecord) -> u64,
    ) {
        let pos = set
            .iter()
            .position(|r| key(r) < key(&record))
            .unwrap_or(set.len());
        set.insert(pos, record);
        set.truncate(cap);
    }

    /// Slowest retained ops, descending by latency.
    pub fn slowest(&self) -> &[OpRecord] {
        &self.slowest
    }

    /// Most-retried retained ops, descending by retry count.
    pub fn most_retried(&self) -> &[OpRecord] {
        &self.most_retried
    }

    /// Merges another recorder, keeping the overall top K per category.
    pub fn merge(&mut self, other: &FlightRecorder) {
        for rec in other.slowest.iter().chain(&other.most_retried) {
            self.offer(rec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{OpKind, PhaseAgg, NUM_PHASES};

    fn rec(latency_ns: u64, retries: u32) -> OpRecord {
        OpRecord {
            kind: OpKind::Get,
            latency_ns,
            retries,
            round_trips: 1,
            phases: [PhaseAgg::default(); NUM_PHASES],
            trace: None,
        }
    }

    #[test]
    fn keeps_top_k_slowest_sorted() {
        let mut f = FlightRecorder::new(3);
        for lat in [50, 900, 100, 700, 300, 800] {
            f.offer(&rec(lat, 0));
        }
        let lats: Vec<u64> = f.slowest().iter().map(|r| r.latency_ns).collect();
        assert_eq!(lats, vec![900, 800, 700]);
        assert!(f.most_retried().is_empty());
    }

    #[test]
    fn retried_ops_tracked_separately() {
        let mut f = FlightRecorder::new(2);
        f.offer(&rec(10, 5));
        f.offer(&rec(9999, 0));
        f.offer(&rec(20, 2));
        f.offer(&rec(30, 9));
        let retries: Vec<u32> = f.most_retried().iter().map(|r| r.retries).collect();
        assert_eq!(retries, vec![9, 5]);
        assert_eq!(f.slowest()[0].latency_ns, 9999);
    }

    #[test]
    fn merge_keeps_global_top_k() {
        let mut a = FlightRecorder::new(2);
        let mut b = FlightRecorder::new(2);
        a.offer(&rec(100, 0));
        a.offer(&rec(200, 0));
        b.offer(&rec(150, 0));
        b.offer(&rec(300, 0));
        a.merge(&b);
        let lats: Vec<u64> = a.slowest().iter().map(|r| r.latency_ns).collect();
        assert_eq!(lats, vec![300, 200]);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut f = FlightRecorder::new(0);
        f.offer(&rec(100, 3));
        assert!(f.slowest().is_empty());
        assert!(f.most_retried().is_empty());
    }
}
