//! Causal per-op event tracing with critical-path analysis.
//!
//! The metrics layer ([`Recorder`](crate::Recorder)) answers "where do
//! round trips go *on average*"; this module answers "where did *this op's*
//! latency go". Each traced op carries an [`OpTrace`] through its state
//! machine, recording a timestamped [`OpEvent`] at every causal edge —
//! pipeline admission, submission (token issued), phase transitions,
//! retries, reclaim pin/unpin, blocking fallback. At completion the trace
//! is joined with the transport-event window the `dm-sim` client recorded
//! over the op's lifetime ([`dm_sim::trace::TransportEvent`]), which tiles
//! the op's virtual timeline exactly: the clock only moves at doorbell
//! bursts and explicit advances.
//!
//! On top of the raw traces:
//!
//! * [`critical_path`] decomposes an op's end-to-end latency into five
//!   exact segments — queueing, fusion-wait, NIC service, scheduler stall,
//!   CN compute — that sum to the op's latency (asserted in tests).
//! * [`Tracer`] is the per-worker sampler: always-on tail retention of the
//!   slowest / most-retried K ops plus a uniform 1-in-N head sample, with
//!   a box pool so steady-state tracing allocates nothing and an untraced
//!   op never allocates at all.
//! * [`export_chrome`] renders retained traces as Chrome trace-event JSON
//!   (the `sphinx.trace.v1` schema), viewable in Perfetto: one track per
//!   worker, one per memory node. Output is deterministic — byte-identical
//!   across runs with the same seed under a seeded `Schedule`.

use dm_sim::trace::TransportEvent;

use crate::json::JsonWriter;
use crate::span::{OpKind, Phase};

/// Schema identifier stamped on every trace export.
pub const TRACE_SCHEMA: &str = "sphinx.trace.v1";

/// A trace's identity: `(worker << 32) | per-worker-sequence`. Stable and
/// deterministic under a seeded schedule.
pub type TraceId = u64;

/// One causal edge on a traced op's timeline (all timestamps are the
/// worker's virtual clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpEvent {
    /// The pipeline driver admitted the op into a slot (blocking ops skip
    /// this).
    Admitted {
        /// Virtual time of admission.
        at_ns: u64,
    },
    /// A batch was placed on the submission queue and a completion-queue
    /// token issued — including resubmissions after retries.
    Submitted {
        /// Virtual time of submission.
        at_ns: u64,
        /// Raw [`SqeToken`](dm_sim::SqeToken) — matches burst membership
        /// lists in [`dm_sim::trace::BurstEvent::tokens`].
        token: u64,
    },
    /// The op entered a new attribution phase.
    Phase {
        /// Virtual time of the transition.
        at_ns: u64,
        /// The phase entered.
        phase: Phase,
    },
    /// A failed attempt/restart (torn read, lost CAS, invalid node).
    Retry {
        /// Virtual time of the retry.
        at_ns: u64,
    },
    /// The op pinned its reclamation epoch.
    Pinned {
        /// Virtual time of the pin.
        at_ns: u64,
    },
    /// The op released its reclamation pin.
    Unpinned {
        /// Virtual time of the unpin.
        at_ns: u64,
    },
    /// A pipelined op bailed to the blocking path (its replay runs as a
    /// separate op with its own trace).
    Fallback {
        /// Virtual time of the bail-out.
        at_ns: u64,
    },
}

impl OpEvent {
    /// The event's timestamp.
    pub fn at_ns(&self) -> u64 {
        match *self {
            OpEvent::Admitted { at_ns }
            | OpEvent::Submitted { at_ns, .. }
            | OpEvent::Phase { at_ns, .. }
            | OpEvent::Retry { at_ns }
            | OpEvent::Pinned { at_ns }
            | OpEvent::Unpinned { at_ns }
            | OpEvent::Fallback { at_ns } => at_ns,
        }
    }

    /// Stable lowercase name used in exports.
    pub fn name(&self) -> &'static str {
        match self {
            OpEvent::Admitted { .. } => "admit",
            OpEvent::Submitted { .. } => "submit",
            OpEvent::Phase { .. } => "phase",
            OpEvent::Retry { .. } => "retry",
            OpEvent::Pinned { .. } => "pin",
            OpEvent::Unpinned { .. } => "unpin",
            OpEvent::Fallback { .. } => "fallback",
        }
    }
}

/// The full causal record of one operation: its op-level events plus the
/// window of transport events (bursts, advances) that moved the worker's
/// clock between its begin and end timestamps.
#[derive(Debug, Clone)]
pub struct OpTrace {
    /// `(worker << 32) | seq` — see [`TraceId`].
    pub id: TraceId,
    /// Operation kind.
    pub kind: OpKind,
    /// Virtual time the op began (lease or pipeline admission).
    pub begin_ns: u64,
    /// Virtual time the op completed.
    pub end_ns: u64,
    /// Failed attempts / restarts recorded via [`OpTrace::retry`].
    pub retries: u32,
    /// Whether this trace was picked by the uniform head sample at lease
    /// time (tail retention applies regardless).
    pub head_sampled: bool,
    /// False when part of the transport window was evicted from the
    /// client's bounded ring — segment sums may then fall short.
    pub complete: bool,
    /// Op-level causal events, in record order (timestamps non-decreasing).
    pub events: Vec<OpEvent>,
    /// Raw tokens of every batch this op submitted. Empty for blocking
    /// ops, which are alone on the wire during their window.
    pub tokens: Vec<u64>,
    /// Transport events within `[begin_ns, end_ns]` — an exact tiling of
    /// the op's clock movement.
    pub bursts: Vec<TransportEvent>,
}

impl OpTrace {
    /// An empty placeholder (pool storage); [`Tracer::lease`] resets it.
    pub fn empty() -> Self {
        OpTrace {
            id: 0,
            kind: OpKind::Get,
            begin_ns: 0,
            end_ns: 0,
            retries: 0,
            head_sampled: false,
            complete: true,
            events: Vec::new(),
            tokens: Vec::new(),
            bursts: Vec::new(),
        }
    }

    #[cfg(feature = "telemetry")]
    fn reset(&mut self, id: TraceId, kind: OpKind, now_ns: u64) {
        self.id = id;
        self.kind = kind;
        self.begin_ns = now_ns;
        self.end_ns = now_ns;
        self.retries = 0;
        self.head_sampled = false;
        self.complete = true;
        self.events.clear();
        self.tokens.clear();
        self.bursts.clear();
    }

    /// The worker this trace belongs to (high half of the id).
    pub fn worker(&self) -> u32 {
        (self.id >> 32) as u32
    }

    /// End-to-end virtual latency.
    pub fn latency_ns(&self) -> u64 {
        self.end_ns - self.begin_ns
    }

    /// Records pipeline admission and re-bases the op's begin time (the
    /// driver may admit later than the lease).
    pub fn admit(&mut self, now_ns: u64) {
        self.begin_ns = now_ns;
        self.events.push(OpEvent::Admitted { at_ns: now_ns });
    }

    /// Records a submission and remembers its token for burst-membership
    /// resolution.
    pub fn submitted(&mut self, token: u64, now_ns: u64) {
        self.tokens.push(token);
        self.events.push(OpEvent::Submitted {
            at_ns: now_ns,
            token,
        });
    }

    /// Records a phase transition (consecutive duplicates are dropped).
    pub fn phase(&mut self, phase: Phase, now_ns: u64) {
        if let Some(OpEvent::Phase { phase: last, .. }) = self
            .events
            .iter()
            .rev()
            .find(|e| matches!(e, OpEvent::Phase { .. }))
        {
            if *last == phase {
                return;
            }
        }
        self.events.push(OpEvent::Phase {
            at_ns: now_ns,
            phase,
        });
    }

    /// Records a retry/restart.
    pub fn retry(&mut self, now_ns: u64) {
        self.retries += 1;
        self.events.push(OpEvent::Retry { at_ns: now_ns });
    }

    /// Records a reclamation pin.
    pub fn pin(&mut self, now_ns: u64) {
        self.events.push(OpEvent::Pinned { at_ns: now_ns });
    }

    /// Records a reclamation unpin.
    pub fn unpin(&mut self, now_ns: u64) {
        self.events.push(OpEvent::Unpinned { at_ns: now_ns });
    }

    /// Records a bail-out to the blocking path.
    pub fn fallback(&mut self, now_ns: u64) {
        self.events.push(OpEvent::Fallback { at_ns: now_ns });
    }
}

/// An op's latency decomposed into five exact segments.
///
/// For a trace whose transport window is complete, the segments sum
/// *exactly* to [`total_ns`](CriticalPath::total_ns): every transport
/// event's duration is split without remainder, and the worker clock never
/// moves outside transport events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CriticalPath {
    /// Clock advances outside any burst: retry backoff, and (for pipelined
    /// ops) bursts-free stretches while other slots' steps ran.
    pub queue_ns: u64,
    /// Time inside bursts the op did not cause: whole bursts it was not a
    /// member of (its submission waited, fused, for a later flush or was
    /// already complete) plus co-members' CN-compute share in shared
    /// bursts.
    pub fusion_ns: u64,
    /// NIC service (CN + slowest-MN queueing/serialization) including the
    /// trailing RTT, for bursts the op was a member of.
    pub service_ns: u64,
    /// Deterministic-scheduler grant delays on member bursts.
    pub stall_ns: u64,
    /// The op's own CN-side per-verb compute share of member bursts.
    pub compute_ns: u64,
    /// End-to-end latency ([`OpTrace::latency_ns`]).
    pub total_ns: u64,
}

impl CriticalPath {
    /// Sum of the five segments.
    pub fn segments_sum(&self) -> u64 {
        self.queue_ns + self.fusion_ns + self.service_ns + self.stall_ns + self.compute_ns
    }

    /// Whether the decomposition is exact (always true for traces with a
    /// complete transport window).
    pub fn is_exact(&self) -> bool {
        self.segments_sum() == self.total_ns
    }
}

/// Decomposes `t`'s latency into [`CriticalPath`] segments.
///
/// Membership: a burst belongs to the op when one of the op's submission
/// tokens appears in the burst's member list. Blocking ops record no
/// tokens and are alone on the wire during their window, so every burst is
/// theirs. A truncated member list (more fused ops than the burst records)
/// conservatively counts as membership with the full compute share.
pub fn critical_path(t: &OpTrace) -> CriticalPath {
    let mut cp = CriticalPath {
        total_ns: t.latency_ns(),
        ..CriticalPath::default()
    };
    for ev in &t.bursts {
        match *ev {
            TransportEvent::Advance { from_ns, to_ns } => cp.queue_ns += to_ns - from_ns,
            TransportEvent::Burst(ref b) => {
                let dur = b.to_ns - b.from_ns;
                let own_verbs: u64 = if t.tokens.is_empty() || b.tokens_truncated {
                    b.verbs as u64
                } else {
                    b.tokens()
                        .iter()
                        .filter(|bt| t.tokens.contains(&bt.token))
                        .map(|bt| bt.verbs as u64)
                        .sum()
                };
                if own_verbs == 0 {
                    cp.fusion_ns += dur;
                    continue;
                }
                // Exact integer split: cpu_ns is client_op_ns × verbs, so
                // the per-verb share divides without remainder.
                let own_cpu = if b.verbs == 0 {
                    b.cpu_ns
                } else {
                    b.cpu_ns * own_verbs / b.verbs as u64
                };
                cp.stall_ns += b.delay_ns;
                cp.service_ns += b.service_ns;
                cp.compute_ns += own_cpu;
                cp.fusion_ns += dur - b.delay_ns - b.service_ns - own_cpu;
            }
        }
    }
    cp
}

/// Default tail-retention K: full traces kept for the K slowest and the K
/// most-retried ops per worker (matches
/// [`FlightRecorder`](crate::FlightRecorder)'s capacity).
pub const DEFAULT_TAIL_K: usize = 8;

/// Most head-sampled traces retained per worker.
#[cfg(feature = "telemetry")]
const HEAD_CAP: usize = 256;

/// Recycled trace boxes kept around (covers the pipeline depth plus
/// finish-lease churn).
#[cfg(feature = "telemetry")]
const POOL_CAP: usize = 32;

#[cfg(feature = "telemetry")]
fn rank_by_latency(t: &OpTrace) -> (u64, u64) {
    (t.latency_ns(), t.retries as u64)
}

#[cfg(feature = "telemetry")]
fn rank_by_retries(t: &OpTrace) -> (u64, u64) {
    (t.retries as u64, t.latency_ns())
}

// Boxes are deliberate despite living in Vecs: leases hand the *same*
// allocation back and forth between the pool and the op, so the steady
// state allocates nothing and retention shuffles 8-byte pointers.
#[cfg(feature = "telemetry")]
#[allow(clippy::vec_box)]
#[derive(Debug)]
struct TracerInner {
    worker: u32,
    head_every: u64,
    tail_k: usize,
    seq: u64,
    pool: Vec<Box<OpTrace>>,
    head: Vec<Box<OpTrace>>,
    slowest: Vec<Box<OpTrace>>,
    most_retried: Vec<Box<OpTrace>>,
}

#[cfg(feature = "telemetry")]
impl Default for TracerInner {
    fn default() -> Self {
        TracerInner {
            worker: 0,
            head_every: 0,
            tail_k: DEFAULT_TAIL_K,
            seq: 0,
            pool: Vec::new(),
            head: Vec::new(),
            slowest: Vec::new(),
            most_retried: Vec::new(),
        }
    }
}

/// The per-worker trace sampler: leases [`OpTrace`] contexts to ops,
/// windows completed traces against the transport-event ring, and retains
/// the tail (slowest / most-retried K) plus a uniform head sample.
///
/// Defaults to always-on tail sampling ([`DEFAULT_TAIL_K`]) with the head
/// sample off. With the `telemetry` feature disabled every method is a
/// no-op and [`lease`](Tracer::lease) always returns `None`, so tracing
/// compiles out entirely.
#[derive(Debug, Default)]
pub struct Tracer {
    #[cfg(feature = "telemetry")]
    inner: TracerInner,
}

impl Tracer {
    /// Creates a tracer with default sampling (tail K = 8, head off).
    pub fn new() -> Self {
        Tracer::default()
    }

    /// Sets the worker id stamped into the high half of every trace id.
    pub fn set_worker(&mut self, worker: u32) {
        #[cfg(feature = "telemetry")]
        {
            self.inner.worker = worker;
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = worker;
    }

    /// Configures sampling: keep full traces for the `tail_k`
    /// slowest/most-retried ops, plus every `head_every`-th op (0 = head
    /// sample off). `(0, 0)` disables tracing — no lease, no allocation.
    pub fn configure(&mut self, head_every: u64, tail_k: usize) {
        #[cfg(feature = "telemetry")]
        {
            self.inner.head_every = head_every;
            self.inner.tail_k = tail_k;
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = (head_every, tail_k);
    }

    /// Whether any sampling is active (always false without `telemetry`).
    pub fn is_active(&self) -> bool {
        #[cfg(feature = "telemetry")]
        {
            self.inner.head_every > 0 || self.inner.tail_k > 0
        }
        #[cfg(not(feature = "telemetry"))]
        false
    }

    /// Leases a trace context for an op beginning now. Returns `None` when
    /// tracing is off (compiled out or sampling disabled); otherwise
    /// recycles a pooled box — steady state allocates nothing.
    pub fn lease(&mut self, kind: OpKind, now_ns: u64) -> Option<Box<OpTrace>> {
        #[cfg(feature = "telemetry")]
        {
            let inner = &mut self.inner;
            if inner.head_every == 0 && inner.tail_k == 0 {
                return None;
            }
            let seq = inner.seq;
            inner.seq += 1;
            let mut t = inner
                .pool
                .pop()
                .unwrap_or_else(|| Box::new(OpTrace::empty()));
            t.reset(
                ((inner.worker as u64) << 32) | (seq & 0xffff_ffff),
                kind,
                now_ns,
            );
            t.head_sampled = inner.head_every > 0 && seq.is_multiple_of(inner.head_every);
            Some(t)
        }
        #[cfg(not(feature = "telemetry"))]
        {
            let _ = (kind, now_ns);
            None
        }
    }

    /// Completes a leased trace: stamps its end time, windows `events`
    /// (the transport events collected since the op's mark) to
    /// `[begin_ns, end_ns]`, and applies the retention policy. Returns the
    /// trace id iff the trace was retained (head sample, or current
    /// slowest/most-retried tail) — the id is what
    /// [`OpRecord::trace`](crate::OpRecord::trace) links to.
    pub fn finish(
        &mut self,
        trace: Box<OpTrace>,
        end_ns: u64,
        events: &[TransportEvent],
    ) -> Option<TraceId> {
        #[cfg(feature = "telemetry")]
        {
            let mut trace = trace;
            trace.end_ns = end_ns;
            trace.bursts.clear();
            for ev in events {
                if ev.from_ns() >= trace.begin_ns && ev.to_ns() <= trace.end_ns {
                    trace.bursts.push(*ev);
                }
            }
            let inner = &mut self.inner;
            let id = trace.id;
            if trace.head_sampled && inner.head.len() < HEAD_CAP {
                inner.head.push(trace);
                return Some(id);
            }
            if inner.tail_k == 0 {
                Self::pool(&mut inner.pool, trace);
                return None;
            }
            // Slowest list first; whatever spills (the new trace when it
            // doesn't qualify, or an older trace it displaced) gets a
            // second chance on the most-retried list before pooling.
            let spill =
                match Self::insert_topk(&mut inner.slowest, trace, inner.tail_k, rank_by_latency) {
                    None => return Some(id),
                    Some(t) => t,
                };
            let spill = if spill.retries > 0 {
                match Self::insert_topk(
                    &mut inner.most_retried,
                    spill,
                    inner.tail_k,
                    rank_by_retries,
                ) {
                    None => return Some(id),
                    Some(t) => t,
                }
            } else {
                spill
            };
            let dropped_self = spill.id == id;
            Self::pool(&mut inner.pool, spill);
            (!dropped_self).then_some(id)
        }
        #[cfg(not(feature = "telemetry"))]
        {
            let _ = (trace, end_ns, events);
            None
        }
    }

    /// Inserts `t` into the descending-sorted top-`k` list. Returns the
    /// box that fell out — `t` itself when it doesn't qualify, or the
    /// displaced tail entry.
    #[cfg(feature = "telemetry")]
    #[allow(clippy::vec_box)]
    fn insert_topk(
        list: &mut Vec<Box<OpTrace>>,
        t: Box<OpTrace>,
        k: usize,
        rank: fn(&OpTrace) -> (u64, u64),
    ) -> Option<Box<OpTrace>> {
        let r = rank(&t);
        let pos = list.partition_point(|e| rank(e) >= r);
        if pos >= k {
            return Some(t);
        }
        list.insert(pos, t);
        if list.len() > k {
            list.pop()
        } else {
            None
        }
    }

    #[cfg(feature = "telemetry")]
    #[allow(clippy::vec_box)]
    fn pool(pool: &mut Vec<Box<OpTrace>>, t: Box<OpTrace>) {
        if pool.len() < POOL_CAP {
            pool.push(t);
        }
    }

    /// Drains every retained trace (head sample + tails), sorted by id.
    /// The pool is kept, so a following run still recycles.
    pub fn take_traces(&mut self) -> Vec<OpTrace> {
        #[cfg(feature = "telemetry")]
        {
            let inner = &mut self.inner;
            let mut out: Vec<OpTrace> = inner
                .head
                .drain(..)
                .chain(inner.slowest.drain(..))
                .chain(inner.most_retried.drain(..))
                .map(|b| *b)
                .collect();
            out.sort_by_key(|t| t.id);
            out.dedup_by_key(|t| t.id);
            out
        }
        #[cfg(not(feature = "telemetry"))]
        Vec::new()
    }
}

/// Renders traces as a Chrome trace-event JSON document (the
/// `sphinx.trace.v1` schema) viewable in Perfetto / `chrome://tracing`.
///
/// Layout: process 1 holds one track per CN worker (op slices with their
/// critical-path segments as args, phase sub-slices, instant events for
/// submits/retries/pins); process 2 holds one track per memory node
/// (service slices derived from burst completions, deduplicated across
/// traces). Timestamps are virtual-time nanoseconds emitted 1:1 into the
/// `ts`/`dur` fields (one trace-viewer microsecond per virtual
/// nanosecond), keeping the output integer-exact and byte-deterministic.
pub fn export_chrome(traces: &[OpTrace]) -> String {
    let mut order: Vec<&OpTrace> = traces.iter().collect();
    order.sort_by_key(|t| t.id);

    let mut workers: Vec<u32> = order.iter().map(|t| t.worker()).collect();
    workers.sort_unstable();
    workers.dedup();
    // MN service slices, deduplicated across traces that share a burst:
    // (mn, start, fin) -> (doorbells, verbs).
    let mut mn_slices: std::collections::BTreeMap<(u16, u64, u64), (u32, u32)> =
        std::collections::BTreeMap::new();
    for t in &order {
        for ev in &t.bursts {
            if let TransportEvent::Burst(b) = ev {
                let start = b.from_ns + b.delay_ns;
                for &(mn, fin) in b.mn_fins() {
                    mn_slices
                        .entry((mn, start, fin))
                        .or_insert((b.doorbells, b.verbs));
                }
            }
        }
    }

    let mut w = JsonWriter::new();
    w.begin_obj();
    w.str_field("schema", TRACE_SCHEMA);
    w.str_field("displayTimeUnit", "ns");
    w.key("traceEvents");
    w.begin_arr();

    let meta = |w: &mut JsonWriter, pid: u64, tid: Option<u64>, name: &str, value: &str| {
        w.begin_obj();
        w.str_field("ph", "M");
        w.u64_field("pid", pid);
        if let Some(tid) = tid {
            w.u64_field("tid", tid);
        }
        w.str_field("name", name);
        w.key("args");
        w.begin_obj();
        w.str_field("name", value);
        w.end_obj();
        w.end_obj();
    };
    meta(&mut w, 1, None, "process_name", "cn-workers");
    for &worker in &workers {
        meta(
            &mut w,
            1,
            Some(worker as u64),
            "thread_name",
            &format!("worker-{worker}"),
        );
    }
    if !mn_slices.is_empty() {
        meta(&mut w, 2, None, "process_name", "memory-nodes");
        let mut mns: Vec<u16> = mn_slices.keys().map(|&(mn, _, _)| mn).collect();
        mns.sort_unstable();
        mns.dedup();
        for mn in mns {
            meta(
                &mut w,
                2,
                Some(mn as u64),
                "thread_name",
                &format!("mn-{mn}"),
            );
        }
    }

    for t in &order {
        let tid = t.worker() as u64;
        let cp = critical_path(t);
        // The op slice with its critical-path decomposition.
        w.begin_obj();
        w.str_field("ph", "X");
        w.u64_field("pid", 1);
        w.u64_field("tid", tid);
        w.u64_field("ts", t.begin_ns);
        w.u64_field("dur", t.latency_ns());
        w.str_field("name", t.kind.name());
        w.str_field("cat", "op");
        w.key("args");
        w.begin_obj();
        w.u64_field("trace_id", t.id);
        w.u64_field("retries", t.retries as u64);
        w.u64_field("queue_ns", cp.queue_ns);
        w.u64_field("fusion_ns", cp.fusion_ns);
        w.u64_field("service_ns", cp.service_ns);
        w.u64_field("stall_ns", cp.stall_ns);
        w.u64_field("compute_ns", cp.compute_ns);
        w.str_field("exact", if cp.is_exact() { "true" } else { "false" });
        w.end_obj();
        w.end_obj();
        // Phase sub-slices: each phase runs to the next transition or the
        // op's end.
        let phases: Vec<(u64, Phase)> = t
            .events
            .iter()
            .filter_map(|e| match *e {
                OpEvent::Phase { at_ns, phase } => Some((at_ns, phase)),
                _ => None,
            })
            .collect();
        for (i, &(at, phase)) in phases.iter().enumerate() {
            let until = phases.get(i + 1).map_or(t.end_ns, |&(next, _)| next);
            w.begin_obj();
            w.str_field("ph", "X");
            w.u64_field("pid", 1);
            w.u64_field("tid", tid);
            w.u64_field("ts", at);
            w.u64_field("dur", until.saturating_sub(at));
            w.str_field("name", phase.name());
            w.str_field("cat", "phase");
            w.end_obj();
        }
        // Instant events for the remaining causal edges.
        for e in &t.events {
            if matches!(e, OpEvent::Phase { .. }) {
                continue;
            }
            w.begin_obj();
            w.str_field("ph", "i");
            w.u64_field("pid", 1);
            w.u64_field("tid", tid);
            w.u64_field("ts", e.at_ns());
            w.str_field("name", e.name());
            w.str_field("s", "t");
            if let OpEvent::Submitted { token, .. } = e {
                w.key("args");
                w.begin_obj();
                w.u64_field("token", *token);
                w.end_obj();
            }
            w.end_obj();
        }
    }

    for (&(mn, start, fin), &(doorbells, verbs)) in &mn_slices {
        w.begin_obj();
        w.str_field("ph", "X");
        w.u64_field("pid", 2);
        w.u64_field("tid", mn as u64);
        w.u64_field("ts", start);
        w.u64_field("dur", fin.saturating_sub(start));
        w.str_field("name", "burst");
        w.str_field("cat", "mn");
        w.key("args");
        w.begin_obj();
        w.u64_field("doorbells", doorbells as u64);
        w.u64_field("verbs", verbs as u64);
        w.end_obj();
        w.end_obj();
    }

    w.end_arr();
    w.end_obj();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_sim::trace::BurstEvent;

    /// A burst shared by three fused ops: `delay` of scheduler stall, one
    /// CN-compute charge of 10 ns per verb (one verb per op), 100 ns of
    /// NIC service.
    fn shared_burst() -> BurstEvent {
        let mut b = BurstEvent::new(0, 140, 10, 30);
        b.doorbells = 1;
        b.verbs = 3;
        b.push_token(101, 1);
        b.push_token(102, 1);
        b.push_token(103, 1);
        b.push_mn_fin(0, 120);
        b
    }

    fn traced(tokens: &[u64], begin_ns: u64, end_ns: u64, bursts: Vec<TransportEvent>) -> OpTrace {
        let mut t = OpTrace::empty();
        t.begin_ns = begin_ns;
        t.end_ns = end_ns;
        t.tokens = tokens.to_vec();
        t.bursts = bursts;
        t
    }

    #[test]
    fn fused_doorbell_shared_by_three_ops_sums_exactly() {
        let b = shared_burst();
        assert_eq!(b.service_ns, 100);
        for token in [101u64, 102, 103] {
            let t = traced(&[token], 0, 140, vec![TransportEvent::Burst(b)]);
            let cp = critical_path(&t);
            assert_eq!(cp.stall_ns, 10);
            assert_eq!(cp.service_ns, 100);
            assert_eq!(cp.compute_ns, 10, "own 1-of-3 verb share of 30 ns cpu");
            assert_eq!(cp.fusion_ns, 20, "the two co-members' compute");
            assert_eq!(cp.segments_sum(), 140);
            assert!(cp.is_exact());
        }
    }

    #[test]
    fn non_member_burst_is_pure_fusion_wait() {
        let b = shared_burst();
        // This op submitted token 999, which is not in the burst: the
        // whole burst is time it spent waiting on peers.
        let t = traced(&[999], 0, 140, vec![TransportEvent::Burst(b)]);
        let cp = critical_path(&t);
        assert_eq!(cp.fusion_ns, 140);
        assert_eq!(cp.queue_ns + cp.service_ns + cp.stall_ns + cp.compute_ns, 0);
        assert!(cp.is_exact());
    }

    #[test]
    fn resubmit_after_torn_read_sums_exactly() {
        // Attempt 1: solo burst [0, 50) with 20 ns cpu, no stall.
        let mut b1 = BurstEvent::new(0, 50, 0, 20);
        b1.verbs = 2;
        b1.push_token(7, 2);
        // Torn read detected → backoff advance [50, 80), then resubmit.
        let adv = TransportEvent::Advance {
            from_ns: 50,
            to_ns: 80,
        };
        // Attempt 2: burst [80, 180) with 10 ns stall, 20 ns cpu.
        let mut b2 = BurstEvent::new(80, 180, 10, 20);
        b2.verbs = 2;
        b2.push_token(8, 2);
        let mut t = traced(
            &[7, 8],
            0,
            180,
            vec![TransportEvent::Burst(b1), adv, TransportEvent::Burst(b2)],
        );
        t.submitted(7, 0);
        t.retry(50);
        t.submitted(8, 80);
        let cp = critical_path(&t);
        assert_eq!(cp.queue_ns, 30, "backoff advance");
        assert_eq!(cp.stall_ns, 10);
        assert_eq!(cp.compute_ns, 40);
        assert_eq!(cp.service_ns, (50 - 20) + (180 - 80 - 10 - 20));
        assert_eq!(cp.fusion_ns, 0);
        assert_eq!(cp.segments_sum(), 180);
        assert!(cp.is_exact());
        assert_eq!(t.retries, 1);
    }

    #[test]
    fn zero_work_sfc_probe_is_exact_with_empty_segments() {
        // A CN-local SFC probe moves no virtual time and issues no verbs.
        let mut t = traced(&[], 500, 500, Vec::new());
        t.phase(Phase::SfcProbe, 500);
        let cp = critical_path(&t);
        assert_eq!(cp, CriticalPath::default());
        assert!(cp.is_exact());
    }

    #[test]
    fn blocking_op_without_tokens_owns_every_burst() {
        let mut b = BurstEvent::new(100, 160, 0, 10);
        b.verbs = 1;
        // Blocking path: no tokens recorded; the op is alone on the wire.
        let t = traced(&[], 100, 160, vec![TransportEvent::Burst(b)]);
        let cp = critical_path(&t);
        assert_eq!(cp.compute_ns, 10);
        assert_eq!(cp.service_ns, 50);
        assert!(cp.is_exact());
    }

    #[test]
    fn truncated_member_list_counts_as_full_membership() {
        let mut b = BurstEvent::new(0, 100, 0, 30);
        b.verbs = 3;
        b.tokens_truncated = true;
        let t = traced(&[42], 0, 100, vec![TransportEvent::Burst(b)]);
        let cp = critical_path(&t);
        assert_eq!(cp.compute_ns, 30, "conservative full compute share");
        assert!(cp.is_exact());
    }

    #[test]
    fn phase_dedup_drops_consecutive_duplicates() {
        let mut t = OpTrace::empty();
        t.phase(Phase::SfcProbe, 0);
        t.phase(Phase::SfcProbe, 10);
        t.phase(Phase::LeafRead, 20);
        t.phase(Phase::SfcProbe, 30);
        let phases: Vec<_> = t
            .events
            .iter()
            .filter(|e| matches!(e, OpEvent::Phase { .. }))
            .collect();
        assert_eq!(phases.len(), 3);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn tracer_disabled_sampling_never_leases() {
        let mut tr = Tracer::new();
        tr.configure(0, 0);
        assert!(!tr.is_active());
        assert!(tr.lease(OpKind::Get, 0).is_none());
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn tail_retention_keeps_slowest_and_most_retried() {
        let mut tr = Tracer::new();
        tr.set_worker(3);
        tr.configure(0, 2);
        // Latencies 100, 400, 200, 300 → slowest two are 400 and 300.
        // The 200 op carries retries → second chance on the retried list.
        let specs = [(100u64, 0u32), (400, 0), (200, 2), (300, 0)];
        let mut retained = Vec::new();
        for &(lat, retries) in &specs {
            let mut t = tr.lease(OpKind::Get, 0).expect("sampling active");
            for _ in 0..retries {
                t.retry(lat / 2);
            }
            retained.push(tr.finish(t, lat, &[]));
        }
        // 100: retained until displaced; 400/300 survive; 200 lands on the
        // retried list.
        assert!(retained[1].is_some() && retained[2].is_some() && retained[3].is_some());
        let traces = tr.take_traces();
        let lats: Vec<u64> = traces.iter().map(|t| t.latency_ns()).collect();
        assert!(lats.contains(&400) && lats.contains(&300) && lats.contains(&200));
        assert!(!lats.contains(&100));
        for t in &traces {
            assert_eq!(t.worker(), 3);
        }
        // Ids are unique and sorted.
        let ids: Vec<u64> = traces.iter().map(|t| t.id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ids, sorted);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn head_sample_takes_every_nth_and_pool_recycles() {
        let mut tr = Tracer::new();
        tr.configure(2, 1);
        let t0 = tr.lease(OpKind::Get, 0).unwrap();
        assert!(t0.head_sampled, "seq 0 is a head sample at every=2");
        let t1 = tr.lease(OpKind::Get, 0).unwrap();
        assert!(!t1.head_sampled);
        assert!(tr.finish(t0, 10, &[]).is_some());
        assert!(tr.finish(t1, 5, &[]).is_some(), "tail k=1 keeps it");
        let t2 = tr.lease(OpKind::Get, 0).unwrap();
        assert!(t2.head_sampled, "seq 2 is a head sample again");
        assert!(tr.finish(t2, 1, &[]).is_some());
        // A fourth, faster op displaces nothing and is pooled; the next
        // lease reuses its box.
        let t3 = tr.lease(OpKind::Get, 0).unwrap();
        assert!(!t3.head_sampled);
        assert!(tr.finish(t3, 1, &[]).is_none());
        let before = tr.inner.pool.len();
        assert!(before > 0);
        let _t3 = tr.lease(OpKind::Get, 0).unwrap();
        assert_eq!(tr.inner.pool.len(), before - 1, "lease recycled a box");
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn finish_windows_transport_events_to_op_lifetime() {
        let mut tr = Tracer::new();
        tr.configure(1, 0);
        let mut b_in = BurstEvent::new(100, 150, 0, 10);
        b_in.verbs = 1;
        let b_out = BurstEvent::new(10, 60, 0, 10);
        let events = [
            TransportEvent::Burst(b_out),
            TransportEvent::Burst(b_in),
            TransportEvent::Advance {
                from_ns: 150,
                to_ns: 170,
            },
            TransportEvent::Advance {
                from_ns: 210,
                to_ns: 230,
            },
        ];
        let mut t = tr.lease(OpKind::Get, 100).unwrap();
        t.admit(100);
        tr.finish(t, 170, &events);
        let traces = tr.take_traces();
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].bursts.len(), 2, "pre-begin and post-end dropped");
        let cp = critical_path(&traces[0]);
        assert_eq!(cp.queue_ns, 20);
        assert_eq!(cp.compute_ns, 10);
        assert_eq!(cp.service_ns, 40);
        assert!(cp.is_exact());
    }

    #[test]
    fn export_is_deterministic_and_schema_stamped() {
        let b = shared_burst();
        let mut t1 = traced(&[101], 0, 140, vec![TransportEvent::Burst(b)]);
        t1.id = (1 << 32) | 7;
        t1.kind = OpKind::Get;
        t1.admit(0);
        t1.submitted(101, 0);
        t1.phase(Phase::LeafRead, 0);
        let mut t2 = traced(&[102], 0, 140, vec![TransportEvent::Burst(b)]);
        t2.id = 2 << 32;
        let json = export_chrome(&[t2.clone(), t1.clone()]);
        assert_eq!(
            json,
            export_chrome(&[t1.clone(), t2.clone()]),
            "order-independent"
        );
        let doc = crate::json::parse(&json).expect("valid json");
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some(TRACE_SCHEMA)
        );
        let events = doc
            .get("traceEvents")
            .and_then(|v| v.as_arr())
            .expect("traceEvents array");
        // Two op slices, shared MN slice deduplicated to one.
        let count = |cat: &str| {
            events
                .iter()
                .filter(|e| e.get("cat").and_then(|v| v.as_str()) == Some(cat))
                .count()
        };
        assert_eq!(count("op"), 2);
        assert_eq!(count("mn"), 1, "shared burst deduplicates");
    }
}
