//! Minimal JSON emit/parse — the build environment is offline, so the obs
//! crate carries its own writer (compact, escaped) and a small recursive-
//! descent parser sufficient for validating exported telemetry documents.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A compact JSON writer with automatic comma management.
///
/// Call sequence is not validated beyond comma placement; the registry
/// exporter is the only intended producer.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    need_comma: bool,
}

impl JsonWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        JsonWriter::default()
    }

    fn comma(&mut self) {
        if self.need_comma {
            self.out.push(',');
        }
        self.need_comma = false;
    }

    /// Opens an object value.
    pub fn begin_obj(&mut self) {
        self.comma();
        self.out.push('{');
    }

    /// Closes the current object.
    pub fn end_obj(&mut self) {
        self.out.push('}');
        self.need_comma = true;
    }

    /// Opens an array value.
    pub fn begin_arr(&mut self) {
        self.comma();
        self.out.push('[');
    }

    /// Closes the current array.
    pub fn end_arr(&mut self) {
        self.out.push(']');
        self.need_comma = true;
    }

    /// Emits an object key; the next emitted value belongs to it.
    pub fn key(&mut self, k: &str) {
        self.comma();
        write_escaped(&mut self.out, k);
        self.out.push(':');
    }

    /// Emits a string value.
    pub fn str_val(&mut self, v: &str) {
        self.comma();
        write_escaped(&mut self.out, v);
        self.need_comma = true;
    }

    /// Emits an unsigned integer value.
    pub fn u64_val(&mut self, v: u64) {
        self.comma();
        let _ = write!(self.out, "{v}");
        self.need_comma = true;
    }

    /// Emits a float value (finite; NaN/inf are emitted as 0).
    pub fn f64_val(&mut self, v: f64) {
        self.comma();
        if v.is_finite() {
            let _ = write!(self.out, "{v}");
        } else {
            self.out.push('0');
        }
        self.need_comma = true;
    }

    /// `key: string` shorthand.
    pub fn str_field(&mut self, k: &str, v: &str) {
        self.key(k);
        self.str_val(v);
    }

    /// `key: u64` shorthand.
    pub fn u64_field(&mut self, k: &str, v: u64) {
        self.key(k);
        self.u64_val(v);
    }

    /// `key: f64` shorthand.
    pub fn f64_field(&mut self, k: &str, v: f64) {
        self.key(k);
        self.f64_val(v);
    }

    /// Returns the document built so far.
    pub fn finish(self) -> String {
        self.out
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`; telemetry counters stay well within
    /// exact integer range).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object member lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as `u64`, if this is a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Array contents, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Object contents, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a human-readable description (with byte offset) on malformed
/// input or trailing garbage.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 scalar (input is a &str, so boundaries are valid).
                let s = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = s.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // consume '{'
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_builds_nested_doc() {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.str_field("name", "sphinx");
        w.key("nested");
        w.begin_obj();
        w.u64_field("a", 1);
        w.u64_field("b", 2);
        w.end_obj();
        w.key("list");
        w.begin_arr();
        w.u64_val(1);
        w.u64_val(2);
        w.end_arr();
        w.f64_field("rate", 0.5);
        w.end_obj();
        assert_eq!(
            w.finish(),
            r#"{"name":"sphinx","nested":{"a":1,"b":2},"list":[1,2],"rate":0.5}"#
        );
    }

    #[test]
    fn writer_escapes_strings() {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.str_field("k\"ey", "a\nb\\c");
        w.end_obj();
        let doc = w.finish();
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k\"ey").and_then(|v| v.as_str()), Some("a\nb\\c"));
    }

    #[test]
    fn parser_round_trips() {
        let v = parse(r#"{"a": [1, 2.5, "x", true, null], "b": {"c": 7}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 5);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_u64(), Some(7));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{}x").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("[1,]").is_err());
    }
}
