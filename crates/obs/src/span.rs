//! Operation kinds, phase taxonomy, and per-phase aggregates.

use dm_sim::ClientStats;

/// The kind of index operation a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum OpKind {
    /// Point lookup.
    Get,
    /// Insert of a new key.
    Insert,
    /// In-place update of an existing key.
    Update,
    /// Deletion.
    Delete,
    /// Range scan.
    Scan,
    /// Batched multi-get.
    MultiGet,
}

/// Number of [`OpKind`] variants (array-table dimension).
pub const NUM_OP_KINDS: usize = 6;

impl OpKind {
    /// All kinds, in declaration order (matches `repr` indices).
    pub const ALL: [OpKind; NUM_OP_KINDS] = [
        OpKind::Get,
        OpKind::Insert,
        OpKind::Update,
        OpKind::Delete,
        OpKind::Scan,
        OpKind::MultiGet,
    ];

    /// Stable lowercase name used in JSON/text export.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Get => "get",
            OpKind::Insert => "insert",
            OpKind::Update => "update",
            OpKind::Delete => "delete",
            OpKind::Scan => "scan",
            OpKind::MultiGet => "multi_get",
        }
    }

    /// Index into per-kind tables.
    pub fn idx(self) -> usize {
        self as usize
    }
}

/// The phase of an operation a stretch of network work is attributed to.
///
/// Phases mirror the Sphinx read/write path (SFC probe → INHT lookup →
/// descent → validated leaf read; writes add locking and SMO maintenance).
/// Baselines reuse the structural subset (`Traversal`, `LeafRead`,
/// `LeafWrite`, `LockAcquire`, `Retry`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Phase {
    /// CN-local succinct-filter-cache probe (plus any filter refresh reads).
    SfcProbe,
    /// INHT hash-entry reads (RACE bucket-pair fetch + validation).
    InhtLookup,
    /// Root-to-leaf (or entry-node-to-leaf) inner-node descent.
    Traversal,
    /// Validated leaf read (including torn-read re-reads).
    LeafRead,
    /// Leaf write / install / split data movement.
    LeafWrite,
    /// Lock-word CAS acquisition (including piggybacked lock+write batches).
    LockAcquire,
    /// Retry backoff and restarted-attempt overhead.
    Retry,
    /// Index maintenance: INHT publish/repair, invalidation, GC.
    Maintenance,
    /// Work not attributed to a specific phase.
    Other,
}

/// Number of [`Phase`] variants (array-table dimension).
pub const NUM_PHASES: usize = 9;

impl Phase {
    /// All phases, in declaration order (matches `repr` indices).
    pub const ALL: [Phase; NUM_PHASES] = [
        Phase::SfcProbe,
        Phase::InhtLookup,
        Phase::Traversal,
        Phase::LeafRead,
        Phase::LeafWrite,
        Phase::LockAcquire,
        Phase::Retry,
        Phase::Maintenance,
        Phase::Other,
    ];

    /// Stable name used in JSON/text export.
    pub fn name(self) -> &'static str {
        match self {
            Phase::SfcProbe => "SfcProbe",
            Phase::InhtLookup => "InhtLookup",
            Phase::Traversal => "Traversal",
            Phase::LeafRead => "LeafRead",
            Phase::LeafWrite => "LeafWrite",
            Phase::LockAcquire => "LockAcquire",
            Phase::Retry => "Retry",
            Phase::Maintenance => "Maintenance",
            Phase::Other => "Other",
        }
    }

    /// Index into per-phase tables.
    pub fn idx(self) -> usize {
        self as usize
    }
}

/// Network work attributed to one phase: a sum of `ClientStats` deltas
/// taken at phase boundaries, plus virtual time spent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseAgg {
    /// Number of phase intervals folded in.
    pub count: u64,
    /// Round trips performed during the phase.
    pub round_trips: u64,
    /// Physical doorbells rung during the phase (< round trips when the
    /// pipelined scheduler fused this phase's submissions with others).
    pub doorbells: u64,
    /// Verbs issued during the phase.
    pub verbs: u64,
    /// Bytes moved (read + written) during the phase.
    pub bytes: u64,
    /// Virtual nanoseconds spent in the phase.
    pub time_ns: u64,
}

impl PhaseAgg {
    /// Folds one phase interval in: the `ClientStats` delta across the
    /// interval and the virtual time it spanned.
    pub fn add_interval(&mut self, delta: &ClientStats, time_ns: u64) {
        self.count += 1;
        self.round_trips += delta.round_trips;
        self.doorbells += delta.doorbells;
        self.verbs += delta.verbs();
        self.bytes += delta.bytes_total();
        self.time_ns += time_ns;
    }

    /// Merges another aggregate into this one.
    pub fn merge(&mut self, other: &PhaseAgg) {
        self.count += other.count;
        self.round_trips += other.round_trips;
        self.doorbells += other.doorbells;
        self.verbs += other.verbs;
        self.bytes += other.bytes;
        self.time_ns += other.time_ns;
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        *self == PhaseAgg::default()
    }
}

/// One completed operation as captured by the flight recorder: total
/// latency, retry count, and the full per-phase breakdown.
#[derive(Debug, Clone)]
pub struct OpRecord {
    /// Operation kind.
    pub kind: OpKind,
    /// End-to-end virtual latency.
    pub latency_ns: u64,
    /// Failed attempts / restarts within the op.
    pub retries: u32,
    /// Total round trips across all phases.
    pub round_trips: u64,
    /// Per-phase attribution (indexed by [`Phase::idx`]).
    pub phases: [PhaseAgg; NUM_PHASES],
    /// Link to the op's retained causal trace
    /// ([`TraceId`](crate::trace::TraceId)), when one was sampled and
    /// survived retention at record time.
    pub trace: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_and_phase_indices_match_all_order() {
        for (i, k) in OpKind::ALL.iter().enumerate() {
            assert_eq!(k.idx(), i);
        }
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.idx(), i);
        }
    }

    #[test]
    fn phase_agg_accumulates() {
        let mut agg = PhaseAgg::default();
        let delta = ClientStats {
            round_trips: 2,
            doorbells: 2,
            reads: 3,
            writes: 1,
            cas: 1,
            faa: 0,
            frees: 0,
            bytes_read: 128,
            bytes_written: 64,
        };
        agg.add_interval(&delta, 4000);
        agg.add_interval(&delta, 1000);
        assert_eq!(agg.count, 2);
        assert_eq!(agg.round_trips, 4);
        assert_eq!(agg.doorbells, 4);
        assert_eq!(agg.verbs, 10);
        assert_eq!(agg.bytes, 384);
        assert_eq!(agg.time_ns, 5000);
        assert!(!agg.is_empty());
    }
}
