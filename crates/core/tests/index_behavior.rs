//! Behavioral tests for the Sphinx index: single-worker semantics,
//! round-trip cost accounting, filter-cache behaviour, and concurrency.

use dm_sim::{ClusterConfig, DmCluster};
use sphinx::{CacheMode, SphinxConfig, SphinxIndex};

fn cluster() -> DmCluster {
    DmCluster::new(ClusterConfig {
        num_mns: 3,
        num_cns: 3,
        mn_capacity: 128 << 20,
        ..Default::default()
    })
}

fn index(cluster: &DmCluster) -> SphinxIndex {
    SphinxIndex::create(cluster, SphinxConfig::small()).expect("create index")
}

#[test]
fn insert_get_roundtrip() {
    let c = cluster();
    let idx = index(&c);
    let mut cl = idx.client(0).unwrap();
    cl.insert(b"lyrics", b"v1").unwrap();
    assert_eq!(cl.get(b"lyrics").unwrap().as_deref(), Some(&b"v1"[..]));
    assert_eq!(cl.get(b"lyric").unwrap(), None);
    assert_eq!(cl.get(b"lyricsx").unwrap(), None);
    assert_eq!(cl.get(b"zzz").unwrap(), None);
}

#[test]
fn prefix_keys_coexist() {
    let c = cluster();
    let idx = index(&c);
    let mut cl = idx.client(0).unwrap();
    for (k, v) in [("l", "1"), ("ly", "2"), ("lyr", "3"), ("lyrics", "4")] {
        cl.insert(k.as_bytes(), v.as_bytes()).unwrap();
    }
    for (k, v) in [("l", "1"), ("ly", "2"), ("lyr", "3"), ("lyrics", "4")] {
        assert_eq!(
            cl.get(k.as_bytes()).unwrap().as_deref(),
            Some(v.as_bytes()),
            "key {k}"
        );
    }
}

#[test]
fn overwrite_via_insert() {
    let c = cluster();
    let idx = index(&c);
    let mut cl = idx.client(0).unwrap();
    cl.insert(b"key", b"old").unwrap();
    cl.insert(b"key", b"new").unwrap();
    assert_eq!(cl.get(b"key").unwrap().as_deref(), Some(&b"new"[..]));
}

#[test]
fn update_semantics() {
    let c = cluster();
    let idx = index(&c);
    let mut cl = idx.client(0).unwrap();
    assert!(
        !cl.update(b"ghost", b"x").unwrap(),
        "absent key is not updated"
    );
    cl.insert(b"key", b"a").unwrap();
    assert!(cl.update(b"key", b"b").unwrap());
    assert_eq!(cl.get(b"key").unwrap().as_deref(), Some(&b"b"[..]));
}

#[test]
fn in_place_update_is_cheap_out_of_place_works() {
    let c = cluster();
    let idx = index(&c);
    let mut cl = idx.client(0).unwrap();
    cl.insert(b"key12345", &[1u8; 30]).unwrap();
    // In-place: fits in the 64-byte-aligned leaf.
    assert!(cl.update(b"key12345", &[2u8; 40]).unwrap());
    assert_eq!(
        cl.get(b"key12345").unwrap().as_deref(),
        Some(&[2u8; 40][..])
    );
    // Out-of-place: 500 bytes cannot fit the original leaf.
    assert!(cl.update(b"key12345", &[3u8; 500]).unwrap());
    assert_eq!(
        cl.get(b"key12345").unwrap().as_deref(),
        Some(&[3u8; 500][..])
    );
    // And updatable again after relocation.
    assert!(cl.update(b"key12345", &[4u8; 500]).unwrap());
    assert_eq!(
        cl.get(b"key12345").unwrap().as_deref(),
        Some(&[4u8; 500][..])
    );
}

#[test]
fn delete_semantics() {
    let c = cluster();
    let idx = index(&c);
    let mut cl = idx.client(0).unwrap();
    cl.insert(b"gone", b"v").unwrap();
    assert!(cl.remove(b"gone").unwrap());
    assert_eq!(cl.get(b"gone").unwrap(), None);
    assert!(!cl.remove(b"gone").unwrap(), "double delete reports false");
    assert!(!cl.remove(b"never").unwrap());
    // Reinsert after delete works.
    cl.insert(b"gone", b"back").unwrap();
    assert_eq!(cl.get(b"gone").unwrap().as_deref(), Some(&b"back"[..]));
}

#[test]
fn node_type_switches_preserve_data() {
    let c = cluster();
    let idx = index(&c);
    let mut cl = idx.client(0).unwrap();
    // 300 keys sharing a one-byte prefix forces Node4→16→48→256 under it.
    let mut keys = Vec::new();
    for i in 0..300u32 {
        let mut k = b"p".to_vec();
        k.extend_from_slice(&i.to_be_bytes());
        cl.insert(&k, &i.to_le_bytes()).unwrap();
        keys.push((k, i));
    }
    for (k, i) in &keys {
        assert_eq!(
            cl.get(k).unwrap().as_deref(),
            Some(&i.to_le_bytes()[..]),
            "key {i} lost across type switches"
        );
    }
}

#[test]
fn root_type_switch_preserves_data() {
    let c = cluster();
    let idx = index(&c);
    let mut cl = idx.client(0).unwrap();
    // 300 keys with distinct first bytes force the ROOT itself to grow.
    for i in 0..300u32 {
        let k = (i * 7919).to_be_bytes();
        cl.insert(&k, &i.to_le_bytes()).unwrap();
    }
    for i in 0..300u32 {
        let k = (i * 7919).to_be_bytes();
        assert_eq!(cl.get(&k).unwrap().as_deref(), Some(&i.to_le_bytes()[..]));
    }
}

#[test]
fn scan_returns_sorted_range_inclusive() {
    let c = cluster();
    let idx = index(&c);
    let mut cl = idx.client(0).unwrap();
    for w in ["apple", "banana", "blueberry", "cherry", "date", "fig"] {
        cl.insert(w.as_bytes(), w.as_bytes()).unwrap();
    }
    let hits = cl.scan(b"banana", b"date").unwrap();
    let keys: Vec<&[u8]> = hits.iter().map(|(k, _)| k.as_slice()).collect();
    assert_eq!(
        keys,
        vec![b"banana".as_slice(), b"blueberry", b"cherry", b"date"]
    );
}

#[test]
fn scan_skips_deleted_and_handles_empty_range() {
    let c = cluster();
    let idx = index(&c);
    let mut cl = idx.client(0).unwrap();
    for w in ["a", "b", "c"] {
        cl.insert(w.as_bytes(), b"v").unwrap();
    }
    cl.remove(b"b").unwrap();
    let hits = cl.scan(b"a", b"c").unwrap();
    let keys: Vec<&[u8]> = hits.iter().map(|(k, _)| k.as_slice()).collect();
    assert_eq!(keys, vec![b"a".as_slice(), b"c"]);
    assert!(
        cl.scan(b"x", b"a").unwrap().is_empty(),
        "inverted range is empty"
    );
}

#[test]
fn common_case_costs_three_round_trips() {
    let c = cluster();
    let idx = index(&c);
    let mut cl = idx.client(0).unwrap();
    // Build a tree deep enough that an inner node with prefix "commonpre"
    // exists, then measure a warm lookup.
    for suffix in ["fix1", "fix2", "mon", "dor"] {
        let mut k = b"commonpre".to_vec();
        k.extend_from_slice(suffix.as_bytes());
        cl.insert(&k, b"v").unwrap();
    }
    // Warm the filter cache.
    cl.get(b"commonprefix1").unwrap();
    let before = cl.net_stats().round_trips;
    cl.get(b"commonprefix1").unwrap();
    let rts = cl.net_stats().round_trips - before;
    assert!(
        rts <= 3,
        "warm lookup should be ≤3 round trips (hash entry, inner node, leaf); got {rts}"
    );
}

#[test]
fn filter_cache_reduces_round_trips_vs_inht_only() {
    let c = cluster();
    // Long keys: the InhtOnly mode must issue one bucket read per prefix.
    let key = b"averyveryverylongemailkey@example.com";
    let make = |mode| {
        let cfg = SphinxConfig {
            mode,
            ..SphinxConfig::small()
        };
        SphinxIndex::create(&c, cfg).unwrap()
    };

    let idx_f = make(CacheMode::FilterCache);
    let mut cl_f = idx_f.client(0).unwrap();
    cl_f.insert(key, b"v").unwrap();
    cl_f.get(key).unwrap(); // warm
    let b = cl_f.net_stats();
    cl_f.get(key).unwrap();
    let filter_verbs = cl_f.net_stats().verbs() - b.verbs();

    let idx_i = make(CacheMode::InhtOnly);
    let mut cl_i = idx_i.client(0).unwrap();
    cl_i.insert(key, b"v").unwrap();
    cl_i.get(key).unwrap();
    let b = cl_i.net_stats();
    cl_i.get(key).unwrap();
    let inht_verbs = cl_i.net_stats().verbs() - b.verbs();

    assert!(
        filter_verbs * 3 <= inht_verbs,
        "filter cache should slash verb count: {filter_verbs} vs {inht_verbs}"
    );
}

#[test]
fn inht_only_mode_is_correct() {
    let c = cluster();
    let cfg = SphinxConfig {
        mode: CacheMode::InhtOnly,
        ..SphinxConfig::small()
    };
    let idx = SphinxIndex::create(&c, cfg).unwrap();
    let mut cl = idx.client(0).unwrap();
    for i in 0..200u32 {
        cl.insert(format!("user{i:04}").as_bytes(), &i.to_le_bytes())
            .unwrap();
    }
    for i in 0..200u32 {
        assert_eq!(
            cl.get(format!("user{i:04}").as_bytes()).unwrap().as_deref(),
            Some(&i.to_le_bytes()[..])
        );
    }
}

#[test]
fn cross_client_visibility() {
    let c = cluster();
    let idx = index(&c);
    let mut writer = idx.client(0).unwrap();
    let mut reader = idx.client(1).unwrap(); // different CN, cold cache
    writer.insert(b"shared", b"payload").unwrap();
    assert_eq!(
        reader.get(b"shared").unwrap().as_deref(),
        Some(&b"payload"[..])
    );
    writer.update(b"shared", b"payload2").unwrap();
    assert_eq!(
        reader.get(b"shared").unwrap().as_deref(),
        Some(&b"payload2"[..])
    );
}

#[test]
fn empty_key_is_supported() {
    let c = cluster();
    let idx = index(&c);
    let mut cl = idx.client(0).unwrap();
    cl.insert(b"", b"root-value").unwrap();
    assert_eq!(cl.get(b"").unwrap().as_deref(), Some(&b"root-value"[..]));
    cl.insert(b"a", b"x").unwrap();
    assert_eq!(cl.get(b"").unwrap().as_deref(), Some(&b"root-value"[..]));
    assert!(cl.remove(b"").unwrap());
    assert_eq!(cl.get(b"").unwrap(), None);
}

#[test]
fn thousand_key_mixed_workout_against_oracle() {
    use std::collections::BTreeMap;
    let c = cluster();
    let idx = index(&c);
    let mut cl = idx.client(0).unwrap();
    let mut oracle: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    let mut x: u64 = 88172645463325252;
    for step in 0..3000u32 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let key = format!("k{:06}", x % 1000).into_bytes();
        match x % 10 {
            0..=5 => {
                let val = step.to_le_bytes().to_vec();
                cl.insert(&key, &val).unwrap();
                oracle.insert(key, val);
            }
            6..=7 => {
                let expect = oracle.remove(&key).is_some();
                assert_eq!(cl.remove(&key).unwrap(), expect, "step {step}");
            }
            _ => {
                assert_eq!(
                    cl.get(&key).unwrap(),
                    oracle.get(&key).cloned(),
                    "step {step}"
                );
            }
        }
    }
    // Final full sweep.
    for (k, v) in &oracle {
        assert_eq!(cl.get(k).unwrap().as_ref(), Some(v));
    }
    // And a scan comparison over a subrange.
    let got = cl.scan(b"k000100", b"k000500").unwrap();
    let want: Vec<(Vec<u8>, Vec<u8>)> = oracle
        .range(b"k000100".to_vec()..=b"k000500".to_vec())
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    assert_eq!(got, want);
}

#[test]
fn concurrent_disjoint_inserts() {
    let c = cluster();
    let idx = index(&c);
    let threads = 4;
    let per = 250u32;
    std::thread::scope(|s| {
        for t in 0..threads {
            let idx = idx.clone();
            s.spawn(move || {
                let mut cl = idx.client((t % 3) as u16).unwrap();
                for i in 0..per {
                    let key = format!("t{t}-key{i:05}");
                    cl.insert(key.as_bytes(), &i.to_le_bytes()).unwrap();
                }
            });
        }
    });
    let mut cl = idx.client(0).unwrap();
    for t in 0..threads {
        for i in 0..per {
            let key = format!("t{t}-key{i:05}");
            assert_eq!(
                cl.get(key.as_bytes()).unwrap().as_deref(),
                Some(&i.to_le_bytes()[..]),
                "lost {key}"
            );
        }
    }
}

#[test]
fn concurrent_overlapping_inserts_and_updates() {
    let c = cluster();
    let idx = index(&c);
    let threads = 4;
    std::thread::scope(|s| {
        for t in 0..threads {
            let idx = idx.clone();
            s.spawn(move || {
                let mut cl = idx.client((t % 3) as u16).unwrap();
                for i in 0..200u32 {
                    // Each key index is visited twice: once with an even i
                    // (insert) and once with an odd i (update).
                    let key = format!("shared-key{:04}", (i / 2) % 100);
                    if i % 2 == 0 {
                        cl.insert(key.as_bytes(), &[t as u8; 16]).unwrap();
                    } else {
                        let _ = cl.update(key.as_bytes(), &[t as u8 + 10; 16]).unwrap();
                    }
                }
            });
        }
    });
    // Every shared key must exist with one of the writers' values, intact.
    let mut cl = idx.client(0).unwrap();
    for i in 0..100u32 {
        let key = format!("shared-key{i:04}");
        let v = cl
            .get(key.as_bytes())
            .unwrap()
            .unwrap_or_else(|| panic!("{key} missing"));
        assert_eq!(v.len(), 16);
        assert!(v.iter().all(|&b| b == v[0]), "torn value for {key}: {v:?}");
        assert!(v[0] < 14, "value byte out of range for {key}");
    }
}

#[test]
fn concurrent_readers_during_writes_never_see_torn_values() {
    let c = cluster();
    let idx = index(&c);
    let mut setup = idx.client(0).unwrap();
    for i in 0..50u32 {
        setup
            .insert(format!("rw{i:03}").as_bytes(), &[0u8; 32])
            .unwrap();
    }
    std::thread::scope(|s| {
        // Writers continuously update with uniform-byte values.
        for t in 0..2 {
            let idx = idx.clone();
            s.spawn(move || {
                let mut cl = idx.client(1).unwrap();
                for round in 0..150u32 {
                    let key = format!("rw{:03}", round % 50);
                    let byte = (t * 100 + round % 50) as u8;
                    cl.update(key.as_bytes(), &[byte; 32]).unwrap();
                }
            });
        }
        // Readers verify values are never torn.
        for _ in 0..2 {
            let idx = idx.clone();
            s.spawn(move || {
                let mut cl = idx.client(2).unwrap();
                for round in 0..300u32 {
                    let key = format!("rw{:03}", round % 50);
                    if let Some(v) = cl.get(key.as_bytes()).unwrap() {
                        assert_eq!(v.len(), 32);
                        assert!(v.iter().all(|&b| b == v[0]), "torn read on {key}: {v:?}");
                    }
                }
            });
        }
    });
}

#[test]
fn space_breakdown_reports_small_inht_overhead() {
    let c = cluster();
    let idx = index(&c);
    let mut cl = idx.client(0).unwrap();
    for i in 0..2000u64 {
        cl.insert(&(i.wrapping_mul(0x9E37_79B9)).to_be_bytes(), &[0u8; 64])
            .unwrap();
    }
    let space = idx.space_breakdown().unwrap();
    assert!(space.art_bytes > 0 && space.inht_bytes > 0);
    // At this toy scale the preallocated directory dominates the INHT
    // bytes; just check the table stays well under the tree's size. The
    // paper's 3.3–4.9% figure is reproduced at production sizing by the
    // fig6 binary (see EXPERIMENTS.md).
    assert!(
        space.inht_overhead() < 1.0,
        "overhead {}",
        space.inht_overhead()
    );
}

#[test]
fn op_stats_track_operations() {
    let c = cluster();
    let idx = index(&c);
    let mut cl = idx.client(0).unwrap();
    cl.insert(b"a", b"1").unwrap();
    cl.get(b"a").unwrap();
    cl.update(b"a", b"2").unwrap();
    cl.remove(b"a").unwrap();
    cl.scan(b"a", b"z").unwrap();
    let s = cl.op_stats();
    assert_eq!(
        (s.inserts, s.gets, s.updates, s.deletes, s.scans),
        (1, 1, 1, 1, 1)
    );
}
