//! Pipelined point lookups: the Sphinx `get` restructured as a resumable
//! state machine so one worker can keep several independent lookups in
//! flight (see [`node_engine::pipeline`]).
//!
//! [`GetOp`] mirrors the blocking fast path of [`SphinxClient::get`]
//! exactly — filter probe → INHT bucket-pair read → candidate node
//! validation → descent → validated leaf read, including false-positive
//! restarts and torn-leaf retries — but yields a
//! [`StepOutcome::Submit`] at every round trip instead of blocking on
//! [`dm_sim::Transport::execute`]. The driver
//! ([`SphinxClient::get_many_pipelined`]) runs up to `depth` of these
//! machines concurrently via [`node_engine::run_pipelined`]: every
//! scheduling round all in-flight reads go out in one fused doorbell, so
//! the whole window shares a single RTT.
//!
//! Rare paths keep their blocking implementation rather than growing a
//! second copy: when a machine hits one (stale INHT directory, divergent
//! compressed path, a node caught mid type-switch, retry-budget
//! exhaustion) it finishes with [`PipelinedGet::Fallback`] and the driver
//! replays that key through [`SphinxClient::get`]. Correctness is never
//! traded for pipelining — the fallback re-executes from scratch and its
//! counters stand in for the whole op (the machine's partial counters are
//! discarded to avoid double counting).

use art_core::hash::{fp12, prefix_hash42, prefix_hash64};
use art_core::key::{common_prefix_len, MAX_KEY_LEN};
use art_core::layout::{HashEntry, InnerNode, LayoutError, LeafNode, NodeStatus};
use art_core::NodeKind;
use dm_sim::{DoorbellBatch, RemotePtr, RetryPolicy, SqeToken, Transport, Verb, VerbResult};
use node_engine::{leaf_validation, EngineError, OpState, PipelineStats, StepOutcome};
use obs::{OpKind, OpTrace, Phase};
use race_hash::RaceTable;

use crate::client::SphinxClient;
use crate::config::CacheMode;
use crate::error::SphinxError;

/// Submission tags, used by [`PipelineStats::by_tag`] to attribute the
/// fused round trips back to the phase taxonomy.
const TAG_INHT: u32 = Phase::InhtLookup as u32;
const TAG_TRAVERSAL: u32 = Phase::Traversal as u32;
const TAG_LEAF: u32 = Phase::LeafRead as u32;

/// Counter deltas accumulated by one machine-run lookup, folded into
/// [`crate::OpStats`] and the named `obs` counters by the driver.
#[derive(Debug, Clone, Copy, Default)]
struct GetDelta {
    fp_retries: u64,
    entry_misses: u64,
    filter_first_hits: u64,
    filter_refreshes: u64,
    checksum_retries: u64,
    extended_reads: u64,
    probe_hits: u64,
    probe_misses: u64,
    inht_hits: u64,
    fp_collisions: u64,
}

/// How one pipelined lookup ended.
enum PipelinedGet {
    /// The fast path completed: the key's value, or `None` if absent.
    Value(Option<Vec<u8>>),
    /// The machine hit a path it does not model; replay via blocking
    /// [`SphinxClient::get`].
    Fallback,
}

/// Output of one [`GetOp`].
struct GetOut {
    result: PipelinedGet,
    delta: GetDelta,
    /// The op's causal-trace context, carried out for
    /// [`obs::Tracer::finish`] (always `None` when tracing is off).
    #[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
    trace: Option<Box<OpTrace>>,
}

/// Where the machine is between round trips.
enum St {
    /// Probe the filter and submit the INHT bucket-pair read.
    Start,
    /// Waiting for the bucket pair of `key[..plen]`.
    Pair {
        plen: usize,
        base: RemotePtr,
        hash: u64,
    },
    /// Waiting for candidate inner node `queue[idx]` at prefix `plen`.
    Candidate {
        plen: usize,
        queue: Vec<(RemotePtr, NodeKind)>,
        idx: usize,
    },
    /// Waiting for an inner child during the descent.
    Child {
        entry_len: usize,
        parent_plen: usize,
        kind: NodeKind,
    },
    /// Waiting for the leaf bytes.
    Leaf {
        entry_len: usize,
        ptr: RemotePtr,
        read_len: usize,
        attempts: usize,
    },
}

/// The Sphinx point lookup as a resumable state machine (FilterCache
/// mode; the driver routes other modes to the blocking path).
struct GetOp<'a> {
    key: &'a [u8],
    tables: &'a [RaceTable],
    filter: &'a sfc::FilterCache,
    leaf_hint: usize,
    retry: RetryPolicy,
    /// Upper bound on the probed prefix length (shrinks on fp restarts).
    max_len: usize,
    /// Current probe level within one entry-node search.
    probe_len: usize,
    /// Whether the next INHT hit is a first-probe hit.
    first: bool,
    /// False-positive restarts consumed (bounded by `op_retries`).
    restarts: usize,
    delta: GetDelta,
    state: St,
    /// Causal-trace context leased by the driver (`None` when this op was
    /// not sampled — every recording below is then a no-op).
    trace: Option<Box<OpTrace>>,
}

/// Shorthand for a single-read submission.
fn read_batch(ptr: RemotePtr, len: usize) -> DoorbellBatch {
    DoorbellBatch::from_iter([Verb::Read { ptr, len }])
}

/// Unwraps a single-read completion.
fn into_one_read(mut results: Vec<VerbResult>) -> Vec<u8> {
    results
        .pop()
        .expect("pipelined get submits exactly one read per batch")
        .into_read()
}

type Step = Result<StepOutcome<GetOut>, EngineError>;

impl<'a> GetOp<'a> {
    fn new(
        key: &'a [u8],
        tables: &'a [RaceTable],
        filter: &'a sfc::FilterCache,
        leaf_hint: usize,
        retry: RetryPolicy,
    ) -> Self {
        GetOp {
            key,
            tables,
            filter,
            leaf_hint,
            retry,
            max_len: key.len(),
            probe_len: key.len(),
            first: true,
            restarts: 0,
            delta: GetDelta::default(),
            state: St::Start,
            trace: None,
        }
    }

    /// Records a phase transition on the op's trace, if it has one.
    fn tphase(&mut self, phase: Phase, now_ns: u64) {
        if let Some(tr) = self.trace.as_mut() {
            tr.phase(phase, now_ns);
        }
    }

    /// Records a retry/restart on the op's trace, if it has one.
    fn tretry(&mut self, now_ns: u64) {
        if let Some(tr) = self.trace.as_mut() {
            tr.retry(now_ns);
        }
    }

    /// Stamps the trace's end time and hands it to the output.
    fn take_trace(&mut self, now_ns: u64) -> Option<Box<OpTrace>> {
        let mut tr = self.trace.take()?;
        tr.end_ns = now_ns;
        Some(tr)
    }

    /// Ends the op on a path the machine does not model. The partial
    /// counter delta is discarded: the blocking replay recounts the op.
    fn fallback(&mut self, now_ns: u64) -> Step {
        if let Some(tr) = self.trace.as_mut() {
            tr.fallback(now_ns);
        }
        Ok(StepOutcome::Done(GetOut {
            result: PipelinedGet::Fallback,
            delta: GetDelta::default(),
            trace: self.take_trace(now_ns),
        }))
    }

    fn finish(&mut self, now_ns: u64, value: Option<Vec<u8>>) -> Step {
        Ok(StepOutcome::Done(GetOut {
            result: PipelinedGet::Value(value),
            delta: self.delta,
            trace: self.take_trace(now_ns),
        }))
    }

    /// CN-local filter probe at the current level, then the bucket-pair
    /// submission (the SfcProbe → InhtLookup hop of the blocking path).
    fn probe<T: Transport>(&mut self, t: &mut T) -> Step {
        let now = t.clock_ns();
        self.tphase(Phase::SfcProbe, now);
        let l = self.probe_len;
        let cand = self.filter.deepest_hit(self.key, l);
        if l > 0 {
            if cand > 0 {
                self.delta.probe_hits += 1;
            } else {
                self.delta.probe_misses += 1;
            }
        }
        let prefix = &self.key[..cand];
        let hash = prefix_hash64(prefix);
        let mn = t.place(hash) as usize;
        let Some(table) = self.tables.get(mn) else {
            return self.fallback(now);
        };
        let Ok(base) = table.bucket_pair_ptr(hash) else {
            // Directory metadata problem: the blocking path knows how to
            // refresh and retry it.
            return self.fallback(now);
        };
        self.tphase(Phase::InhtLookup, now);
        self.state = St::Pair {
            plen: cand,
            base,
            hash,
        };
        Ok(StepOutcome::Submit {
            batch: read_batch(base, RaceTable::pair_len()),
            tag: TAG_INHT,
        })
    }

    /// No valid entry at prefix `plen`: re-probe one level shorter, as the
    /// blocking entry-node loop does.
    fn probe_shorter<T: Transport>(&mut self, t: &mut T, plen: usize) -> Step {
        self.delta.entry_misses += 1;
        self.first = false;
        if plen > 0 {
            // Filter hit at `plen` disproven by the INHT: an observed
            // false positive (mirrors the blocking entry-node loop).
            self.filter.record_false_positive();
        }
        if plen == 0 {
            // Blocking path retries the whole ladder on a bounded budget
            // before reporting `Corrupt: root hash entry missing`; the
            // machine defers to it.
            return self.fallback(t.clock_ns());
        }
        self.probe_len = plen - 1;
        self.probe(t)
    }

    /// Submits candidate `idx` for validation, or moves to the shorter
    /// prefix when the queue is exhausted.
    fn next_candidate<T: Transport>(
        &mut self,
        t: &mut T,
        plen: usize,
        queue: Vec<(RemotePtr, NodeKind)>,
        idx: usize,
    ) -> Step {
        match queue.get(idx) {
            Some(&(ptr, kind)) => {
                let len = InnerNode::byte_size(kind);
                self.state = St::Candidate { plen, queue, idx };
                Ok(StepOutcome::Submit {
                    batch: read_batch(ptr, len),
                    tag: TAG_INHT,
                })
            }
            None => self.probe_shorter(t, plen),
        }
    }

    /// One descent decision from a validated inner node: finishes, submits
    /// the leaf read, or submits the next inner child.
    fn on_node(&mut self, now_ns: u64, node: InnerNode, entry_len: usize) -> Step {
        if node.header.status == NodeStatus::Invalid {
            // Mid type-switch: blocking `locate` backs off and retries.
            return self.fallback(now_ns);
        }
        let plen = node.header.prefix_len as usize;
        if self.key.len() == plen {
            return match node.value_slot {
                Some(slot) => self.read_leaf(now_ns, slot.addr, entry_len),
                None => self.finish(now_ns, None),
            };
        }
        match node.find_child(self.key[plen]) {
            None => self.finish(now_ns, None),
            Some((_, slot)) if slot.is_leaf => self.read_leaf(now_ns, slot.addr, entry_len),
            Some((_, slot)) => {
                let len = InnerNode::byte_size(slot.child_kind);
                self.tphase(Phase::Traversal, now_ns);
                self.state = St::Child {
                    entry_len,
                    parent_plen: plen,
                    kind: slot.child_kind,
                };
                Ok(StepOutcome::Submit {
                    batch: read_batch(slot.addr, len),
                    tag: TAG_TRAVERSAL,
                })
            }
        }
    }

    fn read_leaf(&mut self, now_ns: u64, ptr: RemotePtr, entry_len: usize) -> Step {
        let read_len = self.leaf_hint.max(64);
        self.tphase(Phase::LeafRead, now_ns);
        self.state = St::Leaf {
            entry_len,
            ptr,
            read_len,
            attempts: 0,
        };
        Ok(StepOutcome::Submit {
            batch: read_batch(ptr, read_len),
            tag: TAG_LEAF,
        })
    }

    /// The false-positive check of §III-B: if the leaf shares less of the
    /// key than the entry node's prefix length, both the fp₂ and the
    /// 42-bit prefix hash collided — restart with a shorter prefix.
    fn finish_leaf<T: Transport>(&mut self, t: &mut T, leaf: LeafNode, entry_len: usize) -> Step {
        if common_prefix_len(self.key, &leaf.key) < entry_len {
            self.delta.fp_retries += 1;
            self.restarts += 1;
            self.tretry(t.clock_ns());
            if self.restarts >= self.retry.op_retries {
                // Blocking path reports RetriesExhausted.
                return self.fallback(t.clock_ns());
            }
            self.max_len = entry_len.saturating_sub(1);
            self.probe_len = self.max_len;
            self.first = true;
            return self.probe(t);
        }
        let hit = leaf.key == self.key && leaf.status != NodeStatus::Invalid;
        self.finish(t.clock_ns(), hit.then_some(leaf.value))
    }
}

impl OpState for GetOp<'_> {
    type Output = GetOut;

    fn on_admitted(&mut self, now_ns: u64) {
        if let Some(tr) = self.trace.as_mut() {
            tr.admit(now_ns);
        }
    }

    fn on_submitted(&mut self, token: SqeToken, now_ns: u64) {
        if let Some(tr) = self.trace.as_mut() {
            tr.submitted(token.raw(), now_ns);
        }
    }

    fn step<T: Transport>(
        &mut self,
        t: &mut T,
        completion: Option<Vec<VerbResult>>,
    ) -> Result<StepOutcome<GetOut>, EngineError> {
        let state = std::mem::replace(&mut self.state, St::Start);
        match state {
            St::Start => {
                debug_assert!(completion.is_none());
                if self.key.len() > MAX_KEY_LEN {
                    // Blocking path reports KeyTooLong.
                    return self.fallback(t.clock_ns());
                }
                self.probe(t)
            }
            St::Pair { plen, base, hash } => {
                let bytes = into_one_read(completion.expect("Pair state awaits a completion"));
                match RaceTable::parse_pair(base, &bytes, hash) {
                    // Stale directory: the blocking path refreshes it.
                    None => self.fallback(t.clock_ns()),
                    Some(entries) => {
                        let fp = fp12(&self.key[..plen]);
                        let queue: Vec<(RemotePtr, NodeKind)> = entries
                            .iter()
                            .filter_map(|e| HashEntry::decode(e.word))
                            .filter(|he| he.fp == fp)
                            .map(|he| (he.addr, he.kind))
                            .collect();
                        self.next_candidate(t, plen, queue, 0)
                    }
                }
            }
            St::Candidate { plen, queue, idx } => {
                let bytes = into_one_read(completion.expect("Candidate state awaits a completion"));
                let Ok(node) = InnerNode::decode(&bytes) else {
                    return self.fallback(t.clock_ns());
                };
                let (_, kind) = queue[idx];
                if node.header.status == NodeStatus::Invalid
                    || node.header.kind != kind
                    || node.header.prefix_len as usize != plen
                    || node.header.prefix_hash42 != prefix_hash42(&self.key[..plen])
                {
                    // fp₁₂ matched but the node did not: collision or
                    // stale entry; try the next candidate.
                    self.delta.fp_collisions += 1;
                    return self.next_candidate(t, plen, queue, idx + 1);
                }
                self.delta.inht_hits += 1;
                if self.first {
                    self.delta.filter_first_hits += 1;
                }
                self.on_node(t.clock_ns(), node, plen)
            }
            St::Child {
                entry_len,
                parent_plen,
                kind,
            } => {
                let bytes = into_one_read(completion.expect("Child state awaits a completion"));
                let Ok(child) = InnerNode::decode(&bytes) else {
                    return self.fallback(t.clock_ns());
                };
                if child.header.status == NodeStatus::Invalid || child.header.kind != kind {
                    return self.fallback(t.clock_ns());
                }
                let clen = child.header.prefix_len as usize;
                if clen <= parent_plen {
                    return self.fallback(t.clock_ns());
                }
                if self.key.len() >= clen
                    && child.header.prefix_hash42 == prefix_hash42(&self.key[..clen])
                {
                    // Child matches the key: teach the filter this prefix
                    // (the freshness update of §IV Search) and keep going.
                    if self.filter.refresh(&self.key[..clen]) {
                        self.delta.filter_refreshes += 1;
                    }
                    self.on_node(t.clock_ns(), child, entry_len)
                } else {
                    // Divergence inside the compressed path: the blocking
                    // path samples a leaf to learn the actual prefix.
                    self.fallback(t.clock_ns())
                }
            }
            St::Leaf {
                entry_len,
                ptr,
                read_len,
                mut attempts,
            } => {
                let bytes = into_one_read(completion.expect("Leaf state awaits a completion"));
                // First word carries the true size; extend if the hint was
                // too small (mirrors `read_validated_leaf`).
                let word0 = u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes"));
                let units = ((word0 >> 8) & 0xFF) as usize;
                let true_len = units.max(1) * 64;
                if true_len > read_len {
                    self.delta.extended_reads += 1;
                    self.state = St::Leaf {
                        entry_len,
                        ptr,
                        read_len: true_len,
                        attempts,
                    };
                    return Ok(StepOutcome::Submit {
                        batch: read_batch(ptr, true_len),
                        tag: TAG_LEAF,
                    });
                }
                match LeafNode::decode(&bytes) {
                    Ok(leaf) => self.finish_leaf(t, leaf, entry_len),
                    Err(LayoutError::ChecksumMismatch { .. }) if !leaf_validation() => {
                        // Broken-protocol mode for the lincheck harness:
                        // serve the torn leaf, as the blocking path does.
                        match LeafNode::decode_unverified(&bytes) {
                            Ok(leaf) => self.finish_leaf(t, leaf, entry_len),
                            Err(_) => self.fallback(t.clock_ns()),
                        }
                    }
                    Err(LayoutError::ChecksumMismatch { .. })
                    | Err(LayoutError::TruncatedNode { .. }) => {
                        // Torn read under a concurrent writer: back off and
                        // re-read, bounded by the shared policy.
                        self.delta.checksum_retries += 1;
                        attempts += 1;
                        self.tretry(t.clock_ns());
                        if attempts >= self.retry.io_retries {
                            return self.fallback(t.clock_ns());
                        }
                        t.backoff(&self.retry);
                        self.state = St::Leaf {
                            entry_len,
                            ptr,
                            read_len,
                            attempts,
                        };
                        Ok(StepOutcome::Submit {
                            batch: read_batch(ptr, read_len),
                            tag: TAG_LEAF,
                        })
                    }
                    Err(_) => self.fallback(t.clock_ns()),
                }
            }
        }
    }
}

impl SphinxClient {
    /// Looks up many keys keeping up to `depth` lookups in flight.
    ///
    /// Unlike [`SphinxClient::multi_get`] — which shares round trips only
    /// when every key is at the same pipeline stage — this driver runs
    /// each key as an independent resumable state machine
    /// ([`node_engine::OpState`]): keys at different depths, with
    /// different filter outcomes, or needing leaf-read retries all keep
    /// the window full, and every scheduling round the whole window's
    /// reads go out in one fused doorbell
    /// ([`dm_sim::Transport::flush_submitted`]).
    ///
    /// Results are positionally aligned with `keys`. Depth 1 degenerates
    /// to the blocking path (identical network charges, one batch per
    /// flush). Keys that leave the modeled fast path replay through
    /// [`SphinxClient::get`]. In [`CacheMode::InhtOnly`] every key takes
    /// the blocking path (that mode already batches per key).
    ///
    /// # Errors
    ///
    /// Same classes as [`SphinxClient::get`].
    ///
    /// # Examples
    ///
    /// ```
    /// # use dm_sim::{ClusterConfig, DmCluster};
    /// # use sphinx::{SphinxConfig, SphinxIndex};
    /// # fn main() -> Result<(), sphinx::SphinxError> {
    /// # let cluster = DmCluster::new(ClusterConfig::default());
    /// # let index = SphinxIndex::create(&cluster, SphinxConfig::default())?;
    /// # let mut client = index.client(0)?;
    /// client.insert(b"k1", b"v1")?;
    /// client.insert(b"k2", b"v2")?;
    /// let hits = client.get_many_pipelined(&[b"k1".as_slice(), b"nope", b"k2"], 8)?;
    /// assert_eq!(hits[0].as_deref(), Some(&b"v1"[..]));
    /// assert_eq!(hits[1], None);
    /// assert_eq!(hits[2].as_deref(), Some(&b"v2"[..]));
    /// # Ok(())
    /// # }
    /// ```
    pub fn get_many_pipelined(
        &mut self,
        keys: &[&[u8]],
        depth: usize,
    ) -> Result<Vec<Option<Vec<u8>>>, SphinxError> {
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        if self.config.mode != CacheMode::FilterCache {
            return keys.iter().map(|k| self.get(k)).collect();
        }
        // One MultiGet span covers the pipelined run (phases interleave
        // across ops, so per-phase attribution comes from
        // `PipelineStats::by_tag` instead of the span recorder); per-key
        // fallbacks below record their own Get spans.
        self.obs_begin(OpKind::MultiGet);
        // Lease one causal-trace context per key (all `None` when tracing
        // is off): each machine records its own admission, submissions,
        // phases, and retries alongside the enclosing MultiGet span.
        let lease_now = self.dm.clock_ns();
        let mut leases: Vec<Option<Box<OpTrace>>> = keys
            .iter()
            .map(|_| self.tracer.lease(OpKind::Get, lease_now))
            .collect();
        let mut pstats = PipelineStats::default();
        let run = {
            let SphinxClient {
                dm,
                tables,
                filter,
                config,
                retry,
                ..
            } = self;
            let hint = config.leaf_read_hint;
            let ops = keys.iter().zip(leases.iter_mut()).map(|(key, lease)| {
                let mut op = GetOp::new(key, tables, filter, hint, *retry);
                op.trace = lease.take();
                op
            });
            node_engine::run_pipelined(dm, ops, depth, &mut pstats)
        };
        self.pipeline.merge(&pstats);
        #[cfg_attr(not(feature = "telemetry"), allow(unused_mut))]
        let mut outs = match run {
            Ok(outs) => outs,
            Err(e) => {
                self.op_exit();
                return Err(e.into());
            }
        };

        // Finish the per-key traces against the transport-event window the
        // whole pipelined run shares (one collect, not one per op).
        #[cfg(feature = "telemetry")]
        if outs.iter().any(|o| o.trace.is_some()) {
            let mut scratch = std::mem::take(&mut self.trace_scratch);
            scratch.clear();
            let complete = self.dm.trace_collect_since(self.trace_mark, &mut scratch);
            for out in &mut outs {
                if let Some(mut tr) = out.trace.take() {
                    tr.complete = complete;
                    let end = tr.end_ns;
                    self.tracer.finish(tr, end, &scratch);
                }
            }
            self.trace_scratch = scratch;
        }

        let mut machine_ops = 0u64;
        for out in &outs {
            if matches!(out.result, PipelinedGet::Fallback) {
                self.obs.incr("pipeline.fallbacks");
                continue;
            }
            machine_ops += 1;
            self.stats.gets += 1;
            let d = &out.delta;
            self.stats.false_positive_retries += d.fp_retries;
            self.stats.entry_misses += d.entry_misses;
            self.stats.filter_first_hits += d.filter_first_hits;
            self.stats.filter_refreshes += d.filter_refreshes;
            self.stats.checksum_retries += d.checksum_retries;
            self.stats.extended_leaf_reads += d.extended_reads;
            self.obs.add("sfc.probe_hit", d.probe_hits);
            self.obs.add("sfc.probe_miss", d.probe_misses);
            self.obs.add("inht.hit", d.inht_hits);
            self.obs.add("inht.fp_collision", d.fp_collisions);
        }
        // Reclamation cadence parity with the blocking path: one unpin per
        // machine-run op (the final one comes from `op_exit`), so the
        // amortized scan fires as often as it would have.
        for _ in 1..machine_ops {
            if self.reclaim.scan_due() {
                self.obs_phase(Phase::Maintenance);
            }
            let SphinxClient { dm, reclaim, .. } = self;
            reclaim.unpin(dm);
        }
        self.op_exit();

        outs.into_iter()
            .zip(keys)
            .map(|(out, key)| match out.result {
                PipelinedGet::Value(v) => Ok(v),
                PipelinedGet::Fallback => self.get(key),
            })
            .collect()
    }

    /// Cumulative pipelined-execution counters for this worker (flush
    /// rounds, fusion, stalls, depth histogram, per-phase attribution).
    pub fn pipeline_stats(&self) -> &PipelineStats {
        &self.pipeline
    }
}

#[cfg(test)]
mod tests {
    use crate::{SphinxConfig, SphinxIndex};
    use dm_sim::{ClusterConfig, DmCluster};

    fn setup(n: u64) -> (SphinxIndex, crate::SphinxClient) {
        let cluster = DmCluster::new(ClusterConfig::default());
        let index = SphinxIndex::create(&cluster, SphinxConfig::small()).unwrap();
        let mut client = index.client(0).unwrap();
        for i in 0..n {
            client
                .insert(format!("pget-{i:05}").as_bytes(), &i.to_le_bytes())
                .unwrap();
        }
        (index, client)
    }

    #[test]
    fn pipelined_matches_get_at_all_depths() {
        let (_idx, mut client) = setup(400);
        let keys: Vec<Vec<u8>> = (0..500u64)
            .step_by(3)
            .map(|i| format!("pget-{i:05}").into_bytes())
            .collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let expected: Vec<_> = refs.iter().map(|k| client.get(k).unwrap()).collect();
        for depth in [1, 4, 8] {
            let got = client.get_many_pipelined(&refs, depth).unwrap();
            assert_eq!(got, expected, "depth {depth}");
        }
    }

    #[test]
    fn depth_changes_doorbells_not_round_trips() {
        let (_idx, mut client) = setup(300);
        let keys: Vec<Vec<u8>> = (0..200u64)
            .map(|i| format!("pget-{i:05}").into_bytes())
            .collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        // Warm the filter so both runs take the identical fast path.
        for k in &refs {
            client.get(k).unwrap();
        }

        let s0 = client.net_stats();
        let t0 = client.clock_ns();
        client.get_many_pipelined(&refs, 1).unwrap();
        let d1 = client.net_stats().since(&s0);
        let t1 = client.clock_ns() - t0;
        assert_eq!(
            d1.doorbells, d1.round_trips,
            "depth 1 never fuses: every logical round trip is a doorbell"
        );

        let s0 = client.net_stats();
        let t0 = client.clock_ns();
        client.get_many_pipelined(&refs, 8).unwrap();
        let d8 = client.net_stats().since(&s0);
        let t8 = client.clock_ns() - t0;

        assert_eq!(
            d8.round_trips, d1.round_trips,
            "per-op logical round trips are depth-independent"
        );
        assert!(
            d8.doorbells < d1.doorbells,
            "depth 8 must fuse: {} doorbells vs {}",
            d8.doorbells,
            d1.doorbells
        );
        assert!(
            t8 * 2 < t1,
            "depth 8 ({t8} ns) should be far faster than depth 1 ({t1} ns)"
        );
        let p = client.pipeline_stats();
        assert!(p.fused_batches > 0);
        assert_eq!(p.ops, 400, "both runs drove every key through a machine");
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn pipeline_counters_reach_telemetry() {
        let (_idx, mut client) = setup(100);
        let keys: Vec<Vec<u8>> = (0..100u64)
            .map(|i| format!("pget-{i:05}").into_bytes())
            .collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        client.get_many_pipelined(&refs, 8).unwrap();
        let reg = client.telemetry();
        assert!(reg.counter("pipeline.ops") >= 100);
        assert!(reg.counter("pipeline.fused_batches") > 0);
        assert!(reg.counter("pipeline.flushes") > 0);
        assert!(reg.counter("pipeline.depth_le_8") > 0);
        // Per-phase attribution: the INHT, traversal and leaf tags all saw
        // round trips.
        assert!(reg.counter("pipeline.rts.InhtLookup") > 0);
        assert!(reg.counter("pipeline.rts.LeafRead") > 0);
    }

    #[test]
    fn inht_only_mode_takes_the_blocking_path() {
        let cluster = DmCluster::new(ClusterConfig::default());
        let config = crate::SphinxConfig {
            mode: crate::CacheMode::InhtOnly,
            ..crate::SphinxConfig::small()
        };
        let index = SphinxIndex::create(&cluster, config).unwrap();
        let mut client = index.client(0).unwrap();
        for i in 0..50u64 {
            client
                .insert(format!("io-{i:03}").as_bytes(), &i.to_le_bytes())
                .unwrap();
        }
        let keys: Vec<Vec<u8>> = (0..60u64)
            .map(|i| format!("io-{i:03}").into_bytes())
            .collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let got = client.get_many_pipelined(&refs, 8).unwrap();
        for (i, g) in got.iter().enumerate() {
            if i < 50 {
                assert_eq!(g.as_deref(), Some(&(i as u64).to_le_bytes()[..]));
            } else {
                assert_eq!(*g, None);
            }
        }
        assert_eq!(client.pipeline_stats().ops, 0, "no machines in InhtOnly");
    }

    #[test]
    fn pipelined_counts_gets_once_per_key() {
        let (_idx, mut client) = setup(64);
        let keys: Vec<Vec<u8>> = (0..80u64)
            .map(|i| format!("pget-{i:05}").into_bytes())
            .collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let before = client.op_stats().gets;
        client.get_many_pipelined(&refs, 8).unwrap();
        assert_eq!(
            client.op_stats().gets - before,
            80,
            "machine-run and fallback keys each count exactly one get"
        );
    }
}
