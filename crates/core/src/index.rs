//! Index bootstrap: server-side structures and client construction.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use art_core::hash::{fp12, prefix_hash64};
use art_core::layout::{HashEntry, InnerNode};
use art_core::NodeKind;
use dm_sim::{DmCluster, RemotePtr};
use race_hash::RaceTable;

use crate::client::SphinxClient;
use crate::config::SphinxConfig;
use crate::error::SphinxError;

/// Shared bootstrap information: where each MN's Inner Node Hash Table
/// lives. In a real deployment this is exchanged when a CN mounts the
/// index.
#[derive(Debug)]
pub(crate) struct SphinxMeta {
    pub(crate) inht_metas: Vec<RemotePtr>,
    pub(crate) config: SphinxConfig,
    /// One Succinct Filter Cache per compute node, shared by its workers.
    pub(crate) filters: Mutex<HashMap<u16, Arc<sfc::FilterCache>>>,
    /// The index-wide epoch-reclamation domain every worker registers
    /// with (the MN-resident epoch word and pin-slot array).
    pub(crate) reclaim_domain: reclaim::ReclaimDomain,
}

/// MN-side space usage of the index, split by component — the quantities
/// behind the paper's Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpaceBreakdown {
    /// Bytes consumed by ART nodes (inner + leaf).
    pub art_bytes: u64,
    /// Bytes consumed by the Inner Node Hash Tables (directories +
    /// segments).
    pub inht_bytes: u64,
}

impl SpaceBreakdown {
    /// Total MN-side bytes.
    pub fn total(&self) -> u64 {
        self.art_bytes + self.inht_bytes
    }

    /// INHT overhead relative to the ART itself (the paper reports
    /// 3.3–4.9%).
    pub fn inht_overhead(&self) -> f64 {
        self.inht_bytes as f64 / self.art_bytes as f64
    }
}

/// A Sphinx index living on a [`DmCluster`].
///
/// Create once with [`SphinxIndex::create`], then hand out per-worker
/// [`SphinxClient`]s via [`SphinxIndex::client`]. The handle is cheap to
/// clone.
#[derive(Debug, Clone)]
pub struct SphinxIndex {
    cluster: DmCluster,
    meta: Arc<SphinxMeta>,
}

impl SphinxIndex {
    /// Builds the MN-side structures: one Inner Node Hash Table per memory
    /// node and an empty root inner node (full prefix ε), registered in
    /// the INHT under the empty prefix.
    ///
    /// # Errors
    ///
    /// Propagates substrate and hash-table errors.
    pub fn create(cluster: &DmCluster, config: SphinxConfig) -> Result<Self, SphinxError> {
        let mut boot = cluster.client(0);
        let mut inht_metas = Vec::with_capacity(cluster.num_mns() as usize);
        for mn in 0..cluster.num_mns() {
            inht_metas.push(RaceTable::create(&mut boot, mn, &config.inht)?);
        }

        // Root node: empty Node4 with prefix ε, placed by consistent
        // hashing like every other node, reachable through the INHT.
        let root_prefix: &[u8] = &[];
        let h = prefix_hash64(root_prefix);
        let mn = cluster.place(h);
        let root = InnerNode::new(NodeKind::Node4, root_prefix);
        let root_ptr = boot.alloc(mn, InnerNode::byte_size(NodeKind::Node4))?;
        boot.write(root_ptr, &root.encode())?;
        let mut table = RaceTable::open(&mut boot, inht_metas[mn as usize])?;
        let entry = HashEntry {
            fp: fp12(root_prefix),
            kind: NodeKind::Node4,
            addr: root_ptr,
        };
        table.insert(&mut boot, h, entry.encode(), |_c, _w| Ok(h))?;

        let reclaim_domain = reclaim::ReclaimDomain::create(&mut boot, 0, config.reclaim)?;

        Ok(SphinxIndex {
            cluster: cluster.clone(),
            meta: Arc::new(SphinxMeta {
                inht_metas,
                config,
                filters: Mutex::new(HashMap::new()),
                reclaim_domain,
            }),
        })
    }

    /// Creates a worker client attached to compute node `cn_id`.
    ///
    /// All workers of one CN share that CN's Succinct Filter Cache (sized
    /// by [`SphinxConfig::cache_bytes`]), mirroring the paper's per-CN
    /// cache.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors from opening the hash tables.
    ///
    /// # Panics
    ///
    /// Panics if `cn_id` is out of range for the cluster.
    pub fn client(&self, cn_id: u16) -> Result<SphinxClient, SphinxError> {
        let mut dm = self.cluster.client(cn_id);
        let tables = self
            .meta
            .inht_metas
            .iter()
            .map(|&m| RaceTable::open(&mut dm, m))
            .collect::<Result<Vec<_>, _>>()?;
        let filter = self.filter_for(cn_id);
        let reclaim = self.meta.reclaim_domain.register(&mut dm)?;
        Ok(SphinxClient::new(
            dm,
            tables,
            filter,
            self.meta.config.clone(),
            reclaim,
        ))
    }

    /// Returns compute node `cn_id`'s shared filter cache, creating it
    /// (cold) on first touch. Creation is deterministic: each CN's
    /// filter derives its seed from the index seed and the CN id, so
    /// rebuild and snapshot bytes are reproducible across runs.
    fn filter_for(&self, cn_id: u16) -> Arc<sfc::FilterCache> {
        let mut filters = self.meta.filters.lock();
        filters
            .entry(cn_id)
            .or_insert_with(|| {
                Arc::new(sfc::FilterCache::new(
                    self.meta.config.cache_bytes.max(64),
                    self.meta.config.sfc,
                    self.meta.config.seed.wrapping_add(cn_id as u64),
                ))
            })
            .clone()
    }

    /// Serializes compute node `cn_id`'s filter cache as a CRC-framed
    /// snapshot (magic + version + payload + CRC32). A restarting or
    /// newly joining CN can [`load`](SphinxIndex::load_sfc_snapshot) it
    /// to warm-start instead of paying the Θ(L)-probe cold-miss ramp.
    pub fn sfc_snapshot(&self, cn_id: u16) -> Vec<u8> {
        self.filter_for(cn_id).snapshot()
    }

    /// Installs a snapshot into compute node `cn_id`'s filter cache
    /// (created cold first if no worker has attached yet).
    ///
    /// # Errors
    ///
    /// Returns the rejection reason — corrupt framing, wrong version,
    /// stale generation, or mode mismatch. Rejections are counted in
    /// `sfc.gen.snapshot_rejects` and leave the cache in its previous
    /// (at worst cold) state: a bad snapshot degrades warm-start, it
    /// never poisons the cache or panics.
    pub fn load_sfc_snapshot(&self, cn_id: u16, bytes: &[u8]) -> Result<(), sfc::SnapshotError> {
        self.filter_for(cn_id).load_snapshot(bytes)
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &DmCluster {
        &self.cluster
    }

    /// The index configuration.
    pub fn config(&self) -> &SphinxConfig {
        &self.meta.config
    }

    /// Meta pointers of the per-MN Inner Node Hash Tables (diagnostics
    /// and fault-injection tests; normal clients never need these).
    pub fn inht_metas(&self) -> &[RemotePtr] {
        &self.meta.inht_metas
    }

    /// Merged Succinct Filter Cache statistics across every per-CN filter.
    ///
    /// The filters are shared by all workers of a CN, so these counters
    /// must be collected **once per index** (not per worker) — merging
    /// them into each worker's [`SphinxClient::telemetry`] would count
    /// every filter once per worker.
    pub fn sfc_stats(&self) -> sfc::SfcStats {
        let mut total = sfc::SfcStats::default();
        for filter in self.meta.filters.lock().values() {
            total.merge(&filter.stats());
        }
        total
    }

    /// The SFC statistics as a telemetry registry fragment, ready to
    /// merge into a run-level registry alongside the per-worker ones.
    ///
    /// The flat `sfc.*` names predate the generational subsystem and
    /// keep their meaning (aggregated over all layers); the `sfc.gen.*`
    /// family exposes the generational internals — frozen generation
    /// level and size, pending delta, rebuild and snapshot activity.
    pub fn sfc_telemetry(&self) -> obs::Registry {
        let s = self.sfc_stats();
        let mut reg = obs::Registry::new();
        reg.add("sfc.inserts", s.inserts);
        reg.add("sfc.evictions", s.evictions);
        reg.add("sfc.second_chance", s.second_chance);
        reg.add("sfc.relocations", s.relocations);
        reg.add("sfc.lookups", s.lookups);
        reg.add("sfc.hits", s.hits);
        reg.add("sfc.false_positives", s.false_positives);
        reg.add("sfc.gen.generation", s.generation);
        reg.add("sfc.gen.frozen_size", s.frozen_len);
        reg.add("sfc.gen.delta_size", s.delta_len);
        reg.add("sfc.gen.tombstones", s.tombstones);
        reg.add("sfc.gen.frozen_hits", s.frozen_hits);
        reg.add("sfc.gen.delta_hits", s.delta_hits);
        reg.add("sfc.gen.rebuilds", s.rebuilds);
        reg.add("sfc.gen.fuse_build_retries", s.fuse_build_retries);
        reg.add("sfc.gen.snapshot_loads", s.snapshot_loads);
        reg.add("sfc.gen.snapshot_rejects", s.snapshot_rejects);
        reg.add("sfc.gen.false_positives", s.false_positives);
        reg
    }

    /// Measures MN-side space: total live bytes minus INHT bytes gives the
    /// ART's share (nodes and leaves are the only other allocations).
    ///
    /// # Errors
    ///
    /// Propagates substrate errors.
    pub fn space_breakdown(&self) -> Result<SpaceBreakdown, SphinxError> {
        let mut client = self.cluster.client(0);
        let mut inht_bytes = 0;
        for &meta in &self.meta.inht_metas {
            let mut table = RaceTable::open(&mut client, meta)?;
            inht_bytes += table.memory_bytes(&mut client)?;
        }
        let total = self.cluster.total_live_bytes();
        Ok(SpaceBreakdown {
            art_bytes: total.saturating_sub(inht_bytes),
            inht_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_sim::ClusterConfig;

    #[test]
    fn create_builds_root_and_tables() {
        let cluster = DmCluster::new(ClusterConfig::default());
        let index = SphinxIndex::create(&cluster, SphinxConfig::small()).unwrap();
        let space = index.space_breakdown().unwrap();
        assert!(space.inht_bytes > 0);
        assert!(space.art_bytes > 0, "root node should be allocated");
    }

    #[test]
    fn workers_on_same_cn_share_a_filter() {
        let cluster = DmCluster::new(ClusterConfig::default());
        let index = SphinxIndex::create(&cluster, SphinxConfig::small()).unwrap();
        let a = index.client(0).unwrap();
        let b = index.client(0).unwrap();
        let c = index.client(1).unwrap();
        assert!(Arc::ptr_eq(a.filter_handle(), b.filter_handle()));
        assert!(!Arc::ptr_eq(a.filter_handle(), c.filter_handle()));
    }
}
