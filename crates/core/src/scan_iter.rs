//! A streaming scan cursor: iterate a key range without materializing it.

use crate::client::SphinxClient;
use crate::error::SphinxError;

/// Default number of entries fetched per page.
const DEFAULT_PAGE: usize = 64;

/// A forward cursor over `key ≥ low`, paging through the index with
/// [`SphinxClient::scan_n`]. Created by [`SphinxClient::scan_iter`].
///
/// The cursor borrows the client (each page is a few round trips), yields
/// owned `(key, value)` pairs, and is resilient to concurrent inserts —
/// new keys behind the cursor are skipped, new keys ahead are seen, like
/// any cursor over a live index.
pub struct ScanIter<'a> {
    client: &'a mut SphinxClient,
    /// Exclusive resume point: the next page starts strictly after this.
    resume: Option<Vec<u8>>,
    buffer: std::vec::IntoIter<(Vec<u8>, Vec<u8>)>,
    page_size: usize,
    done: bool,
    /// Deferred error (surfaced as the final item).
    error: Option<SphinxError>,
}

impl SphinxClient {
    /// Returns a streaming cursor over all entries with key ≥ `low`, in
    /// ascending order.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dm_sim::{ClusterConfig, DmCluster};
    /// # use sphinx::{SphinxConfig, SphinxIndex};
    /// # fn main() -> Result<(), sphinx::SphinxError> {
    /// # let cluster = DmCluster::new(ClusterConfig::default());
    /// # let index = SphinxIndex::create(&cluster, SphinxConfig::default())?;
    /// # let mut client = index.client(0)?;
    /// for i in 0..100u32 {
    ///     client.insert(format!("it-{i:03}").as_bytes(), &i.to_le_bytes())?;
    /// }
    /// let count = client
    ///     .scan_iter(b"it-050")
    ///     .take_while(Result::is_ok)
    ///     .count();
    /// assert_eq!(count, 50);
    /// # Ok(())
    /// # }
    /// ```
    pub fn scan_iter<'a>(&'a mut self, low: &[u8]) -> ScanIter<'a> {
        ScanIter {
            client: self,
            resume: Some(low.to_vec()),
            buffer: Vec::new().into_iter(),
            page_size: DEFAULT_PAGE,
            done: false,
            error: None,
        }
    }
}

impl ScanIter<'_> {
    /// Overrides the page size (entries fetched per round-trip group).
    pub fn with_page_size(mut self, page_size: usize) -> Self {
        self.page_size = page_size.max(1);
        self
    }

    fn refill(&mut self) {
        let Some(low) = self.resume.take() else {
            self.done = true;
            return;
        };
        // Fetch one extra so an exactly-full page distinguishes "more
        // remains" from "exhausted".
        match self.client.scan_n(&low, self.page_size) {
            Ok(page) => {
                if page.len() < self.page_size {
                    self.done = true; // final page
                } else if let Some((last, _)) = page.last() {
                    // Resume strictly after the last yielded key: append a
                    // zero byte, the smallest strict successor.
                    let mut next = last.clone();
                    next.push(0);
                    self.resume = Some(next);
                }
                self.buffer = page.into_iter();
            }
            Err(e) => {
                self.error = Some(e);
                self.done = true;
            }
        }
    }
}

impl Iterator for ScanIter<'_> {
    type Item = Result<(Vec<u8>, Vec<u8>), SphinxError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(kv) = self.buffer.next() {
                return Some(Ok(kv));
            }
            if let Some(e) = self.error.take() {
                return Some(Err(e));
            }
            if self.done {
                return None;
            }
            self.refill();
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{SphinxConfig, SphinxIndex};
    use dm_sim::{ClusterConfig, DmCluster};

    fn setup(n: u64) -> crate::SphinxClient {
        let cluster = DmCluster::new(ClusterConfig::default());
        let index = SphinxIndex::create(&cluster, SphinxConfig::small()).unwrap();
        let mut client = index.client(0).unwrap();
        for i in 0..n {
            client
                .insert(format!("cur-{i:05}").as_bytes(), &i.to_le_bytes())
                .unwrap();
        }
        client
    }

    #[test]
    fn streams_everything_in_order() {
        let mut client = setup(500);
        let keys: Vec<Vec<u8>> = client
            .scan_iter(b"")
            .with_page_size(37) // force several pages with awkward sizing
            .map(|r| r.unwrap().0)
            .collect();
        assert_eq!(keys.len(), 500);
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(k, format!("cur-{i:05}").as_bytes());
        }
    }

    #[test]
    fn starts_mid_range_and_respects_take() {
        let mut client = setup(100);
        let first: Vec<Vec<u8>> = client
            .scan_iter(b"cur-00042")
            .take(5)
            .map(|r| r.unwrap().0)
            .collect();
        assert_eq!(first[0], b"cur-00042".to_vec());
        assert_eq!(first[4], b"cur-00046".to_vec());
    }

    #[test]
    fn empty_index_yields_nothing() {
        let cluster = DmCluster::new(ClusterConfig::default());
        let index = SphinxIndex::create(&cluster, SphinxConfig::small()).unwrap();
        let mut client = index.client(0).unwrap();
        assert_eq!(client.scan_iter(b"").count(), 0);
    }

    #[test]
    fn page_boundary_exactly_at_end() {
        let mut client = setup(64); // equals the default page size
        let n = client
            .scan_iter(b"")
            .inspect(|r| assert!(r.is_ok()))
            .count();
        assert_eq!(n, 64);
    }
}
