//! Per-client operation statistics.

/// Counters describing a client's index operations (complements the
/// network-level [`dm_sim::ClientStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Point lookups served.
    pub gets: u64,
    /// Inserts served.
    pub inserts: u64,
    /// Updates served.
    pub updates: u64,
    /// Deletes served.
    pub deletes: u64,
    /// Scans served.
    pub scans: u64,
    /// Retries caused by filter-cache false positives detected at a leaf
    /// (the <0.01% path of §III-B).
    pub false_positive_retries: u64,
    /// Retries caused by reading a node marked `Invalid` after a type
    /// switch (§III-C).
    pub invalid_node_retries: u64,
    /// Retries caused by leaf checksum mismatches (torn reads under
    /// concurrent in-place updates).
    pub checksum_retries: u64,
    /// Leaf reads whose size hint fell short, costing a second round trip
    /// to fetch the remainder.
    pub extended_leaf_reads: u64,
    /// Times the deepest node was found via the filter cache on the first
    /// hash-entry fetch.
    pub filter_first_hits: u64,
    /// Hash-entry fetches that found no matching entry (filter false
    /// positives or stale filter state).
    pub entry_misses: u64,
    /// Prefixes newly learned into the filter during traversals.
    pub filter_refreshes: u64,
}

impl OpStats {
    /// Total operations.
    pub fn ops(&self) -> u64 {
        self.gets + self.inserts + self.updates + self.deletes + self.scans
    }

    /// Difference between two snapshots (`self` minus `earlier`).
    pub fn since(&self, earlier: &OpStats) -> OpStats {
        OpStats {
            gets: self.gets - earlier.gets,
            inserts: self.inserts - earlier.inserts,
            updates: self.updates - earlier.updates,
            deletes: self.deletes - earlier.deletes,
            scans: self.scans - earlier.scans,
            false_positive_retries: self.false_positive_retries - earlier.false_positive_retries,
            invalid_node_retries: self.invalid_node_retries - earlier.invalid_node_retries,
            checksum_retries: self.checksum_retries - earlier.checksum_retries,
            extended_leaf_reads: self.extended_leaf_reads - earlier.extended_leaf_reads,
            filter_first_hits: self.filter_first_hits - earlier.filter_first_hits,
            entry_misses: self.entry_misses - earlier.entry_misses,
            filter_refreshes: self.filter_refreshes - earlier.filter_refreshes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_and_since() {
        let a = OpStats {
            gets: 10,
            inserts: 5,
            ..Default::default()
        };
        let b = OpStats {
            gets: 4,
            inserts: 2,
            ..Default::default()
        };
        assert_eq!(a.ops(), 15);
        let d = a.since(&b);
        assert_eq!(d.gets, 6);
        assert_eq!(d.inserts, 3);
    }
}
