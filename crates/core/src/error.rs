//! Error type for Sphinx operations.

use std::error::Error;
use std::fmt;

use art_core::layout::LayoutError;
use dm_sim::DmError;
use race_hash::RaceError;

/// Errors returned by Sphinx index operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SphinxError {
    /// Error from the DM substrate.
    Dm(DmError),
    /// Error from the Inner Node Hash Table.
    Inht(RaceError),
    /// A node failed to decode (should not survive retries).
    Layout(LayoutError),
    /// The key exceeds [`art_core::key::MAX_KEY_LEN`].
    KeyTooLong {
        /// Offending length.
        len: usize,
    },
    /// An operation exhausted its retry budget under contention.
    RetriesExhausted {
        /// Which operation gave up.
        op: &'static str,
    },
    /// An invariant was violated on the MN side.
    Corrupt {
        /// Description of the violation.
        what: &'static str,
    },
}

impl fmt::Display for SphinxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SphinxError::Dm(e) => write!(f, "substrate error: {e}"),
            SphinxError::Inht(e) => write!(f, "inner node hash table error: {e}"),
            SphinxError::Layout(e) => write!(f, "node decode error: {e}"),
            SphinxError::KeyTooLong { len } => write!(f, "key of {len} bytes exceeds the maximum"),
            SphinxError::RetriesExhausted { op } => {
                write!(f, "{op} exhausted its retry budget")
            }
            SphinxError::Corrupt { what } => write!(f, "corrupt index structure: {what}"),
        }
    }
}

impl Error for SphinxError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SphinxError::Dm(e) => Some(e),
            SphinxError::Inht(e) => Some(e),
            SphinxError::Layout(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DmError> for SphinxError {
    fn from(e: DmError) -> Self {
        SphinxError::Dm(e)
    }
}

impl From<RaceError> for SphinxError {
    fn from(e: RaceError) -> Self {
        SphinxError::Inht(e)
    }
}

impl From<LayoutError> for SphinxError {
    fn from(e: LayoutError) -> Self {
        SphinxError::Layout(e)
    }
}

impl From<node_engine::EngineError> for SphinxError {
    fn from(e: node_engine::EngineError) -> Self {
        match e {
            node_engine::EngineError::Dm(e) => SphinxError::Dm(e),
            node_engine::EngineError::Layout(e) => SphinxError::Layout(e),
            node_engine::EngineError::RetriesExhausted { op } => {
                SphinxError::RetriesExhausted { op }
            }
            _ => SphinxError::Corrupt {
                what: "unknown engine error",
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync_and_displays() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SphinxError>();
        let e = SphinxError::RetriesExhausted { op: "insert" };
        assert_eq!(e.to_string(), "insert exhausted its retry budget");
    }

    #[test]
    fn sources_chain() {
        let e = SphinxError::Dm(DmError::OutOfMemory {
            mn_id: 0,
            requested: 8,
        });
        assert!(e.source().is_some());
    }
}
