//! Limited ordered scans — an extension beyond the paper.
//!
//! YCSB-E's native operation is "scan the next N keys from a start key",
//! which a `[low, high]` range scan can only approximate. `scan_n` walks
//! the tree depth-first in key order with *lazy* child reads (a subtree is
//! only fetched when the ordered walk actually reaches it) and doorbell-
//! batches runs of adjacent leaves, so the cost tracks the result size,
//! not the tree size.

use art_core::layout::{InnerNode, LeafNode, NodeStatus, Slot};
use dm_sim::Transport;
use node_engine::LeafReadStats;
use obs::{OpKind, Phase};

use crate::client::SphinxClient;
use crate::error::SphinxError;

/// A pending subtree on the DFS stack (not yet fetched).
struct PendingChild {
    slot: Slot,
    /// Known prefix bytes (exact when `exact`).
    known: Vec<u8>,
    exact: bool,
}

impl SphinxClient {
    /// Returns up to `limit` entries with key ≥ `low`, in ascending key
    /// order — the "scan N next rows" operation of YCSB-E.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors; torn leaf reads are retried
    /// internally and skipped if they never settle, like
    /// [`SphinxClient::scan`].
    ///
    /// # Examples
    ///
    /// ```
    /// # use dm_sim::{ClusterConfig, DmCluster};
    /// # use sphinx::{SphinxConfig, SphinxIndex};
    /// # fn main() -> Result<(), sphinx::SphinxError> {
    /// # let cluster = DmCluster::new(ClusterConfig::default());
    /// # let index = SphinxIndex::create(&cluster, SphinxConfig::default())?;
    /// # let mut client = index.client(0)?;
    /// for word in ["ant", "bee", "cat", "dog", "eel"] {
    ///     client.insert(word.as_bytes(), b"v")?;
    /// }
    /// let next_three = client.scan_n(b"bee", 3)?;
    /// let keys: Vec<&[u8]> = next_three.iter().map(|(k, _)| k.as_slice()).collect();
    /// assert_eq!(keys, vec![b"bee".as_slice(), b"cat", b"dog"]);
    /// # Ok(())
    /// # }
    /// ```
    #[allow(clippy::type_complexity)]
    pub fn scan_n(
        &mut self,
        low: &[u8],
        limit: usize,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>, SphinxError> {
        self.stats.scans += 1;
        self.obs_begin(OpKind::Scan);
        let r = self.scan_n_inner(low, limit);
        self.op_exit();
        r
    }

    #[allow(clippy::type_complexity)]
    fn scan_n_inner(
        &mut self,
        low: &[u8],
        limit: usize,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>, SphinxError> {
        let mut results: Vec<(Vec<u8>, Vec<u8>)> = Vec::with_capacity(limit);
        if limit == 0 {
            return Ok(results);
        }
        let (_, root, _) = self.entry_node(&[], 0)?;
        self.obs_phase(Phase::Traversal);
        // Stack of unfetched subtrees in reverse key order (smallest on
        // top). Seed with the root's children.
        let mut stack: Vec<PendingChild> = Vec::new();
        self.push_children(&root, Vec::new(), true, low, &mut stack)?;

        while results.len() < limit {
            // Batch a maximal run of leaves from the top of the stack (they
            // are key-adjacent siblings/cousins — the common case deep in
            // a scan window).
            let mut leaf_run = 0;
            while leaf_run < stack.len()
                && stack[stack.len() - 1 - leaf_run].slot.is_leaf
                && leaf_run < limit - results.len() + 2
            {
                leaf_run += 1;
            }
            if leaf_run > 0 {
                let start = stack.len() - leaf_run;
                let run: Vec<PendingChild> = stack.drain(start..).rev().collect();
                let run_reads: Vec<_> = run
                    .iter()
                    .map(|p| (p.slot.addr, self.config.leaf_read_hint))
                    .collect();
                self.obs_phase(Phase::LeafRead);
                let reads = self.dm.read_many(&run_reads)?;
                for (p, bytes) in run.into_iter().zip(reads) {
                    let leaf = match LeafNode::decode(&bytes) {
                        Ok(l) => l,
                        Err(_) => {
                            let mut io = LeafReadStats::default();
                            let r = node_engine::read_validated_leaf(
                                &mut self.dm,
                                p.slot.addr,
                                self.config.leaf_read_hint,
                                &self.retry,
                                &mut io,
                            );
                            self.stats.checksum_retries += io.checksum_retries;
                            self.stats.extended_leaf_reads += io.extended_reads;
                            match r {
                                Ok(l) => l,
                                Err(node_engine::EngineError::RetriesExhausted { .. }) => continue,
                                Err(e) => return Err(e.into()),
                            }
                        }
                    };
                    if leaf.status != NodeStatus::Invalid && leaf.key.as_slice() >= low {
                        results.push((leaf.key, leaf.value));
                    }
                }
                self.obs_phase(Phase::Traversal);
                continue;
            }

            // Otherwise the next item is an inner subtree: fetch just it.
            let Some(p) = stack.pop() else { break };
            let bytes = self
                .dm
                .read(p.slot.addr, InnerNode::byte_size(p.slot.child_kind))?;
            let Ok(node) = InnerNode::decode(&bytes) else {
                continue;
            };
            if node.header.status == NodeStatus::Invalid || node.header.kind != p.slot.child_kind {
                continue; // mid type-switch; reachable via a later scan
            }
            self.push_children(&node, p.known, p.exact, low, &mut stack)?;
        }
        // Leaf batches may overshoot slightly; trim and the order is
        // already ascending by construction.
        results.truncate(limit);
        Ok(results)
    }

    /// Queues `node`'s viable children (value slot first, children by
    /// dispatch byte) in reverse key order, resolving the node's full
    /// prefix from a direct leaf child when path compression hid it.
    fn push_children(
        &mut self,
        node: &InnerNode,
        mut known: Vec<u8>,
        mut exact: bool,
        low: &[u8],
        stack: &mut Vec<PendingChild>,
    ) -> Result<(), SphinxError> {
        let plen = node.header.prefix_len as usize;
        if !(exact && plen == known.len()) {
            // Resolve the full prefix: cheaply from a direct leaf child,
            // else by walking the leftmost chain to any leaf (costs the
            // remaining depth once; without it pruning dies and the scan
            // degrades to a subtree sweep).
            let direct = node
                .value_slot
                .or_else(|| node.slots.iter().flatten().find(|s| s.is_leaf).copied());
            let sampled = match direct {
                Some(slot) => {
                    let bytes = self.dm.read(slot.addr, self.config.leaf_read_hint)?;
                    LeafNode::decode(&bytes).ok()
                }
                None => self.sample_leaf(node)?,
            };
            if let Some(leaf) = sampled {
                if leaf.key.len() >= plen {
                    known = leaf.key[..plen].to_vec();
                    exact = true;
                }
            }
        }
        let exact_here = exact && plen == known.len();

        let mut ordered: Vec<PendingChild> = Vec::new();
        if let Some(slot) = node.value_slot {
            ordered.push(PendingChild {
                slot,
                known: known.clone(),
                exact: exact_here,
            });
        }
        for slot in node.children_sorted() {
            let (child_known, child_exact) = if exact_here {
                let mut k = known.clone();
                k.push(slot.key_byte);
                (k, true)
            } else {
                (known.clone(), false)
            };
            // A subtree provably entirely below `low` cannot contribute.
            if child_exact
                && child_known.as_slice() < low
                && !low.starts_with(child_known.as_slice())
            {
                continue;
            }
            ordered.push(PendingChild {
                slot,
                known: child_known,
                exact: child_exact,
            });
        }
        while let Some(p) = ordered.pop() {
            stack.push(p);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::{SphinxConfig, SphinxIndex};
    use dm_sim::{ClusterConfig, DmCluster};

    fn setup(n: u64) -> crate::SphinxClient {
        let cluster = DmCluster::new(ClusterConfig::default());
        let index = SphinxIndex::create(&cluster, SphinxConfig::small()).unwrap();
        let mut client = index.client(0).unwrap();
        for i in 0..n {
            client
                .insert(format!("scan-{i:05}").as_bytes(), &i.to_le_bytes())
                .unwrap();
        }
        client
    }

    #[test]
    fn scan_n_returns_sorted_window() {
        let mut client = setup(300);
        let hits = client.scan_n(b"scan-00100", 25).unwrap();
        assert_eq!(hits.len(), 25);
        for (i, (k, _)) in hits.iter().enumerate() {
            assert_eq!(k, format!("scan-{:05}", 100 + i).as_bytes(), "position {i}");
        }
    }

    #[test]
    fn scan_n_from_between_keys_and_past_end() {
        let mut client = setup(50);
        // Start key absent: the next larger key opens the window.
        let hits = client.scan_n(b"scan-00010x", 3).unwrap();
        assert_eq!(hits[0].0, b"scan-00011".to_vec());
        // Window larger than the remaining tail.
        let tail = client.scan_n(b"scan-00048", 10).unwrap();
        assert_eq!(tail.len(), 2);
        // Start past everything.
        assert!(client.scan_n(b"zzz", 5).unwrap().is_empty());
        // Zero limit.
        assert!(client.scan_n(b"", 0).unwrap().is_empty());
    }

    #[test]
    fn scan_n_skips_deleted() {
        let mut client = setup(20);
        client.remove(b"scan-00005").unwrap();
        let hits = client.scan_n(b"scan-00004", 3).unwrap();
        let keys: Vec<Vec<u8>> = hits.into_iter().map(|(k, _)| k).collect();
        assert_eq!(
            keys,
            vec![
                b"scan-00004".to_vec(),
                b"scan-00006".to_vec(),
                b"scan-00007".to_vec()
            ]
        );
    }

    #[test]
    fn scan_n_agrees_with_range_scan() {
        let mut client = setup(400);
        let want: Vec<(Vec<u8>, Vec<u8>)> = client.scan(b"scan-00150", b"scan-00169").unwrap();
        let got = client.scan_n(b"scan-00150", 20).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn scan_n_cost_tracks_result_size_not_tree_size() {
        let mut client = setup(2000);
        let before = client.net_stats().round_trips;
        let hits = client.scan_n(b"scan-01000", 10).unwrap();
        let rts = client.net_stats().round_trips - before;
        assert_eq!(hits.len(), 10);
        assert!(
            rts < 25,
            "10-row scan over 2000 keys took {rts} round trips"
        );
    }
}
