//! # sphinx — a hybrid range index for disaggregated memory
//!
//! Reproduction of *"Sphinx: A High-Performance Hybrid Index for
//! Disaggregated Memory With Succinct Filter Cache"* (DAC 2025).
//!
//! Sphinx stores an adaptive radix tree (ART) on the memory nodes of a
//! disaggregated-memory cluster and attacks the two costs that cripple
//! tree indexes on DM:
//!
//! * **Round trips** — an MN-side **Inner Node Hash Table** maps every
//!   inner node's *full prefix* to its address, so a client can jump
//!   straight to the deepest relevant inner node instead of walking the
//!   tree from the root (§III-A).
//! * **Bandwidth / NIC load** — a CN-side **Succinct Filter Cache**
//!   tracks which prefixes have inner nodes, reducing the hash-entry
//!   reads per operation from Θ(key length) to one in the common case,
//!   while staying coherent under remote modifications (§III-B). The
//!   generational implementation ([`sfc`]) freezes the steady working
//!   set into an immutable binary-fuse generation (~10 bits per prefix
//!   at scale) over a mutable cuckoo delta with second-chance eviction,
//!   folds the delta into the next generation at op boundaries, and
//!   warm-starts joining CNs from CRC-framed snapshots.
//!
//! In the common case an index operation costs **three network round
//! trips**: hash-bucket read → inner-node read → leaf read.
//!
//! ## Example
//!
//! ```
//! use dm_sim::{ClusterConfig, DmCluster};
//! use sphinx::{SphinxConfig, SphinxIndex};
//!
//! # fn main() -> Result<(), sphinx::SphinxError> {
//! let cluster = DmCluster::new(ClusterConfig::default());
//! let index = SphinxIndex::create(&cluster, SphinxConfig::default())?;
//! let mut client = index.client(0)?;
//! client.insert(b"lyrics", b"value-1")?;
//! assert_eq!(client.get(b"lyrics")?.as_deref(), Some(&b"value-1"[..]));
//! client.insert(b"lyre", b"value-2")?;
//! let hits = client.scan(b"ly", b"lz")?;
//! assert_eq!(hits.len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod config;
mod error;
mod index;
mod multi_get;
mod pipeline;
mod scan;
mod scan_iter;
mod scan_n;
mod stats;
mod verify;
mod write_ops;

pub use client::SphinxClient;
pub use config::{CacheMode, SphinxConfig};
pub use error::SphinxError;
pub use index::{SpaceBreakdown, SphinxIndex};
pub use obs;
pub use scan_iter::ScanIter;
pub use sfc;
pub use stats::OpStats;
pub use verify::IntegrityReport;
