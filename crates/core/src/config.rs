//! Index configuration.

use race_hash::TableConfig;

/// How the compute side locates the deepest inner node (the paper's design
/// plus its ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheMode {
    /// Full Sphinx: consult the Succinct Filter Cache, then fetch a single
    /// hash entry (§III-B). The default.
    #[default]
    FilterCache,
    /// Inner-Node-Hash-Table-only ablation: read the hash entries of *all*
    /// key prefixes in one doorbell-batched round trip and pick the
    /// deepest (§III-A without §III-B). Same round trips, Θ(L) bandwidth.
    InhtOnly,
}

/// Configuration for a Sphinx index.
#[derive(Debug, Clone)]
pub struct SphinxConfig {
    /// CN-side cache budget in bytes for the Succinct Filter Cache
    /// (the paper evaluates 20 MB). One filter is shared per compute node.
    pub cache_bytes: usize,
    /// Deepest-node location strategy.
    pub mode: CacheMode,
    /// Sizing of each MN's Inner Node Hash Table.
    pub inht: TableConfig,
    /// Bytes fetched for a leaf in the first read. 128 covers a 32-byte
    /// key with a 64-byte value; larger leaves cost one extra read.
    pub leaf_read_hint: usize,
    /// Seed for the filter's eviction RNG and fuse construction
    /// (determinism; each CN's filter derives its own seed from this).
    pub seed: u64,
    /// Generational Succinct Filter Cache tuning (frozen binary-fuse
    /// generation + mutable cuckoo delta + background rebuilds). Set
    /// `generational: false` to reproduce the pre-generational
    /// cuckoo-only cache for ablations.
    pub sfc: sfc::SfcConfig,
    /// Epoch-based reclamation of unlinked nodes and leaves. Disable
    /// (`enabled: false`) to reproduce the pre-reclamation leak behaviour
    /// for memory comparisons.
    pub reclaim: reclaim::ReclaimConfig,
}

impl Default for SphinxConfig {
    fn default() -> Self {
        SphinxConfig {
            cache_bytes: 20 << 20, // the paper's 20 MB CN-side cache
            mode: CacheMode::FilterCache,
            // Directory preallocated for 2^12 segments (≈1.7 M inner
            // nodes per MN) — 32 KiB per MN, so the hash table's overhead
            // stays in the paper's 3–5% band instead of being dominated
            // by an oversized directory.
            inht: TableConfig {
                initial_depth: 4,
                max_depth: 12,
            },
            leaf_read_hint: 128,
            seed: 0x5F13_C5EE,
            sfc: sfc::SfcConfig::default(),
            reclaim: reclaim::ReclaimConfig::default(),
        }
    }
}

impl SphinxConfig {
    /// A small-footprint configuration for unit tests and examples.
    pub fn small() -> Self {
        SphinxConfig {
            cache_bytes: 1 << 20,
            inht: TableConfig {
                initial_depth: 2,
                max_depth: 12,
            },
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_operating_point() {
        let c = SphinxConfig::default();
        assert_eq!(c.cache_bytes, 20 * 1024 * 1024);
        assert_eq!(c.mode, CacheMode::FilterCache);
        assert_eq!(c.leaf_read_hint, 128);
    }
}
